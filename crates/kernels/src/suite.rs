//! The benchmark registry: every kernel of the paper's Table 2 plus the
//! 16 Polybench kernels, with figure membership and the vectorization
//! features each one must exercise.

use vapor_frontend::parse_kernel;
use vapor_ir::{Bindings, Kernel};
use vapor_vectorizer::Feature;

use crate::{data, media, polybench};

/// Which benchmark collection a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteKind {
    /// Table 2 media/DSP/BLAS kernels.
    Media,
    /// Polybench 1.0.
    Polybench,
}

/// Problem sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small, odd sizes for correctness tests (exercises tail loops).
    Test,
    /// Paper-scale sizes for the experiments.
    Full,
}

/// One benchmark kernel.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Registry name (matches the paper's figures).
    pub name: &'static str,
    /// Mini-C source.
    pub source: &'static str,
    /// Collection.
    pub suite: SuiteKind,
    /// Appears in Figure 5a (Mono/SSE).
    pub fig5a: bool,
    /// Appears in Figure 5b (Mono/AltiVec).
    pub fig5b: bool,
    /// Appears in Table 3 (AVX static analysis).
    pub table3: bool,
    /// The offline vectorizer must vectorize at least one loop.
    pub expect_vectorized: bool,
    /// Features the vectorizer must report (subset check).
    pub features: &'static [Feature],
}

impl KernelSpec {
    /// Parse the kernel source.
    ///
    /// # Panics
    /// Panics if the bundled source fails to parse (a build-time bug).
    pub fn kernel(&self) -> Kernel {
        parse_kernel(self.source)
            .unwrap_or_else(|e| panic!("kernel {} failed to parse: {e}", self.name))
    }

    /// Deterministic input bindings for the given scale.
    pub fn env(&self, scale: Scale) -> Bindings {
        data::env_for(self.name, scale)
    }
}

/// The full suite in the paper's figure order.
pub fn suite() -> Vec<KernelSpec> {
    use Feature::*;
    let m = |name, source, fig5a, fig5b, table3, expect, features| KernelSpec {
        name,
        source,
        suite: SuiteKind::Media,
        fig5a,
        fig5b,
        table3,
        expect_vectorized: expect,
        features,
    };
    let p = |name, source, expect, features| KernelSpec {
        name,
        source,
        suite: SuiteKind::Polybench,
        fig5a: false,
        fig5b: false,
        table3: false,
        expect_vectorized: expect,
        features,
    };
    vec![
        m(
            "dissolve_s8",
            media::DISSOLVE_S8,
            false,
            false,
            false,
            true,
            &[WidenMult][..],
        ),
        m(
            "sad_s8",
            media::SAD_S8,
            true,
            true,
            false,
            true,
            &[AbsDiff, Reduction],
        ),
        m(
            "sfir_s16",
            media::SFIR_S16,
            true,
            true,
            false,
            true,
            &[DotProduct, Reduction, Realign],
        ),
        m(
            "interp_s16",
            media::INTERP_S16,
            true,
            true,
            false,
            true,
            &[Strided, Realign],
        ),
        m(
            "mix_streams_s16",
            media::MIX_STREAMS_S16,
            true,
            true,
            false,
            true,
            &[Slp],
        ),
        m(
            "convolve_s32",
            media::CONVOLVE_S32,
            true,
            true,
            false,
            true,
            &[Reduction, Realign],
        ),
        m(
            "alvinn_s32fp",
            media::ALVINN_S32FP,
            false,
            true,
            false,
            true,
            &[OuterLoop],
        ),
        m(
            "dct_s32fp",
            media::DCT_S32FP,
            true,
            true,
            false,
            true,
            &[OuterLoop, Cvt],
        ),
        m(
            "dissolve_fp",
            media::DISSOLVE_FP,
            true,
            true,
            true,
            true,
            &[],
        ),
        m(
            "sfir_fp",
            media::SFIR_FP,
            true,
            true,
            true,
            true,
            &[Reduction, Realign],
        ),
        m(
            "interp_fp",
            media::INTERP_FP,
            true,
            true,
            true,
            true,
            &[Strided, Realign],
        ),
        m(
            "mmm_fp",
            media::MMM_FP,
            true,
            true,
            true,
            true,
            &[Versioned],
        ),
        m("dscal_fp", media::DSCAL_FP, true, true, true, true, &[]),
        m("saxpy_fp", media::SAXPY_FP, true, true, true, true, &[]),
        m(
            "dscal_dp",
            media::DSCAL_DP,
            true,
            true,
            true,
            true,
            &[Versioned],
        ),
        m(
            "saxpy_dp",
            media::SAXPY_DP,
            true,
            true,
            true,
            true,
            &[Versioned],
        ),
        p("correlation_fp", polybench::CORRELATION, true, &[OuterLoop]),
        p("covariance_fp", polybench::COVARIANCE, true, &[OuterLoop]),
        p("2mm_fp", polybench::MM2, true, &[Versioned]),
        p("3mm_fp", polybench::MM3, true, &[Versioned]),
        p("atax_fp", polybench::ATAX, true, &[Reduction]),
        p("gesummv_fp", polybench::GESUMMV, true, &[Reduction]),
        p("doitgen_fp", polybench::DOITGEN, true, &[OuterLoop]),
        p("gemm_fp", polybench::GEMM, true, &[Versioned]),
        p("gemver_fp", polybench::GEMVER, true, &[Reduction]),
        p("bicg_fp", polybench::BICG, true, &[Reduction]),
        p("gramschmidt_fp", polybench::GRAMSCHMIDT, true, &[Reduction]),
        p("lu_fp", polybench::LU, true, &[Versioned, Realign]),
        p("ludcmp_fp", polybench::LUDCMP, true, &[Reduction]),
        p("adi_fp", polybench::ADI, true, &[]),
        p("jacobi_fp", polybench::JACOBI, true, &[Realign]),
        p("seidel_fp", polybench::SEIDEL, false, &[]),
    ]
}

/// Look up one kernel by name.
pub fn find(name: &str) -> Option<KernelSpec> {
    suite().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse_and_validate() {
        for spec in suite() {
            let k = spec.kernel();
            assert_eq!(vapor_ir::validate(&k), Ok(()), "{}", spec.name);
        }
    }

    #[test]
    fn suite_has_32_kernels() {
        let s = suite();
        assert_eq!(s.len(), 32);
        assert_eq!(s.iter().filter(|k| k.suite == SuiteKind::Media).count(), 16);
        assert_eq!(
            s.iter().filter(|k| k.suite == SuiteKind::Polybench).count(),
            16
        );
        assert_eq!(s.iter().filter(|k| k.table3).count(), 8);
        // Figure 5a has 14 media kernels (no dissolve_s8, no alvinn);
        // 5b adds alvinn.
        assert_eq!(s.iter().filter(|k| k.fig5a).count(), 14);
        assert_eq!(s.iter().filter(|k| k.fig5b).count(), 15);
    }

    #[test]
    fn names_are_unique() {
        let s = suite();
        for (i, a) in s.iter().enumerate() {
            for b in &s[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn envs_bind_every_parameter() {
        for spec in suite() {
            let k = spec.kernel();
            let env = spec.env(Scale::Test);
            for (_, v) in k.scalar_params() {
                assert!(
                    env.scalar(&v.name).is_some(),
                    "{}: scalar {}",
                    spec.name,
                    v.name
                );
            }
            for a in &k.arrays {
                assert!(
                    env.array(&a.name).is_some(),
                    "{}: array {}",
                    spec.name,
                    a.name
                );
            }
        }
    }

    #[test]
    fn oracle_runs_every_kernel_at_test_scale() {
        for spec in suite() {
            let k = spec.kernel();
            let mut env = spec.env(Scale::Test);
            vapor_ir::interpret(&k, &mut env).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }
}

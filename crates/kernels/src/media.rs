//! The media/DSP/BLAS kernels of the paper's Table 2 (mini-C sources).
//!
//! Array parameters are raw pointers (`float x[]`) for the DSP/BLAS
//! kernels — the alignment-provability distinction §III-B(c) relies on —
//! while lookup tables and image planes that the paper's benchmarks keep
//! in globals are marked `global`.

/// Video image dissolve over `u8` pixels (widening multiplication).
/// `alpha` ∈ 0..=255 blends `a` over `b`.
pub const DISSOLVE_S8: &str = "
kernel dissolve_s8(long n, uchar alpha, uchar beta, uchar a[], uchar b[], uchar out[]) {
  for (long i = 0; i < n; i++) {
    out[i] = (uchar)(((ushort)a[i] * (ushort)alpha + (ushort)b[i] * (ushort)beta) >> 8);
  }
}";

/// Sum of absolute differences over 16-pixel blocks (abs pattern +
/// widening reduction) — the motion-estimation primitive.
pub const SAD_S8: &str = "
kernel sad_s8(long nblk, global uchar a[], global uchar b[], int out[]) {
  int s;
  for (long blk = 0; blk < nblk; blk++) {
    s = 0;
    for (long i = 0; i < 16; i++) {
      s += (int)abs((short)a[16*blk + i] - (short)b[16*blk + i]);
    }
    out[blk] = s;
  }
}";

/// Single-sample FIR over `s16` samples with `s32` accumulation
/// (dot-product idiom).
pub const SFIR_S16: &str = "
kernel sfir_s16(long n, long nt, short x[], short c[], int y[]) {
  int s;
  for (long i = 0; i < n; i++) {
    s = 0;
    for (long j = 0; j < nt; j++) {
      s += (int)x[i + j] * (int)c[j];
    }
    y[i] = s;
  }
}";

/// Rate-2 interpolation over `s16` samples (strided stores via
/// `interleave`, realigned loads).
pub const INTERP_S16: &str = "
kernel interp_s16(long n, short x[], short y[]) {
  for (long i = 0; i < n; i++) {
    y[2*i] = x[i];
    y[2*i + 1] = (x[i] + x[i + 1]) >> 1;
  }
}";

/// Mix four interleaved `s16` audio channels (SLP vectorization: four
/// isomorphic statements merged into one vector statement).
pub const MIX_STREAMS_S16: &str = "
kernel mix_streams_s16(long n, short a[], short b[], short out[]) {
  for (long i = 0; i < n; i++) {
    out[4*i] = (a[4*i] + b[4*i]) >> 1;
    out[4*i + 1] = (a[4*i + 1] + b[4*i + 1]) >> 1;
    out[4*i + 2] = (a[4*i + 2] + b[4*i + 2]) >> 1;
    out[4*i + 3] = (a[4*i + 3] + b[4*i + 3]) >> 1;
  }
}";

/// 1-D convolution with an `s32` kernel (reduction).
pub const CONVOLVE_S32: &str = "
kernel convolve_s32(long n, long nk, int a[], int k[], int out[]) {
  int s;
  for (long i = 0; i < n; i++) {
    s = 0;
    for (long j = 0; j < nk; j++) {
      s += a[i + j] * k[j];
    }
    out[i] = s;
  }
}";

/// Neural-net weight update from ALVINN (outer-loop vectorization over
/// the per-neuron dimension).
pub const ALVINN_S32FP: &str = "
kernel alvinn_s32fp(long m, long npat, global float w[], global float d[], global float h[]) {
  for (long j = 0; j < m; j++) {
    for (long p = 0; p < npat; p++) {
      w[m*p + j] = w[m*p + j] + d[p] * h[j];
    }
  }
}";

/// 8-point DCT applied to the columns of an 8×m `s32` image strip
/// (outer-loop vectorization + int↔float conversions).
pub const DCT_S32FP: &str = "
kernel dct_s32fp(long m, global float c[], global int x[], global int y[]) {
  float s;
  for (long j = 0; j < m; j++) {
    for (long u = 0; u < 8; u++) {
      s = 0.0;
      for (long k = 0; k < 8; k++) {
        s += c[8*u + k] * (float)x[m*k + j];
      }
      y[m*u + j] = (int)s;
    }
  }
}";

/// Float image dissolve with a constant blend factor.
pub const DISSOLVE_FP: &str = "
kernel dissolve_fp(long n, float alpha, float a[], float b[], float out[]) {
  for (long i = 0; i < n; i++) {
    out[i] = a[i] * alpha + b[i] * (1.0 - alpha);
  }
}";

/// Float FIR (plain float reduction).
pub const SFIR_FP: &str = "
kernel sfir_fp(long n, long nt, float x[], float c[], float y[]) {
  float s;
  for (long i = 0; i < n; i++) {
    s = 0.0;
    for (long j = 0; j < nt; j++) {
      s += x[i + j] * c[j];
    }
    y[i] = s;
  }
}";

/// Rate-2 float interpolation (strided stores + realigned loads).
pub const INTERP_FP: &str = "
kernel interp_fp(long n, float h0, float h1, float x[], float y[]) {
  for (long i = 0; i < n; i++) {
    y[2*i] = x[i] * h0 + x[i + 1] * h1;
    y[2*i + 1] = x[i] * h1 + x[i + 1] * h0;
  }
}";

/// Matrix-matrix multiply, `C += A·B`, j-innermost form. The row
/// alignment of `b`/`c` depends on the runtime dimension — the
/// `stride_aligned` versioning test of §V-A that Mono re-evaluates
/// inside the loop nest.
pub const MMM_FP: &str = "
kernel mmm_fp(long n, float a[], float b[], float c[]) {
  for (long i = 0; i < n; i++) {
    for (long k = 0; k < n; k++) {
      for (long j = 0; j < n; j++) {
        c[n*i + j] = c[n*i + j] + a[n*i + k] * b[n*k + j];
      }
    }
  }
}";

/// BLAS `dscal`: scale a vector.
pub const DSCAL_FP: &str = "
kernel dscal_fp(long n, float alpha, float x[]) {
  for (long i = 0; i < n; i++) {
    x[i] = alpha * x[i];
  }
}";

/// BLAS `saxpy`.
pub const SAXPY_FP: &str = "
kernel saxpy_fp(long n, float alpha, float x[], float y[]) {
  for (long i = 0; i < n; i++) {
    y[i] = alpha * x[i] + y[i];
  }
}";

/// Double-precision `dscal` (scalarized on AltiVec: no 64-bit elements).
pub const DSCAL_DP: &str = "
kernel dscal_dp(long n, double alpha, double x[]) {
  for (long i = 0; i < n; i++) {
    x[i] = alpha * x[i];
  }
}";

/// Double-precision `saxpy` (scalarized on AltiVec).
pub const SAXPY_DP: &str = "
kernel saxpy_dp(long n, double alpha, double x[], double y[]) {
  for (long i = 0; i < n; i++) {
    y[i] = alpha * x[i] + y[i];
  }
}";

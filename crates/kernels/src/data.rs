//! Deterministic input generation for every kernel.
//!
//! Seeded per kernel name so experiments and tests are reproducible.
//! Values are ranged so that float divisors stay away from zero and
//! integer reductions stay within their types.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vapor_ir::{ArrayData, Bindings, ScalarTy};

use crate::suite::Scale;

fn rng_for(name: &str) -> StdRng {
    let mut seed = [0u8; 32];
    for (i, b) in name.bytes().enumerate() {
        seed[i % 32] ^= b.wrapping_mul(i as u8 + 31);
    }
    StdRng::from_seed(seed)
}

fn floats(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> ArrayData {
    let v: Vec<f64> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    ArrayData::from_floats(ScalarTy::F32, &v)
}

fn doubles(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> ArrayData {
    let v: Vec<f64> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    ArrayData::from_floats(ScalarTy::F64, &v)
}

fn bytes_u8(rng: &mut StdRng, n: usize) -> ArrayData {
    let v: Vec<i64> = (0..n).map(|_| rng.gen_range(0..256)).collect();
    ArrayData::from_ints(ScalarTy::U8, &v)
}

fn shorts(rng: &mut StdRng, n: usize, lo: i64, hi: i64) -> ArrayData {
    let v: Vec<i64> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    ArrayData::from_ints(ScalarTy::I16, &v)
}

fn ints(rng: &mut StdRng, n: usize, lo: i64, hi: i64) -> ArrayData {
    let v: Vec<i64> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    ArrayData::from_ints(ScalarTy::I32, &v)
}

fn zero_f32(n: usize) -> ArrayData {
    ArrayData::zeroed(ScalarTy::F32, n)
}

/// Input bindings for one kernel at one scale.
///
/// # Panics
/// Panics for unknown kernel names (registry and data must stay in sync).
pub fn env_for(name: &str, scale: Scale) -> Bindings {
    let full = scale == Scale::Full;
    let mut rng = rng_for(name);
    let mut env = Bindings::new();
    let r = &mut rng;
    match name {
        "dissolve_s8" => {
            let n = if full { 1024 } else { 37 };
            let alpha = r.gen_range(0..256);
            env.set_int("n", n as i64)
                .set_int("alpha", alpha)
                .set_int("beta", 255 - alpha)
                .set_array("a", bytes_u8(r, n))
                .set_array("b", bytes_u8(r, n))
                .set_array("out", ArrayData::zeroed(ScalarTy::U8, n));
        }
        "sad_s8" => {
            let nblk = if full { 64 } else { 3 };
            env.set_int("nblk", nblk as i64)
                .set_array("a", bytes_u8(r, 16 * nblk))
                .set_array("b", bytes_u8(r, 16 * nblk))
                .set_array("out", ArrayData::zeroed(ScalarTy::I32, nblk));
        }
        "sfir_s16" => {
            let (n, nt) = if full { (1024, 16) } else { (23, 7) };
            env.set_int("n", n as i64)
                .set_int("nt", nt as i64)
                .set_array("x", shorts(r, n + nt, -1000, 1000))
                .set_array("c", shorts(r, nt, -100, 100))
                .set_array("y", ArrayData::zeroed(ScalarTy::I32, n));
        }
        "interp_s16" => {
            let n = if full { 512 } else { 19 };
            env.set_int("n", n as i64)
                .set_array("x", shorts(r, n + 1, -1000, 1000))
                .set_array("y", ArrayData::zeroed(ScalarTy::I16, 2 * n));
        }
        "mix_streams_s16" => {
            let n = if full { 256 } else { 9 };
            env.set_int("n", n as i64)
                .set_array("a", shorts(r, 4 * n, -1000, 1000))
                .set_array("b", shorts(r, 4 * n, -1000, 1000))
                .set_array("out", ArrayData::zeroed(ScalarTy::I16, 4 * n));
        }
        "convolve_s32" => {
            let (n, nk) = if full { (1024, 16) } else { (21, 5) };
            env.set_int("n", n as i64)
                .set_int("nk", nk as i64)
                .set_array("a", ints(r, n + nk, -1000, 1000))
                .set_array("k", ints(r, nk, -100, 100))
                .set_array("out", ArrayData::zeroed(ScalarTy::I32, n));
        }
        "alvinn_s32fp" => {
            let (m, npat) = if full { (128, 64) } else { (13, 5) };
            env.set_int("m", m as i64)
                .set_int("npat", npat as i64)
                .set_array("w", floats(r, m * npat, -0.5, 0.5))
                .set_array("d", floats(r, npat, -0.5, 0.5))
                .set_array("h", floats(r, m, -0.5, 0.5));
        }
        "dct_s32fp" => {
            let m = if full { 128 } else { 11 };
            env.set_int("m", m as i64)
                .set_array("c", floats(r, 64, -0.5, 0.5))
                .set_array("x", ints(r, 8 * m, -255, 256))
                .set_array("y", ArrayData::zeroed(ScalarTy::I32, 8 * m));
        }
        "dissolve_fp" => {
            let n = if full { 1024 } else { 33 };
            env.set_int("n", n as i64)
                .set_float("alpha", 0.7)
                .set_array("a", floats(r, n, -1.0, 1.0))
                .set_array("b", floats(r, n, -1.0, 1.0))
                .set_array("out", zero_f32(n));
        }
        "sfir_fp" => {
            let (n, nt) = if full { (1024, 16) } else { (23, 7) };
            env.set_int("n", n as i64)
                .set_int("nt", nt as i64)
                .set_array("x", floats(r, n + nt, -1.0, 1.0))
                .set_array("c", floats(r, nt, -1.0, 1.0))
                .set_array("y", zero_f32(n));
        }
        "interp_fp" => {
            let n = if full { 512 } else { 19 };
            env.set_int("n", n as i64)
                .set_float("h0", 0.6)
                .set_float("h1", 0.4)
                .set_array("x", floats(r, n + 1, -1.0, 1.0))
                .set_array("y", zero_f32(2 * n));
        }
        "mmm_fp" => {
            let n = if full { 48 } else { 9 };
            env.set_int("n", n as i64)
                .set_array("a", floats(r, n * n, -0.5, 0.5))
                .set_array("b", floats(r, n * n, -0.5, 0.5))
                .set_array("c", zero_f32(n * n));
        }
        "dscal_fp" => {
            let n = if full { 1024 } else { 37 };
            env.set_int("n", n as i64)
                .set_float("alpha", 1.5)
                .set_array("x", floats(r, n, -1.0, 1.0));
        }
        "saxpy_fp" => {
            let n = if full { 1024 } else { 37 };
            env.set_int("n", n as i64)
                .set_float("alpha", 1.5)
                .set_array("x", floats(r, n, -1.0, 1.0))
                .set_array("y", floats(r, n, -1.0, 1.0));
        }
        "dscal_dp" => {
            let n = if full { 1024 } else { 37 };
            env.set_int("n", n as i64)
                .set_float("alpha", 1.5)
                .set_array("x", doubles(r, n, -1.0, 1.0));
        }
        "saxpy_dp" => {
            let n = if full { 1024 } else { 37 };
            env.set_int("n", n as i64)
                .set_float("alpha", 1.5)
                .set_array("x", doubles(r, n, -1.0, 1.0))
                .set_array("y", doubles(r, n, -1.0, 1.0));
        }
        "correlation_fp" => {
            let (nn, m) = if full { (48, 48) } else { (12, 12) };
            env.set_int("nn", nn as i64)
                .set_int("m", m as i64)
                .set_array("data", floats(r, nn * m, 0.1, 1.0))
                .set_array("mean", zero_f32(m))
                .set_array("stdev", zero_f32(m))
                .set_array("corr", zero_f32(m * m));
        }
        "covariance_fp" => {
            let (nn, m) = if full { (48, 48) } else { (12, 12) };
            env.set_int("nn", nn as i64)
                .set_int("m", m as i64)
                .set_array("data", floats(r, nn * m, 0.1, 1.0))
                .set_array("mean", zero_f32(m))
                .set_array("cov", zero_f32(m * m));
        }
        "2mm_fp" => {
            let n = if full { 40 } else { 9 };
            env.set_int("n", n as i64)
                .set_array("a", floats(r, n * n, -0.5, 0.5))
                .set_array("b", floats(r, n * n, -0.5, 0.5))
                .set_array("c", floats(r, n * n, -0.5, 0.5))
                .set_array("d", zero_f32(n * n))
                .set_array("tmp", zero_f32(n * n));
        }
        "3mm_fp" => {
            let n = if full { 40 } else { 9 };
            env.set_int("n", n as i64)
                .set_array("a", floats(r, n * n, -0.5, 0.5))
                .set_array("b", floats(r, n * n, -0.5, 0.5))
                .set_array("c", floats(r, n * n, -0.5, 0.5))
                .set_array("d", floats(r, n * n, -0.5, 0.5))
                .set_array("e", zero_f32(n * n))
                .set_array("f", zero_f32(n * n))
                .set_array("g", zero_f32(n * n));
        }
        "atax_fp" => {
            let (nn, m) = if full { (128, 128) } else { (11, 13) };
            env.set_int("nn", nn as i64)
                .set_int("m", m as i64)
                .set_array("a", floats(r, nn * m, -0.5, 0.5))
                .set_array("x", floats(r, m, -0.5, 0.5))
                .set_array("y", zero_f32(m))
                .set_array("tmp", zero_f32(nn));
        }
        "gesummv_fp" => {
            let n = if full { 128 } else { 13 };
            env.set_int("n", n as i64)
                .set_float("alpha", 1.2)
                .set_float("beta", 0.8)
                .set_array("a", floats(r, n * n, -0.5, 0.5))
                .set_array("b", floats(r, n * n, -0.5, 0.5))
                .set_array("x", floats(r, n, -0.5, 0.5))
                .set_array("y", zero_f32(n));
        }
        "doitgen_fp" => {
            let nr = if full { 8 } else { 2 };
            env.set_int("nr", nr as i64)
                .set_array("a", floats(r, nr * 1024, -0.5, 0.5))
                .set_array("c4", floats(r, 1024, -0.5, 0.5))
                .set_array("sum", zero_f32(nr * 1024));
        }
        "gemm_fp" => {
            let n = if full { 48 } else { 9 };
            env.set_int("n", n as i64)
                .set_float("alpha", 1.1)
                .set_float("beta", 0.9)
                .set_array("a", floats(r, n * n, -0.5, 0.5))
                .set_array("b", floats(r, n * n, -0.5, 0.5))
                .set_array("c", floats(r, n * n, -0.5, 0.5));
        }
        "gemver_fp" => {
            let n = if full { 120 } else { 11 };
            env.set_int("n", n as i64)
                .set_float("alpha", 1.1)
                .set_float("beta", 0.9)
                .set_array("a", floats(r, n * n, -0.5, 0.5))
                .set_array("u1", floats(r, n, -0.5, 0.5))
                .set_array("v1", floats(r, n, -0.5, 0.5))
                .set_array("u2", floats(r, n, -0.5, 0.5))
                .set_array("v2", floats(r, n, -0.5, 0.5))
                .set_array("w", zero_f32(n))
                .set_array("x", floats(r, n, -0.5, 0.5))
                .set_array("y", floats(r, n, -0.5, 0.5))
                .set_array("z", floats(r, n, -0.5, 0.5));
        }
        "bicg_fp" => {
            let (nn, m) = if full { (128, 128) } else { (11, 13) };
            env.set_int("nn", nn as i64)
                .set_int("m", m as i64)
                .set_array("a", floats(r, nn * m, -0.5, 0.5))
                .set_array("p", floats(r, m, -0.5, 0.5))
                .set_array("q", zero_f32(nn))
                .set_array("r", floats(r, nn, -0.5, 0.5))
                .set_array("ss", zero_f32(m));
        }
        "gramschmidt_fp" => {
            let n = if full { 32 } else { 8 };
            env.set_int("n", n as i64)
                .set_array("a", floats(r, n * n, 0.1, 1.0))
                .set_array("r", zero_f32(n * n))
                .set_array("q", zero_f32(n * n));
        }
        "lu_fp" => {
            let n = if full { 48 } else { 10 };
            env.set_int("n", n as i64)
                .set_array("a", floats(r, n * n, 0.5, 1.5));
        }
        "ludcmp_fp" => {
            let n = if full { 128 } else { 10 };
            env.set_int("n", n as i64)
                .set_array("a", floats(r, n * n, 0.5, 1.5))
                .set_array("b", floats(r, n, -0.5, 0.5))
                .set_array("y", zero_f32(n));
        }
        "adi_fp" => {
            let n = if full { 128 } else { 10 };
            env.set_int("n", n as i64)
                .set_array("x", floats(r, n * n, -0.5, 0.5))
                .set_array("a", floats(r, n * n, 0.0, 0.1))
                .set_array("b", floats(r, n * n, 1.0, 2.0));
        }
        "jacobi_fp" => {
            let n = if full { 128 } else { 10 };
            env.set_int("n", n as i64)
                .set_array("a", floats(r, n * n, -0.5, 0.5))
                .set_array("b", zero_f32(n * n));
        }
        "seidel_fp" => {
            let n = if full { 128 } else { 10 };
            env.set_int("n", n as i64)
                .set_array("a", floats(r, n * n, -0.5, 0.5));
        }
        other => panic!("no input generator for kernel {other}"),
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = env_for("saxpy_fp", Scale::Test);
        let b = env_for("saxpy_fp", Scale::Test);
        assert_eq!(a.array("x").unwrap(), b.array("x").unwrap());
    }

    #[test]
    fn different_kernels_get_different_data() {
        let a = env_for("dscal_fp", Scale::Full);
        let b = env_for("saxpy_fp", Scale::Full);
        assert_ne!(a.array("x").unwrap(), b.array("x").unwrap());
    }
}

//! Polybench 1.0 kernels as mini-C sources, pre-transformed the way the
//! paper prepared them (§IV-B): loop interchange and array layout
//! transposition to expose unit strides, scalar promotion of
//! accumulators. `lu`, `ludcmp`, and `seidel` are kept in their natural
//! form — the paper's vectorizer rejected them ("require loop skewing …
//! incompatible with the current auto-vectorizer"). With bound-aware
//! dependence solving and subtraction reductions, `lu` and `ludcmp` now
//! vectorize their inner loops; `seidel`'s in-place distance-1 recurrence
//! remains scalar (it genuinely needs skewing).
//!
//! All arrays are globals (Polybench style), which a native compiler may
//! align; dimension parameters stay runtime values so the row-alignment
//! (`stride_aligned`) versioning machinery is exercised.

/// Data-mining: correlation matrix (mean, stddev with `sqrt`, normalize
/// with division, correlation accumulation — outer-loop vectorization).
pub const CORRELATION: &str = "
kernel correlation_fp(long nn, long m, global float data[], global float mean[], global float stdev[], global float corr[]) {
  float s;
  float dv;
  for (long j = 0; j < m; j++) {
    s = 0.0;
    for (long i = 0; i < nn; i++) { s += data[m*i + j]; }
    mean[j] = s / (float)nn;
  }
  for (long j = 0; j < m; j++) {
    s = 0.0;
    for (long i = 0; i < nn; i++) {
      dv = data[m*i + j] - mean[j];
      s += dv * dv;
    }
    stdev[j] = sqrt(s / (float)nn) + 0.000001;
  }
  for (long i = 0; i < nn; i++) {
    for (long j = 0; j < m; j++) {
      data[m*i + j] = (data[m*i + j] - mean[j]) / stdev[j];
    }
  }
  for (long j1 = 0; j1 < m; j1++) {
    for (long j2 = 0; j2 < m; j2++) {
      s = 0.0;
      for (long i = 0; i < nn; i++) { s += data[m*i + j1] * data[m*i + j2]; }
      corr[m*j1 + j2] = s / (float)nn;
    }
  }
}";

/// Data-mining: covariance matrix.
pub const COVARIANCE: &str = "
kernel covariance_fp(long nn, long m, global float data[], global float mean[], global float cov[]) {
  float s;
  for (long j = 0; j < m; j++) {
    s = 0.0;
    for (long i = 0; i < nn; i++) { s += data[m*i + j]; }
    mean[j] = s / (float)nn;
  }
  for (long i = 0; i < nn; i++) {
    for (long j = 0; j < m; j++) {
      data[m*i + j] = data[m*i + j] - mean[j];
    }
  }
  for (long j1 = 0; j1 < m; j1++) {
    for (long j2 = 0; j2 < m; j2++) {
      s = 0.0;
      for (long i = 0; i < nn; i++) { s += data[m*i + j1] * data[m*i + j2]; }
      cov[m*j1 + j2] = s / ((float)nn - 1.0);
    }
  }
}";

/// Linear algebra: `tmp = A·B; d = tmp·C`.
pub const MM2: &str = "
kernel mm2_fp(long n, global float a[], global float b[], global float c[], global float d[], global float tmp[]) {
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < n; j++) { tmp[n*i + j] = 0.0; }
    for (long k = 0; k < n; k++) {
      for (long j = 0; j < n; j++) {
        tmp[n*i + j] = tmp[n*i + j] + a[n*i + k] * b[n*k + j];
      }
    }
  }
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < n; j++) { d[n*i + j] = 0.0; }
    for (long k = 0; k < n; k++) {
      for (long j = 0; j < n; j++) {
        d[n*i + j] = d[n*i + j] + tmp[n*i + k] * c[n*k + j];
      }
    }
  }
}";

/// Linear algebra: `e = A·B; f = C·D; g = e·f`.
pub const MM3: &str = "
kernel mm3_fp(long n, global float a[], global float b[], global float c[], global float d[], global float e[], global float f[], global float g[]) {
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < n; j++) { e[n*i + j] = 0.0; }
    for (long k = 0; k < n; k++) {
      for (long j = 0; j < n; j++) { e[n*i + j] = e[n*i + j] + a[n*i + k] * b[n*k + j]; }
    }
  }
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < n; j++) { f[n*i + j] = 0.0; }
    for (long k = 0; k < n; k++) {
      for (long j = 0; j < n; j++) { f[n*i + j] = f[n*i + j] + c[n*i + k] * d[n*k + j]; }
    }
  }
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < n; j++) { g[n*i + j] = 0.0; }
    for (long k = 0; k < n; k++) {
      for (long j = 0; j < n; j++) { g[n*i + j] = g[n*i + j] + e[n*i + k] * f[n*k + j]; }
    }
  }
}";

/// Linear algebra: `y = Aᵀ(Ax)`.
pub const ATAX: &str = "
kernel atax_fp(long nn, long m, global float a[], global float x[], global float y[], global float tmp[]) {
  float s;
  for (long j = 0; j < m; j++) { y[j] = 0.0; }
  for (long i = 0; i < nn; i++) {
    s = 0.0;
    for (long j = 0; j < m; j++) { s += a[m*i + j] * x[j]; }
    tmp[i] = s;
    for (long j = 0; j < m; j++) { y[j] = y[j] + a[m*i + j] * tmp[i]; }
  }
}";

/// Linear algebra: `y = (A + B)·x` with two simultaneous reductions.
pub const GESUMMV: &str = "
kernel gesummv_fp(long n, float alpha, float beta, global float a[], global float b[], global float x[], global float y[]) {
  float s;
  float t;
  for (long i = 0; i < n; i++) {
    s = 0.0;
    t = 0.0;
    for (long j = 0; j < n; j++) {
      s += a[n*i + j] * x[j];
      t += b[n*i + j] * x[j];
    }
    y[i] = alpha * s + beta * t;
  }
}";

/// Linear algebra: multi-resolution analysis kernel (constant 32³ dims,
/// outer-loop vectorized over the innermost output dimension).
pub const DOITGEN: &str = "
kernel doitgen_fp(long nr, global float a[], global float c4[], global float sum[]) {
  float s;
  for (long r = 0; r < nr; r++) {
    for (long q = 0; q < 32; q++) {
      for (long p = 0; p < 32; p++) {
        s = 0.0;
        for (long w = 0; w < 32; w++) {
          s += a[1024*r + 32*q + w] * c4[32*w + p];
        }
        sum[1024*r + 32*q + p] = s;
      }
      for (long p = 0; p < 32; p++) {
        a[1024*r + 32*q + p] = sum[1024*r + 32*q + p];
      }
    }
  }
}";

/// Linear algebra: `C = β·C + α·A·B`.
pub const GEMM: &str = "
kernel gemm_fp(long n, float alpha, float beta, global float a[], global float b[], global float c[]) {
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < n; j++) { c[n*i + j] = c[n*i + j] * beta; }
    for (long k = 0; k < n; k++) {
      for (long j = 0; j < n; j++) {
        c[n*i + j] = c[n*i + j] + alpha * a[n*i + k] * b[n*k + j];
      }
    }
  }
}";

/// Linear algebra: rank-2 update, transposed mat-vec, vector add,
/// mat-vec (four nests).
pub const GEMVER: &str = "
kernel gemver_fp(long n, float alpha, float beta, global float a[], global float u1[], global float v1[], global float u2[], global float v2[], global float w[], global float x[], global float y[], global float z[]) {
  float s;
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < n; j++) {
      a[n*i + j] = a[n*i + j] + u1[i] * v1[j] + u2[i] * v2[j];
    }
  }
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < n; j++) {
      x[j] = x[j] + beta * a[n*i + j] * y[i];
    }
  }
  for (long i = 0; i < n; i++) { x[i] = x[i] + z[i]; }
  for (long i = 0; i < n; i++) {
    s = 0.0;
    for (long j = 0; j < n; j++) { s += a[n*i + j] * x[j]; }
    w[i] = alpha * s;
  }
}";

/// Linear algebra: BiCG sub-kernel (simultaneous row update and
/// reduction).
pub const BICG: &str = "
kernel bicg_fp(long nn, long m, global float a[], global float p[], global float q[], global float r[], global float ss[]) {
  float acc;
  for (long j = 0; j < m; j++) { ss[j] = 0.0; }
  for (long i = 0; i < nn; i++) {
    acc = 0.0;
    for (long j = 0; j < m; j++) {
      ss[j] = ss[j] + r[i] * a[m*i + j];
      acc += a[m*i + j] * p[j];
    }
    q[i] = acc;
  }
}";

/// Linear solver: Gram-Schmidt orthonormalization, column-major layout
/// (the paper's layout transposition) so the i-dimension is contiguous.
pub const GRAMSCHMIDT: &str = "
kernel gramschmidt_fp(long n, global float a[], global float r[], global float q[]) {
  float s;
  float rkk;
  for (long k = 0; k < n; k++) {
    s = 0.0;
    for (long i = 0; i < n; i++) { s += a[n*k + i] * a[n*k + i]; }
    rkk = sqrt(s) + 0.000001;
    for (long i = 0; i < n; i++) { q[n*k + i] = a[n*k + i] / rkk; }
    for (long j = k + 1; j < n; j++) {
      s = 0.0;
      for (long i = 0; i < n; i++) { s += q[n*k + i] * a[n*j + i]; }
      r[n*k + j] = s;
      for (long i = 0; i < n; i++) { a[n*j + i] = a[n*j + i] - q[n*k + i] * s; }
    }
  }
}";

/// Linear solver: LU decomposition. The inner `j` update loop vectorizes
/// once the planner solves the `a[n*i+k]` conflict against the `j = k+1`
/// lower bound and proves `n*(i-k)` row combinations carry no small
/// distance; the outer elimination order stays serial.
pub const LU: &str = "
kernel lu_fp(long n, global float a[]) {
  for (long k = 0; k < n; k++) {
    for (long i = k + 1; i < n; i++) {
      a[n*i + k] = a[n*i + k] / (a[n*k + k] + 1.5);
      for (long j = k + 1; j < n; j++) {
        a[n*i + j] = a[n*i + j] - a[n*i + k] * a[n*k + j];
      }
    }
  }
}";

/// Linear solver: LU with forward substitution. The subtraction-shaped
/// accumulation `s = s - a*y` is recognized as a reduction (per-lane
/// differences, plus-fold epilogue), so the inner loop vectorizes under
/// its triangular bound.
pub const LUDCMP: &str = "
kernel ludcmp_fp(long n, global float a[], global float b[], global float y[]) {
  float s;
  for (long i = 0; i < n; i++) {
    s = b[i];
    for (long j = 0; j < i; j++) { s = s - a[n*i + j] * y[j]; }
    y[i] = s / (a[n*i + i] + 1.5);
  }
}";

/// Stencil: alternating-direction implicit sweeps. The recurrence runs
/// across rows (distance ~n), so the contiguous row dimension vectorizes
/// — the interchange the paper applied to expose vectorization.
pub const ADI: &str = "
kernel adi_fp(long n, global float x[], global float a[], global float b[]) {
  for (long j = 1; j < n; j++) {
    for (long i = 0; i < n; i++) {
      x[n*j + i] = x[n*j + i] - x[n*j + i - n] * a[n*j + i] / b[n*j + i - n];
    }
  }
  for (long j = 1; j < n; j++) {
    for (long i = 0; i < n; i++) {
      b[n*j + i] = b[n*j + i] - a[n*j + i] * a[n*j + i] / b[n*j + i - n];
    }
  }
}";

/// Stencil: Jacobi 5-point, out of place (realigned stencil loads).
pub const JACOBI: &str = "
kernel jacobi_fp(long n, global float a[], global float b[]) {
  for (long i = 1; i < n - 1; i++) {
    for (long j = 1; j < n - 1; j++) {
      b[n*i + j] = 0.2 * (a[n*i + j] + a[n*i + j - 1] + a[n*i + j + 1] + a[n*i + j + n] + a[n*i + j - n]);
    }
  }
  for (long i = 1; i < n - 1; i++) {
    for (long j = 1; j < n - 1; j++) {
      a[n*i + j] = b[n*i + j];
    }
  }
}";

/// Stencil: Gauss-Seidel, in place — carried dependence of distance 1;
/// the body is a single dependence SCC, so even Allen–Kennedy
/// distribution leaves it scalar (paper: requires skewing).
pub const SEIDEL: &str = "
kernel seidel_fp(long n, global float a[]) {
  for (long i = 1; i < n - 1; i++) {
    for (long j = 1; j < n - 1; j++) {
      a[n*i + j] = 0.2 * (a[n*i + j - 1] + a[n*i + j] + a[n*i + j + 1] + a[n*i + j - n] + a[n*i + j + n]);
    }
  }
}";

//! # vapor-kernels — the benchmark suite
//!
//! Every kernel the paper evaluates (Table 2 + Polybench 1.0), written in
//! the mini-C kernel language, with deterministic input generators and a
//! registry recording figure membership and the vectorization features
//! each kernel must exercise.

pub mod data;
pub mod media;
pub mod polybench;
pub mod suite;

pub use suite::{find, suite, KernelSpec, Scale, SuiteKind};

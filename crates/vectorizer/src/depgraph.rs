//! Statement-level dependence graphs and loop distribution support
//! (Allen–Kennedy, §III-B).
//!
//! The whole-loop dependence check in `transform` rejects a loop the
//! moment any finite carried dependence appears. This module provides the
//! machinery to do better: classify each store/access pair with
//! [`classify_dep`], build a statement dependence graph over a flat loop
//! body ([`DepGraph`]), condense it into strongly connected components
//! with Tarjan's algorithm, and return the SCCs in topological order so
//! the transform can distribute the loop — acyclic components become
//! candidate vector loops, cyclic components (true recurrences) become
//! scalar residual loops emitted in dependence order.
//!
//! It also owns the typed rejection vocabulary ([`RejectCategory`],
//! [`Rejection`]) that replaces the old stringly `Err(String)` planner
//! reasons, so `report vmperf` can say *why* a kernel (or a single SCC)
//! stayed scalar.

use crate::affine::{Affine, Coeff};
use vapor_ir::VarId;

/// Offsets below this bound are treated as "practically finite"; at or
/// above it a symbolic-stride difference is assumed independent (matches
/// the transform's historical `SMALL_DIFF` heuristic).
pub const SMALL_DIFF: i64 = 16;

/// Why a loop (or one SCC of a distributed loop) was not vectorized.
///
/// The set is closed on purpose: `label()` matches exhaustively, so a new
/// category added without a label is a compile error — unknown reason
/// categories fail loudly instead of silently printing nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCategory {
    /// A subscript (or loop bound) is not affine in the loop variables.
    NonAffine,
    /// An access has a stride the vectorizer cannot lay out.
    UnsupportedStride,
    /// A memory dependence the planner cannot disprove or distribute.
    Dependence,
    /// A true recurrence: a dependence cycle through the loop body.
    Recurrence,
    /// Loop shape outside the model (non-unit step, iv-dependent inner
    /// bounds, ...).
    Bounds,
    /// Element types the vector lane model cannot mix.
    UnsupportedTypes,
    /// Native mode: the fixed target lacks a required operation.
    TargetUnsupported,
    /// Nothing to vectorize (no memory accesses in the body).
    NoVectorWork,
    /// Analysis accepted the loop but emission could not lay it out.
    EmitFailure,
}

impl RejectCategory {
    /// Short stable label used by reports and golden plan snapshots.
    pub fn label(self) -> &'static str {
        match self {
            RejectCategory::NonAffine => "non-affine",
            RejectCategory::UnsupportedStride => "unsupported-stride",
            RejectCategory::Dependence => "dependence",
            RejectCategory::Recurrence => "recurrence",
            RejectCategory::Bounds => "loop-bounds",
            RejectCategory::UnsupportedTypes => "unsupported-types",
            RejectCategory::TargetUnsupported => "target-unsupported",
            RejectCategory::NoVectorWork => "no-vector-work",
            RejectCategory::EmitFailure => "emit-failure",
        }
    }
}

/// A typed planner rejection: a closed category plus a human detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Closed reason category (drives report tables and goldens).
    pub category: RejectCategory,
    /// Free-form detail for humans ("loop-carried dependence of distance 1
    /// on a[]").
    pub detail: String,
}

impl Rejection {
    /// Build a rejection.
    pub fn new(category: RejectCategory, detail: impl Into<String>) -> Rejection {
        Rejection {
            category,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.category.label(), self.detail)
    }
}

/// Classification of one store/access pair on the same array with respect
/// to the vectorized loop variable `iv`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepClass {
    /// Provably never the same address across the loop's iteration space.
    Independent,
    /// Same address only within a single iteration (distance 0) — or a
    /// row-combination case whose distance is 0 or a full row; either way
    /// statement order within an iteration must be preserved, but the
    /// loop itself may vectorize.
    SameIteration,
    /// Carried across iterations with this constant iteration distance
    /// (positive: the store's iteration precedes the conflicting access).
    Carried(i64),
    /// Cannot be analyzed; the detail says why.
    Unknown(String),
}

/// Classify the dependence between a store subscript and another access
/// subscript on the same array, for a loop over `iv` (step 1) with
/// optional affine bounds `lo`/`hi` (iteration space `[lo, hi)`).
///
/// Extends the historical whole-loop check with two bound-aware
/// refinements:
/// 1. If one access is `iv`-invariant and the difference is linear in
///    `iv` with coefficient ±1, the single conflicting iteration `iv*`
///    can be solved for; if `iv* < lo` or `iv* >= hi` is provable, the
///    accesses never collide inside the loop (lu: `a[n*i+j]` vs
///    `a[n*i+k]` with `j` running from `k+1`).
/// 2. If the difference is `iv`-free and is a pure same-parameter
///    combination of outer loop variables (e.g. `n*(i-k)`), the distance
///    is either 0 or at least a full row — never a small in-loop carry —
///    so it degrades to a same-iteration ordering constraint.
pub fn classify_dep(
    iv: VarId,
    store: &Affine,
    other: &Affine,
    lo: Option<&Affine>,
    hi: Option<&Affine>,
) -> DepClass {
    let Some(diff) = store.minus(other) else {
        return DepClass::Unknown("unanalyzable dependence".into());
    };
    match diff.as_const() {
        Some(0) => DepClass::SameIteration,
        Some(d) => match (store.coeff_of(iv), other.coeff_of(iv)) {
            (a, b) if a != b => {
                DepClass::Unknown("accesses with mismatched strides collide".into())
            }
            (Coeff::Const(m), _) => {
                if m == 0 {
                    DepClass::Unknown("iv-invariant accesses conflict".into())
                } else if d % m == 0 {
                    DepClass::Carried(d / m)
                } else {
                    DepClass::Independent
                }
            }
            (Coeff::Sym(..), _) => {
                // Row stride n vs constant offset d: independent as long
                // as |d| stays below any practical row length.
                if d.abs() < SMALL_DIFF {
                    DepClass::Independent
                } else {
                    DepClass::Unknown(format!(
                        "offset {d} may alias across symbolic row stride"
                    ))
                }
            }
        },
        None => {
            // Historical heuristic: difference is a single parameter with
            // coefficient ±1 plus a small constant — a full row apart.
            let row_distance = diff.loops.is_empty()
                && diff.params.len() == 1
                && diff.params.values().all(|c| c.abs() == 1)
                && diff.konst.abs() < SMALL_DIFF;
            if row_distance {
                return DepClass::Independent;
            }
            // Refinement 2: iv-free same-parameter row combination.
            if !diff.uses_loop(iv)
                && diff.params.is_empty()
                && diff.konst == 0
                && !diff.loops.is_empty()
            {
                let mut param = None;
                let pure_rows = diff.loops.values().all(|c| match c {
                    Coeff::Sym(p, _) => *param.get_or_insert(*p) == *p,
                    Coeff::Const(_) => false,
                });
                let same_stride = store.coeff_of(iv) == other.coeff_of(iv)
                    && !matches!(store.coeff_of(iv), Coeff::Const(0));
                if pure_rows && same_stride {
                    // n*(i-k): either the same row (distance 0) or whole
                    // rows apart — never a small carried distance.
                    return DepClass::SameIteration;
                }
            }
            // Refinement 1: one access iv-invariant, difference linear in
            // iv with coefficient ±1 — solve for the one conflicting
            // iteration and check it against the loop bounds.
            if let Coeff::Const(c) = diff.coeff_of(iv) {
                let one_invariant = matches!(store.coeff_of(iv), Coeff::Const(0))
                    || matches!(other.coeff_of(iv), Coeff::Const(0));
                if (c == 1 || c == -1) && one_invariant {
                    let mut rest = diff.clone();
                    rest.loops.remove(&iv);
                    // c*iv + rest = 0  =>  iv* = -rest/c = rest * (-c).
                    if let Some(star) = rest.scale_const(-c) {
                        if let Some(lo) = lo {
                            if let Some(gap) = lo.minus(&star).and_then(|g| g.as_const()) {
                                if gap > 0 {
                                    return DepClass::Independent; // iv* < lo
                                }
                            }
                        }
                        if let Some(hi) = hi {
                            if let Some(gap) = star.minus(hi).and_then(|g| g.as_const()) {
                                if gap >= 0 {
                                    return DepClass::Independent; // iv* >= hi
                                }
                            }
                        }
                    }
                    return DepClass::Unknown(
                        "iv-invariant access conflicts inside the iteration space".into(),
                    );
                }
            }
            DepClass::Unknown("unanalyzable dependence".into())
        }
    }
}

/// One strongly connected component of a statement dependence graph, in
/// topological (dependence) order among its siblings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scc {
    /// Statement indices into the loop body, ascending.
    pub stmts: Vec<usize>,
    /// Whether the component contains a cycle (a true recurrence). A
    /// single statement with a self-edge counts.
    pub cyclic: bool,
}

/// A statement-level dependence graph over a flat loop body.
///
/// Nodes are top-level statement indices; a directed edge `p -> q` means
/// statement `p` must execute (as a whole distributed loop) before `q`.
#[derive(Debug, Default)]
pub struct DepGraph {
    succs: Vec<Vec<usize>>,
    self_edges: Vec<bool>,
}

impl DepGraph {
    /// An edge-free graph over `n` statements.
    pub fn new(n: usize) -> DepGraph {
        DepGraph {
            succs: vec![Vec::new(); n],
            self_edges: vec![false; n],
        }
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no statements.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Add a dependence edge `from -> to` (self-edges mark recurrences).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        if from == to {
            self.self_edges[from] = true;
            return;
        }
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
        }
    }

    /// Add edges in both directions (statements that must stay fused).
    pub fn fuse(&mut self, a: usize, b: usize) {
        self.add_edge(a, b);
        self.add_edge(b, a);
    }

    /// Condense into SCCs via Tarjan's algorithm and return them in
    /// topological order (every dependence points from an earlier SCC to
    /// a later one). Deterministic for a given graph.
    pub fn sccs(&self) -> Vec<Scc> {
        let n = self.len();
        let mut state = Tarjan {
            graph: self,
            index: vec![usize::MAX; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            out: Vec::new(),
        };
        for v in 0..n {
            if state.index[v] == usize::MAX {
                state.strongconnect(v);
            }
        }
        // Tarjan emits SCCs in reverse topological order.
        let mut sccs = state.out;
        sccs.reverse();
        for scc in &mut sccs {
            scc.stmts.sort_unstable();
            if !scc.cyclic {
                debug_assert_eq!(scc.stmts.len(), 1);
                scc.cyclic = self.self_edges[scc.stmts[0]];
            }
        }
        sccs
    }
}

struct Tarjan<'g> {
    graph: &'g DepGraph,
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: usize,
    out: Vec<Scc>,
}

impl Tarjan<'_> {
    fn strongconnect(&mut self, v: usize) {
        // Iterative Tarjan (explicit work stack) to keep recursion depth
        // independent of body size.
        let mut work: Vec<(usize, usize)> = vec![(v, 0)];
        while let Some(&mut (node, ref mut succ_idx)) = work.last_mut() {
            if *succ_idx == 0 {
                self.index[node] = self.next_index;
                self.lowlink[node] = self.next_index;
                self.next_index += 1;
                self.stack.push(node);
                self.on_stack[node] = true;
            }
            if let Some(&w) = self.graph.succs[node].get(*succ_idx) {
                *succ_idx += 1;
                if self.index[w] == usize::MAX {
                    work.push((w, 0));
                } else if self.on_stack[w] {
                    self.lowlink[node] = self.lowlink[node].min(self.index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    self.lowlink[parent] = self.lowlink[parent].min(self.lowlink[node]);
                }
                if self.lowlink[node] == self.index[node] {
                    let mut stmts = Vec::new();
                    while let Some(w) = self.stack.pop() {
                        self.on_stack[w] = false;
                        stmts.push(w);
                        if w == node {
                            break;
                        }
                    }
                    let cyclic = stmts.len() > 1;
                    self.out.push(Scc { stmts, cyclic });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::analyze;
    use vapor_ir::{BinOp, Expr, KernelBuilder, ScalarTy};

    #[test]
    fn chain_distributes_in_topo_order() {
        // 0 -> 1 -> 2, no cycles: three singleton SCCs in order.
        let mut g = DepGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 3);
        assert_eq!(sccs[0].stmts, vec![0]);
        assert_eq!(sccs[1].stmts, vec![1]);
        assert_eq!(sccs[2].stmts, vec![2]);
        assert!(sccs.iter().all(|s| !s.cyclic));
    }

    #[test]
    fn cycle_collapses_into_one_cyclic_scc() {
        // 0 -> 1 -> 0 cycle feeding 2.
        let mut g = DepGraph::new(3);
        g.fuse(0, 1);
        g.add_edge(1, 2);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0].stmts, vec![0, 1]);
        assert!(sccs[0].cyclic);
        assert_eq!(sccs[1].stmts, vec![2]);
        assert!(!sccs[1].cyclic);
    }

    #[test]
    fn self_edge_marks_recurrence() {
        let mut g = DepGraph::new(2);
        g.add_edge(1, 1);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 2);
        let rec = sccs.iter().find(|s| s.stmts == vec![1]).unwrap();
        assert!(rec.cyclic);
        let ind = sccs.iter().find(|s| s.stmts == vec![0]).unwrap();
        assert!(!ind.cyclic);
    }

    #[test]
    fn reverse_dependence_orders_consumer_first() {
        // 1 -> 0 (statement 1's loop must run before statement 0's).
        let mut g = DepGraph::new(2);
        g.add_edge(1, 0);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0].stmts, vec![1]);
        assert_eq!(sccs[1].stmts, vec![0]);
    }

    fn lu_like() -> (vapor_ir::Kernel, VarId, VarId, VarId, VarId) {
        let mut b = KernelBuilder::new("t");
        let n = b.scalar_param("n", ScalarTy::I64);
        let k = b.fresh_loop_var("k");
        let i = b.fresh_loop_var("i");
        let j = b.fresh_loop_var("j");
        (b.finish(), n, k, i, j)
    }

    fn aff(k: &vapor_ir::Kernel, e: &Expr) -> Affine {
        analyze(k, e).unwrap()
    }

    fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    #[test]
    fn bound_solver_proves_lu_pivot_column_independent() {
        // store a[n*i+j] vs load a[n*i+k], loop over j in [k+1, n):
        // collision needs j == k, but j >= k+1.
        let (kern, n, k, i, j) = lu_like();
        let store = aff(&kern, &add(mul(Expr::Var(n), Expr::Var(i)), Expr::Var(j)));
        let load = aff(&kern, &add(mul(Expr::Var(n), Expr::Var(i)), Expr::Var(k)));
        let lo = aff(&kern, &add(Expr::Var(k), Expr::Int(1)));
        let hi = aff(&kern, &Expr::Var(n));
        assert_eq!(
            classify_dep(j, &store, &load, Some(&lo), Some(&hi)),
            DepClass::Independent
        );
        // Without the lower bound the same pair is unprovable.
        assert!(matches!(
            classify_dep(j, &store, &load, None, Some(&hi)),
            DepClass::Unknown(_)
        ));
    }

    #[test]
    fn row_combination_degrades_to_same_iteration() {
        // store a[n*i+j] vs load a[n*k+j]: distance n*(i-k) — zero or
        // whole rows, never a small carry.
        let (kern, n, k, i, j) = lu_like();
        let store = aff(&kern, &add(mul(Expr::Var(n), Expr::Var(i)), Expr::Var(j)));
        let load = aff(&kern, &add(mul(Expr::Var(n), Expr::Var(k)), Expr::Var(j)));
        assert_eq!(
            classify_dep(j, &store, &load, None, None),
            DepClass::SameIteration
        );
    }

    #[test]
    fn constant_distance_still_detected() {
        // seidel-style a[i] vs a[i-1]: carried distance 1.
        let (kern, _n, _k, i, _j) = lu_like();
        let store = aff(&kern, &Expr::Var(i));
        let load = aff(&kern, &Expr::bin(BinOp::Sub, Expr::Var(i), Expr::Int(1)));
        assert_eq!(classify_dep(i, &store, &load, None, None), DepClass::Carried(1));
        assert_eq!(classify_dep(i, &load, &store, None, None), DepClass::Carried(-1));
        assert_eq!(
            classify_dep(i, &store, &store, None, None),
            DepClass::SameIteration
        );
    }
}

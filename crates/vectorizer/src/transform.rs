//! The offline auto-vectorizer: IR loop nests → vectorized bytecode.
//!
//! Implements the first compilation stage of §III-B: dependence checking,
//! reduction/idiom recognition (dot product, widening multiply, the SAD
//! abs-diff pattern), strided accesses via `extract`/`interleave`,
//! inner- and outer-loop vectorization, alignment analysis producing
//! `mis`/`mod` hints, and version-guard emission (`no_alias`,
//! `base_aligned`, `stride_aligned`, type/op support) with scalar
//! fall-back arms and scalar tail loops driven by `loop_bound`.

use std::collections::HashMap;

use vapor_bytecode::{
    Addr, ArraySym, BcFunction, BcStmt, BcTy, GuardCond, LoopKind, Op, OpClass, Operand, Reg,
    ShiftAmt, Step,
};
use vapor_ir::{infer_expr, ArrayId, ArrayKind, BinOp, Expr, Kernel, ScalarTy, Stmt, UnOp, VarId};
use vapor_targets::TargetDesc;

use crate::affine::{analyze, Affine, Coeff};
use crate::depgraph::{classify_dep, DepClass, DepGraph, RejectCategory, Rejection, Scc};
use crate::scalar_emit::{new_function, split_const_offset, ScalarEmitter};

/// The modulo base for misalignment hints: "a large modulo (currently set
/// to 32 bytes, the largest SIMD width available today)" (§III-B(c)).
pub const HINT_MOD: u32 = 32;

/// Constant element offsets below this bound are assumed smaller than any
/// runtime array dimension when deciding symbolic-stride independence
/// (stencil ±k offsets across rows). The experiment dimensions are ≥ 32.
/// Lives in `depgraph` with the dependence classifier; re-exported here
/// for compatibility.
pub use crate::depgraph::SMALL_DIFF;

/// Vectorization features exercised by a loop (Table 2's annotations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feature {
    /// Scalar reduction accumulated in a vector.
    Reduction,
    /// `dot_product` idiom.
    DotProduct,
    /// Widening multiplication.
    WidenMult,
    /// SAD abs-difference pattern.
    AbsDiff,
    /// Strided loads (`extract`) or stores (`interleave`).
    Strided,
    /// Realignment of misaligned loads.
    Realign,
    /// Straight-line (SLP) group merged before vectorization.
    Slp,
    /// Lane-wise int↔float conversions.
    Cvt,
    /// Outer-loop vectorization.
    OuterLoop,
    /// Version guards emitted.
    Versioned,
}

/// Per-loop vectorization outcome.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Human-readable loop identification.
    pub description: String,
    /// Whether the loop (or at least one distributed sub-loop) was
    /// vectorized.
    pub vectorized: bool,
    /// Features used.
    pub features: Vec<Feature>,
    /// Rejection reason when not vectorized.
    pub reason: Option<Rejection>,
    /// Per-SCC verdicts when Allen–Kennedy distribution analyzed the
    /// loop body (empty for undistributed loops).
    pub parts: Vec<PartReport>,
}

/// Outcome of one SCC of a distributed loop.
#[derive(Debug, Clone)]
pub struct PartReport {
    /// Top-level statement indices (into the original loop body) of the
    /// statements in this component, ascending.
    pub stmts: Vec<usize>,
    /// Whether this sub-loop was vectorized.
    pub vectorized: bool,
    /// Why it stayed scalar.
    pub reason: Option<Rejection>,
}

/// Options of the offline stage.
#[derive(Debug, Clone, Default)]
pub struct VectorizeOptions {
    /// `Some(target)`: monolithic *native* mode — the vectorizer knows
    /// the machine, forces global-array alignment, assumes `restrict`
    /// parameters, and resolves support guards statically.
    /// `None`: portable *split* mode (the paper's contribution).
    pub native: Option<TargetDesc>,
    /// Disable the alignment work of §III-B(c) — no hints, no alignment
    /// versioning (the §V-A(b) ablation). Defaults to enabled.
    pub no_alignment_opts: bool,
    /// Disable the *optimized realignment* of §III-A (cross-iteration
    /// reuse of the previous aligned load, Figure 2d/3a): every realigned
    /// load then performs both aligned loads itself. Ablates the design
    /// choice that "having the offline compiler generate already
    /// optimized bytecode is better".
    pub no_realign_reuse: bool,
    /// Disable Allen–Kennedy loop distribution: loops whose bodies mix
    /// vectorizable statements with true recurrences are rejected whole
    /// (the historical behavior) instead of being split per SCC.
    pub no_distribution: bool,
}

/// Result of vectorizing a kernel.
#[derive(Debug, Clone)]
pub struct VectorizeResult {
    /// The (possibly) vectorized bytecode.
    pub func: BcFunction,
    /// Per-loop reports.
    pub reports: Vec<LoopReport>,
}

/// A vectorized value: one full vector of the loop's smallest element
/// type, or two half-width vectors of a 2×-wider type.
#[derive(Debug, Clone, Copy)]
enum VecVal {
    Full(Reg),
    Halves(Reg, Reg),
}

impl VecVal {
    fn full(self) -> Result<Reg, String> {
        match self {
            VecVal::Full(r) => Ok(r),
            VecVal::Halves(..) => Err("expected full-width vector value".into()),
        }
    }
}

/// Information about one memory access in the candidate loop region.
#[derive(Debug, Clone)]
struct AccessInfo {
    array: ArrayId,
    affine: Affine,
    is_store: bool,
}

/// The plan for one vectorizable loop.
#[derive(Debug)]
struct LoopPlan {
    vf_ty: ScalarTy,
    features: Vec<Feature>,
    /// Element types used in vector code (for `TypeSupported` guards).
    elem_tys: Vec<ScalarTy>,
    /// Special op classes used (for `OpsSupported` guards).
    op_classes: Vec<OpClass>,
    /// Arrays accessed by vector code.
    arrays: Vec<ArrayId>,
    /// Arrays written by vector code.
    stored_arrays: Vec<ArrayId>,
    /// Symbolic strides needing `stride_aligned` guards: (array, param).
    sym_strides: Vec<(ArrayId, VarId)>,
    /// Whether this is outer-loop vectorization (serial loops inside).
    #[allow(dead_code)]
    outer: bool,
}

/// Result of an Allen–Kennedy distribution attempt on a rejected loop.
enum DistOutcome {
    /// Distributed sub-loops were emitted into `out`; the flag says
    /// whether at least one of them vectorized.
    Emitted(bool),
    /// Nothing vectorizable: no emission change (the caller keeps the
    /// speculative scalar body), but the report carries the SCC verdicts.
    ReportedOnly,
    /// Distribution does not apply; report the whole-loop reason.
    NotApplicable,
}

struct Vx<'k> {
    kernel: &'k Kernel,
    opts: &'k VectorizeOptions,
    em: ScalarEmitter<'k>,
    next_group: u32,
    reports: Vec<LoopReport>,
    /// Whether the SLP pre-pass rewrote this kernel: SLP-origin loops
    /// cannot be peeled for alignment, so a native compiler emits the
    /// misaligned version only (the paper's mix-streams situation).
    slp_done: bool,
}

/// Vectorize a kernel per the options.
pub fn vectorize(kernel: &Kernel, opts: &VectorizeOptions) -> VectorizeResult {
    let slp = crate::slp::apply(kernel);
    let (kernel, slp_applied) = match &slp {
        Some(k2) => (k2, true),
        None => (kernel, false),
    };
    let mut f = new_function(kernel);
    let mut vx = Vx {
        kernel,
        opts,
        em: ScalarEmitter::new(kernel),
        next_group: 1,
        reports: Vec::new(),
        slp_done: slp_applied,
    };
    let mut body = Vec::new();
    for s in &kernel.body {
        vx.vx_stmt(&mut f, &mut body, s);
    }
    f.body = body;
    if slp_applied {
        for r in vx.reports.iter_mut().filter(|r| r.vectorized) {
            r.features.push(Feature::Slp);
        }
    }
    VectorizeResult {
        func: f,
        reports: vx.reports,
    }
}

impl<'k> Vx<'k> {
    fn native(&self) -> Option<&TargetDesc> {
        self.opts.native.as_ref()
    }

    fn vx_stmt(&mut self, f: &mut BcFunction, out: &mut Vec<BcStmt>, s: &Stmt) -> bool {
        match s {
            Stmt::For { .. } => self.vx_for(f, out, s),
            other => {
                self.em.emit_stmt(f, out, other);
                false
            }
        }
    }

    /// Emit a `for` statement; returns whether anything beneath (or the
    /// loop itself) was vectorized.
    fn vx_for(&mut self, f: &mut BcFunction, out: &mut Vec<BcStmt>, s: &Stmt) -> bool {
        let Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } = s
        else {
            unreachable!()
        };
        // Innermost-first: give nested loops their chance.
        let mut inner_out = Vec::new();
        let before_regs = f.regs.len();
        let report_mark = self.reports.len();
        let mut any_inner = false;
        for st in body {
            any_inner |= self.vx_stmt(f, &mut inner_out, st);
        }
        if !any_inner {
            match self.analyze_loop(*var, *step, lo, hi, body) {
                Ok(plan) => {
                    // Discard the speculative scalar emission of the body.
                    f.regs.truncate(before_regs.max(f.params.len()));
                    self.reports.truncate(report_mark);
                    // Re-create registers dropped by truncation.
                    self.em.vmap.retain(|_, r| (r.0 as usize) < f.regs.len());
                    let desc = format!("loop over {}", self.kernel.var(*var).name);
                    let mut features = plan.features.clone();
                    let mut vec_out = Vec::new();
                    match self.emit_vectorized(
                        f,
                        &mut vec_out,
                        *var,
                        lo,
                        hi,
                        body,
                        plan,
                        &mut features,
                    ) {
                        Ok(()) => {
                            out.extend(vec_out);
                            self.reports.push(LoopReport {
                                description: desc,
                                vectorized: true,
                                features,
                                reason: None,
                                parts: Vec::new(),
                            });
                            return true;
                        }
                        Err(reason) => {
                            // Roll back to plain scalar emission.
                            self.reports.push(LoopReport {
                                description: desc,
                                vectorized: false,
                                features: Vec::new(),
                                reason: Some(Rejection::new(
                                    RejectCategory::EmitFailure,
                                    reason,
                                )),
                                parts: Vec::new(),
                            });
                            self.emit_plain_loop(f, out, *var, lo, hi, *step, body);
                            return false;
                        }
                    }
                }
                Err(reason) => {
                    // Allen–Kennedy: before giving up on the whole loop,
                    // try to distribute it per dependence SCC.
                    match self.try_distribute(f, out, *var, lo, hi, *step, body, before_regs, report_mark)
                    {
                        DistOutcome::Emitted(vectorized) => return vectorized,
                        DistOutcome::ReportedOnly => {
                            // SCC structure recorded; the speculative
                            // scalar emission below stays byte-identical.
                        }
                        DistOutcome::NotApplicable => {
                            self.reports.push(LoopReport {
                                description: format!(
                                    "loop over {}",
                                    self.kernel.var(*var).name
                                ),
                                vectorized: false,
                                features: Vec::new(),
                                reason: Some(reason),
                                parts: Vec::new(),
                            });
                        }
                    }
                }
            }
        }
        // Plain loop shell around the (possibly inner-vectorized) body.
        let lo_v = self.em.emit_expr(f, out, lo, ScalarTy::I64);
        let hi_v = self.em.emit_expr(f, out, hi, ScalarTy::I64);
        let ivar = self.em.var_reg(f, *var);
        out.push(BcStmt::Loop {
            var: ivar,
            lo: lo_v,
            limit: hi_v,
            step: Step::Const(*step),
            kind: LoopKind::Plain,
            group: 0,
            body: inner_out,
        });
        any_inner
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_plain_loop(
        &mut self,
        f: &mut BcFunction,
        out: &mut Vec<BcStmt>,
        var: VarId,
        lo: &Expr,
        hi: &Expr,
        step: i64,
        body: &[Stmt],
    ) {
        let lo_v = self.em.emit_expr(f, out, lo, ScalarTy::I64);
        let hi_v = self.em.emit_expr(f, out, hi, ScalarTy::I64);
        let ivar = self.em.var_reg(f, var);
        let mut inner = Vec::new();
        for st in body {
            self.em.emit_stmt(f, &mut inner, st);
        }
        out.push(BcStmt::Loop {
            var: ivar,
            lo: lo_v,
            limit: hi_v,
            step: Step::Const(step),
            kind: LoopKind::Plain,
            group: 0,
            body: inner,
        });
    }

    // ------------------------------------------------------------------
    // Allen–Kennedy loop distribution
    // ------------------------------------------------------------------

    /// Build the statement dependence graph for a *flat* loop body:
    /// memory edges from [`classify_dep`] over same-array store/access
    /// pairs, plus scalar def-use edges (statements sharing a local must
    /// stay fused — we do not perform scalar expansion). Returns `None`
    /// when the body is not distributable (nested loops, non-affine
    /// subscripts).
    fn statement_graph(
        &self,
        iv: VarId,
        body: &[Stmt],
        lo_aff: Option<&Affine>,
        hi_aff: Option<&Affine>,
    ) -> Option<DepGraph> {
        if body.iter().any(|s| matches!(s, Stmt::For { .. })) {
            return None;
        }
        struct Acc {
            stmt: usize,
            array: ArrayId,
            affine: Affine,
            is_store: bool,
        }
        let mut accs: Vec<Acc> = Vec::new();
        for (si, s) in body.iter().enumerate() {
            let mut note = |array: ArrayId, idx: &Expr, is_store: bool| -> Option<()> {
                accs.push(Acc {
                    stmt: si,
                    array,
                    affine: analyze(self.kernel, idx)?,
                    is_store,
                });
                Some(())
            };
            match s {
                Stmt::Store {
                    array,
                    index,
                    value,
                } => {
                    note(*array, index, true)?;
                    for (a, idx) in value.loads() {
                        note(a, idx, false)?;
                    }
                }
                Stmt::Assign { value, .. } => {
                    for (a, idx) in value.loads() {
                        note(a, idx, false)?;
                    }
                }
                Stmt::For { .. } => unreachable!("checked above"),
            }
        }
        let mut g = DepGraph::new(body.len());
        for (i, s) in accs.iter().enumerate() {
            if !s.is_store {
                continue;
            }
            for (j, x) in accs.iter().enumerate() {
                if i == j || x.array != s.array {
                    continue;
                }
                match classify_dep(iv, &s.affine, &x.affine, lo_aff, hi_aff) {
                    DepClass::Independent => {}
                    DepClass::SameIteration => {
                        // Loop-independent dependence: preserved as long
                        // as the textual statement order is kept.
                        if s.stmt != x.stmt {
                            g.add_edge(s.stmt.min(x.stmt), s.stmt.max(x.stmt));
                        }
                    }
                    DepClass::Carried(d) => {
                        // d > 0: the store's iteration precedes the
                        // conflicting access — the store's loop must run
                        // first (a self-edge marks a recurrence).
                        if d > 0 {
                            g.add_edge(s.stmt, x.stmt);
                        } else {
                            g.add_edge(x.stmt, s.stmt);
                        }
                    }
                    DepClass::Unknown(_) => g.fuse(s.stmt, x.stmt),
                }
            }
        }
        // Scalar def-use: any two statements touching the same local stay
        // fused; a non-reduction self-accumulation is a recurrence.
        for (si, s) in body.iter().enumerate() {
            let Stmt::Assign { var, value } = s else {
                continue;
            };
            if value.uses_var(*var) && reduction_of(self.kernel, *var, value).is_none() {
                g.add_edge(si, si);
            }
            for (sj, t) in body.iter().enumerate() {
                if si == sj {
                    continue;
                }
                let uses = match t {
                    Stmt::Assign {
                        var: v2,
                        value: val2,
                    } => v2 == var || val2.uses_var(*var),
                    Stmt::Store { index, value, .. } => {
                        index.uses_var(*var) || value.uses_var(*var)
                    }
                    Stmt::For { .. } => unreachable!("checked above"),
                };
                if uses {
                    g.fuse(si, sj);
                }
            }
        }
        Some(g)
    }

    /// Distribute a rejected loop per dependence SCC (Allen–Kennedy):
    /// acyclic components are re-planned and emitted as separate vector
    /// loops, cyclic components (true recurrences) become scalar residual
    /// loops, all in topological dependence order.
    #[allow(clippy::too_many_arguments)]
    fn try_distribute(
        &mut self,
        f: &mut BcFunction,
        out: &mut Vec<BcStmt>,
        iv: VarId,
        lo: &Expr,
        hi: &Expr,
        step: i64,
        body: &[Stmt],
        before_regs: usize,
        report_mark: usize,
    ) -> DistOutcome {
        if self.opts.no_distribution || step != 1 || body.is_empty() {
            return DistOutcome::NotApplicable;
        }
        let lo_aff = analyze(self.kernel, lo);
        let hi_aff = analyze(self.kernel, hi);
        let Some(graph) = self.statement_graph(iv, body, lo_aff.as_ref(), hi_aff.as_ref()) else {
            return DistOutcome::NotApplicable;
        };
        let sccs = graph.sccs();
        if sccs.len() == 1 && !sccs[0].cyclic {
            // One acyclic component is the undistributed loop itself; the
            // whole-loop analysis already explained the rejection.
            return DistOutcome::NotApplicable;
        }
        // Plan every component before emitting anything.
        let mut plans: Vec<(Scc, Vec<Stmt>, Result<LoopPlan, Rejection>)> = Vec::new();
        let mut any_vec = false;
        for scc in sccs {
            let stmts: Vec<Stmt> = scc.stmts.iter().map(|&i| body[i].clone()).collect();
            let planned = if scc.cyclic {
                Err(Rejection::new(
                    RejectCategory::Recurrence,
                    "dependence cycle (true recurrence)",
                ))
            } else {
                self.analyze_loop(iv, step, lo, hi, &stmts)
            };
            any_vec |= planned.is_ok();
            plans.push((scc, stmts, planned));
        }
        let desc = if plans.len() > 1 {
            format!(
                "loop over {} (distributed into {} sub-loops)",
                self.kernel.var(iv).name,
                plans.len()
            )
        } else {
            format!("loop over {}", self.kernel.var(iv).name)
        };
        if !any_vec {
            // Nothing to gain from splitting: keep the speculative scalar
            // emission (byte-identical bytecode) and only enrich the
            // report with the SCC structure.
            let n = plans.len();
            let parts: Vec<PartReport> = plans
                .into_iter()
                .map(|(scc, _, planned)| PartReport {
                    stmts: scc.stmts,
                    vectorized: false,
                    reason: planned.err(),
                })
                .collect();
            let detail = if n == 1 {
                "loop body forms a single dependence cycle (true recurrence)".to_owned()
            } else {
                format!("none of the {n} distributed components is vectorizable")
            };
            self.reports.push(LoopReport {
                description: desc,
                vectorized: false,
                features: Vec::new(),
                reason: Some(Rejection::new(RejectCategory::Recurrence, detail)),
                parts,
            });
            return DistOutcome::ReportedOnly;
        }
        // Discard the speculative scalar emission; emit the distributed
        // sub-loops in dependence order.
        f.regs.truncate(before_regs.max(f.params.len()));
        self.reports.truncate(report_mark);
        self.em.vmap.retain(|_, r| (r.0 as usize) < f.regs.len());
        let mut features: Vec<Feature> = Vec::new();
        let mut parts: Vec<PartReport> = Vec::new();
        let mut vectorized_any = false;
        for (scc, stmts, planned) in plans {
            match planned {
                Ok(plan) => {
                    let regs_mark = f.regs.len();
                    let mut part_features = plan.features.clone();
                    let mut vec_out = Vec::new();
                    match self.emit_vectorized(
                        f,
                        &mut vec_out,
                        iv,
                        lo,
                        hi,
                        &stmts,
                        plan,
                        &mut part_features,
                    ) {
                        Ok(()) => {
                            out.extend(vec_out);
                            for ft in part_features {
                                if !features.contains(&ft) {
                                    features.push(ft);
                                }
                            }
                            vectorized_any = true;
                            parts.push(PartReport {
                                stmts: scc.stmts,
                                vectorized: true,
                                reason: None,
                            });
                        }
                        Err(e) => {
                            f.regs.truncate(regs_mark.max(f.params.len()));
                            self.em.vmap.retain(|_, r| (r.0 as usize) < f.regs.len());
                            self.emit_plain_loop(f, out, iv, lo, hi, step, &stmts);
                            parts.push(PartReport {
                                stmts: scc.stmts,
                                vectorized: false,
                                reason: Some(Rejection::new(RejectCategory::EmitFailure, e)),
                            });
                        }
                    }
                }
                Err(rej) => {
                    self.emit_plain_loop(f, out, iv, lo, hi, step, &stmts);
                    parts.push(PartReport {
                        stmts: scc.stmts,
                        vectorized: false,
                        reason: Some(rej),
                    });
                }
            }
        }
        self.reports.push(LoopReport {
            description: desc,
            vectorized: vectorized_any,
            features,
            reason: if vectorized_any {
                None
            } else {
                Some(Rejection::new(
                    RejectCategory::EmitFailure,
                    "all distributed sub-loops failed emission",
                ))
            },
            parts,
        });
        DistOutcome::Emitted(vectorized_any)
    }

    // ------------------------------------------------------------------
    // Analysis
    // ------------------------------------------------------------------

    /// Loop variables of the region (the candidate + nested serials).
    #[allow(dead_code)]
    fn region_loop_vars(&self, var: VarId, body: &[Stmt]) -> Vec<VarId> {
        let mut vars = vec![var];
        for s in body {
            s.walk(&mut |st| {
                if let Stmt::For { var: v, .. } = st {
                    if !vars.contains(v) {
                        vars.push(*v);
                    }
                }
            });
        }
        vars
    }

    /// Locals assigned anywhere in the region.
    fn region_locals(&self, body: &[Stmt]) -> Vec<VarId> {
        let mut locals = Vec::new();
        for s in body {
            s.walk(&mut |st| {
                if let Stmt::Assign { var, .. } = st {
                    if !locals.contains(var) {
                        locals.push(*var);
                    }
                }
            });
        }
        locals
    }

    fn collect_accesses(
        &self,
        iv: VarId,
        body: &[Stmt],
        out: &mut Vec<AccessInfo>,
    ) -> Result<(), Rejection> {
        let mut err: Option<Rejection> = None;
        for s in body {
            s.walk(&mut |st| {
                let mut note =
                    |array: ArrayId, idx: &Expr, is_store: bool| match analyze(self.kernel, idx) {
                        Some(affine) => out.push(AccessInfo {
                            array,
                            affine,
                            is_store,
                        }),
                        None => {
                            err.get_or_insert_with(|| {
                                Rejection::new(
                                    RejectCategory::NonAffine,
                                    format!(
                                        "non-affine subscript into {}[]",
                                        self.kernel.array(array).name
                                    ),
                                )
                            });
                        }
                    };
                match st {
                    Stmt::Store {
                        array,
                        index,
                        value,
                    } => {
                        note(*array, index, true);
                        for (a, idx) in value.loads() {
                            note(a, idx, false);
                        }
                    }
                    Stmt::Assign { value, .. } => {
                        for (a, idx) in value.loads() {
                            note(a, idx, false);
                        }
                    }
                    Stmt::For { lo, hi, .. } => {
                        // Bounds must be invariant of iv.
                        for e in [lo, hi] {
                            if e.uses_var(iv) {
                                err.get_or_insert_with(|| {
                                    Rejection::new(
                                        RejectCategory::Bounds,
                                        "inner loop bound depends on the vectorized variable",
                                    )
                                });
                            }
                        }
                    }
                }
            });
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn analyze_loop(
        &self,
        iv: VarId,
        step: i64,
        lo: &Expr,
        hi: &Expr,
        body: &[Stmt],
    ) -> Result<LoopPlan, Rejection> {
        if step != 1 {
            return Err(Rejection::new(
                RejectCategory::Bounds,
                format!("loop step {step} != 1"),
            ));
        }
        let mut accesses = Vec::new();
        self.collect_accesses(iv, body, &mut accesses)?;
        if accesses.is_empty() {
            return Err(Rejection::new(
                RejectCategory::NoVectorWork,
                "no memory accesses to vectorize",
            ));
        }

        // --- stride legality w.r.t. the candidate variable ---
        let mut arrays = Vec::new();
        let mut stored = Vec::new();
        let mut sym_strides: Vec<(ArrayId, VarId)> = Vec::new();
        for a in &accesses {
            match a.affine.coeff_of(iv) {
                Coeff::Const(0) => {}
                Coeff::Const(1) => {}
                Coeff::Const(s) if (2..=4).contains(&s) && !a.is_store => {}
                Coeff::Const(2) if a.is_store => {}
                Coeff::Const(s) => {
                    return Err(Rejection::new(
                        RejectCategory::UnsupportedStride,
                        format!(
                            "unsupported stride {s} into {}[]",
                            self.kernel.array(a.array).name
                        ),
                    ))
                }
                Coeff::Sym(..) => {
                    return Err(Rejection::new(
                        RejectCategory::UnsupportedStride,
                        format!(
                            "non-unit symbolic stride into {}[]",
                            self.kernel.array(a.array).name
                        ),
                    ))
                }
            }
            if !arrays.contains(&a.array) && a.affine.uses_loop(iv) {
                arrays.push(a.array);
            }
            if a.is_store {
                if !a.affine.uses_loop(iv) {
                    return Err(Rejection::new(
                        RejectCategory::UnsupportedStride,
                        format!(
                            "store into {}[] invariant of the loop variable",
                            self.kernel.array(a.array).name
                        ),
                    ));
                }
                if !stored.contains(&a.array) {
                    stored.push(a.array);
                }
            }
            // Symbolic-stride terms of *other* loop variables need
            // stride-alignment guards; constant ones are checked mod 32.
            for (v, c) in &a.affine.loops {
                if *v == iv {
                    continue;
                }
                if let Coeff::Sym(p, 1) = c {
                    if !sym_strides.contains(&(a.array, *p)) {
                        sym_strides.push((a.array, *p));
                    }
                } else if let Coeff::Sym(..) = c {
                    return Err(Rejection::new(
                        RejectCategory::UnsupportedStride,
                        "scaled symbolic stride term",
                    ));
                }
            }
        }

        // --- dependence check (§II(a)): same-array store/other pairs ---
        //
        // Policy per §III-B(b): the offline compiler cannot know VF, so a
        // loop with *any* finite carried dependence distance is rejected
        // ("the former conservative approach"); such loops get a second
        // chance via Allen–Kennedy distribution in `try_distribute`.
        // [`classify_dep`] proves independence for offsets the iv stride
        // cannot produce, solvable out-of-bounds conflicts, and whole-row
        // combinations (see `depgraph`).
        let lo_aff = analyze(self.kernel, lo);
        let hi_aff = analyze(self.kernel, hi);
        for (i, s) in accesses.iter().enumerate() {
            if !s.is_store {
                continue;
            }
            for (j, x) in accesses.iter().enumerate() {
                if i == j || x.array != s.array {
                    continue;
                }
                let name = &self.kernel.array(s.array).name;
                match classify_dep(iv, &s.affine, &x.affine, lo_aff.as_ref(), hi_aff.as_ref()) {
                    DepClass::Independent | DepClass::SameIteration => {}
                    DepClass::Carried(d) => {
                        return Err(Rejection::new(
                            RejectCategory::Dependence,
                            format!("loop-carried dependence of distance {d} on {name}[]"),
                        ));
                    }
                    DepClass::Unknown(detail) => {
                        return Err(Rejection::new(
                            RejectCategory::Dependence,
                            format!("{detail} on {name}[]"),
                        ));
                    }
                }
            }
        }

        // --- locals: reductions at this level, vector locals below ---
        let locals = self.region_locals(body);
        let mut features = Vec::new();
        for s in body {
            if let Stmt::Assign { var, value } = s {
                // Direct-body assignment accumulating across iv must be a
                // reduction.
                if value.uses_var(*var) {
                    reduction_of(self.kernel, *var, value).ok_or_else(|| {
                        Rejection::new(
                            RejectCategory::Recurrence,
                            format!(
                                "scalar {} carries a non-reduction dependence",
                                self.kernel.var(*var).name
                            ),
                        )
                    })?;
                    if !features.contains(&Feature::Reduction) {
                        features.push(Feature::Reduction);
                    }
                }
            }
        }
        let outer = body.iter().any(|s| matches!(s, Stmt::For { .. }));
        if outer {
            features.push(Feature::OuterLoop);
        }

        // --- element types / vf_ty ---
        let mut elem_tys: Vec<ScalarTy> = Vec::new();
        let mut note_ty = |t: ScalarTy| {
            if !elem_tys.contains(&t) {
                elem_tys.push(t);
            }
        };
        for s in body {
            s.walk(&mut |st| match st {
                Stmt::Store { array, .. } => note_ty(self.kernel.array(*array).elem),
                Stmt::Assign { var, .. } => note_ty(self.kernel.var(*var).ty),
                Stmt::For { .. } => {}
            });
            s.walk_exprs(&mut |e| {
                if let Expr::Load { array, .. } = e {
                    note_ty(self.kernel.array(*array).elem);
                }
            });
        }
        let vf_ty = *elem_tys
            .iter()
            .min_by_key(|t| t.size())
            .ok_or_else(|| Rejection::new(RejectCategory::NoVectorWork, "no element types"))?;
        for t in &elem_tys {
            if t.size() != vf_ty.size() && t.size() != 2 * vf_ty.size() {
                // The SAD pattern (u8 data, i32 accumulator) is the one
                // supported exception, recognized per-reduction later.
                let is_sad_acc = t.size() == 4 * vf_ty.size();
                if !is_sad_acc {
                    return Err(Rejection::new(
                        RejectCategory::UnsupportedTypes,
                        format!("mixed element widths {vf_ty} vs {t}"),
                    ));
                }
            }
        }

        // --- op classes used (for support guards) ---
        let mut op_classes = Vec::new();
        scan_op_classes(self.kernel, body, &mut op_classes);
        let _ = &locals;

        // Native mode: refuse what the known target cannot vectorize.
        if let Some(t) = self.native() {
            for ty in &elem_tys {
                // The SAD accumulator type is not used lane-wise at VF.
                if ty.size() == 4 * vf_ty.size() {
                    continue;
                }
                if !t.supports_elem(*ty) {
                    return Err(Rejection::new(
                        RejectCategory::TargetUnsupported,
                        format!("target {} lacks vector {ty}", t.name),
                    ));
                }
            }
            for c in &op_classes {
                if !crate::support::target_claims_class(t, *c) {
                    return Err(Rejection::new(
                        RejectCategory::TargetUnsupported,
                        format!("target {} lacks {:?}", t.name, c),
                    ));
                }
                // A native compiler's cost model sees that the backend
                // expands the idiom into library calls and keeps the loop
                // scalar; only the split flow, committed to the portable
                // bytecode, ends up calling the helpers (the paper's NEON
                // dissolve/dct slowdowns in Figure 6c).
                let helper_backed = (*c == OpClass::WidenMult && t.widen_mult_via_helper)
                    || (*c == OpClass::Cvt && t.cvt_via_helper);
                if helper_backed {
                    return Err(Rejection::new(
                        RejectCategory::TargetUnsupported,
                        format!(
                            "target {} expands {:?} via library calls (not profitable)",
                            t.name, c
                        ),
                    ));
                }
            }
        }

        Ok(LoopPlan {
            vf_ty,
            features,
            elem_tys,
            op_classes,
            arrays,
            stored_arrays: stored,
            sym_strides,
            outer,
        })
    }

    // ------------------------------------------------------------------
    // Emission
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn emit_vectorized(
        &mut self,
        f: &mut BcFunction,
        out: &mut Vec<BcStmt>,
        iv: VarId,
        lo: &Expr,
        hi: &Expr,
        body: &[Stmt],
        plan: LoopPlan,
        collected: &mut Vec<Feature>,
    ) -> Result<(), String> {
        // Constant lower bounds enable alignment hints; dynamic ones
        // (triangular nests) fall back to unknown misalignment.
        let lo_const = match lo {
            Expr::Int(v) => Some(*v),
            _ => None,
        };

        // ----- support guards (split mode only; native pre-checked) -----
        let mut support = Vec::new();
        if self.native().is_none() {
            for t in &plan.elem_tys {
                if matches!(t, ScalarTy::F64 | ScalarTy::I64) {
                    support.push(GuardCond::TypeSupported(*t));
                }
            }
            if !plan.op_classes.is_empty() {
                support.push(GuardCond::OpsSupported(plan.op_classes.clone()));
            }
            // Runtime alias checks for store/other pointer pairs.
            for s in &plan.stored_arrays {
                for a in &plan.arrays {
                    if a == s {
                        continue;
                    }
                    let both_global = self.kernel.array(*s).kind == ArrayKind::Global
                        && self.kernel.array(*a).kind == ArrayKind::Global;
                    if !both_global {
                        support.push(GuardCond::NoAlias(ArraySym(s.0), ArraySym(a.0)));
                    }
                }
            }
        }

        // ----- alignment guards -----
        let align_conds: Vec<GuardCond> = if self.opts.no_alignment_opts {
            Vec::new()
        } else {
            let mut conds = Vec::new();
            for a in &plan.arrays {
                // Native compilers force alignment of globals (§III-B(c)).
                let known_aligned =
                    self.native().is_some() && self.kernel.array(*a).kind == ArrayKind::Global;
                if !known_aligned {
                    conds.push(GuardCond::BaseAligned(ArraySym(a.0)));
                }
            }
            for (a, p) in &plan.sym_strides {
                let preg = self.em.var_reg(f, *p);
                conds.push(GuardCond::StrideAligned {
                    array: ArraySym(a.0),
                    stride: Operand::Reg(preg),
                    ty: self.kernel.array(*a).elem,
                });
            }
            conds
        };

        // Native mode, SLP-origin loop, pointer parameters, on a target
        // with misaligned accesses: SLP code cannot be peeled to reach
        // alignment, so GCC generated the misaligned version only (the
        // mix-streams situation of §V-B).
        let native_misaligned_only = self.slp_done
            && self.native().is_some_and(|t| {
                t.misaligned_stores
                    && plan
                        .arrays
                        .iter()
                        .any(|a| self.kernel.array(*a).kind == ArrayKind::PointerParam)
            });

        // ----- build the arms -----
        let versioned = !support.is_empty() || !align_conds.is_empty();
        if versioned && !collected.contains(&Feature::Versioned) {
            collected.push(Feature::Versioned);
        }

        let hints_arm =
            if self.opts.no_alignment_opts || native_misaligned_only || lo_const.is_none() {
                None
            } else {
                let mut arm = Vec::new();
                self.emit_arm(
                    f, &mut arm, iv, lo, lo_const, hi, body, &plan, true, collected,
                )?;
                Some(arm)
            };
        let nohints_arm = {
            let mut arm = Vec::new();
            self.emit_arm(
                f, &mut arm, iv, lo, lo_const, hi, body, &plan, false, collected,
            )?;
            arm
        };

        let aligned_versioned = match hints_arm {
            Some(hints) if !align_conds.is_empty() => vec![BcStmt::Version {
                cond: GuardCond::All(align_conds),
                then_body: hints,
                else_body: nohints_arm,
            }],
            Some(hints) => hints,
            None => nohints_arm,
        };

        if support.is_empty() {
            out.extend(aligned_versioned);
        } else {
            // Scalar fall-back arm.
            let mut scalar_arm = Vec::new();
            self.emit_plain_loop(f, &mut scalar_arm, iv, lo, hi, 1, body);
            out.push(BcStmt::Version {
                cond: GuardCond::All(support),
                then_body: aligned_versioned,
                else_body: scalar_arm,
            });
        }
        Ok(())
    }

    /// Emit one vectorized arm: bounds, main vector loop, reduction
    /// epilogue, scalar tail.
    #[allow(clippy::too_many_arguments)]
    fn emit_arm(
        &mut self,
        f: &mut BcFunction,
        out: &mut Vec<BcStmt>,
        iv: VarId,
        lo: &Expr,
        lo_const: Option<i64>,
        hi: &Expr,
        body: &[Stmt],
        plan: &LoopPlan,
        hints: bool,
        collected: &mut Vec<Feature>,
    ) -> Result<(), String> {
        let group = self.next_group;
        self.next_group += 1;
        let vf_ty = plan.vf_ty;

        // Bounds: vec_end = lo + ((hi - lo) / vf) * vf
        let lo_v = self.em.emit_expr(f, out, lo, ScalarTy::I64);
        let hi_v = self.em.emit_expr(f, out, hi, ScalarTy::I64);
        let vf = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        out.push(BcStmt::Def {
            dst: vf,
            op: Op::GetVf { ty: vf_ty, group },
        });
        let t0 = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        out.push(BcStmt::Def {
            dst: t0,
            op: Op::SBin(BinOp::Sub, ScalarTy::I64, hi_v, lo_v),
        });
        let t1 = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        out.push(BcStmt::Def {
            dst: t1,
            op: Op::SBin(
                BinOp::Div,
                ScalarTy::I64,
                Operand::Reg(t0),
                Operand::Reg(vf),
            ),
        });
        let t2 = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        out.push(BcStmt::Def {
            dst: t2,
            op: Op::SBin(
                BinOp::Mul,
                ScalarTy::I64,
                Operand::Reg(t1),
                Operand::Reg(vf),
            ),
        });
        let vec_end = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        out.push(BcStmt::Def {
            dst: vec_end,
            op: Op::SBin(BinOp::Add, ScalarTy::I64, lo_v, Operand::Reg(t2)),
        });
        let main_hi = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        out.push(BcStmt::Def {
            dst: main_hi,
            op: Op::LoopBound {
                vect: Operand::Reg(vec_end),
                scalar: lo_v,
                group,
            },
        });
        let tail_lo = f.fresh_reg(BcTy::Scalar(ScalarTy::I64));
        out.push(BcStmt::Def {
            dst: tail_lo,
            op: Op::LoopBound {
                vect: Operand::Reg(vec_end),
                scalar: lo_v,
                group,
            },
        });

        let iv_reg = self.em.var_reg(f, iv);
        let mut arm = ArmEmitter {
            vx: self,
            f,
            iv,
            iv_reg,
            lo_v,
            lo_const,
            vf_ty,
            vf,
            group,
            hints,
            pre: out,
            reductions: Vec::new(),
            vec_locals: HashMap::new(),
            splat_cache: HashMap::new(),
            inner_vars: Vec::new(),
            features: Vec::new(),
        };

        // Reduction prologues.
        for s in body {
            if let Stmt::Assign { var, value } = s {
                if value.uses_var(*var) {
                    arm.setup_reduction(*var, value)?;
                }
            }
        }

        let mut main_body = Vec::new();
        arm.emit_body(body, &mut main_body)?;
        let reductions = std::mem::take(&mut arm.reductions);
        let new_features = std::mem::take(&mut arm.features);
        for ft in new_features {
            if !collected.contains(&ft) {
                collected.push(ft);
            }
        }

        out.push(BcStmt::Loop {
            var: iv_reg,
            lo: lo_v,
            limit: Operand::Reg(main_hi),
            step: Step::Vf(vf_ty, 1),
            kind: LoopKind::VectorMain,
            group,
            body: main_body,
        });

        // Reduction epilogues: fold the vector accumulator back into the
        // scalar local so the tail continues from the right value.
        for red in &reductions {
            let partial = f.fresh_reg(BcTy::Scalar(red.acc_ty));
            out.push(BcStmt::Def {
                dst: partial,
                op: match red.op {
                    // Sub accumulates s₀ − partial sums across the lanes,
                    // so the lane sum is the reduced value.
                    BinOp::Add | BinOp::Sub => Op::ReducPlus(red.acc_ty, red.vacc),
                    BinOp::Max => Op::ReducMax(red.acc_ty, red.vacc),
                    BinOp::Min => Op::ReducMin(red.acc_ty, red.vacc),
                    _ => unreachable!(),
                },
            });
            let s_reg = self.em.var_reg(f, red.local);
            let s_ty = self.kernel.var(red.local).ty;
            if red.acc_ty != s_ty {
                let cast = f.fresh_reg(BcTy::Scalar(s_ty));
                out.push(BcStmt::Def {
                    dst: cast,
                    op: Op::SCast {
                        from: red.acc_ty,
                        to: s_ty,
                        arg: Operand::Reg(partial),
                    },
                });
                out.push(BcStmt::Def {
                    dst: s_reg,
                    op: Op::Copy(Operand::Reg(cast)),
                });
            } else {
                out.push(BcStmt::Def {
                    dst: s_reg,
                    op: Op::Copy(Operand::Reg(partial)),
                });
            }
        }

        // Scalar tail loop (also the full loop when scalarized online).
        let mut tail_body = Vec::new();
        for st in body {
            self.em.emit_stmt(f, &mut tail_body, st);
        }
        out.push(BcStmt::Loop {
            var: iv_reg,
            lo: Operand::Reg(tail_lo),
            limit: hi_v,
            step: Step::Const(1),
            kind: LoopKind::ScalarTail,
            group,
            body: tail_body,
        });

        let _ = plan;
        Ok(())
    }
}

/// Whether `e` is a widening multiply `(W)a * (W)b` of half-width
/// integer operands.
fn is_widening_mul(k: &Kernel, e: &Expr) -> bool {
    if let Expr::Bin {
        op: BinOp::Mul,
        lhs,
        rhs,
    } = e
    {
        if let (Expr::Cast { ty: tl, arg: al }, Expr::Cast { ty: tr, arg: ar }) = (&**lhs, &**rhs) {
            let nl = infer_expr(k, al).map(|t| t.size());
            let nr = infer_expr(k, ar).map(|t| t.size());
            return tl == tr
                && nl == Some(tl.size() / 2)
                && nr == Some(tr.size() / 2)
                && tl.is_int();
        }
    }
    false
}

/// Collect the operation classes of a loop body for `ops_supported`
/// guards. A widening multiply that is itself a `+=` reduction step is
/// classified as `dot_product` (the idiom actually emitted), not as
/// `widen_mult` — the distinction drives the NEON library-fallback story.
fn scan_op_classes(k: &Kernel, body: &[Stmt], out: &mut Vec<OpClass>) {
    fn note(out: &mut Vec<OpClass>, c: OpClass) {
        if !out.contains(&c) {
            out.push(c);
        }
    }
    fn scan_expr(k: &Kernel, e: &Expr, out: &mut Vec<OpClass>) {
        match e {
            Expr::Bin { op: BinOp::Div, .. } => note(out, OpClass::FDiv),
            Expr::Un { op: UnOp::Sqrt, .. } => note(out, OpClass::FSqrt),
            _ if is_widening_mul(k, e) => note(out, OpClass::WidenMult),
            Expr::Cast { ty, arg } => {
                let from = infer_expr(k, arg).unwrap_or(*ty);
                if from.size() == ty.size() && from.is_int() != ty.is_int() {
                    note(out, OpClass::Cvt);
                }
            }
            _ => {}
        }
    }
    for s in body {
        match s {
            Stmt::Assign { var, value } => {
                if let Some((BinOp::Add, e)) = reduction_of(k, *var, value) {
                    if is_widening_mul(k, e) {
                        note(out, OpClass::DotProduct);
                        // Scan only inside the multiply's operands.
                        if let Expr::Bin { lhs, rhs, .. } = e {
                            lhs.walk(&mut |x| scan_expr(k, x, out));
                            rhs.walk(&mut |x| scan_expr(k, x, out));
                        }
                        continue;
                    }
                }
                value.walk(&mut |x| scan_expr(k, x, out));
            }
            Stmt::Store { index, value, .. } => {
                index.walk(&mut |x| scan_expr(k, x, out));
                value.walk(&mut |x| scan_expr(k, x, out));
            }
            Stmt::For { lo, hi, body, .. } => {
                lo.walk(&mut |x| scan_expr(k, x, out));
                hi.walk(&mut |x| scan_expr(k, x, out));
                scan_op_classes(k, body, out);
            }
        }
    }
}

/// Recognized reduction: `local = local op e` with `op ∈ {+, -, min, max}`.
/// `-` is recognized on the left side only (`s = s - e`); it accumulates
/// per-lane differences and folds with a plus-reduction, since
/// Σ lanes = s₀ − Σ e.
fn reduction_of<'e>(k: &Kernel, local: VarId, value: &'e Expr) -> Option<(BinOp, &'e Expr)> {
    if let Expr::Bin { op, lhs, rhs } = value {
        if !matches!(op, BinOp::Add | BinOp::Sub | BinOp::Min | BinOp::Max) {
            return None;
        }
        if matches!(&**lhs, Expr::Var(v) if *v == local) && !rhs.uses_var(local) {
            return Some((*op, rhs));
        }
        if op.commutative() && matches!(&**rhs, Expr::Var(v) if *v == local) && !lhs.uses_var(local)
        {
            return Some((*op, lhs));
        }
    }
    let _ = k;
    None
}

#[derive(Debug)]
struct ReductionState {
    local: VarId,
    op: BinOp,
    vacc: Reg,
    acc_ty: ScalarTy,
    kind: ReductionKind,
}

#[derive(Debug, Clone, PartialEq)]
enum ReductionKind {
    Plain,
    Dot { a: Expr, b: Expr, in_ty: ScalarTy },
    Sad { a: Expr, b: Expr },
}

struct ArmEmitter<'a, 'k> {
    vx: &'a mut Vx<'k>,
    f: &'a mut BcFunction,
    iv: VarId,
    #[allow(dead_code)]
    iv_reg: Reg,
    #[allow(dead_code)]
    lo_v: Operand,
    lo_const: Option<i64>,
    vf_ty: ScalarTy,
    vf: Reg,
    #[allow(dead_code)]
    group: u32,
    hints: bool,
    /// Pre-loop statement buffer (hoisted splats, realign tokens).
    pre: &'a mut Vec<BcStmt>,
    reductions: Vec<ReductionState>,
    vec_locals: HashMap<VarId, (Reg, ScalarTy)>,
    splat_cache: HashMap<String, VecVal>,
    /// Serial loop variables currently in scope inside the vector loop.
    inner_vars: Vec<VarId>,
    features: Vec<Feature>,
}

impl<'a, 'k> ArmEmitter<'a, 'k> {
    fn kernel(&self) -> &'k Kernel {
        self.vx.kernel
    }

    fn feature(&mut self, ft: Feature) {
        if !self.features.contains(&ft) {
            self.features.push(ft);
        }
    }

    fn fresh_vec(&mut self, ty: ScalarTy) -> Reg {
        self.f.fresh_reg(BcTy::Vec(ty))
    }

    fn fresh_scalar(&mut self, ty: ScalarTy) -> Reg {
        self.f.fresh_reg(BcTy::Scalar(ty))
    }

    /// Whether an expression is invariant of the vectorized loop and all
    /// in-scope serial loops (then it can be hoisted and splat once).
    fn region_invariant(&self, e: &Expr) -> bool {
        let mut inv = true;
        e.walk(&mut |x| match x {
            Expr::Var(v)
                if (*v == self.iv
                    || self.inner_vars.contains(v)
                    || self.vec_locals.contains_key(v)
                    || self.reductions.iter().any(|r| r.local == *v)) =>
            {
                inv = false;
            }
            Expr::Load { .. } => inv = false, // conservative: loads stay in place
            _ => {}
        });
        inv
    }

    // -------------- alignment hints --------------

    /// Hint (mis, mod) for an access with the given affine subscript.
    /// `mod = 0` means unknown at offline time.
    fn hint_of(&self, affine: &Affine, esize: usize) -> (u32, u32) {
        let Some(lo_const) = self.lo_const else {
            return (0, 0);
        };
        if !self.hints {
            return (0, 0);
        }
        // iv contributes lo*esize at the first iteration and multiples of
        // VS afterwards; other terms must vanish mod 32 under the guards.
        for (v, c) in &affine.loops {
            if *v == self.iv {
                // handled via lo_const above (coefficient 1 contract)
                continue;
            }
            match c {
                Coeff::Const(c2) => {
                    if (c2 * esize as i64) % HINT_MOD as i64 != 0 {
                        return (0, 0);
                    }
                }
                Coeff::Sym(_, 1) => {
                    // Guarded by stride_aligned: contributes 0 mod VS.
                }
                Coeff::Sym(..) => return (0, 0),
            }
        }
        if !affine.params.is_empty() {
            return (0, 0);
        }
        // Strided accesses scale the iv contribution; still a multiple of
        // VS per step, so only the constant matters.
        let konst = match affine.coeff_of(self.iv) {
            Coeff::Const(s) => affine.konst + lo_const * s,
            Coeff::Sym(..) => return (0, 0),
        };
        let mis = ((konst * esize as i64) % HINT_MOD as i64 + HINT_MOD as i64) % HINT_MOD as i64;
        (mis as u32, HINT_MOD)
    }

    // -------------- memory --------------

    /// Scalar-emit the index expression with `iv` replaced by `to`.
    fn subst_iv(&self, e: &Expr, to: &Expr) -> Expr {
        match e {
            Expr::Var(v) if *v == self.iv => to.clone(),
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => e.clone(),
            Expr::Load { array, index } => Expr::Load {
                array: *array,
                index: Box::new(self.subst_iv(index, to)),
            },
            Expr::Bin { op, lhs, rhs } => Expr::Bin {
                op: *op,
                lhs: Box::new(self.subst_iv(lhs, to)),
                rhs: Box::new(self.subst_iv(rhs, to)),
            },
            Expr::Un { op, arg } => Expr::Un {
                op: *op,
                arg: Box::new(self.subst_iv(arg, to)),
            },
            Expr::Cast { ty, arg } => Expr::Cast {
                ty: *ty,
                arg: Box::new(self.subst_iv(arg, to)),
            },
        }
    }

    /// Emit a contiguous vector load of `array[idx]` (coeff(iv) == 1).
    fn emit_vec_load(
        &mut self,
        cur: &mut Vec<BcStmt>,
        array: ArrayId,
        idx: &Expr,
        affine: &Affine,
    ) -> Result<Reg, String> {
        let elem = self.kernel().array(array).elem;
        let (mis, modulo) = self.hint_of(affine, elem.size());
        let (core, offset) = split_const_offset(idx);
        let idx_op = self.vx.em.emit_expr(self.f, cur, core, ScalarTy::I64);
        let addr = Addr {
            base: ArraySym(array.0),
            index: idx_op,
            offset,
        };
        let dst = self.fresh_vec(elem);
        if modulo != 0 && mis == 0 {
            cur.push(BcStmt::Def {
                dst,
                op: Op::ALoad(elem, addr),
            });
            return Ok(dst);
        }
        self.feature(Feature::Realign);
        // Optimized explicit realignment with cross-iteration reuse
        // (Figure 3a) when the access sits directly in the main loop body
        // (no serial loop in scope): get_rt and the first aligned load are
        // computed before the loop; each iteration loads one new aligned
        // vector and recycles the previous one.
        let direct =
            self.inner_vars.is_empty() && self.lo_const.is_some() && !self.vx.opts.no_realign_reuse;
        if direct {
            let at_lo = self.subst_iv(core, &Expr::Int(self.lo_const.unwrap()));
            let mut pre = std::mem::take(self.pre);
            let idx0 = self
                .vx
                .em
                .emit_expr(self.f, &mut pre, &at_lo, ScalarTy::I64);
            let addr0 = Addr {
                base: ArraySym(array.0),
                index: idx0,
                offset,
            };
            let rt = self.f.fresh_reg(BcTy::RealignToken);
            pre.push(BcStmt::Def {
                dst: rt,
                op: Op::GetRt {
                    ty: elem,
                    addr: addr0,
                    mis,
                    modulo,
                },
            });
            let va = self.fresh_vec(elem);
            pre.push(BcStmt::Def {
                dst: va,
                op: Op::AlignLoad(elem, addr0),
            });
            *self.pre = pre;
            // In-loop: vb = align_load(addr + VF); vx = realign; va = vb.
            let idx_vf = self.fresh_scalar(ScalarTy::I64);
            cur.push(BcStmt::Def {
                dst: idx_vf,
                op: Op::SBin(BinOp::Add, ScalarTy::I64, idx_op, Operand::Reg(self.vf)),
            });
            let addr_vf = Addr {
                base: ArraySym(array.0),
                index: Operand::Reg(idx_vf),
                offset,
            };
            let vb = self.fresh_vec(elem);
            cur.push(BcStmt::Def {
                dst: vb,
                op: Op::AlignLoad(elem, addr_vf),
            });
            cur.push(BcStmt::Def {
                dst,
                op: Op::RealignLoad {
                    ty: elem,
                    lo: Some(va),
                    hi: Some(vb),
                    rt: Some(rt),
                    addr,
                    mis,
                    modulo,
                },
            });
            cur.push(BcStmt::Def {
                dst: va,
                op: Op::Copy(Operand::Reg(vb)),
            });
        } else {
            // Inside serial loops: per-access realignment.
            let rt = self.f.fresh_reg(BcTy::RealignToken);
            cur.push(BcStmt::Def {
                dst: rt,
                op: Op::GetRt {
                    ty: elem,
                    addr,
                    mis,
                    modulo,
                },
            });
            let va = self.fresh_vec(elem);
            cur.push(BcStmt::Def {
                dst: va,
                op: Op::AlignLoad(elem, addr),
            });
            let idx_vf = self.fresh_scalar(ScalarTy::I64);
            cur.push(BcStmt::Def {
                dst: idx_vf,
                op: Op::SBin(BinOp::Add, ScalarTy::I64, idx_op, Operand::Reg(self.vf)),
            });
            let addr_vf = Addr {
                base: ArraySym(array.0),
                index: Operand::Reg(idx_vf),
                offset,
            };
            let vb = self.fresh_vec(elem);
            cur.push(BcStmt::Def {
                dst: vb,
                op: Op::AlignLoad(elem, addr_vf),
            });
            cur.push(BcStmt::Def {
                dst,
                op: Op::RealignLoad {
                    ty: elem,
                    lo: Some(va),
                    hi: Some(vb),
                    rt: Some(rt),
                    addr,
                    mis,
                    modulo,
                },
            });
        }
        Ok(dst)
    }

    /// Emit a strided vector load (`extract` idiom).
    fn emit_strided_load(
        &mut self,
        cur: &mut Vec<BcStmt>,
        array: ArrayId,
        idx: &Expr,
        stride: i64,
    ) -> Result<Reg, String> {
        self.feature(Feature::Strided);
        self.feature(Feature::Realign);
        let elem = self.kernel().array(array).elem;
        let (core, offset) = split_const_offset(idx);
        let idx_op = self.vx.em.emit_expr(self.f, cur, core, ScalarTy::I64);
        let mut srcs = Vec::new();
        for k in 0..stride {
            let idx_k = if k == 0 {
                idx_op
            } else {
                let kvf = self.fresh_scalar(ScalarTy::I64);
                cur.push(BcStmt::Def {
                    dst: kvf,
                    op: Op::SBin(
                        BinOp::Mul,
                        ScalarTy::I64,
                        Operand::Reg(self.vf),
                        Operand::ConstI(k),
                    ),
                });
                let sum = self.fresh_scalar(ScalarTy::I64);
                cur.push(BcStmt::Def {
                    dst: sum,
                    op: Op::SBin(BinOp::Add, ScalarTy::I64, idx_op, Operand::Reg(kvf)),
                });
                Operand::Reg(sum)
            };
            let addr = Addr {
                base: ArraySym(array.0),
                index: idx_k,
                offset,
            };
            let v = self.fresh_vec(elem);
            cur.push(BcStmt::Def {
                dst: v,
                op: Op::RealignLoad {
                    ty: elem,
                    lo: None,
                    hi: None,
                    rt: None,
                    addr,
                    mis: 0,
                    modulo: 0,
                },
            });
            srcs.push(v);
        }
        let dst = self.fresh_vec(elem);
        cur.push(BcStmt::Def {
            dst,
            op: Op::Extract {
                ty: elem,
                stride: stride as u8,
                offset: 0,
                srcs,
            },
        });
        Ok(dst)
    }

    // -------------- expressions --------------

    fn vec_expr(
        &mut self,
        cur: &mut Vec<BcStmt>,
        e: &Expr,
        ty: ScalarTy,
    ) -> Result<VecVal, String> {
        let factor = ty.size() / self.vf_ty.size();
        if !(factor == 1 || factor == 2) {
            return Err(format!(
                "element width {ty} not supported at VF type {}",
                self.vf_ty
            ));
        }
        // Hoisted splats for region-invariant values.
        if self.region_invariant(e) {
            let key = format!("{}:{:?}", vapor_ir::print_expr(self.kernel(), e), ty);
            if let Some(v) = self.splat_cache.get(&key) {
                return Ok(*v);
            }
            let mut pre = std::mem::take(self.pre);
            let opnd = self.vx.em.emit_expr(self.f, &mut pre, e, ty);
            let r = self.fresh_vec(ty);
            pre.push(BcStmt::Def {
                dst: r,
                op: Op::InitUniform(ty, opnd),
            });
            *self.pre = pre;
            let v = if factor == 1 {
                VecVal::Full(r)
            } else {
                VecVal::Halves(r, r)
            };
            self.splat_cache.insert(key, v);
            return Ok(v);
        }
        match e {
            Expr::Int(_) | Expr::Float(_) => unreachable!("literals are invariant"),
            Expr::Var(v) => {
                if let Some((r, t)) = self.vec_locals.get(v) {
                    if *t != ty {
                        return Err(format!("vector local {} used at wrong type", v.0));
                    }
                    Ok(if factor == 1 {
                        VecVal::Full(*r)
                    } else {
                        VecVal::Halves(*r, *r)
                    })
                } else if self.reductions.iter().any(|r| r.local == *v) {
                    Err("reduction accumulator used outside its reduction".into())
                } else {
                    Err(format!(
                        "unsupported variable use of {}",
                        self.kernel().var(*v).name
                    ))
                }
            }
            Expr::Load { array, index } => {
                let affine = analyze(self.kernel(), index)
                    .ok_or_else(|| "non-affine load subscript".to_owned())?;
                let elem = self.kernel().array(*array).elem;
                if elem != ty {
                    return Err(format!("load of {elem} used at {ty}"));
                }
                match affine.coeff_of(self.iv) {
                    Coeff::Const(0) => {
                        // iv-invariant but serial-loop-varying: scalar load
                        // + splat in place.
                        let opnd = self.vx.em.emit_expr(self.f, cur, e, ty);
                        let r = self.fresh_vec(ty);
                        cur.push(BcStmt::Def {
                            dst: r,
                            op: Op::InitUniform(ty, opnd),
                        });
                        Ok(if factor == 1 {
                            VecVal::Full(r)
                        } else {
                            VecVal::Halves(r, r)
                        })
                    }
                    Coeff::Const(1) if factor == 1 => Ok(VecVal::Full(
                        self.emit_vec_load(cur, *array, index, &affine)?,
                    )),
                    Coeff::Const(s) if (2..=4).contains(&s) && factor == 1 => {
                        Ok(VecVal::Full(self.emit_strided_load(cur, *array, index, s)?))
                    }
                    c => Err(format!(
                        "unsupported load stride {c:?} at width factor {factor}"
                    )),
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                // Widening multiply: (wide)a * (wide)b with narrow a, b.
                if *op == BinOp::Mul && factor == 2 {
                    if let (Expr::Cast { ty: ta, arg: aa }, Expr::Cast { ty: tb, arg: ab }) =
                        (&**lhs, &**rhs)
                    {
                        let na = infer_expr(self.kernel(), aa).unwrap_or(*ta);
                        let nb = infer_expr(self.kernel(), ab).unwrap_or(*tb);
                        if *ta == ty
                            && *tb == ty
                            && na.size() == self.vf_ty.size()
                            && nb.size() == self.vf_ty.size()
                        {
                            self.feature(Feature::WidenMult);
                            let va = self.vec_expr(cur, aa, na)?.full()?;
                            let vb = self.vec_expr(cur, ab, nb)?.full()?;
                            let lo = self.fresh_vec(ty);
                            cur.push(BcStmt::Def {
                                dst: lo,
                                op: Op::WidenMultLo(na, va, vb),
                            });
                            let hi = self.fresh_vec(ty);
                            cur.push(BcStmt::Def {
                                dst: hi,
                                op: Op::WidenMultHi(na, va, vb),
                            });
                            return Ok(VecVal::Halves(lo, hi));
                        }
                    }
                }
                if matches!(op, BinOp::Shl | BinOp::Shr) {
                    let val = self.vec_expr(cur, lhs, ty)?;
                    let amt = if self.region_invariant(rhs) {
                        let mut pre = std::mem::take(self.pre);
                        let o = self.vx.em.emit_expr(self.f, &mut pre, rhs, ty);
                        *self.pre = pre;
                        ShiftAmt::Scalar(o)
                    } else {
                        ShiftAmt::PerLane(self.vec_expr(cur, rhs, ty)?.full()?)
                    };
                    let mk = |dst, v| BcStmt::Def {
                        dst,
                        op: if *op == BinOp::Shl {
                            Op::VShl(ty, v, amt)
                        } else {
                            Op::VShr(ty, v, amt)
                        },
                    };
                    return Ok(match val {
                        VecVal::Full(v) => {
                            let d = self.fresh_vec(ty);
                            cur.push(mk(d, v));
                            VecVal::Full(d)
                        }
                        VecVal::Halves(l, h) => {
                            let dl = self.fresh_vec(ty);
                            cur.push(mk(dl, l));
                            let dh = self.fresh_vec(ty);
                            cur.push(mk(dh, h));
                            VecVal::Halves(dl, dh)
                        }
                    });
                }
                if op.is_comparison() {
                    return Err("vector comparisons are not supported".into());
                }
                let a = self.vec_expr(cur, lhs, ty)?;
                let b = self.vec_expr(cur, rhs, ty)?;
                match (a, b) {
                    (VecVal::Full(x), VecVal::Full(y)) => {
                        let d = self.fresh_vec(ty);
                        cur.push(BcStmt::Def {
                            dst: d,
                            op: Op::VBin(*op, ty, x, y),
                        });
                        Ok(VecVal::Full(d))
                    }
                    (VecVal::Halves(xl, xh), VecVal::Halves(yl, yh)) => {
                        let dl = self.fresh_vec(ty);
                        cur.push(BcStmt::Def {
                            dst: dl,
                            op: Op::VBin(*op, ty, xl, yl),
                        });
                        let dh = self.fresh_vec(ty);
                        cur.push(BcStmt::Def {
                            dst: dh,
                            op: Op::VBin(*op, ty, xh, yh),
                        });
                        Ok(VecVal::Halves(dl, dh))
                    }
                    _ => Err("mixed vector shapes in binary op".into()),
                }
            }
            Expr::Un { op, arg } => {
                let a = self.vec_expr(cur, arg, ty)?;
                Ok(match a {
                    VecVal::Full(x) => {
                        let d = self.fresh_vec(ty);
                        cur.push(BcStmt::Def {
                            dst: d,
                            op: Op::VUn(*op, ty, x),
                        });
                        VecVal::Full(d)
                    }
                    VecVal::Halves(l, h) => {
                        let dl = self.fresh_vec(ty);
                        cur.push(BcStmt::Def {
                            dst: dl,
                            op: Op::VUn(*op, ty, l),
                        });
                        let dh = self.fresh_vec(ty);
                        cur.push(BcStmt::Def {
                            dst: dh,
                            op: Op::VUn(*op, ty, h),
                        });
                        VecVal::Halves(dl, dh)
                    }
                })
            }
            Expr::Cast { ty: to, arg } => {
                assert_eq!(*to, ty, "checked by the validator");
                let from = infer_expr(self.kernel(), arg).unwrap_or(ty);
                if from == ty {
                    return self.vec_expr(cur, arg, ty);
                }
                if from.size() == ty.size() && from.is_int() != ty.is_int() {
                    // Lane-wise conversion.
                    self.feature(Feature::Cvt);
                    let a = self.vec_expr(cur, arg, from)?;
                    let mk = |dst, v| BcStmt::Def {
                        dst,
                        op: if from.is_int() {
                            Op::CvtInt2Fp(from, v)
                        } else {
                            Op::CvtFp2Int(from, v)
                        },
                    };
                    return Ok(match a {
                        VecVal::Full(v) => {
                            let d = self.fresh_vec(ty);
                            cur.push(mk(d, v));
                            VecVal::Full(d)
                        }
                        VecVal::Halves(l, h) => {
                            let dl = self.fresh_vec(ty);
                            cur.push(mk(dl, l));
                            let dh = self.fresh_vec(ty);
                            cur.push(mk(dh, h));
                            VecVal::Halves(dl, dh)
                        }
                    });
                }
                if ty.size() == 2 * from.size() && from.size() == self.vf_ty.size() {
                    // Widening promotion: unpack halves.
                    let v = self.vec_expr(cur, arg, from)?.full()?;
                    let lo = self.fresh_vec(ty);
                    cur.push(BcStmt::Def {
                        dst: lo,
                        op: Op::UnpackLo(from, v),
                    });
                    let hi = self.fresh_vec(ty);
                    cur.push(BcStmt::Def {
                        dst: hi,
                        op: Op::UnpackHi(from, v),
                    });
                    return Ok(VecVal::Halves(lo, hi));
                }
                if from.size() == 2 * ty.size() && ty.size() == self.vf_ty.size() {
                    // Narrowing demotion: pack halves.
                    let v = self.vec_expr(cur, arg, from)?;
                    let VecVal::Halves(l, h) = v else {
                        return Err("narrowing cast of full-width value".into());
                    };
                    let d = self.fresh_vec(ty);
                    cur.push(BcStmt::Def {
                        dst: d,
                        op: Op::Pack(from, l, h),
                    });
                    return Ok(VecVal::Full(d));
                }
                Err(format!("unsupported vector conversion {from} -> {ty}"))
            }
        }
    }

    // -------------- reductions --------------

    fn setup_reduction(&mut self, local: VarId, value: &Expr) -> Result<(), String> {
        let (op, e) = reduction_of(self.kernel(), local, value)
            .ok_or_else(|| "unrecognized reduction".to_owned())?;
        let s_ty = self.kernel().var(local).ty;
        let kind;
        let acc_ty;
        // The dot/SAD idioms accumulate with `+=` only; a min/max/sub of
        // the same multiply shape is a plain reduction.
        let dot = if op == BinOp::Add {
            dot_pattern(self.kernel(), e, s_ty, self.vf_ty)
        } else {
            None
        };
        let sad = if op == BinOp::Add {
            sad_pattern(self.kernel(), e, s_ty, self.vf_ty)
        } else {
            None
        };
        if let Some((a, b, in_ty)) = dot {
            kind = ReductionKind::Dot { a, b, in_ty };
            acc_ty = in_ty.widened().unwrap();
            self.feature(Feature::DotProduct);
            self.feature(Feature::Reduction);
        } else if let Some((a, b)) = sad {
            kind = ReductionKind::Sad { a, b };
            acc_ty = ScalarTy::U32;
            self.feature(Feature::AbsDiff);
            self.feature(Feature::Reduction);
        } else {
            if s_ty.size() != self.vf_ty.size() {
                return Err(format!(
                    "reduction type {s_ty} wider than the loop's VF type {}",
                    self.vf_ty
                ));
            }
            kind = ReductionKind::Plain;
            acc_ty = s_ty;
            self.feature(Feature::Reduction);
        }

        // Prologue: vacc = init_reduc(s, neutral)
        let s_reg = self.vx.em.var_reg(self.f, local);
        let init_val: Operand = if acc_ty == s_ty {
            Operand::Reg(s_reg)
        } else {
            let c = self.fresh_scalar(acc_ty);
            self.pre.push(BcStmt::Def {
                dst: c,
                op: Op::SCast {
                    from: s_ty,
                    to: acc_ty,
                    arg: Operand::Reg(s_reg),
                },
            });
            Operand::Reg(c)
        };
        let neutral = match op {
            // Sub lanes start at 0 too: lane k accumulates −Σ eₖ and the
            // plus-fold recovers s₀ − Σ e.
            BinOp::Add | BinOp::Sub => {
                if acc_ty.is_float() {
                    Operand::ConstF(0.0)
                } else {
                    Operand::ConstI(0)
                }
            }
            // min/max: pad with the initial value itself.
            _ => init_val,
        };
        let vacc = self.fresh_vec(acc_ty);
        self.pre.push(BcStmt::Def {
            dst: vacc,
            op: Op::InitReduc(acc_ty, init_val, neutral),
        });
        self.reductions.push(ReductionState {
            local,
            op,
            vacc,
            acc_ty,
            kind,
        });
        Ok(())
    }

    fn emit_reduction_step(&mut self, cur: &mut Vec<BcStmt>, idx: usize) -> Result<(), String> {
        let (kind, op, vacc, acc_ty) = {
            let r = &self.reductions[idx];
            (r.kind.clone(), r.op, r.vacc, r.acc_ty)
        };
        match kind {
            ReductionKind::Plain => {
                // Re-fetch the expression each time from the reduction
                // statement; stored at setup time via closure capture is
                // avoided by re-deriving in emit_body.
                unreachable!("plain reductions are emitted inline in emit_body")
            }
            ReductionKind::Dot { a, b, in_ty } => {
                let va = self.vec_expr(cur, &a, in_ty)?.full()?;
                let vb = self.vec_expr(cur, &b, in_ty)?.full()?;
                cur.push(BcStmt::Def {
                    dst: vacc,
                    op: Op::DotProduct(in_ty, va, vb, vacc),
                });
                Ok(())
            }
            ReductionKind::Sad { a, b } => {
                let va = self.vec_expr(cur, &a, ScalarTy::U8)?.full()?;
                let vb = self.vec_expr(cur, &b, ScalarTy::U8)?.full()?;
                let ones = {
                    let key = "sad_ones".to_owned();
                    if let Some(VecVal::Full(r)) = self.splat_cache.get(&key) {
                        *r
                    } else {
                        let r = self.fresh_vec(ScalarTy::U16);
                        self.pre.push(BcStmt::Def {
                            dst: r,
                            op: Op::InitUniform(ScalarTy::U16, Operand::ConstI(1)),
                        });
                        self.splat_cache.insert(key, VecVal::Full(r));
                        r
                    }
                };
                for hi in [false, true] {
                    let pa = self.fresh_vec(ScalarTy::U16);
                    cur.push(BcStmt::Def {
                        dst: pa,
                        op: if hi {
                            Op::UnpackHi(ScalarTy::U8, va)
                        } else {
                            Op::UnpackLo(ScalarTy::U8, va)
                        },
                    });
                    let pb = self.fresh_vec(ScalarTy::U16);
                    cur.push(BcStmt::Def {
                        dst: pb,
                        op: if hi {
                            Op::UnpackHi(ScalarTy::U8, vb)
                        } else {
                            Op::UnpackLo(ScalarTy::U8, vb)
                        },
                    });
                    let mx = self.fresh_vec(ScalarTy::U16);
                    cur.push(BcStmt::Def {
                        dst: mx,
                        op: Op::VBin(BinOp::Max, ScalarTy::U16, pa, pb),
                    });
                    let mn = self.fresh_vec(ScalarTy::U16);
                    cur.push(BcStmt::Def {
                        dst: mn,
                        op: Op::VBin(BinOp::Min, ScalarTy::U16, pa, pb),
                    });
                    let d = self.fresh_vec(ScalarTy::U16);
                    cur.push(BcStmt::Def {
                        dst: d,
                        op: Op::VBin(BinOp::Sub, ScalarTy::U16, mx, mn),
                    });
                    cur.push(BcStmt::Def {
                        dst: vacc,
                        op: Op::DotProduct(ScalarTy::U16, d, ones, vacc),
                    });
                }
                let _ = (op, acc_ty);
                Ok(())
            }
        }
    }

    // -------------- statements --------------

    fn emit_body(&mut self, body: &[Stmt], cur: &mut Vec<BcStmt>) -> Result<(), String> {
        // Strided store groups are handled pairwise; collect indices of
        // statements consumed by a group so they are skipped.
        let mut consumed = vec![false; body.len()];
        for i in 0..body.len() {
            if consumed[i] {
                continue;
            }
            if let Stmt::Store { array, index, .. } = &body[i] {
                let aff = analyze(self.kernel(), index);
                if let Some(aff) = aff {
                    if aff.coeff_of(self.iv) == Coeff::Const(2) {
                        // find the partner store with offset +1
                        let partner = (i + 1..body.len()).find(|&j| {
                            if consumed[j] {
                                return false;
                            }
                            if let Stmt::Store {
                                array: a2,
                                index: idx2,
                                ..
                            } = &body[j]
                            {
                                if a2 != array {
                                    return false;
                                }
                                analyze(self.kernel(), idx2)
                                    .and_then(|a2f| a2f.minus(&aff))
                                    .and_then(|d| d.as_const())
                                    == Some(1)
                            } else {
                                false
                            }
                        });
                        let j = partner.ok_or_else(|| {
                            "stride-2 store without an interleaving partner".to_owned()
                        })?;
                        consumed[i] = true;
                        consumed[j] = true;
                        self.emit_interleaved_stores(cur, &body[i], &body[j])?;
                        continue;
                    }
                }
            }
            consumed[i] = true;
            self.emit_one(&body[i], cur)?;
        }
        Ok(())
    }

    fn emit_one(&mut self, s: &Stmt, cur: &mut Vec<BcStmt>) -> Result<(), String> {
        match s {
            Stmt::Assign { var, value } => {
                if self.inner_vars.is_empty() && value.uses_var(*var) {
                    // Reduction step (prologue prepared in setup).
                    let idx = self
                        .reductions
                        .iter()
                        .position(|r| r.local == *var)
                        .ok_or_else(|| "unprepared reduction".to_owned())?;
                    if self.reductions[idx].kind == ReductionKind::Plain {
                        let (op, vacc, acc_ty) = {
                            let r = &self.reductions[idx];
                            (r.op, r.vacc, r.acc_ty)
                        };
                        let (_, e) = reduction_of(self.kernel(), *var, value).unwrap();
                        let ev = self.vec_expr(cur, e, acc_ty)?.full()?;
                        cur.push(BcStmt::Def {
                            dst: vacc,
                            op: Op::VBin(op, acc_ty, vacc, ev),
                        });
                    } else {
                        self.emit_reduction_step(cur, idx)?;
                    }
                    Ok(())
                } else {
                    // Vector local (per-lane value). It gets a dedicated
                    // register: aliasing the RHS would break when the RHS
                    // is a cached loop-invariant splat and the local is
                    // re-assigned inside a serial loop.
                    let ty = self.kernel().var(*var).ty;
                    let v = self.vec_expr(cur, value, ty)?.full()?;
                    let r = match self.vec_locals.get(var) {
                        Some((r, _)) => *r,
                        None => {
                            let r = self.fresh_vec(ty);
                            self.vec_locals.insert(*var, (r, ty));
                            r
                        }
                    };
                    cur.push(BcStmt::Def {
                        dst: r,
                        op: Op::Copy(Operand::Reg(v)),
                    });
                    Ok(())
                }
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let elem = self.kernel().array(*array).elem;
                let affine = analyze(self.kernel(), index)
                    .ok_or_else(|| "non-affine store subscript".to_owned())?;
                if affine.coeff_of(self.iv) != Coeff::Const(1) {
                    return Err("store stride must be 1 (or a 2-group)".into());
                }
                let v = self.vec_expr(cur, value, elem)?.full()?;
                let (mis, modulo) = self.hint_of(&affine, elem.size());
                let (core, offset) = split_const_offset(index);
                let idx_op = self.vx.em.emit_expr(self.f, cur, core, ScalarTy::I64);
                cur.push(BcStmt::VStore {
                    ty: elem,
                    addr: Addr {
                        base: ArraySym(array.0),
                        index: idx_op,
                        offset,
                    },
                    src: v,
                    mis,
                    modulo,
                });
                Ok(())
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                // Serial loop inside the vectorized one (outer-loop mode).
                let lo_v = self.vx.em.emit_expr(self.f, cur, lo, ScalarTy::I64);
                let hi_v = self.vx.em.emit_expr(self.f, cur, hi, ScalarTy::I64);
                let ivar = self.vx.em.var_reg(self.f, *var);
                self.inner_vars.push(*var);
                let mut inner = Vec::new();
                // Reductions over serial loops are vector locals updated
                // serially; prepare them as vector locals.
                for st in body {
                    self.emit_one(st, &mut inner)?;
                }
                self.inner_vars.pop();
                cur.push(BcStmt::Loop {
                    var: ivar,
                    lo: lo_v,
                    limit: hi_v,
                    step: Step::Const(*step),
                    kind: LoopKind::Plain,
                    group: 0,
                    body: inner,
                });
                Ok(())
            }
        }
    }

    fn emit_interleaved_stores(
        &mut self,
        cur: &mut Vec<BcStmt>,
        s0: &Stmt,
        s1: &Stmt,
    ) -> Result<(), String> {
        self.feature(Feature::Strided);
        let (
            Stmt::Store {
                array,
                index,
                value: v0,
            },
            Stmt::Store { value: v1, .. },
        ) = (s0, s1)
        else {
            unreachable!()
        };
        let elem = self.kernel().array(*array).elem;
        let a = self.vec_expr(cur, v0, elem)?.full()?;
        let b = self.vec_expr(cur, v1, elem)?.full()?;
        let il = self.fresh_vec(elem);
        cur.push(BcStmt::Def {
            dst: il,
            op: Op::InterleaveLo(elem, a, b),
        });
        let ih = self.fresh_vec(elem);
        cur.push(BcStmt::Def {
            dst: ih,
            op: Op::InterleaveHi(elem, a, b),
        });
        let affine = analyze(self.kernel(), index).unwrap();
        let (mis, modulo) = self.hint_of(&affine, elem.size());
        let (core, offset) = split_const_offset(index);
        let idx_op = self.vx.em.emit_expr(self.f, cur, core, ScalarTy::I64);
        cur.push(BcStmt::VStore {
            ty: elem,
            addr: Addr {
                base: ArraySym(array.0),
                index: idx_op,
                offset,
            },
            src: il,
            mis,
            modulo,
        });
        // Second store at +VF elements.
        let idx2 = self.fresh_scalar(ScalarTy::I64);
        cur.push(BcStmt::Def {
            dst: idx2,
            op: Op::SBin(BinOp::Add, ScalarTy::I64, idx_op, Operand::Reg(self.vf)),
        });
        let mis2 = if modulo == 0 { 0 } else { mis }; // +VS keeps the class
        cur.push(BcStmt::VStore {
            ty: elem,
            addr: Addr {
                base: ArraySym(array.0),
                index: Operand::Reg(idx2),
                offset,
            },
            src: ih,
            mis: mis2,
            modulo,
        });
        Ok(())
    }
}

/// Dot-product pattern: `(W)a * (W)b` with `W = widened(vf_ty)` and
/// narrow operands of the loop's VF type.
fn dot_pattern(
    k: &Kernel,
    e: &Expr,
    s_ty: ScalarTy,
    vf_ty: ScalarTy,
) -> Option<(Expr, Expr, ScalarTy)> {
    let w = vf_ty.widened()?;
    if s_ty != w || !vf_ty.is_int() {
        return None;
    }
    if let Expr::Bin {
        op: BinOp::Mul,
        lhs,
        rhs,
    } = e
    {
        if let (Expr::Cast { ty: ta, arg: a }, Expr::Cast { ty: tb, arg: b }) = (&**lhs, &**rhs) {
            let na = infer_expr(k, a)?;
            let nb = infer_expr(k, b)?;
            if *ta == w && *tb == w && na == vf_ty && nb == vf_ty {
                return Some(((**a).clone(), (**b).clone(), vf_ty));
            }
        }
    }
    None
}

/// SAD pattern: `(int) abs((short)a - (short)b)` over u8 data.
fn sad_pattern(k: &Kernel, e: &Expr, s_ty: ScalarTy, vf_ty: ScalarTy) -> Option<(Expr, Expr)> {
    if s_ty != ScalarTy::I32 || vf_ty != ScalarTy::U8 {
        return None;
    }
    let Expr::Cast {
        ty: ScalarTy::I32,
        arg,
    } = e
    else {
        return None;
    };
    let Expr::Un {
        op: UnOp::Abs,
        arg: diff,
    } = &**arg
    else {
        return None;
    };
    let Expr::Bin {
        op: BinOp::Sub,
        lhs,
        rhs,
    } = &**diff
    else {
        return None;
    };
    let (Expr::Cast { ty: ta, arg: a }, Expr::Cast { ty: tb, arg: b }) = (&**lhs, &**rhs) else {
        return None;
    };
    if !matches!(ta, ScalarTy::I16) || !matches!(tb, ScalarTy::I16) {
        return None;
    }
    if infer_expr(k, a)? != ScalarTy::U8 || infer_expr(k, b)? != ScalarTy::U8 {
        return None;
    }
    Some(((**a).clone(), (**b).clone()))
}

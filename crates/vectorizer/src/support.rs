//! Target capability queries used by the native-mode vectorizer (the
//! split-mode vectorizer never consults a target — that is the point).

use vapor_bytecode::OpClass;
use vapor_targets::TargetDesc;

/// Whether a target claims vector support for an operation class (the
/// same notion the online stage folds `ops_supported` guards with).
pub fn target_claims_class(t: &TargetDesc, c: OpClass) -> bool {
    match c {
        OpClass::FDiv => t.has_fdiv,
        OpClass::FSqrt => t.has_fsqrt,
        OpClass::WidenMult => t.has_widen_mult,
        OpClass::Cvt => t.has_cvt,
        OpClass::DotProduct => t.has_dot_product,
        OpClass::PerLaneShift => t.has_per_lane_shift,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapor_targets::{altivec, neon64, sse};

    #[test]
    fn altivec_lacks_fdiv_but_neon_claims_cvt() {
        assert!(!target_claims_class(&altivec(), OpClass::FDiv));
        assert!(target_claims_class(&sse(), OpClass::FDiv));
        // NEON claims cvt (and implements it via a helper) — the claim is
        // what guard folding sees.
        assert!(target_claims_class(&neon64(), OpClass::Cvt));
    }
}

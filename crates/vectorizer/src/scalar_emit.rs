//! IR → scalar bytecode emission.
//!
//! Used for three things: the plain scalar bytecode baselines of the
//! experiments (unvectorized flow), the scalar arms/tail loops the
//! vectorizer emits next to every vector loop, and the scalar bound and
//! address computations inside vectorized code.

use std::collections::HashMap;

use vapor_bytecode::LoopKind;
use vapor_bytecode::{
    Addr, ArraySym, BcArray, BcFunction, BcParam, BcStmt, BcTy, Op, Operand, Reg,
};
use vapor_ir::{infer_expr, BinOp, Expr, Kernel, ScalarTy, Stmt, VarId, VarKind};

/// Emits scalar bytecode for a kernel's IR, maintaining the IR-variable →
/// bytecode-register mapping (shared with the vectorizer so vector and
/// scalar arms agree on where locals live).
#[derive(Debug)]
pub struct ScalarEmitter<'k> {
    /// The source kernel.
    pub kernel: &'k Kernel,
    /// Variable bindings (params pre-bound).
    pub vmap: HashMap<VarId, Reg>,
}

impl<'k> ScalarEmitter<'k> {
    /// New emitter over a function created by [`new_function`].
    pub fn new(kernel: &'k Kernel) -> ScalarEmitter<'k> {
        let mut vmap = HashMap::new();
        let mut idx = 0u32;
        for (vid, decl) in kernel.vars.iter().enumerate() {
            if decl.kind == VarKind::Param {
                vmap.insert(VarId(vid as u32), Reg(idx));
                idx += 1;
            }
        }
        ScalarEmitter { kernel, vmap }
    }

    /// The bytecode register of an IR variable, creating one if needed.
    pub fn var_reg(&mut self, f: &mut BcFunction, v: VarId) -> Reg {
        if let Some(r) = self.vmap.get(&v) {
            return *r;
        }
        let ty = self.kernel.var(v).ty;
        let r = f.fresh_reg(BcTy::Scalar(ty));
        self.vmap.insert(v, r);
        r
    }

    /// Emit `e` at type `ty` into `out`, returning the value operand.
    pub fn emit_expr(
        &mut self,
        f: &mut BcFunction,
        out: &mut Vec<BcStmt>,
        e: &Expr,
        ty: ScalarTy,
    ) -> Operand {
        match e {
            Expr::Int(v) => {
                if ty.is_float() {
                    Operand::ConstF(*v as f64)
                } else {
                    Operand::ConstI(vapor_ir::sem::wrap_int(ty, *v))
                }
            }
            Expr::Float(v) => Operand::ConstF(*v),
            Expr::Var(v) => Operand::Reg(self.var_reg(f, *v)),
            Expr::Load { array, index } => {
                let addr = self.emit_addr(f, out, *array, index);
                let dst = f.fresh_reg(BcTy::Scalar(ty));
                out.push(BcStmt::Def {
                    dst,
                    op: Op::SLoad(ty, addr),
                });
                Operand::Reg(dst)
            }
            Expr::Bin { op, lhs, rhs } => {
                let operand_ty = if op.is_comparison() {
                    infer_expr(self.kernel, lhs)
                        .or_else(|| infer_expr(self.kernel, rhs))
                        .unwrap_or(ScalarTy::I64)
                } else {
                    ty
                };
                let a = self.emit_expr(f, out, lhs, operand_ty);
                let b = self.emit_expr(f, out, rhs, operand_ty);
                let rty = if op.is_comparison() {
                    ScalarTy::I32
                } else {
                    ty
                };
                let dst = f.fresh_reg(BcTy::Scalar(rty));
                out.push(BcStmt::Def {
                    dst,
                    op: Op::SBin(*op, operand_ty, a, b),
                });
                Operand::Reg(dst)
            }
            Expr::Un { op, arg } => {
                let a = self.emit_expr(f, out, arg, ty);
                let dst = f.fresh_reg(BcTy::Scalar(ty));
                out.push(BcStmt::Def {
                    dst,
                    op: Op::SUn(*op, ty, a),
                });
                Operand::Reg(dst)
            }
            Expr::Cast { ty: to, arg } => {
                let from = infer_expr(self.kernel, arg).unwrap_or(match &**arg {
                    Expr::Float(_) => ScalarTy::F64,
                    _ => ScalarTy::I64,
                });
                let a = self.emit_expr(f, out, arg, from);
                let dst = f.fresh_reg(BcTy::Scalar(*to));
                out.push(BcStmt::Def {
                    dst,
                    op: Op::SCast {
                        from,
                        to: *to,
                        arg: a,
                    },
                });
                Operand::Reg(dst)
            }
        }
    }

    /// Emit an address for `array[index]`, splitting a trailing constant
    /// offset into the `Addr` displacement.
    pub fn emit_addr(
        &mut self,
        f: &mut BcFunction,
        out: &mut Vec<BcStmt>,
        array: vapor_ir::ArrayId,
        index: &Expr,
    ) -> Addr {
        let (core, offset) = split_const_offset(index);
        let idx = self.emit_expr(f, out, core, ScalarTy::I64);
        Addr {
            base: ArraySym(array.0),
            index: idx,
            offset,
        }
    }

    /// Emit a statement (and its nested loops) as scalar bytecode.
    pub fn emit_stmt(&mut self, f: &mut BcFunction, out: &mut Vec<BcStmt>, s: &Stmt) {
        match s {
            Stmt::Assign { var, value } => {
                let ty = self.kernel.var(*var).ty;
                let v = self.emit_expr(f, out, value, ty);
                let dst = self.var_reg(f, *var);
                out.push(BcStmt::Def {
                    dst,
                    op: Op::Copy(v),
                });
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let elem = self.kernel.array(*array).elem;
                let v = self.emit_expr(f, out, value, elem);
                let addr = self.emit_addr(f, out, *array, index);
                out.push(BcStmt::SStore {
                    ty: elem,
                    addr,
                    src: v,
                });
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let lo_v = self.emit_expr(f, out, lo, ScalarTy::I64);
                let hi_v = self.emit_expr(f, out, hi, ScalarTy::I64);
                let ivar = self.var_reg(f, *var);
                let mut inner = Vec::new();
                for st in body {
                    self.emit_stmt(f, &mut inner, st);
                }
                out.push(BcStmt::Loop {
                    var: ivar,
                    lo: lo_v,
                    limit: hi_v,
                    step: vapor_bytecode::Step::Const(*step),
                    kind: LoopKind::Plain,
                    group: 0,
                    body: inner,
                });
            }
        }
    }
}

/// Split `e + c` / `e - c` into `(e, c)`; otherwise `(e, 0)`.
pub fn split_const_offset(e: &Expr) -> (&Expr, i64) {
    if let Expr::Bin { op, lhs, rhs } = e {
        match (op, &**rhs) {
            (BinOp::Add, Expr::Int(c)) => return (lhs, *c),
            (BinOp::Sub, Expr::Int(c)) => return (lhs, -*c),
            _ => {}
        }
        if let (BinOp::Add, Expr::Int(c)) = (op, &**lhs) {
            return (rhs, *c);
        }
    }
    (e, 0)
}

/// Create the bytecode function shell for a kernel (params and arrays
/// carried over with their declaration kinds).
pub fn new_function(kernel: &Kernel) -> BcFunction {
    let params: Vec<BcParam> = kernel
        .vars
        .iter()
        .filter(|v| v.kind == VarKind::Param)
        .map(|v| BcParam {
            name: v.name.clone(),
            ty: v.ty,
        })
        .collect();
    let arrays: Vec<BcArray> = kernel
        .arrays
        .iter()
        .map(|a| BcArray {
            name: a.name.clone(),
            elem: a.elem,
            kind: a.kind,
        })
        .collect();
    BcFunction::new(kernel.name.clone(), params, arrays)
}

/// Compile a kernel to purely scalar bytecode (no vectorization at all) —
/// the baseline bytecode of the experiments.
pub fn emit_scalar_function(kernel: &Kernel) -> BcFunction {
    let mut f = new_function(kernel);
    let mut em = ScalarEmitter::new(kernel);
    let mut body = Vec::new();
    for s in &kernel.body {
        em.emit_stmt(&mut f, &mut body, s);
    }
    f.body = body;
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapor_frontend::parse_kernel;

    #[test]
    fn saxpy_scalar_bytecode_verifies() {
        let k = parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap();
        let f = emit_scalar_function(&k);
        vapor_bytecode::verify_function(&f).unwrap();
        assert!(!f.has_vector_code());
        assert!(f.stmt_count() > 4);
    }

    #[test]
    fn const_offsets_fold_into_addr() {
        let k = parse_kernel(
            "kernel t(long n, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = x[i + 2]; }
             }",
        )
        .unwrap();
        let f = emit_scalar_function(&k);
        let mut found = false;
        f.walk(&mut |s| {
            if let BcStmt::Def {
                op: Op::SLoad(_, addr),
                ..
            } = s
            {
                if addr.offset == 2 {
                    found = true;
                }
            }
        });
        assert!(
            found,
            "expected &x[i+2] addressing:\n{}",
            vapor_bytecode::print_function(&f)
        );
    }

    #[test]
    fn nested_loops_and_locals() {
        let k = parse_kernel(
            "kernel sfir(long n, long nt, short x[], short c[], int y[]) {
               int s;
               for (long i = 0; i < n; i++) {
                 s = 0;
                 for (long j = 0; j < nt; j++) { s += (int)x[i + j] * (int)c[j]; }
                 y[i] = s;
               }
             }",
        )
        .unwrap();
        let f = emit_scalar_function(&k);
        vapor_bytecode::verify_function(&f).unwrap();
        // two nested Plain loops
        let mut depth = 0;
        fn max_depth(stmts: &[BcStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    BcStmt::Loop { body, .. } => 1 + max_depth(body),
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        depth += max_depth(&f.body);
        assert_eq!(depth, 2);
    }
}

//! # vapor-vectorizer — the offline compilation stage
//!
//! GCC's role in the paper: an aggressive auto-vectorizer that runs
//! *offline*, performs the heavyweight analyses (§II) — dependence
//! testing, reduction and idiom recognition, alignment analysis, loop
//! selection — and encodes its decisions into the portable vectorized
//! bytecode of `vapor-bytecode`, parameterized by `get_VF` and guarded by
//! `version_guard`/`loop_bound` hints so a lightweight online stage can
//! finish the job on any SIMD target (§III-B).
//!
//! Run in **split mode** (no target) it produces the portable bytecode of
//! the paper's contribution; run in **native mode** (target known) it
//! models the monolithic offline compiler used as the baseline.

pub mod affine;
pub mod depgraph;
pub mod scalar_emit;
pub mod slp;
pub mod support;
pub mod transform;

pub use affine::{analyze, Affine, Coeff};
pub use depgraph::{classify_dep, DepClass, DepGraph, RejectCategory, Rejection, Scc};
pub use scalar_emit::{emit_scalar_function, new_function, ScalarEmitter};
pub use transform::{
    vectorize, Feature, LoopReport, PartReport, VectorizeOptions, VectorizeResult,
};

//! Affine analysis of subscript expressions (the scalar-evolution slice
//! the vectorizer needs).
//!
//! A subscript is decomposed into `Σ coeff_v · v  +  Σ c_p · p  +  k`
//! where `v` ranges over loop variables (coefficients may be constants or
//! a single parameter symbol, covering `i*N + j` row-major walks), `p`
//! over scalar `long` parameters, and `k` is a constant.

use std::collections::BTreeMap;

use vapor_ir::{BinOp, Expr, Kernel, VarId, VarKind};

/// Coefficient of a loop variable: constant or a parameter symbol times a
/// constant (`i * N`, `i * 2 * N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coeff {
    /// Constant coefficient.
    Const(i64),
    /// `c * param` coefficient.
    Sym(VarId, i64),
}

impl Coeff {
    /// The constant value, if constant.
    pub fn as_const(self) -> Option<i64> {
        match self {
            Coeff::Const(c) => Some(c),
            Coeff::Sym(..) => None,
        }
    }
}

/// An affine form over loop variables and parameters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Affine {
    /// Per-loop-variable coefficients.
    pub loops: BTreeMap<VarId, Coeff>,
    /// Per-parameter linear terms (parameters appearing additively).
    pub params: BTreeMap<VarId, i64>,
    /// Constant term.
    pub konst: i64,
}

impl Affine {
    /// The zero form.
    pub fn zero() -> Affine {
        Affine::default()
    }

    fn constant(k: i64) -> Affine {
        Affine {
            konst: k,
            ..Default::default()
        }
    }

    fn var(k: &Kernel, v: VarId) -> Option<Affine> {
        let mut a = Affine::zero();
        match k.var(v).kind {
            VarKind::Loop => {
                a.loops.insert(v, Coeff::Const(1));
            }
            VarKind::Param => {
                a.params.insert(v, 1);
            }
            VarKind::Local => return None, // locals are not affine symbols
        }
        Some(a)
    }

    fn add(mut self, other: &Affine, sign: i64) -> Option<Affine> {
        for (v, c) in &other.loops {
            let cur = self.loops.remove(v);
            let merged = match (cur, *c) {
                (None, Coeff::Const(x)) => Coeff::Const(sign * x),
                (None, Coeff::Sym(p, x)) => Coeff::Sym(p, sign * x),
                (Some(Coeff::Const(a)), Coeff::Const(b)) => Coeff::Const(a + sign * b),
                (Some(Coeff::Sym(p, a)), Coeff::Sym(q, b)) if p == q => Coeff::Sym(p, a + sign * b),
                _ => return None, // mixed constant/symbolic coefficients
            };
            if !matches!(merged, Coeff::Const(0) | Coeff::Sym(_, 0)) {
                self.loops.insert(*v, merged);
            }
        }
        for (p, c) in &other.params {
            let e = self.params.entry(*p).or_insert(0);
            *e += sign * c;
            if *e == 0 {
                self.params.remove(p);
            }
        }
        self.konst += sign * other.konst;
        Some(self)
    }

    pub(crate) fn scale_const(mut self, c: i64) -> Option<Affine> {
        for coeff in self.loops.values_mut() {
            *coeff = match *coeff {
                Coeff::Const(x) => Coeff::Const(x * c),
                Coeff::Sym(p, x) => Coeff::Sym(p, x * c),
            };
        }
        for v in self.params.values_mut() {
            *v *= c;
        }
        self.konst *= c;
        Some(self)
    }

    /// Multiply by a single parameter symbol (only pure loop-var forms
    /// with constant coefficients can absorb it).
    fn scale_sym(mut self, p: VarId) -> Option<Affine> {
        if !self.params.is_empty() || self.konst != 0 {
            return None; // would create p*q or p*const terms beyond our form
        }
        for coeff in self.loops.values_mut() {
            *coeff = match *coeff {
                Coeff::Const(x) => Coeff::Sym(p, x),
                Coeff::Sym(..) => return None,
            };
        }
        Some(self)
    }

    /// Coefficient of a loop variable (0 if absent).
    pub fn coeff_of(&self, v: VarId) -> Coeff {
        self.loops.get(&v).copied().unwrap_or(Coeff::Const(0))
    }

    /// Whether the form mentions the loop variable at all.
    pub fn uses_loop(&self, v: VarId) -> bool {
        self.loops.contains_key(&v)
    }

    /// Whether the form is free of every variable in `vars`.
    pub fn invariant_of(&self, vars: &[VarId]) -> bool {
        vars.iter().all(|v| !self.loops.contains_key(v))
    }

    /// The difference `self - other` if representable.
    pub fn minus(&self, other: &Affine) -> Option<Affine> {
        self.clone().add(other, -1)
    }

    /// If the form is a plain constant, its value.
    pub fn as_const(&self) -> Option<i64> {
        if self.loops.is_empty() && self.params.is_empty() {
            Some(self.konst)
        } else {
            None
        }
    }
}

/// Analyze an index expression into affine form. Returns `None` for
/// non-affine subscripts (locals, products of loop variables, ...).
pub fn analyze(k: &Kernel, e: &Expr) -> Option<Affine> {
    match e {
        Expr::Int(v) => Some(Affine::constant(*v)),
        Expr::Float(_) => None,
        Expr::Var(v) => Affine::var(k, *v),
        Expr::Load { .. } => None,
        Expr::Cast { arg, .. } => analyze(k, arg),
        Expr::Un {
            op: vapor_ir::UnOp::Neg,
            arg,
        } => analyze(k, arg)?.scale_const(-1),
        Expr::Un { .. } => None,
        Expr::Bin { op, lhs, rhs } => {
            let l = analyze(k, lhs);
            let r = analyze(k, rhs);
            match op {
                BinOp::Add => l?.add(&r?, 1),
                BinOp::Sub => l?.add(&r?, -1),
                BinOp::Mul => {
                    let (l, r) = (l?, r?);
                    if let Some(c) = r.as_const() {
                        l.scale_const(c)
                    } else if let Some(c) = l.as_const() {
                        r.scale_const(c)
                    } else if r.loops.is_empty() && r.params.len() == 1 && r.konst == 0 {
                        let (&p, &c) = r.params.iter().next().unwrap();
                        if c == 1 {
                            l.scale_sym(p)
                        } else {
                            l.scale_const(c)?.scale_sym(p)
                        }
                    } else if l.loops.is_empty() && l.params.len() == 1 && l.konst == 0 {
                        let (&p, &c) = l.params.iter().next().unwrap();
                        if c == 1 {
                            r.scale_sym(p)
                        } else {
                            r.scale_const(c)?.scale_sym(p)
                        }
                    } else {
                        None
                    }
                }
                BinOp::Shl => {
                    let c = r?.as_const()?;
                    if (0..31).contains(&c) {
                        l?.scale_const(1 << c)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapor_ir::{KernelBuilder, ScalarTy};

    fn kernel() -> (Kernel, VarId, VarId, VarId, VarId) {
        let mut b = KernelBuilder::new("t");
        let n = b.scalar_param("n", ScalarTy::I64);
        let m = b.scalar_param("m", ScalarTy::I64);
        let i = b.fresh_loop_var("i");
        let j = b.fresh_loop_var("j");
        (b.finish(), n, m, i, j)
    }

    #[test]
    fn linear_combination() {
        let (k, n, _m, i, j) = kernel();
        // i*n + j + 3
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::Var(i), Expr::Var(n)),
                Expr::Var(j),
            ),
            Expr::Int(3),
        );
        let a = analyze(&k, &e).unwrap();
        assert_eq!(a.coeff_of(i), Coeff::Sym(n, 1));
        assert_eq!(a.coeff_of(j), Coeff::Const(1));
        assert_eq!(a.konst, 3);
    }

    #[test]
    fn strided_and_shifted() {
        let (k, _, _, i, _) = kernel();
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Int(2), Expr::Var(i)),
            Expr::Int(1),
        );
        let a = analyze(&k, &e).unwrap();
        assert_eq!(a.coeff_of(i), Coeff::Const(2));
        assert_eq!(a.konst, 1);

        let e = Expr::bin(BinOp::Shl, Expr::Var(i), Expr::Int(3));
        let a = analyze(&k, &e).unwrap();
        assert_eq!(a.coeff_of(i), Coeff::Const(8));
    }

    #[test]
    fn subtraction_cancels() {
        let (k, _, _, i, _) = kernel();
        let e = Expr::bin(BinOp::Sub, Expr::Var(i), Expr::Var(i));
        let a = analyze(&k, &e).unwrap();
        assert_eq!(a.as_const(), Some(0));
        assert!(!a.uses_loop(i));
    }

    #[test]
    fn nonaffine_rejected() {
        let (k, _, _, i, j) = kernel();
        // i * j is not affine.
        let e = Expr::bin(BinOp::Mul, Expr::Var(i), Expr::Var(j));
        assert!(analyze(&k, &e).is_none());
        // loads are not affine
        let e2 = Expr::bin(BinOp::Mul, Expr::Var(i), Expr::Var(i));
        assert!(analyze(&k, &e2).is_none());
    }

    #[test]
    fn difference_of_offsets() {
        let (k, _, _, i, _) = kernel();
        let a1 = analyze(&k, &Expr::bin(BinOp::Add, Expr::Var(i), Expr::Int(2))).unwrap();
        let a2 = analyze(&k, &Expr::Var(i)).unwrap();
        let d = a1.minus(&a2).unwrap();
        assert_eq!(d.as_const(), Some(2));
    }
}

//! Straight-line (superword-level) pre-pass.
//!
//! Detects loops whose body is a group of `G` isomorphic stores at
//! `G*i + k` for `k = 0..G-1` (the mix-streams shape: one statement per
//! audio channel) and flattens them into a single-statement loop over
//! `G*n` contiguous elements, which the loop vectorizer then handles.
//! This mirrors how SLP groups isomorphic statements and picks an
//! unrolling factor so the group fills a vector (§II(c) of the paper).

use vapor_ir::{Expr, Kernel, Stmt, VarId};

use crate::affine::{analyze, Coeff};

/// Check `e2` is `e1` with every load/store subscript shifted by exactly
/// `delta` elements (same arrays, same operators, same literals).
fn isomorphic(k: &Kernel, e1: &Expr, e2: &Expr, delta: i64) -> bool {
    match (e1, e2) {
        (Expr::Int(a), Expr::Int(b)) => a == b,
        (Expr::Float(a), Expr::Float(b)) => a == b,
        (Expr::Var(a), Expr::Var(b)) => a == b,
        (
            Expr::Load {
                array: a1,
                index: i1,
            },
            Expr::Load {
                array: a2,
                index: i2,
            },
        ) => {
            a1 == a2
                && match (analyze(k, i1), analyze(k, i2)) {
                    (Some(x), Some(y)) => y.minus(&x).and_then(|d| d.as_const()) == Some(delta),
                    _ => false,
                }
        }
        (
            Expr::Bin {
                op: o1,
                lhs: l1,
                rhs: r1,
            },
            Expr::Bin {
                op: o2,
                lhs: l2,
                rhs: r2,
            },
        ) => o1 == o2 && isomorphic(k, l1, l2, delta) && isomorphic(k, r1, r2, delta),
        (Expr::Un { op: o1, arg: a1 }, Expr::Un { op: o2, arg: a2 }) => {
            o1 == o2 && isomorphic(k, a1, a2, delta)
        }
        (Expr::Cast { ty: t1, arg: a1 }, Expr::Cast { ty: t2, arg: a2 }) => {
            t1 == t2 && isomorphic(k, a1, a2, delta)
        }
        _ => false,
    }
}

/// Rewrite every load subscript `G*i + c` as `i + c` (`i` now counts
/// elements); requires the template's loads all have coefficient `G`.
fn reindex(k: &Kernel, e: &Expr, iv: VarId, g: i64) -> Option<Expr> {
    Some(match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => e.clone(),
        Expr::Load { array, index } => {
            let aff = analyze(k, index)?;
            match aff.coeff_of(iv) {
                Coeff::Const(c) if c == g => {}
                _ => return None,
            }
            // New subscript: i + (konst + other terms); other loop terms
            // unsupported in SLP bodies.
            if aff.loops.len() != 1 || !aff.params.is_empty() {
                return None;
            }
            Expr::Load {
                array: *array,
                index: Box::new(Expr::bin(
                    vapor_ir::BinOp::Add,
                    Expr::Var(iv),
                    Expr::Int(aff.konst),
                )),
            }
        }
        Expr::Bin { op, lhs, rhs } => Expr::Bin {
            op: *op,
            lhs: Box::new(reindex(k, lhs, iv, g)?),
            rhs: Box::new(reindex(k, rhs, iv, g)?),
        },
        Expr::Un { op, arg } => Expr::Un {
            op: *op,
            arg: Box::new(reindex(k, arg, iv, g)?),
        },
        Expr::Cast { ty, arg } => Expr::Cast {
            ty: *ty,
            arg: Box::new(reindex(k, arg, iv, g)?),
        },
    })
}

fn try_merge_loop(k: &Kernel, s: &Stmt) -> Option<Stmt> {
    let Stmt::For {
        var,
        lo,
        hi,
        step: 1,
        body,
    } = s
    else {
        return None;
    };
    if !matches!(lo, Expr::Int(0)) {
        return None;
    }
    let g = body.len() as i64;
    if g < 2 {
        return None;
    }
    // All statements must be stores to the same array at G*i + k.
    let mut template: Option<(&vapor_ir::ArrayId, &Expr)> = None;
    for (idx, st) in body.iter().enumerate() {
        let Stmt::Store {
            array,
            index,
            value,
        } = st
        else {
            return None;
        };
        let aff = analyze(k, index)?;
        if aff.coeff_of(*var) != Coeff::Const(g) || aff.konst != idx as i64 {
            return None;
        }
        if aff.loops.len() != 1 || !aff.params.is_empty() {
            return None;
        }
        match &template {
            None => template = Some((array, value)),
            Some((a0, v0)) => {
                if *a0 != array || !isomorphic(k, v0, value, idx as i64) {
                    return None;
                }
            }
        }
    }
    let (array, v0) = template?;
    let new_value = reindex(k, v0, *var, g)?;
    Some(Stmt::For {
        var: *var,
        lo: Expr::Int(0),
        hi: Expr::bin(vapor_ir::BinOp::Mul, hi.clone(), Expr::Int(g)),
        step: 1,
        body: vec![Stmt::Store {
            array: *array,
            index: Expr::Var(*var),
            value: new_value,
        }],
    })
}

fn rewrite_stmt(k: &Kernel, s: &Stmt, changed: &mut bool) -> Stmt {
    if let Some(merged) = try_merge_loop(k, s) {
        *changed = true;
        return merged;
    }
    match s {
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => Stmt::For {
            var: *var,
            lo: lo.clone(),
            hi: hi.clone(),
            step: *step,
            body: body.iter().map(|st| rewrite_stmt(k, st, changed)).collect(),
        },
        other => other.clone(),
    }
}

/// Apply the SLP pre-pass; `Some(kernel')` if any group was merged.
pub fn apply(k: &Kernel) -> Option<Kernel> {
    let mut changed = false;
    let body: Vec<Stmt> = k
        .body
        .iter()
        .map(|s| rewrite_stmt(k, s, &mut changed))
        .collect();
    if changed {
        Some(Kernel {
            name: k.name.clone(),
            vars: k.vars.clone(),
            arrays: k.arrays.clone(),
            body,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapor_frontend::parse_kernel;
    use vapor_ir::{interpret, ArrayData, Bindings, ScalarTy};

    fn mix() -> Kernel {
        parse_kernel(
            "kernel mix(long n, short a[], short b[], short out[]) {
               for (long i = 0; i < n; i++) {
                 out[4*i] = (a[4*i] + b[4*i]) >> 1;
                 out[4*i + 1] = (a[4*i + 1] + b[4*i + 1]) >> 1;
                 out[4*i + 2] = (a[4*i + 2] + b[4*i + 2]) >> 1;
                 out[4*i + 3] = (a[4*i + 3] + b[4*i + 3]) >> 1;
               }
             }",
        )
        .unwrap()
    }

    #[test]
    fn merges_isomorphic_group() {
        let k = mix();
        let merged = apply(&k).expect("SLP group should merge");
        let Stmt::For { body, .. } = &merged.body[0] else {
            panic!()
        };
        assert_eq!(body.len(), 1, "group collapsed to one statement");
        vapor_ir::validate(&merged).unwrap();
    }

    #[test]
    fn merged_kernel_computes_the_same() {
        let k = mix();
        let merged = apply(&k).unwrap();
        let a: Vec<i64> = (0..32).map(|x| x * 3 - 7).collect();
        let b: Vec<i64> = (0..32).map(|x| 100 - x).collect();
        let run = |kk: &Kernel| {
            let mut env = Bindings::new();
            env.set_int("n", 8)
                .set_array("a", ArrayData::from_ints(ScalarTy::I16, &a))
                .set_array("b", ArrayData::from_ints(ScalarTy::I16, &b))
                .set_array("out", ArrayData::zeroed(ScalarTy::I16, 32));
            interpret(kk, &mut env).unwrap();
            env.array("out").unwrap().values()
        };
        assert_eq!(run(&k), run(&merged));
    }

    #[test]
    fn non_isomorphic_group_untouched() {
        let k = parse_kernel(
            "kernel t(long n, short a[], short out[]) {
               for (long i = 0; i < n; i++) {
                 out[2*i] = a[2*i];
                 out[2*i + 1] = a[2*i + 1] + 1;
               }
             }",
        )
        .unwrap();
        assert!(apply(&k).is_none());
    }

    #[test]
    fn partial_residues_untouched() {
        let k = parse_kernel(
            "kernel t(long n, short a[], short out[]) {
               for (long i = 0; i < n; i++) {
                 out[2*i] = a[2*i];
                 out[2*i] = a[2*i];
               }
             }",
        )
        .unwrap();
        assert!(apply(&k).is_none());
    }
}

//! Lexer for the mini-C kernel language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or type keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// `kernel` keyword.
    Kernel,
    /// `for` keyword.
    For,
    /// `global` keyword.
    Global,
    /// Punctuation / operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    PlusAssign,
    PlusPlus,
    Plus,
    Minus,
    Star,
    Slash,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    EqEq,
    Lt,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Float(v) => write!(f, "float `{v}`"),
            Tok::Kernel => f.write_str("`kernel`"),
            Tok::For => f.write_str("`for`"),
            Tok::Global => f.write_str("`global`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Assign => f.write_str("`=`"),
            Tok::PlusAssign => f.write_str("`+=`"),
            Tok::PlusPlus => f.write_str("`++`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Amp => f.write_str("`&`"),
            Tok::Pipe => f.write_str("`|`"),
            Tok::Caret => f.write_str("`^`"),
            Tok::Shl => f.write_str("`<<`"),
            Tok::Shr => f.write_str("`>>`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::Lt => f.write_str("`<`"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Lexical or syntax error with source location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Tokenize mini-C source. `//` line comments and `/* */` block comments
/// are skipped.
///
/// # Errors
/// Returns a [`ParseError`] for unterminated comments, malformed numbers,
/// or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(ParseError { msg: format!($($arg)*), line, col })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, line: &mut u32, col: &mut u32, n: usize| {
            for k in 0..n {
                if bytes[*i + k] == '\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
            }
            *i += n;
        };
        if c.is_whitespace() {
            advance(&mut i, &mut line, &mut col, 1);
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                advance(&mut i, &mut line, &mut col, 1);
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
            advance(&mut i, &mut line, &mut col, 2);
            loop {
                if i + 1 >= bytes.len() {
                    err!("unterminated block comment");
                }
                if bytes[i] == '*' && bytes[i + 1] == '/' {
                    advance(&mut i, &mut line, &mut col, 2);
                    break;
                }
                advance(&mut i, &mut line, &mut col, 1);
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                advance(&mut i, &mut line, &mut col, 1);
            }
            let word: String = bytes[start..i].iter().collect();
            let tok = match word.as_str() {
                "kernel" => Tok::Kernel,
                "for" => Tok::For,
                "global" => Tok::Global,
                _ => Tok::Ident(word),
            };
            toks.push(Spanned {
                tok,
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == '.'
                    || bytes[i] == 'e'
                    || bytes[i] == 'E'
                    || ((bytes[i] == '+' || bytes[i] == '-')
                        && i > start
                        && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
            {
                if bytes[i] == '.' || bytes[i] == 'e' || bytes[i] == 'E' {
                    is_float = true;
                }
                advance(&mut i, &mut line, &mut col, 1);
            }
            let text: String = bytes[start..i].iter().collect();
            let tok = if is_float {
                match text.parse::<f64>() {
                    Ok(v) => Tok::Float(v),
                    Err(_) => err!("malformed float literal `{text}`"),
                }
            } else {
                match text.parse::<i64>() {
                    Ok(v) => Tok::Int(v),
                    Err(_) => err!("malformed integer literal `{text}`"),
                }
            };
            toks.push(Spanned {
                tok,
                line: tline,
                col: tcol,
            });
            continue;
        }
        let two: Option<Tok> = if i + 1 < bytes.len() {
            match (c, bytes[i + 1]) {
                ('+', '=') => Some(Tok::PlusAssign),
                ('+', '+') => Some(Tok::PlusPlus),
                ('<', '<') => Some(Tok::Shl),
                ('>', '>') => Some(Tok::Shr),
                ('=', '=') => Some(Tok::EqEq),
                _ => None,
            }
        } else {
            None
        };
        if let Some(tok) = two {
            advance(&mut i, &mut line, &mut col, 2);
            toks.push(Spanned {
                tok,
                line: tline,
                col: tcol,
            });
            continue;
        }
        let one = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            ',' => Tok::Comma,
            ';' => Tok::Semi,
            '=' => Tok::Assign,
            '+' => Tok::Plus,
            '-' => Tok::Minus,
            '*' => Tok::Star,
            '/' => Tok::Slash,
            '&' => Tok::Amp,
            '|' => Tok::Pipe,
            '^' => Tok::Caret,
            '<' => Tok::Lt,
            _ => err!("unexpected character `{c}`"),
        };
        advance(&mut i, &mut line, &mut col, 1);
        toks.push(Spanned {
            tok: one,
            line: tline,
            col: tcol,
        });
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_operators_and_idents() {
        let toks = lex("x += a[i] << 2; // comment\ny = 1.5e3;").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::Ident(s) if s == "x"));
        assert_eq!(kinds[1], &Tok::PlusAssign);
        assert_eq!(kinds[5], &Tok::RBracket);
        assert_eq!(kinds[6], &Tok::Shl);
        assert!(matches!(kinds[7], Tok::Int(2)));
        assert!(toks
            .iter()
            .any(|t| matches!(t.tok, Tok::Float(v) if v == 1500.0)));
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn block_comments_skip() {
        let toks = lex("a /* x\ny */ b").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn reports_bad_char() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.msg.contains('$'));
        assert_eq!(err.col, 3);
    }

    #[test]
    fn unterminated_comment() {
        assert!(lex("/* nope").is_err());
    }
}

//! # vapor-frontend — mini-C kernel language
//!
//! Parses the restricted C dialect used to write the paper's benchmark
//! kernels (Table 2 + Polybench) into `vapor-ir` loop nests. The dialect
//! covers what the GCC auto-vectorizer sees after normalization: counted
//! loops, affine subscripts, scalar reductions, and the `min`/`max`/
//! `abs`/`sqrt` builtins that replace if-converted control flow.
//!
//! # Examples
//!
//! ```
//! let kernel = vapor_frontend::parse_kernel(r#"
//!     kernel sfir(long n, long nt, float x[], float c[], float y[]) {
//!       float sum;
//!       for (long i = 0; i < n; i++) {
//!         sum = 0.0;
//!         for (long j = 0; j < nt; j++) {
//!           sum += x[i + j] * c[j];
//!         }
//!         y[i] = sum;
//!       }
//!     }
//! "#).unwrap();
//! assert_eq!(kernel.name, "sfir");
//! assert_eq!(kernel.body[0].loop_depth(), 2);
//! ```

pub mod lexer;
pub mod parser;

pub use lexer::{lex, ParseError, Spanned, Tok};
pub use parser::parse_kernel;

//! Recursive-descent parser from mini-C text to `vapor-ir` kernels.
//!
//! Grammar (tokens from [`crate::lexer`]):
//!
//! ```text
//! kernel  := "kernel" IDENT "(" param,* ")" "{" local* stmt* "}"
//! param   := TYPE IDENT                 // scalar parameter
//!          | ["global"] TYPE IDENT "[]" // array (pointer unless global)
//! local   := TYPE IDENT ";"
//! stmt    := for | assign | store
//! for     := "for" "(" "long" IDENT "=" expr ";" IDENT "<" expr ";"
//!            (IDENT "++" | IDENT "+=" INT) ")" "{" stmt* "}"
//! assign  := IDENT ("=" | "+=") expr ";"
//! store   := IDENT "[" expr "]" ("=" | "+=") expr ";"
//! ```
//!
//! Expression precedence, loosest to tightest: `== <`, `|`, `^`, `&`,
//! `<< >>`, `+ -`, `* /`, unary (`-`, casts), primary. `min`, `max`,
//! `abs`, `sqrt` are call-syntax builtins.

use vapor_ir::{
    ArrayDecl, ArrayId, ArrayKind, BinOp, Expr, Kernel, ScalarTy, Stmt, UnOp, VarDecl, VarId,
    VarKind,
};

use crate::lexer::{lex, ParseError, Spanned, Tok};

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    vars: Vec<VarDecl>,
    arrays: Vec<ArrayDecl>,
    open_loops: Vec<VarId>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn here(&self) -> (u32, u32) {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0))
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            msg: msg.into(),
            line,
            col,
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|s| s.tok.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.err(format!("expected {want}, found {got}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            got => {
                self.pos -= 1;
                Err(self.err(format!("expected identifier, found {got}")))
            }
        }
    }

    fn peek_type(&self) -> Option<ScalarTy> {
        match self.peek() {
            Some(Tok::Ident(s)) => ScalarTy::from_keyword(s),
            _ => None,
        }
    }

    fn expect_type(&mut self) -> Result<ScalarTy, ParseError> {
        let name = self.expect_ident()?;
        ScalarTy::from_keyword(&name).ok_or_else(|| {
            self.pos -= 1;
            self.err(format!("expected a type keyword, found `{name}`"))
        })
    }

    fn var_named(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    fn array_named(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }

    fn declare_var(
        &mut self,
        name: String,
        ty: ScalarTy,
        kind: VarKind,
    ) -> Result<VarId, ParseError> {
        if self.var_named(&name).is_some() || self.array_named(&name).is_some() {
            return Err(self.err(format!("duplicate declaration of `{name}`")));
        }
        self.vars.push(VarDecl { name, ty, kind });
        Ok(VarId(self.vars.len() as u32 - 1))
    }

    // ----- expressions ---------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_bin(1)
    }

    fn bin_op_at(&self, level: u8) -> Option<BinOp> {
        let t = self.peek()?;
        let (op, l) = match t {
            Tok::EqEq => (BinOp::CmpEq, 1),
            Tok::Lt => (BinOp::CmpLt, 1),
            Tok::Pipe => (BinOp::Or, 2),
            Tok::Caret => (BinOp::Xor, 3),
            Tok::Amp => (BinOp::And, 4),
            Tok::Shl => (BinOp::Shl, 5),
            Tok::Shr => (BinOp::Shr, 5),
            Tok::Plus => (BinOp::Add, 6),
            Tok::Minus => (BinOp::Sub, 6),
            Tok::Star => (BinOp::Mul, 7),
            Tok::Slash => (BinOp::Div, 7),
            _ => return None,
        };
        (l == level).then_some(op)
    }

    fn parse_bin(&mut self, level: u8) -> Result<Expr, ParseError> {
        if level > 7 {
            return self.parse_unary();
        }
        let mut lhs = self.parse_bin(level + 1)?;
        while let Some(op) = self.bin_op_at(level) {
            self.pos += 1;
            let rhs = self.parse_bin(level + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                let arg = self.parse_unary()?;
                // Fold negation of literals so `-1` is a literal.
                Ok(match arg {
                    Expr::Int(v) => Expr::Int(-v),
                    Expr::Float(v) => Expr::Float(-v),
                    other => Expr::un(UnOp::Neg, other),
                })
            }
            Some(Tok::LParen) => {
                // Cast `(type) unary` vs parenthesized expression.
                if let Some(Tok::Ident(s)) = self.peek2() {
                    if ScalarTy::from_keyword(s).is_some()
                        && self.toks.get(self.pos + 2).map(|t| &t.tok) == Some(&Tok::RParen)
                    {
                        self.pos += 1;
                        let ty = self.expect_type()?;
                        self.expect(&Tok::RParen)?;
                        let arg = self.parse_unary()?;
                        return Ok(Expr::cast(ty, arg));
                    }
                }
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.next()? {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Ident(name) => {
                match name.as_str() {
                    "min" | "max" => {
                        let op = if name == "min" {
                            BinOp::Min
                        } else {
                            BinOp::Max
                        };
                        self.expect(&Tok::LParen)?;
                        let a = self.parse_expr()?;
                        self.expect(&Tok::Comma)?;
                        let b = self.parse_expr()?;
                        self.expect(&Tok::RParen)?;
                        return Ok(Expr::bin(op, a, b));
                    }
                    "abs" | "sqrt" => {
                        let op = if name == "abs" { UnOp::Abs } else { UnOp::Sqrt };
                        self.expect(&Tok::LParen)?;
                        let a = self.parse_expr()?;
                        self.expect(&Tok::RParen)?;
                        return Ok(Expr::un(op, a));
                    }
                    _ => {}
                }
                if self.peek() == Some(&Tok::LBracket) {
                    let array = self
                        .array_named(&name)
                        .ok_or_else(|| self.err(format!("unknown array `{name}`")))?;
                    self.pos += 1;
                    let idx = self.parse_expr()?;
                    self.expect(&Tok::RBracket)?;
                    Ok(Expr::load(array, idx))
                } else {
                    let var = self
                        .var_named(&name)
                        .ok_or_else(|| self.err(format!("unknown variable `{name}`")))?;
                    Ok(Expr::Var(var))
                }
            }
            got => {
                self.pos -= 1;
                Err(self.err(format!("expected expression, found {got}")))
            }
        }
    }

    // ----- statements ----------------------------------------------------

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.peek() == Some(&Tok::For) {
            return self.parse_for();
        }
        let name = self.expect_ident()?;
        if self.peek() == Some(&Tok::LBracket) {
            let array = self
                .array_named(&name)
                .ok_or_else(|| self.err(format!("unknown array `{name}`")))?;
            self.pos += 1;
            let index = self.parse_expr()?;
            self.expect(&Tok::RBracket)?;
            let compound = match self.next()? {
                Tok::Assign => false,
                Tok::PlusAssign => true,
                got => {
                    self.pos -= 1;
                    return Err(self.err(format!("expected `=` or `+=`, found {got}")));
                }
            };
            let rhs = self.parse_expr()?;
            self.expect(&Tok::Semi)?;
            let value = if compound {
                Expr::bin(BinOp::Add, Expr::load(array, index.clone()), rhs)
            } else {
                rhs
            };
            Ok(Stmt::Store {
                array,
                index,
                value,
            })
        } else {
            let var = self
                .var_named(&name)
                .ok_or_else(|| self.err(format!("unknown variable `{name}`")))?;
            let compound = match self.next()? {
                Tok::Assign => false,
                Tok::PlusAssign => true,
                got => {
                    self.pos -= 1;
                    return Err(self.err(format!("expected `=` or `+=`, found {got}")));
                }
            };
            let rhs = self.parse_expr()?;
            self.expect(&Tok::Semi)?;
            let value = if compound {
                Expr::bin(BinOp::Add, Expr::Var(var), rhs)
            } else {
                rhs
            };
            Ok(Stmt::Assign { var, value })
        }
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Tok::For)?;
        self.expect(&Tok::LParen)?;
        let ty = self.expect_type()?;
        if ty != ScalarTy::I64 {
            return Err(self.err("loop variables must be declared `long`"));
        }
        let name = self.expect_ident()?;
        // Sequential loops may reuse a finished loop variable's name.
        let var = match self.var_named(&name) {
            Some(v) if self.vars[v.0 as usize].kind == VarKind::Loop => {
                if self.open_loops.contains(&v) {
                    return Err(self.err(format!("loop variable `{name}` already in use")));
                }
                v
            }
            Some(_) => {
                return Err(self.err(format!("`{name}` is not a loop variable")));
            }
            None => self.declare_var(name.clone(), ScalarTy::I64, VarKind::Loop)?,
        };
        self.expect(&Tok::Assign)?;
        let lo = self.parse_expr()?;
        self.expect(&Tok::Semi)?;
        let n2 = self.expect_ident()?;
        if n2 != name {
            return Err(self.err(format!("loop condition must test `{name}`, found `{n2}`")));
        }
        self.expect(&Tok::Lt)?;
        let hi = self.parse_expr()?;
        self.expect(&Tok::Semi)?;
        let n3 = self.expect_ident()?;
        if n3 != name {
            return Err(self.err(format!("loop increment must update `{name}`, found `{n3}`")));
        }
        let step = match self.next()? {
            Tok::PlusPlus => 1,
            Tok::PlusAssign => match self.next()? {
                Tok::Int(v) if v > 0 => v,
                got => {
                    self.pos -= 1;
                    return Err(self.err(format!(
                        "loop step must be a positive integer literal, found {got}"
                    )));
                }
            },
            got => {
                self.pos -= 1;
                return Err(self.err(format!("expected `++` or `+=`, found {got}")));
            }
        };
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::LBrace)?;
        self.open_loops.push(var);
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            body.push(self.parse_stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        self.open_loops.pop();
        Ok(Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        })
    }

    fn parse_kernel(&mut self) -> Result<Kernel, ParseError> {
        self.expect(&Tok::Kernel)?;
        let name = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let kind = if self.peek() == Some(&Tok::Global) {
                    self.pos += 1;
                    Some(ArrayKind::Global)
                } else {
                    None
                };
                let ty = self.expect_type()?;
                let pname = self.expect_ident()?;
                if self.peek() == Some(&Tok::LBracket) {
                    self.pos += 1;
                    self.expect(&Tok::RBracket)?;
                    if self.var_named(&pname).is_some() || self.array_named(&pname).is_some() {
                        return Err(self.err(format!("duplicate declaration of `{pname}`")));
                    }
                    self.arrays.push(ArrayDecl {
                        name: pname,
                        elem: ty,
                        kind: kind.unwrap_or(ArrayKind::PointerParam),
                    });
                } else {
                    if kind.is_some() {
                        return Err(self.err("`global` only applies to arrays"));
                    }
                    self.declare_var(pname, ty, VarKind::Param)?;
                }
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::LBrace)?;
        // Local declarations: TYPE IDENT ";".
        while let Some(ty) = self.peek_type() {
            // Disambiguate from statements: declarations are TYPE IDENT ';'.
            if matches!(self.peek2(), Some(Tok::Ident(_))) {
                self.pos += 1;
                let lname = self.expect_ident()?;
                self.expect(&Tok::Semi)?;
                self.declare_var(lname, ty, VarKind::Local)?;
            } else {
                break;
            }
        }
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            body.push(self.parse_stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        if self.pos != self.toks.len() {
            return Err(self.err("trailing input after kernel"));
        }
        Ok(Kernel {
            name,
            vars: std::mem::take(&mut self.vars),
            arrays: std::mem::take(&mut self.arrays),
            body,
        })
    }
}

/// Parse and validate one kernel definition.
///
/// # Errors
/// Returns a [`ParseError`] on lexical/syntax errors; IR-level type errors
/// surface as a [`ParseError`] wrapping the validator message.
///
/// # Examples
///
/// ```
/// let k = vapor_frontend::parse_kernel(r#"
///     kernel dscal(long n, float alpha, float x[]) {
///       for (long i = 0; i < n; i++) {
///         x[i] = alpha * x[i];
///       }
///     }
/// "#).unwrap();
/// assert_eq!(k.name, "dscal");
/// ```
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        vars: Vec::new(),
        arrays: Vec::new(),
        open_loops: Vec::new(),
    };
    let k = p.parse_kernel()?;
    vapor_ir::validate(&k).map_err(|e| ParseError {
        msg: format!("in kernel `{}`: {e}", k.name),
        line: 0,
        col: 0,
    })?;
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_saxpy() {
        let k = parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap();
        assert_eq!(k.arrays.len(), 2);
        assert_eq!(k.body.len(), 1);
    }

    #[test]
    fn parses_reduction_with_local_and_compound_assign() {
        let k = parse_kernel(
            "kernel sum(long n, int a[], int out[]) {
               int s;
               s = 0;
               for (long i = 0; i < n; i++) { s += a[i]; }
               out[0] = s;
             }",
        )
        .unwrap();
        assert_eq!(k.vars.iter().filter(|v| v.name == "s").count(), 1);
    }

    #[test]
    fn global_marker_sets_array_kind() {
        let k = parse_kernel(
            "kernel t(long n, global float c[], float x[]) {
               for (long i = 0; i < n; i++) { x[i] = c[i]; }
             }",
        )
        .unwrap();
        assert_eq!(k.array(ArrayId(0)).kind, ArrayKind::Global);
        assert_eq!(k.array(ArrayId(1)).kind, ArrayKind::PointerParam);
    }

    #[test]
    fn cast_and_builtins() {
        let k = parse_kernel(
            "kernel t(long n, int a[], float x[]) {
               for (long i = 0; i < n; i++) {
                 x[i] = sqrt((float)max(a[i], 0));
               }
             }",
        )
        .unwrap();
        assert_eq!(k.name, "t");
    }

    #[test]
    fn strided_for_and_reused_loop_var() {
        let k = parse_kernel(
            "kernel t(long n, float x[]) {
               for (long i = 0; i < n; i += 2) { x[i] = 0.0; }
               for (long i = 0; i < n; i++) { x[i] = 1.0; }
             }",
        )
        .unwrap();
        // The two sequential loops share one loop-variable slot.
        assert_eq!(k.vars.iter().filter(|v| v.name == "i").count(), 1);
    }

    #[test]
    fn rejects_unknown_names_and_bad_types() {
        assert!(
            parse_kernel("kernel t(long n) { for (long i = 0; i < n; i++) { y[i] = 0.0; } }")
                .is_err()
        );
        assert!(parse_kernel("kernel t(long n, float x[]) { x[0] = n; }").is_err());
        assert!(parse_kernel(
            "kernel t(int n, float x[]) { for (int i = 0; i < n; i++) { x[i] = 0.0; } }"
        )
        .is_err());
    }

    #[test]
    fn precedence_matches_pretty_printer() {
        let k = parse_kernel(
            "kernel t(long n, int a[]) {
               for (long i = 0; i < n; i++) {
                 a[i] = (a[i] + 1) * 2 - a[i] / 4 & 255;
               }
             }",
        )
        .unwrap();
        let printed = vapor_ir::print_kernel(&k);
        let k2 = parse_kernel(&printed).unwrap();
        assert_eq!(k.body, k2.body);
    }
}

#[cfg(test)]
mod diag_tests {
    use super::*;

    fn err_of(src: &str) -> ParseError {
        parse_kernel(src).unwrap_err()
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        let e = err_of("kernel t(long n) {\n  for (long i = 0; i < n; i++) { q[i] = 0.0; }\n}");
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("unknown array `q`"), "{e}");
    }

    #[test]
    fn loop_header_must_be_consistent() {
        let e =
            err_of("kernel t(long n, float x[]) { for (long i = 0; j < n; i++) { x[i] = 0.0; } }");
        assert!(e.msg.contains("must test `i`"), "{e}");
        let e = err_of(
            "kernel t(long n, float x[]) { for (long i = 0; i < n; i += 0) { x[i] = 0.0; } }",
        );
        assert!(e.msg.contains("positive"), "{e}");
    }

    #[test]
    fn nested_loop_variable_reuse_rejected() {
        let e = err_of(
            "kernel t(long n, float x[]) {
               for (long i = 0; i < n; i++) {
                 for (long i = 0; i < n; i++) { x[i] = 0.0; }
               }
             }",
        );
        assert!(e.msg.contains("already in use"), "{e}");
    }

    #[test]
    fn global_on_scalar_rejected() {
        let e = err_of("kernel t(global long n, float x[]) { x[0] = 0.0; }");
        assert!(e.msg.contains("only applies to arrays"), "{e}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = err_of("kernel t(long n, float x[]) { x[0] = 0.0; } extra");
        assert!(e.msg.contains("trailing"), "{e}");
    }

    #[test]
    fn min_needs_two_arguments() {
        assert!(parse_kernel("kernel t(long n, int x[]) { x[0] = min(1); }").is_err());
    }
}

//! Static loop-body throughput analysis — the role Intel IACA plays in
//! the paper's Table 3 ("the asymptotic number of cycles consumed by
//! executing one iteration of the vectorized loop").
//!
//! The analyzer assigns each instruction's µops to issue-port classes and
//! reports the bottleneck: `cycles/iter = max over classes of
//! ceil(µops / ports)`. This reproduces the quantity IACA computes
//! (port-contention-bound throughput of a straight-line loop body).

use crate::isa::{Label, MCode, MInst};

/// Issue-port counts of a target's execution core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortModel {
    /// Vector ALU/multiply ports.
    pub vec_ports: u32,
    /// Load ports.
    pub load_ports: u32,
    /// Store ports.
    pub store_ports: u32,
    /// Scalar ALU ports (address arithmetic, induction variables).
    pub scalar_ports: u32,
    /// Branch ports.
    pub branch_ports: u32,
}

impl PortModel {
    /// Intel Core2-class: 3 vector-capable ports (modeled as 2 usable
    /// for sustained vector work), one load, one store.
    pub fn core2() -> PortModel {
        PortModel {
            vec_ports: 2,
            load_ports: 1,
            store_ports: 1,
            scalar_ports: 2,
            branch_ports: 1,
        }
    }

    /// PowerPC 970/G5-class.
    pub fn g5() -> PortModel {
        PortModel {
            vec_ports: 2,
            load_ports: 1,
            store_ports: 1,
            scalar_ports: 2,
            branch_ports: 1,
        }
    }

    /// Cortex A8: dual-issue in-order, one NEON pipe, one load/store pipe.
    pub fn cortex_a8() -> PortModel {
        PortModel {
            vec_ports: 1,
            load_ports: 1,
            store_ports: 1,
            scalar_ports: 1,
            branch_ports: 1,
        }
    }

    /// Sandy-Bridge-class AVX core: two 256-bit vector ports, two load
    /// ports, one store port, two scalar ports — the configuration the
    /// Table 3 numbers are computed against.
    pub fn sandy_bridge() -> PortModel {
        PortModel {
            vec_ports: 2,
            load_ports: 2,
            store_ports: 1,
            scalar_ports: 2,
            branch_ports: 1,
        }
    }

    /// SVE-class VLA core: wide out-of-order machine, two vector pipes,
    /// two load ports, one store port.
    pub fn sve_core() -> PortModel {
        PortModel {
            vec_ports: 2,
            load_ports: 2,
            store_ports: 1,
            scalar_ports: 2,
            branch_ports: 1,
        }
    }

    /// RVV-class VLA core: one long-vector pipe, single load/store pipe,
    /// dual-issue scalar front end.
    pub fn rvv_core() -> PortModel {
        PortModel {
            vec_ports: 1,
            load_ports: 1,
            store_ports: 1,
            scalar_ports: 2,
            branch_ports: 1,
        }
    }

    /// Single-issue scalar machine.
    pub fn single_issue() -> PortModel {
        PortModel {
            vec_ports: 1,
            load_ports: 1,
            store_ports: 1,
            scalar_ports: 1,
            branch_ports: 1,
        }
    }
}

/// µop counts of one loop body, by port class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PortPressure {
    /// Vector-ALU µops.
    pub vec: u32,
    /// Load µops.
    pub load: u32,
    /// Store µops.
    pub store: u32,
    /// Scalar µops.
    pub scalar: u32,
    /// Branch µops.
    pub branch: u32,
}

/// Result of the static analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Asymptotic cycles per loop iteration (the Table 3 number).
    pub cycles_per_iter: u32,
    /// µop pressure that produced it.
    pub pressure: PortPressure,
}

fn classify(inst: &MInst, p: &mut PortPressure) {
    match inst {
        MInst::Label(_) => {}
        MInst::Jump(_) | MInst::Branch { .. } | MInst::BranchImm { .. } => p.branch += 1,
        MInst::MovImmI { .. }
        | MInst::MovImmF { .. }
        | MInst::MovS { .. }
        | MInst::SBin { .. }
        | MInst::SBinImm { .. }
        | MInst::SUn { .. }
        | MInst::SCvt { .. } => p.scalar += 1,
        // x87-style op: a scalar µop plus stack traffic on the load/store ports.
        MInst::FpuBin { .. } => {
            p.scalar += 1;
            p.load += 1;
            p.store += 1;
        }
        MInst::LoadS { addr, .. } => {
            p.load += 1;
            indexed_addressing(addr, p);
        }
        MInst::SpillLd { .. } => p.load += 1,
        MInst::StoreS { addr, .. } => {
            p.store += 1;
            indexed_addressing(addr, p);
        }
        MInst::SpillSt { .. } => p.store += 1,
        MInst::LoadV { align, addr, .. } => {
            p.load += match align {
                crate::isa::MemAlign::Aligned => 1,
                crate::isa::MemAlign::Unaligned => 2,
            };
            indexed_addressing(addr, p);
        }
        MInst::LoadVFloor { addr, .. } => {
            p.load += 1;
            indexed_addressing(addr, p);
        }
        MInst::StoreV { align, addr, .. } => {
            p.store += match align {
                crate::isa::MemAlign::Aligned => 1,
                crate::isa::MemAlign::Unaligned => 2,
            };
            indexed_addressing(addr, p);
        }
        MInst::Splat { .. }
        | MInst::Iota { .. }
        | MInst::SetLane { .. }
        | MInst::GetLane { .. }
        | MInst::VBin { .. }
        | MInst::VUn { .. }
        | MInst::VShift { .. }
        | MInst::VWidenMul { .. }
        | MInst::VDotAcc { .. }
        | MInst::VPack { .. }
        | MInst::VUnpack { .. }
        | MInst::VCvt { .. }
        | MInst::VInterleave { .. }
        | MInst::VPermCtrl { .. }
        | MInst::VPerm { .. }
        | MInst::MovV { .. } => p.vec += 1,
        MInst::VExtractStride { stride, .. } => p.vec += *stride as u32,
        MInst::VReduce { .. } => p.vec += 3,
        // VLA stripmine control runs on the scalar ports (`vsetvli` class).
        MInst::SetVl { .. } => p.scalar += 1,
        MInst::LoadVl { addr, .. } => {
            p.load += 1;
            indexed_addressing(addr, p);
        }
        MInst::StoreVl { addr, .. } => {
            p.store += 1;
            indexed_addressing(addr, p);
        }
        MInst::VBinVl { .. } | MInst::VUnVl { .. } => p.vec += 1,
        MInst::VHelper { .. } => {
            // A call serializes; approximate with heavy pressure everywhere.
            p.vec += 8;
            p.scalar += 4;
            p.load += 2;
            p.store += 2;
        }
    }
}

/// Scaled-index addressing (`[base + idx*scale + disp]`) costs one extra
/// address-generation µop on the scalar ports — the addressing-mode
/// difference between the split flow (fused indexed addressing) and the
/// native flow (strength-reduced bumped pointers) that Table 3's paper
/// discussion attributes the native/split deltas to.
fn indexed_addressing(addr: &crate::isa::AddrMode, p: &mut PortPressure) {
    if addr.idx.is_some() {
        p.scalar += 1;
    }
}

fn ceil_div(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        a.div_ceil(b)
    }
}

/// Analyze an explicit instruction slice as one loop body.
pub fn analyze_body(body: &[MInst], ports: &PortModel) -> Throughput {
    let mut p = PortPressure::default();
    for inst in body {
        classify(inst, &mut p);
    }
    let cycles = [
        ceil_div(p.vec, ports.vec_ports),
        ceil_div(p.load, ports.load_ports),
        ceil_div(p.store, ports.store_ports),
        ceil_div(p.scalar, ports.scalar_ports),
        ceil_div(p.branch, ports.branch_ports),
    ]
    .into_iter()
    .max()
    .unwrap_or(0)
    .max(1);
    Throughput {
        cycles_per_iter: cycles,
        pressure: p,
    }
}

/// Find the hot vectorized loop of compiled code and analyze it.
///
/// Candidate loops are backward-branch spans; among them the one with
/// the most vector µops wins (the vectorized main loop — Table 3 targets
/// it, not the scalar tail loop), with smaller spans breaking ties
/// (innermost loop). Falls back to the smallest scalar loop when no
/// vector code exists.
///
/// Returns `None` if the code contains no backward branch.
pub fn analyze_inner_loop(code: &MCode, ports: &PortModel) -> Option<Throughput> {
    let labels = code.label_map();
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for (i, inst) in code.insts.iter().enumerate() {
        let target = match inst {
            MInst::Jump(l)
            | MInst::Branch { target: l, .. }
            | MInst::BranchImm { target: l, .. } => Some(*l),
            _ => None,
        };
        if let Some(l) = target {
            let t = *labels.get(&l)?;
            if t < i {
                candidates.push((t, i));
            }
        }
    }
    // Leaf loops only: spans that contain no other candidate span.
    let leaves: Vec<(usize, usize)> = candidates
        .iter()
        .copied()
        .filter(|&(s, e)| {
            !candidates
                .iter()
                .any(|&(s2, e2)| (s2, e2) != (s, e) && s <= s2 && e2 <= e)
        })
        .collect();
    let mut best: Option<(Throughput, u32, usize)> = None; // (tp, vec µops, span)
    for (start, end) in leaves {
        let tp = analyze_body(&code.insts[start..=end], ports);
        let span = end - start;
        let better = match &best {
            None => true,
            Some((_, bvec, bspan)) => {
                tp.pressure.vec > *bvec || (tp.pressure.vec == *bvec && span < *bspan)
            }
        };
        if better {
            best = Some((tp, tp.pressure.vec, span));
        }
    }
    best.map(|(tp, _, _)| tp)
}

/// Convenience used in tests: does a label exist in code?
pub fn has_label(code: &MCode, l: Label) -> bool {
    code.insts
        .iter()
        .any(|i| matches!(i, MInst::Label(x) if *x == l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrMode, Cond, MemAlign, SReg, VReg};
    use vapor_ir::{BinOp, ScalarTy};

    fn saxpy_like_body(extra_scalar: u32) -> Vec<MInst> {
        // load x, load y, mul, add, store, induction, cmp+branch
        let mut body = vec![
            MInst::LoadV {
                dst: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 0),
                align: MemAlign::Aligned,
            },
            MInst::LoadV {
                dst: VReg(1),
                addr: AddrMode::base_disp(SReg(1), 0),
                align: MemAlign::Aligned,
            },
            MInst::VBin {
                op: BinOp::Mul,
                ty: ScalarTy::F32,
                dst: VReg(0),
                a: VReg(0),
                b: VReg(2),
            },
            MInst::VBin {
                op: BinOp::Add,
                ty: ScalarTy::F32,
                dst: VReg(0),
                a: VReg(0),
                b: VReg(1),
            },
            MInst::StoreV {
                src: VReg(0),
                addr: AddrMode::base_disp(SReg(1), 0),
                align: MemAlign::Aligned,
            },
        ];
        for k in 0..extra_scalar {
            body.push(MInst::SBinImm {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: SReg(2 + k),
                a: SReg(2 + k),
                imm: 16,
            });
        }
        body.push(MInst::BranchImm {
            cond: Cond::Lt,
            a: SReg(2),
            imm: 1024,
            target: Label(0),
        });
        body
    }

    #[test]
    fn saxpy_on_sandy_bridge_is_two_cycles() {
        // 2 loads / 2 load ports = 1; 2 valu / 2 = 1; 1 store / 1 = 1;
        // induction: 1 scalar / 2 = 1 → but the store port and loads tie;
        // with one extra pointer bump the scalar class stays at 1 → 2 only
        // after addressing overhead appears.
        let t = analyze_body(&saxpy_like_body(1), &PortModel::sandy_bridge());
        assert_eq!(t.cycles_per_iter, 1.max(t.cycles_per_iter.min(2)));
        // More scalar overhead raises the bound.
        let t4 = analyze_body(&saxpy_like_body(4), &PortModel::sandy_bridge());
        assert!(t4.cycles_per_iter >= t.cycles_per_iter);
    }

    #[test]
    fn bottleneck_is_max_over_ports() {
        let body = vec![
            MInst::StoreV {
                src: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 0),
                align: MemAlign::Aligned,
            },
            MInst::StoreV {
                src: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 16),
                align: MemAlign::Aligned,
            },
            MInst::StoreV {
                src: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 32),
                align: MemAlign::Aligned,
            },
        ];
        let t = analyze_body(&body, &PortModel::sandy_bridge());
        assert_eq!(t.cycles_per_iter, 3); // one store port
        assert_eq!(t.pressure.store, 3);
    }

    #[test]
    fn inner_loop_detection_picks_backward_branch() {
        let code = MCode {
            insts: vec![
                MInst::MovImmI {
                    dst: SReg(0),
                    imm: 0,
                },
                MInst::Label(Label(0)),
                MInst::SBinImm {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: SReg(0),
                    a: SReg(0),
                    imm: 1,
                },
                MInst::BranchImm {
                    cond: Cond::Lt,
                    a: SReg(0),
                    imm: 10,
                    target: Label(0),
                },
            ],
            n_sregs: 1,
            n_vregs: 0,
            note: String::new(),
        };
        let t = analyze_inner_loop(&code, &PortModel::single_issue()).unwrap();
        assert_eq!(t.pressure.scalar, 1);
        assert_eq!(t.pressure.branch, 1);
    }

    #[test]
    fn straight_line_code_has_no_loop() {
        let code = MCode {
            insts: vec![MInst::MovImmI {
                dst: SReg(0),
                imm: 0,
            }],
            n_sregs: 1,
            n_vregs: 0,
            note: String::new(),
        };
        assert!(analyze_inner_loop(&code, &PortModel::single_issue()).is_none());
    }
}

//! Pre-decoded machine code: the load-time form the VM dispatch loop
//! actually executes.
//!
//! [`MCode`] is the portable, printable form the online compilers emit:
//! branch targets are symbolic labels, and per-instruction metadata
//! (cycle cost, lane counts) is implicit. The seed interpreter re-derived
//! all of that *every step*: a `HashMap` lookup per taken branch and a
//! full cost-model match per executed instruction. [`DecodedProgram`]
//! resolves everything once per (code, target) pair at compile time:
//!
//! * labels are stripped and every branch target becomes an instruction
//!   index into the decoded stream;
//! * the cycle cost of every instruction is pre-computed against the
//!   target's cost table (including the lane-count-dependent costs of
//!   reductions and helper calls);
//! * control flow is separated from computation, so the hot loop matches
//!   a four-variant enum instead of a ~40-variant one.
//!
//! A decoded program is target-specific (costs and lane counts depend on
//! the target) and immutable, so one decode is shared by every execution
//! of a compiled kernel — `vapor_jit::CompiledKernel` carries it behind
//! an `Arc`.

use std::collections::HashMap;

use vapor_ir::sem::{eval_bin, eval_un, read_elem, write_elem, Value};
use vapor_ir::{BinOp, ScalarTy, UnOp};

use crate::isa::{AddrMode, Cond, Label, MCode, MInst, MemAlign, SReg, VReg};
use crate::machine::Trap;
use crate::target::TargetDesc;

/// Specialized lane kernel of a binary vector op: the operator and
/// element type are compile-time constants inside, so the per-lane
/// `eval_bin`/`read_elem`/`write_elem` matches of the generic
/// interpreter const-fold into a straight-line (auto-vectorizable) loop.
///
/// The kernel writes the first `n` lanes of `out` and leaves the rest
/// untouched, so one kernel serves both the all-lanes form (caller
/// passes a zeroed output) and the merging-predicated `...Vl` form
/// (caller passes a copy of the destination and the active lane count).
/// Operands are plain byte slices: the kernel is independent of the
/// register-file representation (inline vs heap-backed `VBytes`).
pub type VBinFn = fn(a: &[u8], b: &[u8], out: &mut [u8], n: usize);

/// Specialized lane kernel of a unary vector op (same contract).
pub type VUnFn = fn(a: &[u8], out: &mut [u8], n: usize);

/// Sentinel for "no index register" in the flattened address fields of
/// the fast memory steps (`Option<SReg>` flattened to one word so the
/// hot-loop variants stay within the niche-packed 32-byte `DStep`).
pub const NO_INDEX: u32 = u32::MAX;

/// Specialized scalar ALU kernel: `eval_bin` with the operator and type
/// baked in, so the partially-vectorized kernels (`lu`, `seidel`) whose
/// decoded time is scalar-op-bound skip the operator/type double match.
pub type SBinFn = fn(Value, Value) -> Value;

/// Pick the specialized scalar kernel for an (operator, type) pair.
/// Integer-only operators are only generated at integer types.
fn sbin_fn(op: BinOp, ty: ScalarTy) -> Option<SBinFn> {
    macro_rules! k {
        ($opvar:ident, $tyvar:ident) => {{
            fn kernel(a: Value, b: Value) -> Value {
                eval_bin(BinOp::$opvar, ScalarTy::$tyvar, a, b)
            }
            Some(kernel as SBinFn)
        }};
    }
    macro_rules! for_int_tys {
        ($opvar:ident, $ty:expr) => {
            match $ty {
                ScalarTy::I8 => k!($opvar, I8),
                ScalarTy::U8 => k!($opvar, U8),
                ScalarTy::I16 => k!($opvar, I16),
                ScalarTy::U16 => k!($opvar, U16),
                ScalarTy::I32 => k!($opvar, I32),
                ScalarTy::U32 => k!($opvar, U32),
                ScalarTy::I64 => k!($opvar, I64),
                _ => None,
            }
        };
    }
    macro_rules! for_all_tys {
        ($opvar:ident, $ty:expr) => {
            match $ty {
                ScalarTy::I8 => k!($opvar, I8),
                ScalarTy::U8 => k!($opvar, U8),
                ScalarTy::I16 => k!($opvar, I16),
                ScalarTy::U16 => k!($opvar, U16),
                ScalarTy::I32 => k!($opvar, I32),
                ScalarTy::U32 => k!($opvar, U32),
                ScalarTy::I64 => k!($opvar, I64),
                ScalarTy::F32 => k!($opvar, F32),
                ScalarTy::F64 => k!($opvar, F64),
            }
        };
    }
    match op {
        BinOp::Add => for_all_tys!(Add, ty),
        BinOp::Sub => for_all_tys!(Sub, ty),
        BinOp::Mul => for_all_tys!(Mul, ty),
        BinOp::Div => for_all_tys!(Div, ty),
        BinOp::Min => for_all_tys!(Min, ty),
        BinOp::Max => for_all_tys!(Max, ty),
        BinOp::CmpEq => for_all_tys!(CmpEq, ty),
        BinOp::CmpLt => for_all_tys!(CmpLt, ty),
        BinOp::Shl => for_int_tys!(Shl, ty),
        BinOp::Shr => for_int_tys!(Shr, ty),
        BinOp::And => for_int_tys!(And, ty),
        BinOp::Or => for_int_tys!(Or, ty),
        BinOp::Xor => for_int_tys!(Xor, ty),
    }
}

/// Pick the specialized kernel for a (operator, element type) pair, if
/// one is generated. Pairs the online compilers never emit (e.g. float
/// comparisons as lane ops) fall back to the generic path.
fn vbin_fn(op: BinOp, ty: ScalarTy) -> Option<VBinFn> {
    macro_rules! k {
        ($opvar:ident, $tyvar:ident) => {{
            fn kernel(a: &[u8], b: &[u8], out: &mut [u8], n: usize) {
                const TY: ScalarTy = ScalarTy::$tyvar;
                const SZ: usize = TY.size();
                // Exact-length subslices hoist the bounds checks out of
                // the lane loop (each `k * SZ + SZ <= n * SZ` becomes
                // provable), keeping the loop auto-vectorizable.
                let end = n * SZ;
                let (a, b) = (&a[..end], &b[..end]);
                let out = &mut out[..end];
                for k in 0..n {
                    let off = k * SZ;
                    let v = eval_bin(
                        BinOp::$opvar,
                        TY,
                        read_elem(TY, a, off),
                        read_elem(TY, b, off),
                    );
                    write_elem(TY, out, off, v);
                }
            }
            Some(kernel as VBinFn)
        }};
    }
    use BinOp::*;
    use ScalarTy::*;
    match (op, ty) {
        (Add, I8) => k!(Add, I8),
        (Add, U8) => k!(Add, U8),
        (Add, I16) => k!(Add, I16),
        (Add, U16) => k!(Add, U16),
        (Add, I32) => k!(Add, I32),
        (Add, U32) => k!(Add, U32),
        (Add, I64) => k!(Add, I64),
        (Add, F32) => k!(Add, F32),
        (Add, F64) => k!(Add, F64),
        (Sub, I8) => k!(Sub, I8),
        (Sub, U8) => k!(Sub, U8),
        (Sub, I16) => k!(Sub, I16),
        (Sub, U16) => k!(Sub, U16),
        (Sub, I32) => k!(Sub, I32),
        (Sub, U32) => k!(Sub, U32),
        (Sub, I64) => k!(Sub, I64),
        (Sub, F32) => k!(Sub, F32),
        (Sub, F64) => k!(Sub, F64),
        (Mul, I8) => k!(Mul, I8),
        (Mul, U8) => k!(Mul, U8),
        (Mul, I16) => k!(Mul, I16),
        (Mul, U16) => k!(Mul, U16),
        (Mul, I32) => k!(Mul, I32),
        (Mul, U32) => k!(Mul, U32),
        (Mul, I64) => k!(Mul, I64),
        (Mul, F32) => k!(Mul, F32),
        (Mul, F64) => k!(Mul, F64),
        (Div, I8) => k!(Div, I8),
        (Div, U8) => k!(Div, U8),
        (Div, I16) => k!(Div, I16),
        (Div, U16) => k!(Div, U16),
        (Div, I32) => k!(Div, I32),
        (Div, U32) => k!(Div, U32),
        (Div, I64) => k!(Div, I64),
        (Div, F32) => k!(Div, F32),
        (Div, F64) => k!(Div, F64),
        (Min, I8) => k!(Min, I8),
        (Min, U8) => k!(Min, U8),
        (Min, I16) => k!(Min, I16),
        (Min, U16) => k!(Min, U16),
        (Min, I32) => k!(Min, I32),
        (Min, U32) => k!(Min, U32),
        (Min, I64) => k!(Min, I64),
        (Min, F32) => k!(Min, F32),
        (Min, F64) => k!(Min, F64),
        (Max, I8) => k!(Max, I8),
        (Max, U8) => k!(Max, U8),
        (Max, I16) => k!(Max, I16),
        (Max, U16) => k!(Max, U16),
        (Max, I32) => k!(Max, I32),
        (Max, U32) => k!(Max, U32),
        (Max, I64) => k!(Max, I64),
        (Max, F32) => k!(Max, F32),
        (Max, F64) => k!(Max, F64),
        (And, I8) => k!(And, I8),
        (And, U8) => k!(And, U8),
        (And, I16) => k!(And, I16),
        (And, U16) => k!(And, U16),
        (And, I32) => k!(And, I32),
        (And, U32) => k!(And, U32),
        (And, I64) => k!(And, I64),
        (Or, I8) => k!(Or, I8),
        (Or, U8) => k!(Or, U8),
        (Or, I16) => k!(Or, I16),
        (Or, U16) => k!(Or, U16),
        (Or, I32) => k!(Or, I32),
        (Or, U32) => k!(Or, U32),
        (Or, I64) => k!(Or, I64),
        (Xor, I8) => k!(Xor, I8),
        (Xor, U8) => k!(Xor, U8),
        (Xor, I16) => k!(Xor, I16),
        (Xor, U16) => k!(Xor, U16),
        (Xor, I32) => k!(Xor, I32),
        (Xor, U32) => k!(Xor, U32),
        (Xor, I64) => k!(Xor, I64),
        (CmpEq, I8) => k!(CmpEq, I8),
        (CmpEq, U8) => k!(CmpEq, U8),
        (CmpEq, I16) => k!(CmpEq, I16),
        (CmpEq, U16) => k!(CmpEq, U16),
        (CmpEq, I32) => k!(CmpEq, I32),
        (CmpEq, U32) => k!(CmpEq, U32),
        (CmpEq, I64) => k!(CmpEq, I64),
        (CmpLt, I8) => k!(CmpLt, I8),
        (CmpLt, U8) => k!(CmpLt, U8),
        (CmpLt, I16) => k!(CmpLt, I16),
        (CmpLt, U16) => k!(CmpLt, U16),
        (CmpLt, I32) => k!(CmpLt, I32),
        (CmpLt, U32) => k!(CmpLt, U32),
        (CmpLt, I64) => k!(CmpLt, I64),
        _ => None,
    }
}

/// Flatten an [`AddrMode`] into the immediate fields of a fast memory
/// step. `None` when the displacement exceeds 32 bits or an index
/// register number collides with the [`NO_INDEX`] sentinel (neither is
/// ever produced by the online compilers; such code falls back to the
/// generic path rather than decoding wrong).
fn flatten_addr(m: &AddrMode) -> Option<(SReg, u32, u8, i32)> {
    let disp = i32::try_from(m.disp).ok()?;
    let idx = match m.idx {
        Some(r) if r.0 == NO_INDEX => return None,
        Some(r) => r.0,
        None => NO_INDEX,
    };
    Some((m.base, idx, m.scale, disp))
}

/// Pick the specialized kernel for a unary (operator, element type).
fn vun_fn(op: UnOp, ty: ScalarTy) -> Option<VUnFn> {
    macro_rules! k {
        ($opvar:ident, $tyvar:ident) => {{
            fn kernel(a: &[u8], out: &mut [u8], n: usize) {
                const TY: ScalarTy = ScalarTy::$tyvar;
                const SZ: usize = TY.size();
                let end = n * SZ;
                let a = &a[..end];
                let out = &mut out[..end];
                for k in 0..n {
                    let off = k * SZ;
                    write_elem(
                        TY,
                        out,
                        off,
                        eval_un(UnOp::$opvar, TY, read_elem(TY, a, off)),
                    );
                }
            }
            Some(kernel as VUnFn)
        }};
    }
    use ScalarTy::*;
    use UnOp::*;
    match (op, ty) {
        (Neg, I8) => k!(Neg, I8),
        (Neg, U8) => k!(Neg, U8),
        (Neg, I16) => k!(Neg, I16),
        (Neg, U16) => k!(Neg, U16),
        (Neg, I32) => k!(Neg, I32),
        (Neg, U32) => k!(Neg, U32),
        (Neg, I64) => k!(Neg, I64),
        (Neg, F32) => k!(Neg, F32),
        (Neg, F64) => k!(Neg, F64),
        (Abs, I8) => k!(Abs, I8),
        (Abs, U8) => k!(Abs, U8),
        (Abs, I16) => k!(Abs, I16),
        (Abs, U16) => k!(Abs, U16),
        (Abs, I32) => k!(Abs, I32),
        (Abs, U32) => k!(Abs, U32),
        (Abs, I64) => k!(Abs, I64),
        (Abs, F32) => k!(Abs, F32),
        (Abs, F64) => k!(Abs, F64),
        (Sqrt, F32) => k!(Sqrt, F32),
        (Sqrt, F64) => k!(Sqrt, F64),
        _ => None,
    }
}

/// Control-flow-resolved step of a decoded program.
///
/// No `PartialEq`: the fast variants hold function pointers, whose
/// comparison is not meaningful. Compare the source [`MCode`] instead.
#[derive(Debug, Clone)]
pub enum DStep {
    /// Unconditional jump to a decoded-instruction index.
    Jump {
        /// Target index.
        target: u32,
    },
    /// Conditional branch on two scalar registers.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: SReg,
        /// Right operand.
        b: SReg,
        /// Target index.
        target: u32,
    },
    /// Conditional branch against an immediate.
    BranchImm {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: SReg,
        /// Immediate right operand.
        imm: i64,
        /// Target index.
        target: u32,
    },
    /// [`MInst::VBin`] with a specialized all-lanes kernel resolved at
    /// decode time (operator/type matches hoisted out of the lane loop).
    VBinFast {
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Specialized lane kernel.
        f: VBinFn,
        /// Operator (for disassembly/respecialization; the kernel has it
        /// baked in).
        op: BinOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count of the element type on the decode target.
        lanes: u16,
    },
    /// [`MInst::VUn`] with a specialized all-lanes kernel.
    VUnFast {
        /// Destination.
        dst: VReg,
        /// Operand.
        a: VReg,
        /// Specialized lane kernel.
        f: VUnFn,
        /// Operator.
        op: UnOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count of the element type on the decode target.
        lanes: u16,
    },
    /// [`MInst::VBinVl`] (merging-predicated, runtime-VL) with the same
    /// specialized lane kernel as [`DStep::VBinFast`]: the active lane
    /// count is read from the machine's VL state at execution time, so
    /// runtime-VL code no longer falls back to the generic
    /// merge-predicated interpreter loop.
    VBinVlFast {
        /// Destination (also the merge source for inactive lanes).
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Specialized lane kernel.
        f: VBinFn,
        /// Operator.
        op: BinOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count of a full register on the decode target (the VL
        /// clamp).
        max_lanes: u16,
    },
    /// [`MInst::VUnVl`] with a specialized merging-predicated kernel.
    VUnVlFast {
        /// Destination (also the merge source for inactive lanes).
        dst: VReg,
        /// Operand.
        a: VReg,
        /// Specialized lane kernel.
        f: VUnFn,
        /// Operator.
        op: UnOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count of a full register on the decode target.
        max_lanes: u16,
    },
    /// [`MInst::LoadV`] with the address mode flattened to immediate
    /// fields: no `AddrMode` indirection and no second (~40-variant)
    /// instruction match in the hot loop. Memory traffic dominates the
    /// suite's inner loops, so these four memory steps are where the
    /// decoded dispatch wins most of its time over the seed interpreter.
    LoadVFast {
        /// Destination.
        dst: VReg,
        /// Base address register.
        base: SReg,
        /// Index register number, or [`NO_INDEX`].
        idx: u32,
        /// Scale applied to the index (bytes).
        scale: u8,
        /// Whether the access carries the aligned contract.
        aligned: bool,
        /// Constant displacement (bytes).
        disp: i32,
    },
    /// [`MInst::StoreV`] with a flattened address mode.
    StoreVFast {
        /// Source register.
        src: VReg,
        /// Base address register.
        base: SReg,
        /// Index register number, or [`NO_INDEX`].
        idx: u32,
        /// Scale applied to the index (bytes).
        scale: u8,
        /// Whether the access carries the aligned contract.
        aligned: bool,
        /// Constant displacement (bytes).
        disp: i32,
    },
    /// [`MInst::LoadS`] with a flattened address mode.
    LoadSFast {
        /// Element type.
        ty: ScalarTy,
        /// Destination.
        dst: SReg,
        /// Base address register.
        base: SReg,
        /// Index register number, or [`NO_INDEX`].
        idx: u32,
        /// Scale applied to the index (bytes).
        scale: u8,
        /// Constant displacement (bytes).
        disp: i32,
    },
    /// [`MInst::StoreS`] with a flattened address mode.
    StoreSFast {
        /// Element type.
        ty: ScalarTy,
        /// Source register.
        src: SReg,
        /// Base address register.
        base: SReg,
        /// Index register number, or [`NO_INDEX`].
        idx: u32,
        /// Scale applied to the index (bytes).
        scale: u8,
        /// Constant displacement (bytes).
        disp: i32,
    },
    /// [`MInst::SBin`]/[`MInst::FpuBin`] with a specialized scalar ALU
    /// kernel and the result type resolved at decode time. The
    /// partially-vectorized kernels execute mostly scalar code, so this
    /// is what moves their dispatch numbers.
    SBinFast {
        /// Destination.
        dst: SReg,
        /// Left operand.
        a: SReg,
        /// Right operand.
        b: SReg,
        /// Specialized scalar kernel.
        f: SBinFn,
        /// Operand type (for input coercion).
        ty: ScalarTy,
        /// Result type (I32 for comparisons, `ty` otherwise).
        rty: ScalarTy,
    },
    /// [`MInst::SBinImm`] with a specialized scalar ALU kernel.
    SBinImmFast {
        /// Destination.
        dst: SReg,
        /// Left operand.
        a: SReg,
        /// Immediate right operand (decode falls back to the generic
        /// path when it does not fit 32 bits).
        imm: i32,
        /// Specialized scalar kernel.
        f: SBinFn,
        /// Operand type.
        ty: ScalarTy,
        /// Result type.
        rty: ScalarTy,
    },
    /// [`MInst::MovS`] (hot in spill-heavy scalar code).
    MovSFast {
        /// Destination.
        dst: SReg,
        /// Source.
        src: SReg,
    },
    /// Any other non-control instruction, executed by the shared
    /// (generic) semantics.
    Op(MInst),
}

/// One decoded instruction: the step plus everything the seed dispatch
/// loop used to re-derive per execution.
#[derive(Debug, Clone)]
pub struct DecodedInst {
    /// What to execute.
    pub step: DStep,
    /// Pre-computed cycle cost on the decode target.
    pub cost: u64,
    /// Pre-computed lane count of the instruction's element type (1 for
    /// scalar/control instructions).
    pub lanes: u32,
}

/// A fully decoded, target-specific program.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    steps: Vec<DecodedInst>,
    /// Executable (non-label) instruction count.
    pub len: usize,
    /// Vector width in bytes of the decode target (sanity-checked at run
    /// time: running a program decoded for one target on a machine of
    /// another is a harness bug).
    pub vs: usize,
}

impl DecodedProgram {
    /// Decode `code` for `target`: strip labels, resolve branch targets
    /// to instruction indices, and pre-compute per-instruction costs.
    ///
    /// # Errors
    /// Returns a [`Trap`] for branches to undefined labels and for
    /// duplicate label definitions (the seed interpreter deferred the
    /// former to run time; a decoded program rejects malformed code up
    /// front).
    pub fn decode(code: &MCode, target: &TargetDesc) -> Result<DecodedProgram, Trap> {
        let vs = target.vs.max(1);
        let lanes_of = |ty: vapor_ir::ScalarTy| (vs / ty.size()).max(1);

        // Pass 1: map every label to the index its successor instruction
        // will have once labels are stripped.
        let mut label_to_index: HashMap<Label, u32> = HashMap::new();
        let mut idx = 0u32;
        for inst in &code.insts {
            if let MInst::Label(l) = inst {
                if label_to_index.insert(*l, idx).is_some() {
                    return Err(Trap(format!("label {l} defined twice")));
                }
            } else {
                idx += 1;
            }
        }
        let resolve = |l: &Label| {
            label_to_index
                .get(l)
                .copied()
                .ok_or_else(|| Trap(format!("undefined label {l}")))
        };

        // Pass 2: decode.
        let mut steps = Vec::with_capacity(idx as usize);
        for inst in &code.insts {
            let step = match inst {
                MInst::Label(_) => continue,
                MInst::Jump(l) => DStep::Jump {
                    target: resolve(l)?,
                },
                MInst::Branch { cond, a, b, target } => DStep::Branch {
                    cond: *cond,
                    a: *a,
                    b: *b,
                    target: resolve(target)?,
                },
                MInst::BranchImm {
                    cond,
                    a,
                    imm,
                    target,
                } => DStep::BranchImm {
                    cond: *cond,
                    a: *a,
                    imm: *imm,
                    target: resolve(target)?,
                },
                MInst::VBin { op, ty, dst, a, b } => match vbin_fn(*op, *ty) {
                    Some(f) => DStep::VBinFast {
                        dst: *dst,
                        a: *a,
                        b: *b,
                        f,
                        op: *op,
                        ty: *ty,
                        lanes: lanes_of(*ty) as u16,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::VUn { op, ty, dst, a } => match vun_fn(*op, *ty) {
                    Some(f) => DStep::VUnFast {
                        dst: *dst,
                        a: *a,
                        f,
                        op: *op,
                        ty: *ty,
                        lanes: lanes_of(*ty) as u16,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::SBin { op, ty, dst, a, b } | MInst::FpuBin { op, ty, dst, a, b } => {
                    match sbin_fn(*op, *ty) {
                        Some(f) => DStep::SBinFast {
                            dst: *dst,
                            a: *a,
                            b: *b,
                            f,
                            ty: *ty,
                            rty: if op.is_comparison() {
                                ScalarTy::I32
                            } else {
                                *ty
                            },
                        },
                        None => DStep::Op(inst.clone()),
                    }
                }
                MInst::SBinImm {
                    op,
                    ty,
                    dst,
                    a,
                    imm,
                } => match (sbin_fn(*op, *ty), i32::try_from(*imm)) {
                    (Some(f), Ok(imm)) => DStep::SBinImmFast {
                        dst: *dst,
                        a: *a,
                        imm,
                        f,
                        ty: *ty,
                        rty: if op.is_comparison() {
                            ScalarTy::I32
                        } else {
                            *ty
                        },
                    },
                    _ => DStep::Op(inst.clone()),
                },
                MInst::MovS { dst, src } => DStep::MovSFast {
                    dst: *dst,
                    src: *src,
                },
                MInst::LoadV { dst, addr, align } => match flatten_addr(addr) {
                    Some((base, idx, scale, disp)) => DStep::LoadVFast {
                        dst: *dst,
                        base,
                        idx,
                        scale,
                        aligned: *align == MemAlign::Aligned,
                        disp,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::StoreV { src, addr, align } => match flatten_addr(addr) {
                    Some((base, idx, scale, disp)) => DStep::StoreVFast {
                        src: *src,
                        base,
                        idx,
                        scale,
                        aligned: *align == MemAlign::Aligned,
                        disp,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::LoadS { ty, dst, addr } => match flatten_addr(addr) {
                    Some((base, idx, scale, disp)) => DStep::LoadSFast {
                        ty: *ty,
                        dst: *dst,
                        base,
                        idx,
                        scale,
                        disp,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::StoreS { ty, src, addr } => match flatten_addr(addr) {
                    Some((base, idx, scale, disp)) => DStep::StoreSFast {
                        ty: *ty,
                        src: *src,
                        base,
                        idx,
                        scale,
                        disp,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::VBinVl { op, ty, dst, a, b } => match vbin_fn(*op, *ty) {
                    Some(f) => DStep::VBinVlFast {
                        dst: *dst,
                        a: *a,
                        b: *b,
                        f,
                        op: *op,
                        ty: *ty,
                        max_lanes: lanes_of(*ty) as u16,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::VUnVl { op, ty, dst, a } => match vun_fn(*op, *ty) {
                    Some(f) => DStep::VUnVlFast {
                        dst: *dst,
                        a: *a,
                        f,
                        op: *op,
                        ty: *ty,
                        max_lanes: lanes_of(*ty) as u16,
                    },
                    None => DStep::Op(inst.clone()),
                },
                other => DStep::Op(other.clone()),
            };
            let lanes = match inst {
                MInst::VReduce { ty, .. } | MInst::VHelper { ty, .. } => lanes_of(*ty),
                _ => 1,
            };
            steps.push(DecodedInst {
                step,
                cost: target.cost.cost(inst, lanes),
                lanes: lanes as u32,
            });
        }
        let len = steps.len();
        Ok(DecodedProgram { steps, len, vs })
    }

    /// Re-specialize an already-decoded program to another vector width
    /// of the same code, sharing all vector-length-independent decode
    /// work: label→index resolution, step construction, and fast-kernel
    /// selection are reused; only per-instruction costs and lane counts
    /// are recomputed against `target`. This is what makes bringing up a
    /// new runtime VL cheaper than a fresh [`DecodedProgram::decode`].
    ///
    /// `code` must be the same program this was decoded from (the engine
    /// keys both off one `Compiled` artifact); a shape mismatch is
    /// rejected.
    ///
    /// # Errors
    /// Returns a [`Trap`] when `code` does not match this program.
    pub fn respecialize(&self, code: &MCode, target: &TargetDesc) -> Result<DecodedProgram, Trap> {
        let vs = target.vs.max(1);
        let lanes_of = |ty: vapor_ir::ScalarTy| (vs / ty.size()).max(1);
        let mut insts = code.insts.iter().filter(|i| !matches!(i, MInst::Label(_)));
        let mut steps = Vec::with_capacity(self.steps.len());
        for d in &self.steps {
            let inst = insts.next().ok_or_else(|| {
                Trap("respecialize: code is shorter than the decoded program".into())
            })?;
            let mut step = d.step.clone();
            match &mut step {
                DStep::VBinFast { ty, lanes, .. } | DStep::VUnFast { ty, lanes, .. } => {
                    *lanes = lanes_of(*ty) as u16;
                }
                DStep::VBinVlFast { ty, max_lanes, .. }
                | DStep::VUnVlFast { ty, max_lanes, .. } => {
                    *max_lanes = lanes_of(*ty) as u16;
                }
                _ => {}
            }
            let lanes = match inst {
                MInst::VReduce { ty, .. } | MInst::VHelper { ty, .. } => lanes_of(*ty),
                _ => 1,
            };
            steps.push(DecodedInst {
                step,
                cost: target.cost.cost(inst, lanes),
                lanes: lanes as u32,
            });
        }
        if insts.next().is_some() {
            return Err(Trap(
                "respecialize: code is longer than the decoded program".into(),
            ));
        }
        Ok(DecodedProgram {
            steps,
            len: self.len,
            vs,
        })
    }

    /// The decoded instruction stream.
    pub fn steps(&self) -> &[DecodedInst] {
        &self.steps
    }

    /// Whether there is nothing to execute.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrMode, MemAlign, VReg};
    use crate::target::{altivec, sse};
    use vapor_ir::{BinOp, ScalarTy};

    fn branchy_code() -> MCode {
        MCode {
            insts: vec![
                MInst::MovImmI {
                    dst: SReg(0),
                    imm: 0,
                },
                MInst::Label(Label(0)),
                MInst::SBinImm {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: SReg(0),
                    a: SReg(0),
                    imm: 1,
                },
                MInst::BranchImm {
                    cond: Cond::Lt,
                    a: SReg(0),
                    imm: 5,
                    target: Label(0),
                },
                MInst::Label(Label(1)),
                MInst::Jump(Label(2)),
                MInst::Label(Label(2)),
            ],
            n_sregs: 1,
            n_vregs: 0,
            note: String::new(),
        }
    }

    #[test]
    fn labels_are_stripped_and_targets_resolved() {
        let p = DecodedProgram::decode(&branchy_code(), &sse()).unwrap();
        assert_eq!(p.len, 4);
        match &p.steps()[2].step {
            DStep::BranchImm { target, .. } => assert_eq!(*target, 1),
            s => panic!("expected BranchImm, got {s:?}"),
        }
        match &p.steps()[3].step {
            // Label(2) is at the very end: the jump resolves to one past
            // the last instruction, i.e. normal termination.
            DStep::Jump { target } => assert_eq!(*target, 4),
            s => panic!("expected Jump, got {s:?}"),
        }
    }

    #[test]
    fn costs_match_the_cost_model() {
        let t = sse();
        let code = MCode {
            insts: vec![
                MInst::LoadV {
                    dst: VReg(0),
                    addr: AddrMode::base_disp(SReg(0), 0),
                    align: MemAlign::Unaligned,
                },
                MInst::VBin {
                    op: BinOp::Mul,
                    ty: ScalarTy::F32,
                    dst: VReg(0),
                    a: VReg(0),
                    b: VReg(0),
                },
            ],
            n_sregs: 1,
            n_vregs: 1,
            note: String::new(),
        };
        let p = DecodedProgram::decode(&code, &t).unwrap();
        for (d, inst) in p.steps().iter().zip(&code.insts) {
            assert_eq!(d.cost, t.cost.cost(inst, d.lanes as usize));
        }
    }

    #[test]
    fn reduce_lanes_depend_on_target() {
        let code = MCode {
            insts: vec![MInst::VReduce {
                op: crate::isa::ReduceOp::Plus,
                ty: ScalarTy::I16,
                dst: SReg(0),
                src: VReg(0),
            }],
            n_sregs: 1,
            n_vregs: 1,
            note: String::new(),
        };
        let p = DecodedProgram::decode(&code, &sse()).unwrap();
        assert_eq!(p.steps()[0].lanes, 8); // 16 bytes / 2
        let p = DecodedProgram::decode(&code, &altivec()).unwrap();
        assert_eq!(p.steps()[0].lanes, 8);
    }

    #[test]
    fn undefined_label_is_rejected_at_decode_time() {
        let code = MCode {
            insts: vec![MInst::Jump(Label(9))],
            n_sregs: 0,
            n_vregs: 0,
            note: String::new(),
        };
        let err = DecodedProgram::decode(&code, &sse()).unwrap_err();
        assert!(err.0.contains("undefined label"), "{err}");
    }

    #[test]
    fn predicated_vector_ops_get_fast_kernels() {
        // VBinVl/VUnVl must decode to the merging-predicated fast
        // kernels, not fall back to the generic Op path.
        let code = MCode {
            insts: vec![
                MInst::VBinVl {
                    op: BinOp::Add,
                    ty: ScalarTy::I32,
                    dst: VReg(0),
                    a: VReg(1),
                    b: VReg(2),
                },
                MInst::VUnVl {
                    op: vapor_ir::UnOp::Neg,
                    ty: ScalarTy::F64,
                    dst: VReg(0),
                    a: VReg(1),
                },
            ],
            n_sregs: 0,
            n_vregs: 3,
            note: String::new(),
        };
        let t = crate::target::sve().at_vl(512); // 64-byte registers
        let p = DecodedProgram::decode(&code, &t).unwrap();
        match &p.steps()[0].step {
            DStep::VBinVlFast {
                op, ty, max_lanes, ..
            } => {
                assert_eq!((*op, *ty), (BinOp::Add, ScalarTy::I32));
                assert_eq!(*max_lanes, 16);
            }
            s => panic!("expected VBinVlFast, got {s:?}"),
        }
        match &p.steps()[1].step {
            DStep::VUnVlFast { ty, max_lanes, .. } => {
                assert_eq!((*ty, *max_lanes), (ScalarTy::F64, 8));
            }
            s => panic!("expected VUnVlFast, got {s:?}"),
        }
        let text = crate::disasm::disasm_decoded(&p);
        assert!(text.contains("vl.fast"), "{text}");
    }

    #[test]
    fn hot_scalar_and_memory_ops_get_fast_steps() {
        // The dispatch-dominant instructions must not take the generic
        // Op fallback: loads/stores decode to flattened-address steps,
        // scalar ALU ops to specialized kernels.
        let code = MCode {
            insts: vec![
                MInst::LoadV {
                    dst: VReg(0),
                    addr: AddrMode::fused(SReg(0), SReg(1), 4, 16),
                    align: MemAlign::Aligned,
                },
                MInst::StoreV {
                    src: VReg(0),
                    addr: AddrMode::base_disp(SReg(0), 0),
                    align: MemAlign::Unaligned,
                },
                MInst::LoadS {
                    ty: ScalarTy::F32,
                    dst: SReg(2),
                    addr: AddrMode::base_disp(SReg(0), 4),
                },
                MInst::StoreS {
                    ty: ScalarTy::F32,
                    src: SReg(2),
                    addr: AddrMode::base_disp(SReg(0), 8),
                },
                MInst::SBin {
                    op: BinOp::Mul,
                    ty: ScalarTy::I64,
                    dst: SReg(3),
                    a: SReg(1),
                    b: SReg(2),
                },
                MInst::SBinImm {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: SReg(1),
                    a: SReg(1),
                    imm: 1,
                },
                MInst::MovS {
                    dst: SReg(4),
                    src: SReg(3),
                },
                // Out-of-range displacement: must fall back, not decode
                // a truncated address.
                MInst::LoadS {
                    ty: ScalarTy::F32,
                    dst: SReg(2),
                    addr: AddrMode::base_disp(SReg(0), i64::from(i32::MAX) + 1),
                },
            ],
            n_sregs: 5,
            n_vregs: 1,
            note: String::new(),
        };
        let p = DecodedProgram::decode(&code, &sse()).unwrap();
        assert!(matches!(
            p.steps()[0].step,
            DStep::LoadVFast {
                aligned: true,
                idx: 1,
                scale: 4,
                disp: 16,
                ..
            }
        ));
        assert!(matches!(
            p.steps()[1].step,
            DStep::StoreVFast {
                aligned: false,
                idx: super::NO_INDEX,
                ..
            }
        ));
        assert!(matches!(p.steps()[2].step, DStep::LoadSFast { .. }));
        assert!(matches!(p.steps()[3].step, DStep::StoreSFast { .. }));
        assert!(matches!(
            p.steps()[4].step,
            DStep::SBinFast {
                ty: ScalarTy::I64,
                rty: ScalarTy::I64,
                ..
            }
        ));
        assert!(matches!(
            p.steps()[5].step,
            DStep::SBinImmFast { imm: 1, .. }
        ));
        assert!(matches!(p.steps()[6].step, DStep::MovSFast { .. }));
        assert!(matches!(p.steps()[7].step, DStep::Op(MInst::LoadS { .. })));
        // Comparisons resolve their I32 result type at decode time.
        let cmp = MCode {
            insts: vec![MInst::SBin {
                op: BinOp::CmpLt,
                ty: ScalarTy::F64,
                dst: SReg(0),
                a: SReg(1),
                b: SReg(2),
            }],
            n_sregs: 3,
            n_vregs: 0,
            note: String::new(),
        };
        let p = DecodedProgram::decode(&cmp, &sse()).unwrap();
        assert!(matches!(
            p.steps()[0].step,
            DStep::SBinFast {
                ty: ScalarTy::F64,
                rty: ScalarTy::I32,
                ..
            }
        ));
    }

    #[test]
    fn respecialize_matches_a_fresh_decode() {
        // Re-specializing a family-minimum decode to another VL must
        // produce exactly what a from-scratch decode produces: same
        // targets, same costs, same lane clamps.
        let code = MCode {
            insts: vec![
                MInst::MovImmI {
                    dst: SReg(0),
                    imm: 0,
                },
                MInst::Label(Label(0)),
                MInst::VBinVl {
                    op: BinOp::Mul,
                    ty: ScalarTy::F32,
                    dst: VReg(0),
                    a: VReg(0),
                    b: VReg(1),
                },
                MInst::VReduce {
                    op: crate::isa::ReduceOp::Plus,
                    ty: ScalarTy::F32,
                    dst: SReg(1),
                    src: VReg(0),
                },
                MInst::SBinImm {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: SReg(0),
                    a: SReg(0),
                    imm: 1,
                },
                MInst::BranchImm {
                    cond: Cond::Lt,
                    a: SReg(0),
                    imm: 3,
                    target: Label(0),
                },
            ],
            n_sregs: 2,
            n_vregs: 2,
            note: String::new(),
        };
        let family = crate::target::sve();
        let base = DecodedProgram::decode(&code, &family).unwrap();
        for vl in [128usize, 512, 2048] {
            let exec = family.at_vl(vl);
            let fresh = DecodedProgram::decode(&code, &exec).unwrap();
            let respec = base.respecialize(&code, &exec).unwrap();
            assert_eq!(respec.vs, fresh.vs);
            assert_eq!(respec.len, fresh.len);
            for (a, b) in respec.steps().iter().zip(fresh.steps()) {
                assert_eq!(a.cost, b.cost, "VL={vl}");
                assert_eq!(a.lanes, b.lanes, "VL={vl}");
                assert_eq!(
                    crate::disasm::disasm_step(&a.step),
                    crate::disasm::disasm_step(&b.step),
                    "VL={vl}"
                );
            }
        }
    }

    #[test]
    fn respecialize_rejects_mismatched_code() {
        let code = MCode {
            insts: vec![MInst::MovImmI {
                dst: SReg(0),
                imm: 0,
            }],
            n_sregs: 1,
            n_vregs: 0,
            note: String::new(),
        };
        let p = DecodedProgram::decode(&code, &crate::target::sve()).unwrap();
        let longer = MCode {
            insts: vec![
                MInst::MovImmI {
                    dst: SReg(0),
                    imm: 0,
                },
                MInst::MovImmI {
                    dst: SReg(1),
                    imm: 1,
                },
            ],
            n_sregs: 2,
            n_vregs: 0,
            note: String::new(),
        };
        let err = p
            .respecialize(&longer, &crate::target::sve().at_vl(256))
            .unwrap_err();
        assert!(err.0.contains("longer"), "{err}");
        let empty = MCode {
            insts: vec![],
            n_sregs: 0,
            n_vregs: 0,
            note: String::new(),
        };
        let err = p
            .respecialize(&empty, &crate::target::sve().at_vl(256))
            .unwrap_err();
        assert!(err.0.contains("shorter"), "{err}");
    }

    #[test]
    fn duplicate_label_is_rejected_at_decode_time() {
        // `MCode` is freely constructible, so malformed programs must
        // come back as `Err`, not abort the process.
        let code = MCode {
            insts: vec![MInst::Label(Label(0)), MInst::Label(Label(0))],
            n_sregs: 0,
            n_vregs: 0,
            note: String::new(),
        };
        let err = DecodedProgram::decode(&code, &sse()).unwrap_err();
        assert!(err.0.contains("defined twice"), "{err}");
    }
}

//! Pre-decoded machine code: the load-time form the VM dispatch loop
//! actually executes.
//!
//! [`MCode`] is the portable, printable form the online compilers emit:
//! branch targets are symbolic labels, and per-instruction metadata
//! (cycle cost, lane counts) is implicit. The seed interpreter re-derived
//! all of that *every step*: a `HashMap` lookup per taken branch and a
//! full cost-model match per executed instruction. [`DecodedProgram`]
//! resolves everything once per (code, target) pair at compile time:
//!
//! * labels are stripped and every branch target becomes an instruction
//!   index into the decoded stream;
//! * the cycle cost of every instruction is pre-computed against the
//!   target's cost table (including the lane-count-dependent costs of
//!   reductions and helper calls);
//! * control flow is separated from computation, so the hot loop matches
//!   a four-variant enum instead of a ~40-variant one.
//!
//! A decoded program is target-specific (costs and lane counts depend on
//! the target) and immutable, so one decode is shared by every execution
//! of a compiled kernel — `vapor_jit::CompiledKernel` carries it behind
//! an `Arc`.

use std::collections::HashMap;

use vapor_ir::sem::{eval_bin, eval_un, read_elem, write_elem, Value};
use vapor_ir::{BinOp, ScalarTy, UnOp};

use crate::isa::{AddrMode, Cond, Label, MCode, MInst, MemAlign, ReduceOp, SReg, ShiftSrc, VReg};
use crate::machine::Trap;
use crate::target::TargetDesc;

/// Specialized lane kernel of a binary vector op: the operator and
/// element type are compile-time constants inside, so the per-lane
/// `eval_bin`/`read_elem`/`write_elem` matches of the generic
/// interpreter const-fold into a straight-line (auto-vectorizable) loop.
///
/// The kernel writes the first `n` lanes of `out` and leaves the rest
/// untouched, so one kernel serves both the all-lanes form (caller
/// passes a zeroed output) and the merging-predicated `...Vl` form
/// (caller passes a copy of the destination and the active lane count).
/// Operands are plain byte slices: the kernel is independent of the
/// register-file representation (inline vs heap-backed `VBytes`).
pub type VBinFn = fn(a: &[u8], b: &[u8], out: &mut [u8], n: usize);

/// Specialized lane kernel of a unary vector op (same contract).
pub type VUnFn = fn(a: &[u8], out: &mut [u8], n: usize);

/// Sentinel for "no index register" in the flattened address fields of
/// the fast memory steps (`Option<SReg>` flattened to one word so the
/// hot-loop variants stay within the niche-packed 32-byte `DStep`).
pub const NO_INDEX: u32 = u32::MAX;

/// Specialized scalar ALU kernel: `eval_bin` with the operator and type
/// baked in, so the partially-vectorized kernels (`lu`, `seidel`) whose
/// decoded time is scalar-op-bound skip the operator/type double match.
pub type SBinFn = fn(Value, Value) -> Value;

/// Pick the specialized scalar kernel for an (operator, type) pair.
/// Integer-only operators are only generated at integer types.
/// Crate-visible so the threading pass (`thread.rs`) can recognize the
/// `i64` add/sub kernels when proving an induction step affine.
pub(crate) fn sbin_fn(op: BinOp, ty: ScalarTy) -> Option<SBinFn> {
    macro_rules! k {
        ($opvar:ident, $tyvar:ident) => {{
            fn kernel(a: Value, b: Value) -> Value {
                eval_bin(BinOp::$opvar, ScalarTy::$tyvar, a, b)
            }
            Some(kernel as SBinFn)
        }};
    }
    macro_rules! for_int_tys {
        ($opvar:ident, $ty:expr) => {
            match $ty {
                ScalarTy::I8 => k!($opvar, I8),
                ScalarTy::U8 => k!($opvar, U8),
                ScalarTy::I16 => k!($opvar, I16),
                ScalarTy::U16 => k!($opvar, U16),
                ScalarTy::I32 => k!($opvar, I32),
                ScalarTy::U32 => k!($opvar, U32),
                ScalarTy::I64 => k!($opvar, I64),
                _ => None,
            }
        };
    }
    macro_rules! for_all_tys {
        ($opvar:ident, $ty:expr) => {
            match $ty {
                ScalarTy::I8 => k!($opvar, I8),
                ScalarTy::U8 => k!($opvar, U8),
                ScalarTy::I16 => k!($opvar, I16),
                ScalarTy::U16 => k!($opvar, U16),
                ScalarTy::I32 => k!($opvar, I32),
                ScalarTy::U32 => k!($opvar, U32),
                ScalarTy::I64 => k!($opvar, I64),
                ScalarTy::F32 => k!($opvar, F32),
                ScalarTy::F64 => k!($opvar, F64),
            }
        };
    }
    match op {
        BinOp::Add => for_all_tys!(Add, ty),
        BinOp::Sub => for_all_tys!(Sub, ty),
        BinOp::Mul => for_all_tys!(Mul, ty),
        BinOp::Div => for_all_tys!(Div, ty),
        BinOp::Min => for_all_tys!(Min, ty),
        BinOp::Max => for_all_tys!(Max, ty),
        BinOp::CmpEq => for_all_tys!(CmpEq, ty),
        BinOp::CmpLt => for_all_tys!(CmpLt, ty),
        BinOp::Shl => for_int_tys!(Shl, ty),
        BinOp::Shr => for_int_tys!(Shr, ty),
        BinOp::And => for_int_tys!(And, ty),
        BinOp::Or => for_int_tys!(Or, ty),
        BinOp::Xor => for_int_tys!(Xor, ty),
    }
}

/// Pick the specialized kernel for a (operator, element type) pair, if
/// one is generated. Pairs the online compilers never emit (e.g. float
/// comparisons as lane ops) fall back to the generic path.
fn vbin_fn(op: BinOp, ty: ScalarTy) -> Option<VBinFn> {
    macro_rules! k {
        ($opvar:ident, $tyvar:ident) => {{
            fn kernel(a: &[u8], b: &[u8], out: &mut [u8], n: usize) {
                const TY: ScalarTy = ScalarTy::$tyvar;
                const SZ: usize = TY.size();
                // Exact-length subslices hoist the bounds checks out of
                // the lane loop (each `k * SZ + SZ <= n * SZ` becomes
                // provable), keeping the loop auto-vectorizable.
                let end = n * SZ;
                let (a, b) = (&a[..end], &b[..end]);
                let out = &mut out[..end];
                for k in 0..n {
                    let off = k * SZ;
                    let v = eval_bin(
                        BinOp::$opvar,
                        TY,
                        read_elem(TY, a, off),
                        read_elem(TY, b, off),
                    );
                    write_elem(TY, out, off, v);
                }
            }
            Some(kernel as VBinFn)
        }};
    }
    use BinOp::*;
    use ScalarTy::*;
    match (op, ty) {
        (Add, I8) => k!(Add, I8),
        (Add, U8) => k!(Add, U8),
        (Add, I16) => k!(Add, I16),
        (Add, U16) => k!(Add, U16),
        (Add, I32) => k!(Add, I32),
        (Add, U32) => k!(Add, U32),
        (Add, I64) => k!(Add, I64),
        (Add, F32) => k!(Add, F32),
        (Add, F64) => k!(Add, F64),
        (Sub, I8) => k!(Sub, I8),
        (Sub, U8) => k!(Sub, U8),
        (Sub, I16) => k!(Sub, I16),
        (Sub, U16) => k!(Sub, U16),
        (Sub, I32) => k!(Sub, I32),
        (Sub, U32) => k!(Sub, U32),
        (Sub, I64) => k!(Sub, I64),
        (Sub, F32) => k!(Sub, F32),
        (Sub, F64) => k!(Sub, F64),
        (Mul, I8) => k!(Mul, I8),
        (Mul, U8) => k!(Mul, U8),
        (Mul, I16) => k!(Mul, I16),
        (Mul, U16) => k!(Mul, U16),
        (Mul, I32) => k!(Mul, I32),
        (Mul, U32) => k!(Mul, U32),
        (Mul, I64) => k!(Mul, I64),
        (Mul, F32) => k!(Mul, F32),
        (Mul, F64) => k!(Mul, F64),
        (Div, I8) => k!(Div, I8),
        (Div, U8) => k!(Div, U8),
        (Div, I16) => k!(Div, I16),
        (Div, U16) => k!(Div, U16),
        (Div, I32) => k!(Div, I32),
        (Div, U32) => k!(Div, U32),
        (Div, I64) => k!(Div, I64),
        (Div, F32) => k!(Div, F32),
        (Div, F64) => k!(Div, F64),
        (Min, I8) => k!(Min, I8),
        (Min, U8) => k!(Min, U8),
        (Min, I16) => k!(Min, I16),
        (Min, U16) => k!(Min, U16),
        (Min, I32) => k!(Min, I32),
        (Min, U32) => k!(Min, U32),
        (Min, I64) => k!(Min, I64),
        (Min, F32) => k!(Min, F32),
        (Min, F64) => k!(Min, F64),
        (Max, I8) => k!(Max, I8),
        (Max, U8) => k!(Max, U8),
        (Max, I16) => k!(Max, I16),
        (Max, U16) => k!(Max, U16),
        (Max, I32) => k!(Max, I32),
        (Max, U32) => k!(Max, U32),
        (Max, I64) => k!(Max, I64),
        (Max, F32) => k!(Max, F32),
        (Max, F64) => k!(Max, F64),
        (Shl, I8) => k!(Shl, I8),
        (Shl, U8) => k!(Shl, U8),
        (Shl, I16) => k!(Shl, I16),
        (Shl, U16) => k!(Shl, U16),
        (Shl, I32) => k!(Shl, I32),
        (Shl, U32) => k!(Shl, U32),
        (Shl, I64) => k!(Shl, I64),
        (Shr, I8) => k!(Shr, I8),
        (Shr, U8) => k!(Shr, U8),
        (Shr, I16) => k!(Shr, I16),
        (Shr, U16) => k!(Shr, U16),
        (Shr, I32) => k!(Shr, I32),
        (Shr, U32) => k!(Shr, U32),
        (Shr, I64) => k!(Shr, I64),
        (And, I8) => k!(And, I8),
        (And, U8) => k!(And, U8),
        (And, I16) => k!(And, I16),
        (And, U16) => k!(And, U16),
        (And, I32) => k!(And, I32),
        (And, U32) => k!(And, U32),
        (And, I64) => k!(And, I64),
        (Or, I8) => k!(Or, I8),
        (Or, U8) => k!(Or, U8),
        (Or, I16) => k!(Or, I16),
        (Or, U16) => k!(Or, U16),
        (Or, I32) => k!(Or, I32),
        (Or, U32) => k!(Or, U32),
        (Or, I64) => k!(Or, I64),
        (Xor, I8) => k!(Xor, I8),
        (Xor, U8) => k!(Xor, U8),
        (Xor, I16) => k!(Xor, I16),
        (Xor, U16) => k!(Xor, U16),
        (Xor, I32) => k!(Xor, I32),
        (Xor, U32) => k!(Xor, U32),
        (Xor, I64) => k!(Xor, I64),
        (CmpEq, I8) => k!(CmpEq, I8),
        (CmpEq, U8) => k!(CmpEq, U8),
        (CmpEq, I16) => k!(CmpEq, I16),
        (CmpEq, U16) => k!(CmpEq, U16),
        (CmpEq, I32) => k!(CmpEq, I32),
        (CmpEq, U32) => k!(CmpEq, U32),
        (CmpEq, I64) => k!(CmpEq, I64),
        (CmpLt, I8) => k!(CmpLt, I8),
        (CmpLt, U8) => k!(CmpLt, U8),
        (CmpLt, I16) => k!(CmpLt, I16),
        (CmpLt, U16) => k!(CmpLt, U16),
        (CmpLt, I32) => k!(CmpLt, I32),
        (CmpLt, U32) => k!(CmpLt, U32),
        (CmpLt, I64) => k!(CmpLt, I64),
        _ => None,
    }
}

/// Flatten an [`AddrMode`] into the immediate fields of a fast memory
/// step. `None` when the displacement exceeds 32 bits or an index
/// register number collides with the [`NO_INDEX`] sentinel (neither is
/// ever produced by the online compilers; such code falls back to the
/// generic path rather than decoding wrong).
pub(crate) fn flatten_addr(m: &AddrMode) -> Option<(SReg, u32, u8, i32)> {
    let disp = i32::try_from(m.disp).ok()?;
    let idx = match m.idx {
        Some(r) if r.0 == NO_INDEX => return None,
        Some(r) => r.0,
        None => NO_INDEX,
    };
    Some((m.base, idx, m.scale, disp))
}

/// Specialized splat kernel: broadcast a (pre-coerced) scalar into the
/// first `n` lanes of `out`. The element type is a compile-time constant
/// inside, so the per-lane `write_elem` match const-folds away.
pub type SplatFn = fn(Value, out: &mut [u8], n: usize);

/// Pick the specialized splat kernel for an element type (total: every
/// type splats).
fn splat_fn(ty: ScalarTy) -> SplatFn {
    macro_rules! k {
        ($tyvar:ident) => {{
            fn kernel(v: Value, out: &mut [u8], n: usize) {
                const TY: ScalarTy = ScalarTy::$tyvar;
                const SZ: usize = TY.size();
                let out = &mut out[..n * SZ];
                for k in 0..n {
                    write_elem(TY, out, k * SZ, v);
                }
            }
            kernel as SplatFn
        }};
    }
    match ty {
        ScalarTy::I8 => k!(I8),
        ScalarTy::U8 => k!(U8),
        ScalarTy::I16 => k!(I16),
        ScalarTy::U16 => k!(U16),
        ScalarTy::I32 => k!(I32),
        ScalarTy::U32 => k!(U32),
        ScalarTy::I64 => k!(I64),
        ScalarTy::F32 => k!(F32),
        ScalarTy::F64 => k!(F64),
    }
}

/// Specialized vector-shift kernel: shift the first `n` lanes of `a` by
/// a broadcast amount (operator, direction and type baked in).
pub type VShiftFn = fn(a: &[u8], amt: i64, out: &mut [u8], n: usize);

/// Pick the specialized shift kernel for a (direction, element type)
/// pair. Shifts only exist at integer types.
fn vshift_fn(left: bool, ty: ScalarTy) -> Option<VShiftFn> {
    macro_rules! k {
        ($opvar:ident, $tyvar:ident) => {{
            fn kernel(a: &[u8], amt: i64, out: &mut [u8], n: usize) {
                const TY: ScalarTy = ScalarTy::$tyvar;
                const SZ: usize = TY.size();
                let end = n * SZ;
                let a = &a[..end];
                let out = &mut out[..end];
                let amt = Value::Int(amt);
                for k in 0..n {
                    let off = k * SZ;
                    let v = eval_bin(BinOp::$opvar, TY, read_elem(TY, a, off), amt);
                    write_elem(TY, out, off, v);
                }
            }
            Some(kernel as VShiftFn)
        }};
    }
    macro_rules! for_int_tys {
        ($opvar:ident, $ty:expr) => {
            match $ty {
                ScalarTy::I8 => k!($opvar, I8),
                ScalarTy::U8 => k!($opvar, U8),
                ScalarTy::I16 => k!($opvar, I16),
                ScalarTy::U16 => k!($opvar, U16),
                ScalarTy::I32 => k!($opvar, I32),
                ScalarTy::U32 => k!($opvar, U32),
                ScalarTy::I64 => k!($opvar, I64),
                _ => None,
            }
        };
    }
    if left {
        for_int_tys!(Shl, ty)
    } else {
        for_int_tys!(Shr, ty)
    }
}

/// Specialized horizontal-reduction kernel: fold the first `n` lanes
/// into a scalar (operator and type baked in, so the reduction loop is a
/// straight-line fold instead of a double match per lane).
pub type VReduceFn = fn(a: &[u8], n: usize) -> Value;

/// Pick the specialized reduction kernel for a (reduce-op, type) pair
/// (total: the machine's reductions are defined at every type).
fn vreduce_fn(op: ReduceOp, ty: ScalarTy) -> VReduceFn {
    macro_rules! k {
        ($opvar:ident, $tyvar:ident) => {{
            fn kernel(a: &[u8], n: usize) -> Value {
                const TY: ScalarTy = ScalarTy::$tyvar;
                const SZ: usize = TY.size();
                let a = &a[..n * SZ];
                let mut acc = read_elem(TY, a, 0);
                for k in 1..n {
                    acc = eval_bin(BinOp::$opvar, TY, acc, read_elem(TY, a, k * SZ));
                }
                acc
            }
            kernel as VReduceFn
        }};
    }
    macro_rules! for_all_tys {
        ($opvar:ident, $ty:expr) => {
            match $ty {
                ScalarTy::I8 => k!($opvar, I8),
                ScalarTy::U8 => k!($opvar, U8),
                ScalarTy::I16 => k!($opvar, I16),
                ScalarTy::U16 => k!($opvar, U16),
                ScalarTy::I32 => k!($opvar, I32),
                ScalarTy::U32 => k!($opvar, U32),
                ScalarTy::I64 => k!($opvar, I64),
                ScalarTy::F32 => k!($opvar, F32),
                ScalarTy::F64 => k!($opvar, F64),
            }
        };
    }
    match op {
        ReduceOp::Plus => for_all_tys!(Add, ty),
        ReduceOp::Max => for_all_tys!(Max, ty),
        ReduceOp::Min => for_all_tys!(Min, ty),
    }
}

/// Pick the specialized kernel for a unary (operator, element type).
fn vun_fn(op: UnOp, ty: ScalarTy) -> Option<VUnFn> {
    macro_rules! k {
        ($opvar:ident, $tyvar:ident) => {{
            fn kernel(a: &[u8], out: &mut [u8], n: usize) {
                const TY: ScalarTy = ScalarTy::$tyvar;
                const SZ: usize = TY.size();
                let end = n * SZ;
                let a = &a[..end];
                let out = &mut out[..end];
                for k in 0..n {
                    let off = k * SZ;
                    write_elem(
                        TY,
                        out,
                        off,
                        eval_un(UnOp::$opvar, TY, read_elem(TY, a, off)),
                    );
                }
            }
            Some(kernel as VUnFn)
        }};
    }
    use ScalarTy::*;
    use UnOp::*;
    match (op, ty) {
        (Neg, I8) => k!(Neg, I8),
        (Neg, U8) => k!(Neg, U8),
        (Neg, I16) => k!(Neg, I16),
        (Neg, U16) => k!(Neg, U16),
        (Neg, I32) => k!(Neg, I32),
        (Neg, U32) => k!(Neg, U32),
        (Neg, I64) => k!(Neg, I64),
        (Neg, F32) => k!(Neg, F32),
        (Neg, F64) => k!(Neg, F64),
        (Abs, I8) => k!(Abs, I8),
        (Abs, U8) => k!(Abs, U8),
        (Abs, I16) => k!(Abs, I16),
        (Abs, U16) => k!(Abs, U16),
        (Abs, I32) => k!(Abs, I32),
        (Abs, U32) => k!(Abs, U32),
        (Abs, I64) => k!(Abs, I64),
        (Abs, F32) => k!(Abs, F32),
        (Abs, F64) => k!(Abs, F64),
        (Sqrt, F32) => k!(Sqrt, F32),
        (Sqrt, F64) => k!(Sqrt, F64),
        _ => None,
    }
}

/// Flattened address of one memory leg of a fused superinstruction
/// (same fields the standalone fast memory steps carry inline).
#[derive(Debug, Clone, Copy)]
pub struct FusedAddr {
    /// Base address register.
    pub base: SReg,
    /// Index register number, or [`NO_INDEX`].
    pub idx: u32,
    /// Scale applied to the index (bytes).
    pub scale: u8,
    /// Whether the access carries the aligned contract (always `false`
    /// for the element-aligned `...Vl` accesses).
    pub aligned: bool,
    /// Constant displacement (bytes).
    pub disp: i32,
}

/// Payload of the `LoadV → VBin → StoreV` superinstruction. The fused
/// step executes all three constituents in order — including every
/// register write — so machine state is bit-identical to the unfused
/// sequence; only the per-step dispatch overhead (bounds/fuel checks,
/// the step match, pc/stat bookkeeping) is paid once instead of thrice.
#[derive(Debug, Clone)]
pub struct LoadBinStore {
    /// Destination of the load.
    pub load_dst: VReg,
    /// Load address.
    pub load: FusedAddr,
    /// Destination of the binary op (also the store source).
    pub dst: VReg,
    /// Left operand.
    pub a: VReg,
    /// Right operand.
    pub b: VReg,
    /// Specialized lane kernel.
    pub f: VBinFn,
    /// Operator (for disassembly/respecialization).
    pub op: BinOp,
    /// Element type.
    pub ty: ScalarTy,
    /// Lane count on the decode target.
    pub lanes: u16,
    /// Store address.
    pub store: FusedAddr,
}

/// Payload of the `LoadV → VBin → VBin` superinstruction: a load
/// feeding one link of a combining chain that immediately feeds the
/// next (the `acc = acc ⊕ f(load)` idiom of every reduction-shaped
/// kernel, where the store only happens after the whole chain).
#[derive(Debug, Clone)]
pub struct LoadBinBin {
    /// Destination of the load.
    pub load_dst: VReg,
    /// Load address.
    pub load: FusedAddr,
    /// Destination of the first binary op.
    pub dst1: VReg,
    /// Left operand of the first op.
    pub a1: VReg,
    /// Right operand of the first op.
    pub b1: VReg,
    /// Specialized lane kernel of the first op.
    pub f1: VBinFn,
    /// First operator.
    pub op1: BinOp,
    /// Element type of the first op.
    pub ty1: ScalarTy,
    /// Lane count of the first op on the decode target.
    pub lanes1: u16,
    /// Destination of the second binary op.
    pub dst2: VReg,
    /// Left operand of the second op.
    pub a2: VReg,
    /// Right operand of the second op.
    pub b2: VReg,
    /// Specialized lane kernel of the second op.
    pub f2: VBinFn,
    /// Second operator.
    pub op2: BinOp,
    /// Element type of the second op.
    pub ty2: ScalarTy,
    /// Lane count of the second op on the decode target.
    pub lanes2: u16,
}

/// Payload of the `LoadV → VBin` superinstruction.
#[derive(Debug, Clone)]
pub struct LoadBin {
    /// Destination of the load.
    pub load_dst: VReg,
    /// Load address.
    pub load: FusedAddr,
    /// Destination of the binary op.
    pub dst: VReg,
    /// Left operand.
    pub a: VReg,
    /// Right operand.
    pub b: VReg,
    /// Specialized lane kernel.
    pub f: VBinFn,
    /// Operator.
    pub op: BinOp,
    /// Element type.
    pub ty: ScalarTy,
    /// Lane count on the decode target.
    pub lanes: u16,
}

/// Payload of the `VBin → StoreV` superinstruction.
#[derive(Debug, Clone)]
pub struct BinStore {
    /// Destination of the binary op (also the store source).
    pub dst: VReg,
    /// Left operand.
    pub a: VReg,
    /// Right operand.
    pub b: VReg,
    /// Specialized lane kernel.
    pub f: VBinFn,
    /// Operator.
    pub op: BinOp,
    /// Element type.
    pub ty: ScalarTy,
    /// Lane count on the decode target.
    pub lanes: u16,
    /// Store address.
    pub store: FusedAddr,
}

/// Payload of the predicated `LoadVl → VBinVl → StoreVl` runtime-VL
/// superinstruction: the active lane count is read from the machine's VL
/// state at execution time, exactly as in the unfused steps.
#[derive(Debug, Clone)]
pub struct LoadBinStoreVl {
    /// Element type of the predicated load.
    pub load_ty: ScalarTy,
    /// Destination of the load.
    pub load_dst: VReg,
    /// Load address (element-aligned; no whole-register contract).
    pub load: FusedAddr,
    /// Destination of the binary op (merge source; also the store
    /// source).
    pub dst: VReg,
    /// Left operand.
    pub a: VReg,
    /// Right operand.
    pub b: VReg,
    /// Specialized lane kernel.
    pub f: VBinFn,
    /// Operator.
    pub op: BinOp,
    /// Element type of the binary op.
    pub ty: ScalarTy,
    /// Lane count of a full register on the decode target (VL clamp).
    pub max_lanes: u16,
    /// Element type of the predicated store.
    pub store_ty: ScalarTy,
    /// Store address.
    pub store: FusedAddr,
}

/// Payload of the `SBinImm → branch` loop-latch superinstruction
/// (induction-variable step plus the backedge test, the tail of every
/// stripmined loop).
#[derive(Debug, Clone)]
pub struct Latch {
    /// Destination of the scalar op.
    pub dst: SReg,
    /// Left operand of the scalar op.
    pub a: SReg,
    /// Immediate right operand of the scalar op.
    pub imm: i32,
    /// Specialized scalar kernel.
    pub f: SBinFn,
    /// Operand type.
    pub ty: ScalarTy,
    /// Result type.
    pub rty: ScalarTy,
    /// Branch condition.
    pub cond: Cond,
    /// Left branch operand.
    pub br_a: SReg,
    /// Right branch operand register number, or [`NO_INDEX`] when the
    /// branch compares against `br_imm`.
    pub br_reg: u32,
    /// Immediate right branch operand (used when `br_reg` is
    /// [`NO_INDEX`]).
    pub br_imm: i64,
    /// Target index.
    pub target: u32,
}

/// Per-pattern hit counters of the superinstruction fusion pass,
/// recorded on the [`DecodedProgram`] so tests can assert that the
/// expected patterns actually fire (a silently-disabled pass fails tests
/// instead of just benching slower).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FusionStats {
    /// `LoadV → VBin → StoreV` three-op fusions.
    pub load_bin_store: u32,
    /// `LoadVl → VBinVl → StoreVl` predicated (runtime-VL) three-op
    /// fusions.
    pub load_bin_store_vl: u32,
    /// `LoadV → VBin → VBin` three-op combining-chain fusions.
    pub load_bin_bin: u32,
    /// `LoadV → VBin` two-op fusions.
    pub load_bin: u32,
    /// `VBin → StoreV` two-op fusions.
    pub bin_store: u32,
    /// `SBinImm → branch` loop-latch fusions.
    pub latch: u32,
}

impl FusionStats {
    /// Total number of superinstructions formed.
    pub fn total(&self) -> u32 {
        self.load_bin_store
            + self.load_bin_store_vl
            + self.load_bin_bin
            + self.load_bin
            + self.bin_store
            + self.latch
    }

    /// Total number of three-op superinstructions formed.
    pub fn three_op(&self) -> u32 {
        self.load_bin_store + self.load_bin_store_vl + self.load_bin_bin
    }
}

/// Control-flow-resolved step of a decoded program.
///
/// No `PartialEq`: the fast variants hold function pointers, whose
/// comparison is not meaningful. Compare the source [`MCode`] instead.
///
/// The enum is kept within a 32-byte niche-packed budget (asserted in
/// tests): the superinstruction payloads exceed it and are therefore
/// boxed — one pointer chase per fused step, in exchange for two fewer
/// trips through the dispatch loop.
#[derive(Debug, Clone)]
pub enum DStep {
    /// Unconditional jump to a decoded-instruction index.
    Jump {
        /// Target index.
        target: u32,
    },
    /// Conditional branch on two scalar registers.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: SReg,
        /// Right operand.
        b: SReg,
        /// Target index.
        target: u32,
    },
    /// Conditional branch against an immediate.
    BranchImm {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: SReg,
        /// Immediate right operand.
        imm: i64,
        /// Target index.
        target: u32,
    },
    /// [`MInst::VBin`] with a specialized all-lanes kernel resolved at
    /// decode time (operator/type matches hoisted out of the lane loop).
    VBinFast {
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Specialized lane kernel.
        f: VBinFn,
        /// Operator (for disassembly/respecialization; the kernel has it
        /// baked in).
        op: BinOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count of the element type on the decode target.
        lanes: u16,
    },
    /// [`MInst::VUn`] with a specialized all-lanes kernel.
    VUnFast {
        /// Destination.
        dst: VReg,
        /// Operand.
        a: VReg,
        /// Specialized lane kernel.
        f: VUnFn,
        /// Operator.
        op: UnOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count of the element type on the decode target.
        lanes: u16,
    },
    /// [`MInst::VBinVl`] (merging-predicated, runtime-VL) with the same
    /// specialized lane kernel as [`DStep::VBinFast`]: the active lane
    /// count is read from the machine's VL state at execution time, so
    /// runtime-VL code no longer falls back to the generic
    /// merge-predicated interpreter loop.
    VBinVlFast {
        /// Destination (also the merge source for inactive lanes).
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Specialized lane kernel.
        f: VBinFn,
        /// Operator.
        op: BinOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count of a full register on the decode target (the VL
        /// clamp).
        max_lanes: u16,
    },
    /// [`MInst::VUnVl`] with a specialized merging-predicated kernel.
    VUnVlFast {
        /// Destination (also the merge source for inactive lanes).
        dst: VReg,
        /// Operand.
        a: VReg,
        /// Specialized lane kernel.
        f: VUnFn,
        /// Operator.
        op: UnOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count of a full register on the decode target.
        max_lanes: u16,
    },
    /// [`MInst::LoadV`] with the address mode flattened to immediate
    /// fields: no `AddrMode` indirection and no second (~40-variant)
    /// instruction match in the hot loop. Memory traffic dominates the
    /// suite's inner loops, so these four memory steps are where the
    /// decoded dispatch wins most of its time over the seed interpreter.
    LoadVFast {
        /// Destination.
        dst: VReg,
        /// Base address register.
        base: SReg,
        /// Index register number, or [`NO_INDEX`].
        idx: u32,
        /// Scale applied to the index (bytes).
        scale: u8,
        /// Whether the access carries the aligned contract.
        aligned: bool,
        /// Constant displacement (bytes).
        disp: i32,
    },
    /// [`MInst::StoreV`] with a flattened address mode.
    StoreVFast {
        /// Source register.
        src: VReg,
        /// Base address register.
        base: SReg,
        /// Index register number, or [`NO_INDEX`].
        idx: u32,
        /// Scale applied to the index (bytes).
        scale: u8,
        /// Whether the access carries the aligned contract.
        aligned: bool,
        /// Constant displacement (bytes).
        disp: i32,
    },
    /// [`MInst::LoadS`] with a flattened address mode.
    LoadSFast {
        /// Element type.
        ty: ScalarTy,
        /// Destination.
        dst: SReg,
        /// Base address register.
        base: SReg,
        /// Index register number, or [`NO_INDEX`].
        idx: u32,
        /// Scale applied to the index (bytes).
        scale: u8,
        /// Constant displacement (bytes).
        disp: i32,
    },
    /// [`MInst::StoreS`] with a flattened address mode.
    StoreSFast {
        /// Element type.
        ty: ScalarTy,
        /// Source register.
        src: SReg,
        /// Base address register.
        base: SReg,
        /// Index register number, or [`NO_INDEX`].
        idx: u32,
        /// Scale applied to the index (bytes).
        scale: u8,
        /// Constant displacement (bytes).
        disp: i32,
    },
    /// [`MInst::SBin`]/[`MInst::FpuBin`] with a specialized scalar ALU
    /// kernel and the result type resolved at decode time. The
    /// partially-vectorized kernels execute mostly scalar code, so this
    /// is what moves their dispatch numbers.
    SBinFast {
        /// Destination.
        dst: SReg,
        /// Left operand.
        a: SReg,
        /// Right operand.
        b: SReg,
        /// Specialized scalar kernel.
        f: SBinFn,
        /// Operand type (for input coercion).
        ty: ScalarTy,
        /// Result type (I32 for comparisons, `ty` otherwise).
        rty: ScalarTy,
    },
    /// [`MInst::SBinImm`] with a specialized scalar ALU kernel.
    SBinImmFast {
        /// Destination.
        dst: SReg,
        /// Left operand.
        a: SReg,
        /// Immediate right operand (decode falls back to the generic
        /// path when it does not fit 32 bits).
        imm: i32,
        /// Specialized scalar kernel.
        f: SBinFn,
        /// Operand type.
        ty: ScalarTy,
        /// Result type.
        rty: ScalarTy,
    },
    /// [`MInst::MovS`] (hot in spill-heavy scalar code).
    MovSFast {
        /// Destination.
        dst: SReg,
        /// Source.
        src: SReg,
    },
    /// [`MInst::Splat`] with a specialized broadcast kernel (hot in the
    /// loop preheaders of every vectorized kernel and inside shift/mask
    /// idioms).
    SplatFast {
        /// Destination.
        dst: VReg,
        /// Source scalar.
        src: SReg,
        /// Specialized broadcast kernel.
        f: SplatFn,
        /// Element type.
        ty: ScalarTy,
        /// Lane count on the decode target.
        lanes: u16,
    },
    /// [`MInst::VShift`] by an immediate amount with a specialized lane
    /// kernel (per-lane amounts decode to [`DStep::VBinFast`] instead —
    /// they are exactly a lane-wise binary op). Immediate and register
    /// amounts are separate variants so each payload stays inside the
    /// 32-byte niche-packed budget.
    VShiftImmFast {
        /// Destination.
        dst: VReg,
        /// Operand.
        a: VReg,
        /// Specialized shift kernel.
        f: VShiftFn,
        /// Immediate amount.
        imm: u8,
        /// Shift direction (for disassembly).
        left: bool,
        /// Element type.
        ty: ScalarTy,
        /// Lane count on the decode target.
        lanes: u16,
    },
    /// [`MInst::VShift`] by a broadcast scalar-register amount.
    VShiftRegFast {
        /// Destination.
        dst: VReg,
        /// Operand.
        a: VReg,
        /// Specialized shift kernel.
        f: VShiftFn,
        /// Amount register.
        amt: SReg,
        /// Shift direction (for disassembly).
        left: bool,
        /// Element type.
        ty: ScalarTy,
        /// Lane count on the decode target.
        lanes: u16,
    },
    /// [`MInst::SpillLd`] without the generic-interpreter detour (spill
    /// traffic dominates the naive-JIT flows).
    SpillLdFast {
        /// Destination register.
        dst: SReg,
        /// Slot index.
        slot: u32,
    },
    /// [`MInst::SpillSt`] without the generic-interpreter detour.
    SpillStFast {
        /// Source register.
        src: SReg,
        /// Slot index.
        slot: u32,
    },
    /// [`MInst::VReduce`] with a specialized fold kernel (the reduction
    /// at the end of every dot-product/accumulation loop).
    VReduceFast {
        /// Destination scalar.
        dst: SReg,
        /// Source vector.
        src: VReg,
        /// Specialized fold kernel.
        f: VReduceFn,
        /// Reduction operator (for disassembly).
        op: ReduceOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count on the decode target.
        lanes: u16,
    },
    /// `LoadV → VBin → StoreV` superinstruction (see [`LoadBinStore`]).
    FusedLoadBinStore(Box<LoadBinStore>),
    /// `LoadV → VBin → VBin` superinstruction (see [`LoadBinBin`]).
    FusedLoadBinBin(Box<LoadBinBin>),
    /// `LoadV → VBin` superinstruction.
    FusedLoadBin(Box<LoadBin>),
    /// `VBin → StoreV` superinstruction.
    FusedBinStore(Box<BinStore>),
    /// Predicated `LoadVl → VBinVl → StoreVl` runtime-VL
    /// superinstruction.
    FusedLoadBinStoreVl(Box<LoadBinStoreVl>),
    /// `SBinImm → branch` loop-latch superinstruction.
    FusedLatch(Box<Latch>),
    /// Any other non-control instruction, executed by the shared
    /// (generic) semantics.
    Op(MInst),
}

/// One decoded instruction: the step plus everything the seed dispatch
/// loop used to re-derive per execution.
#[derive(Debug, Clone)]
pub struct DecodedInst {
    /// What to execute.
    pub step: DStep,
    /// Pre-computed cycle cost on the decode target. For a fused
    /// superinstruction this is the *sum* of the constituents' costs, so
    /// `vm_cycles` accounting is bit-identical with fusion on or off.
    pub cost: u64,
    /// Pre-computed lane count of the instruction's element type (1 for
    /// scalar/control/fused instructions).
    pub lanes: u32,
    /// Number of source instructions this step covers: 1 for plain
    /// steps, 2–3 for superinstructions. The dispatch loop charges it to
    /// `ExecStats::insts`, so fused and unfused execution report
    /// identical statistics.
    pub arity: u32,
}

/// A fully decoded, target-specific program.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    steps: Vec<DecodedInst>,
    /// Executable (non-label) *source* instruction count (the sum of
    /// step arities; fused programs have fewer steps than this).
    pub len: usize,
    /// Vector width in bytes of the decode target (sanity-checked at run
    /// time: running a program decoded for one target on a machine of
    /// another is a harness bug).
    pub vs: usize,
    /// Superinstruction hit counters of the fusion pass (all zero for an
    /// unfused decode).
    fusion: FusionStats,
}

/// Try to form a superinstruction at step `i`. Returns the fused step
/// and how many steps it covers; patterns are tried longest first.
/// `free(r)` reports whether no branch lands inside the index range `r`.
fn fuse_at(
    steps: &[DecodedInst],
    i: usize,
    free: &impl Fn(std::ops::Range<usize>) -> bool,
    stats: &mut FusionStats,
) -> Option<(DStep, usize)> {
    // Three-op: LoadV → VBin → StoreV, the body of every elementwise
    // vector loop (load the second operand, combine, store the result).
    if i + 2 < steps.len() && free(i + 1..i + 3) {
        if let (
            DStep::LoadVFast {
                dst: load_dst,
                base,
                idx,
                scale,
                aligned,
                disp,
            },
            DStep::VBinFast {
                dst,
                a,
                b,
                f,
                op,
                ty,
                lanes,
            },
            DStep::StoreVFast {
                src,
                base: sbase,
                idx: sidx,
                scale: sscale,
                aligned: saligned,
                disp: sdisp,
            },
        ) = (&steps[i].step, &steps[i + 1].step, &steps[i + 2].step)
        {
            if (load_dst == a || load_dst == b) && src == dst {
                stats.load_bin_store += 1;
                return Some((
                    DStep::FusedLoadBinStore(Box::new(LoadBinStore {
                        load_dst: *load_dst,
                        load: FusedAddr {
                            base: *base,
                            idx: *idx,
                            scale: *scale,
                            aligned: *aligned,
                            disp: *disp,
                        },
                        dst: *dst,
                        a: *a,
                        b: *b,
                        f: *f,
                        op: *op,
                        ty: *ty,
                        lanes: *lanes,
                        store: FusedAddr {
                            base: *sbase,
                            idx: *sidx,
                            scale: *sscale,
                            aligned: *saligned,
                            disp: *sdisp,
                        },
                    })),
                    3,
                ));
            }
        }
        // Three-op combining chain: LoadV → VBin → VBin, the
        // `acc = acc ⊕ f(load)` idiom of reduction-shaped kernels whose
        // store only happens after the chain.
        if let (
            DStep::LoadVFast {
                dst: load_dst,
                base,
                idx,
                scale,
                aligned,
                disp,
            },
            DStep::VBinFast {
                dst: dst1,
                a: a1,
                b: b1,
                f: f1,
                op: op1,
                ty: ty1,
                lanes: lanes1,
            },
            DStep::VBinFast {
                dst: dst2,
                a: a2,
                b: b2,
                f: f2,
                op: op2,
                ty: ty2,
                lanes: lanes2,
            },
        ) = (&steps[i].step, &steps[i + 1].step, &steps[i + 2].step)
        {
            if (load_dst == a1 || load_dst == b1) && (dst1 == a2 || dst1 == b2) {
                stats.load_bin_bin += 1;
                return Some((
                    DStep::FusedLoadBinBin(Box::new(LoadBinBin {
                        load_dst: *load_dst,
                        load: FusedAddr {
                            base: *base,
                            idx: *idx,
                            scale: *scale,
                            aligned: *aligned,
                            disp: *disp,
                        },
                        dst1: *dst1,
                        a1: *a1,
                        b1: *b1,
                        f1: *f1,
                        op1: *op1,
                        ty1: *ty1,
                        lanes1: *lanes1,
                        dst2: *dst2,
                        a2: *a2,
                        b2: *b2,
                        f2: *f2,
                        op2: *op2,
                        ty2: *ty2,
                        lanes2: *lanes2,
                    })),
                    3,
                ));
            }
        }
        // Predicated runtime-VL form: LoadVl → VBinVl → StoreVl (the
        // stripmined loop body of every VLA target).
        if let (
            DStep::Op(MInst::LoadVl {
                ty: load_ty,
                dst: load_dst,
                addr: load_addr,
            }),
            DStep::VBinVlFast {
                dst,
                a,
                b,
                f,
                op,
                ty,
                max_lanes,
            },
            DStep::Op(MInst::StoreVl {
                ty: store_ty,
                src,
                addr: store_addr,
            }),
        ) = (&steps[i].step, &steps[i + 1].step, &steps[i + 2].step)
        {
            if (load_dst == a || load_dst == b) && src == dst {
                if let (Some((lb, li, ls, ld)), Some((sb, si, ss, sd))) =
                    (flatten_addr(load_addr), flatten_addr(store_addr))
                {
                    stats.load_bin_store_vl += 1;
                    return Some((
                        DStep::FusedLoadBinStoreVl(Box::new(LoadBinStoreVl {
                            load_ty: *load_ty,
                            load_dst: *load_dst,
                            load: FusedAddr {
                                base: lb,
                                idx: li,
                                scale: ls,
                                aligned: false,
                                disp: ld,
                            },
                            dst: *dst,
                            a: *a,
                            b: *b,
                            f: *f,
                            op: *op,
                            ty: *ty,
                            max_lanes: *max_lanes,
                            store_ty: *store_ty,
                            store: FusedAddr {
                                base: sb,
                                idx: si,
                                scale: ss,
                                aligned: false,
                                disp: sd,
                            },
                        })),
                        3,
                    ));
                }
            }
        }
    }
    if i + 1 < steps.len() && free(i + 1..i + 2) {
        // Two-op: LoadV → VBin.
        if let (
            DStep::LoadVFast {
                dst: load_dst,
                base,
                idx,
                scale,
                aligned,
                disp,
            },
            DStep::VBinFast {
                dst,
                a,
                b,
                f,
                op,
                ty,
                lanes,
            },
        ) = (&steps[i].step, &steps[i + 1].step)
        {
            if load_dst == a || load_dst == b {
                stats.load_bin += 1;
                return Some((
                    DStep::FusedLoadBin(Box::new(LoadBin {
                        load_dst: *load_dst,
                        load: FusedAddr {
                            base: *base,
                            idx: *idx,
                            scale: *scale,
                            aligned: *aligned,
                            disp: *disp,
                        },
                        dst: *dst,
                        a: *a,
                        b: *b,
                        f: *f,
                        op: *op,
                        ty: *ty,
                        lanes: *lanes,
                    })),
                    2,
                ));
            }
        }
        // Two-op: VBin → StoreV.
        if let (
            DStep::VBinFast {
                dst,
                a,
                b,
                f,
                op,
                ty,
                lanes,
            },
            DStep::StoreVFast {
                src,
                base,
                idx,
                scale,
                aligned,
                disp,
            },
        ) = (&steps[i].step, &steps[i + 1].step)
        {
            if src == dst {
                stats.bin_store += 1;
                return Some((
                    DStep::FusedBinStore(Box::new(BinStore {
                        dst: *dst,
                        a: *a,
                        b: *b,
                        f: *f,
                        op: *op,
                        ty: *ty,
                        lanes: *lanes,
                        store: FusedAddr {
                            base: *base,
                            idx: *idx,
                            scale: *scale,
                            aligned: *aligned,
                            disp: *disp,
                        },
                    })),
                    2,
                ));
            }
        }
        // Loop latch: SBinImm → branch reading the updated induction
        // variable (register or immediate bound).
        if let DStep::SBinImmFast {
            dst,
            a,
            imm,
            f,
            ty,
            rty,
        } = &steps[i].step
        {
            let latch = |cond: Cond, br_a: SReg, br_reg: u32, br_imm: i64, target: u32| {
                DStep::FusedLatch(Box::new(Latch {
                    dst: *dst,
                    a: *a,
                    imm: *imm,
                    f: *f,
                    ty: *ty,
                    rty: *rty,
                    cond,
                    br_a,
                    br_reg,
                    br_imm,
                    target,
                }))
            };
            match &steps[i + 1].step {
                DStep::Branch {
                    cond,
                    a: ba,
                    b: bb,
                    target,
                } if (ba == dst || bb == dst) && bb.0 != NO_INDEX => {
                    stats.latch += 1;
                    return Some((latch(*cond, *ba, bb.0, 0, *target), 2));
                }
                DStep::BranchImm {
                    cond,
                    a: ba,
                    imm: bimm,
                    target,
                } if ba == dst => {
                    stats.latch += 1;
                    return Some((latch(*cond, *ba, NO_INDEX, *bimm, *target), 2));
                }
                _ => {}
            }
        }
    }
    None
}

impl DecodedProgram {
    /// Decode `code` for `target`: strip labels, resolve branch targets
    /// to instruction indices, pre-compute per-instruction costs, and
    /// run the superinstruction fusion pass (see
    /// [`DecodedProgram::fuse`]).
    ///
    /// # Errors
    /// Returns a [`Trap`] for branches to undefined labels and for
    /// duplicate label definitions (the seed interpreter deferred the
    /// former to run time; a decoded program rejects malformed code up
    /// front).
    pub fn decode(code: &MCode, target: &TargetDesc) -> Result<DecodedProgram, Trap> {
        Ok(DecodedProgram::decode_unfused(code, target)?.fuse())
    }

    /// [`DecodedProgram::decode`] without the superinstruction fusion
    /// pass: one step per executable instruction. The differential
    /// harness and the dispatch benchmarks run this form against the
    /// fused one; results, cycles and instruction counts must be
    /// bit-identical.
    ///
    /// # Errors
    /// Same contract as [`DecodedProgram::decode`].
    pub fn decode_unfused(code: &MCode, target: &TargetDesc) -> Result<DecodedProgram, Trap> {
        let vs = target.vs.max(1);
        let lanes_of = |ty: vapor_ir::ScalarTy| (vs / ty.size()).max(1);

        // Pass 1: map every label to the index its successor instruction
        // will have once labels are stripped.
        let mut label_to_index: HashMap<Label, u32> = HashMap::new();
        let mut idx = 0u32;
        for inst in &code.insts {
            if let MInst::Label(l) = inst {
                if label_to_index.insert(*l, idx).is_some() {
                    return Err(Trap(format!("label {l} defined twice")));
                }
            } else {
                idx += 1;
            }
        }
        let resolve = |l: &Label| {
            label_to_index
                .get(l)
                .copied()
                .ok_or_else(|| Trap(format!("undefined label {l}")))
        };

        // Pass 2: decode.
        let mut steps = Vec::with_capacity(idx as usize);
        for inst in &code.insts {
            let step = match inst {
                MInst::Label(_) => continue,
                MInst::Jump(l) => DStep::Jump {
                    target: resolve(l)?,
                },
                MInst::Branch { cond, a, b, target } => DStep::Branch {
                    cond: *cond,
                    a: *a,
                    b: *b,
                    target: resolve(target)?,
                },
                MInst::BranchImm {
                    cond,
                    a,
                    imm,
                    target,
                } => DStep::BranchImm {
                    cond: *cond,
                    a: *a,
                    imm: *imm,
                    target: resolve(target)?,
                },
                MInst::VBin { op, ty, dst, a, b } => match vbin_fn(*op, *ty) {
                    Some(f) => DStep::VBinFast {
                        dst: *dst,
                        a: *a,
                        b: *b,
                        f,
                        op: *op,
                        ty: *ty,
                        lanes: lanes_of(*ty) as u16,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::VUn { op, ty, dst, a } => match vun_fn(*op, *ty) {
                    Some(f) => DStep::VUnFast {
                        dst: *dst,
                        a: *a,
                        f,
                        op: *op,
                        ty: *ty,
                        lanes: lanes_of(*ty) as u16,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::SBin { op, ty, dst, a, b } | MInst::FpuBin { op, ty, dst, a, b } => {
                    match sbin_fn(*op, *ty) {
                        Some(f) => DStep::SBinFast {
                            dst: *dst,
                            a: *a,
                            b: *b,
                            f,
                            ty: *ty,
                            rty: if op.is_comparison() {
                                ScalarTy::I32
                            } else {
                                *ty
                            },
                        },
                        None => DStep::Op(inst.clone()),
                    }
                }
                MInst::SBinImm {
                    op,
                    ty,
                    dst,
                    a,
                    imm,
                } => match (sbin_fn(*op, *ty), i32::try_from(*imm)) {
                    (Some(f), Ok(imm)) => DStep::SBinImmFast {
                        dst: *dst,
                        a: *a,
                        imm,
                        f,
                        ty: *ty,
                        rty: if op.is_comparison() {
                            ScalarTy::I32
                        } else {
                            *ty
                        },
                    },
                    _ => DStep::Op(inst.clone()),
                },
                MInst::MovS { dst, src } => DStep::MovSFast {
                    dst: *dst,
                    src: *src,
                },
                MInst::Splat { ty, dst, src } => DStep::SplatFast {
                    dst: *dst,
                    src: *src,
                    f: splat_fn(*ty),
                    ty: *ty,
                    lanes: lanes_of(*ty) as u16,
                },
                MInst::VShift {
                    left,
                    ty,
                    dst,
                    a,
                    amt,
                } => match (amt, vshift_fn(*left, *ty)) {
                    (ShiftSrc::Imm(v), Some(f)) => DStep::VShiftImmFast {
                        dst: *dst,
                        a: *a,
                        f,
                        imm: *v,
                        left: *left,
                        ty: *ty,
                        lanes: lanes_of(*ty) as u16,
                    },
                    (ShiftSrc::Reg(r), Some(f)) => DStep::VShiftRegFast {
                        dst: *dst,
                        a: *a,
                        f,
                        amt: *r,
                        left: *left,
                        ty: *ty,
                        lanes: lanes_of(*ty) as u16,
                    },
                    // A per-lane shift *is* a lane-wise binary op: reuse
                    // the VBin kernels instead of a third kernel family.
                    (ShiftSrc::PerLane(amts), _) => {
                        let op = if *left { BinOp::Shl } else { BinOp::Shr };
                        match vbin_fn(op, *ty) {
                            Some(f) => DStep::VBinFast {
                                dst: *dst,
                                a: *a,
                                b: *amts,
                                f,
                                op,
                                ty: *ty,
                                lanes: lanes_of(*ty) as u16,
                            },
                            None => DStep::Op(inst.clone()),
                        }
                    }
                    _ => DStep::Op(inst.clone()),
                },
                MInst::SpillLd { dst, slot } => DStep::SpillLdFast {
                    dst: *dst,
                    slot: *slot,
                },
                MInst::SpillSt { src, slot } => DStep::SpillStFast {
                    src: *src,
                    slot: *slot,
                },
                MInst::VReduce { op, ty, dst, src } => DStep::VReduceFast {
                    dst: *dst,
                    src: *src,
                    f: vreduce_fn(*op, *ty),
                    op: *op,
                    ty: *ty,
                    lanes: lanes_of(*ty) as u16,
                },
                MInst::LoadV { dst, addr, align } => match flatten_addr(addr) {
                    Some((base, idx, scale, disp)) => DStep::LoadVFast {
                        dst: *dst,
                        base,
                        idx,
                        scale,
                        aligned: *align == MemAlign::Aligned,
                        disp,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::StoreV { src, addr, align } => match flatten_addr(addr) {
                    Some((base, idx, scale, disp)) => DStep::StoreVFast {
                        src: *src,
                        base,
                        idx,
                        scale,
                        aligned: *align == MemAlign::Aligned,
                        disp,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::LoadS { ty, dst, addr } => match flatten_addr(addr) {
                    Some((base, idx, scale, disp)) => DStep::LoadSFast {
                        ty: *ty,
                        dst: *dst,
                        base,
                        idx,
                        scale,
                        disp,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::StoreS { ty, src, addr } => match flatten_addr(addr) {
                    Some((base, idx, scale, disp)) => DStep::StoreSFast {
                        ty: *ty,
                        src: *src,
                        base,
                        idx,
                        scale,
                        disp,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::VBinVl { op, ty, dst, a, b } => match vbin_fn(*op, *ty) {
                    Some(f) => DStep::VBinVlFast {
                        dst: *dst,
                        a: *a,
                        b: *b,
                        f,
                        op: *op,
                        ty: *ty,
                        max_lanes: lanes_of(*ty) as u16,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::VUnVl { op, ty, dst, a } => match vun_fn(*op, *ty) {
                    Some(f) => DStep::VUnVlFast {
                        dst: *dst,
                        a: *a,
                        f,
                        op: *op,
                        ty: *ty,
                        max_lanes: lanes_of(*ty) as u16,
                    },
                    None => DStep::Op(inst.clone()),
                },
                other => DStep::Op(other.clone()),
            };
            let lanes = match inst {
                MInst::VReduce { ty, .. } | MInst::VHelper { ty, .. } => lanes_of(*ty),
                _ => 1,
            };
            steps.push(DecodedInst {
                step,
                cost: target.cost.cost(inst, lanes),
                lanes: lanes as u32,
                arity: 1,
            });
        }
        let len = steps.len();
        Ok(DecodedProgram {
            steps,
            len,
            vs,
            fusion: FusionStats::default(),
        })
    }

    /// Run the superinstruction fusion pass: a peephole pattern-matcher
    /// over the resolved step stream that rewrites hot adjacent
    /// sequences into single steps. Patterns (longest first):
    ///
    /// * `LoadV → VBin → StoreV` (and the predicated
    ///   `LoadVl → VBinVl → StoreVl` runtime-VL form) when the load
    ///   feeds the op and the op feeds the store;
    /// * `LoadV → VBin` / `VBin → StoreV` two-op forms;
    /// * `SBinImm → branch` loop latches where the branch reads the
    ///   updated induction variable.
    ///
    /// A sequence only fuses when no branch lands on its interior steps
    /// (the head stays addressable); branch targets are re-indexed over
    /// the shortened stream. Fused steps execute their constituents in
    /// order — every register write included — and charge the *sum* of
    /// their costs and arities, so machine state, `vm_cycles` and
    /// instruction counts are bit-identical with fusion on or off.
    ///
    /// The pass is idempotent: superinstructions match no pattern, so
    /// fusing an already-fused program returns it unchanged.
    #[must_use]
    pub fn fuse(&self) -> DecodedProgram {
        let steps = &self.steps;
        // Interior steps of a fusion candidate must not be branch
        // targets; heads may be.
        let mut is_target = vec![false; steps.len() + 1];
        for d in steps {
            match &d.step {
                DStep::Jump { target }
                | DStep::Branch { target, .. }
                | DStep::BranchImm { target, .. } => is_target[*target as usize] = true,
                DStep::FusedLatch(p) => is_target[p.target as usize] = true,
                _ => {}
            }
        }
        let free = |range: std::ops::Range<usize>| range.into_iter().all(|i| !is_target[i]);

        let mut out: Vec<DecodedInst> = Vec::with_capacity(steps.len());
        let mut new_index = vec![0u32; steps.len() + 1];
        let mut fusion = self.fusion;
        let mut i = 0usize;
        while i < steps.len() {
            let fused = fuse_at(steps, i, &free, &mut fusion);
            let width = match &fused {
                Some((_, w)) => *w,
                None => 1,
            };
            new_index[i..i + width].fill(out.len() as u32);
            match fused {
                Some((step, w)) => {
                    let group = &steps[i..i + w];
                    out.push(DecodedInst {
                        step,
                        cost: group.iter().map(|d| d.cost).sum(),
                        lanes: 1,
                        arity: group.iter().map(|d| d.arity).sum(),
                    });
                }
                None => out.push(steps[i].clone()),
            }
            i += width;
        }
        new_index[steps.len()] = out.len() as u32;
        // Re-index branch targets over the shortened stream (fusion
        // legality guarantees every target maps to a surviving head).
        for d in &mut out {
            match &mut d.step {
                DStep::Jump { target }
                | DStep::Branch { target, .. }
                | DStep::BranchImm { target, .. } => *target = new_index[*target as usize],
                DStep::FusedLatch(p) => p.target = new_index[p.target as usize],
                _ => {}
            }
        }
        DecodedProgram {
            steps: out,
            len: self.len,
            vs: self.vs,
            fusion,
        }
    }

    /// The superinstruction hit counters of the fusion pass.
    pub fn fusion_stats(&self) -> FusionStats {
        self.fusion
    }

    /// Number of decoded steps actually dispatched per full pass over
    /// the program (≤ [`DecodedProgram::len`] once fusion has run).
    pub fn n_steps(&self) -> usize {
        self.steps.len()
    }

    /// Re-specialize an already-decoded program to another vector width
    /// of the same code, sharing all vector-length-independent decode
    /// work: label→index resolution, step construction, and fast-kernel
    /// selection are reused; only per-instruction costs and lane counts
    /// are recomputed against `target`. This is what makes bringing up a
    /// new runtime VL cheaper than a fresh [`DecodedProgram::decode`].
    ///
    /// `code` must be the same program this was decoded from (the engine
    /// keys both off one `Compiled` artifact); a shape mismatch is
    /// rejected.
    ///
    /// # Errors
    /// Returns a [`Trap`] when `code` does not match this program.
    pub fn respecialize(&self, code: &MCode, target: &TargetDesc) -> Result<DecodedProgram, Trap> {
        let vs = target.vs.max(1);
        let lanes_of = |ty: vapor_ir::ScalarTy| (vs / ty.size()).max(1);
        let mut insts = code.insts.iter().filter(|i| !matches!(i, MInst::Label(_)));
        let mut steps = Vec::with_capacity(self.steps.len());
        for d in &self.steps {
            // A fused step covers `arity` source instructions: its cost
            // is re-summed over the group, so the fusion decisions made
            // at family-minimum decode time stay valid at every VL (the
            // patterns themselves are VL-independent; only lane clamps
            // and costs change).
            let mut cost = 0u64;
            let mut lanes = 1usize;
            for _ in 0..d.arity {
                let inst = insts.next().ok_or_else(|| {
                    Trap("respecialize: code is shorter than the decoded program".into())
                })?;
                let l = match inst {
                    MInst::VReduce { ty, .. } | MInst::VHelper { ty, .. } => lanes_of(*ty),
                    _ => 1,
                };
                cost += target.cost.cost(inst, l);
                if d.arity == 1 {
                    lanes = l;
                }
            }
            let mut step = d.step.clone();
            match &mut step {
                DStep::VBinFast { ty, lanes, .. }
                | DStep::VUnFast { ty, lanes, .. }
                | DStep::SplatFast { ty, lanes, .. }
                | DStep::VShiftImmFast { ty, lanes, .. }
                | DStep::VShiftRegFast { ty, lanes, .. }
                | DStep::VReduceFast { ty, lanes, .. } => {
                    *lanes = lanes_of(*ty) as u16;
                }
                DStep::VBinVlFast { ty, max_lanes, .. }
                | DStep::VUnVlFast { ty, max_lanes, .. } => {
                    *max_lanes = lanes_of(*ty) as u16;
                }
                DStep::FusedLoadBinStore(p) => p.lanes = lanes_of(p.ty) as u16,
                DStep::FusedLoadBinBin(p) => {
                    p.lanes1 = lanes_of(p.ty1) as u16;
                    p.lanes2 = lanes_of(p.ty2) as u16;
                }
                DStep::FusedLoadBin(p) => p.lanes = lanes_of(p.ty) as u16,
                DStep::FusedBinStore(p) => p.lanes = lanes_of(p.ty) as u16,
                DStep::FusedLoadBinStoreVl(p) => p.max_lanes = lanes_of(p.ty) as u16,
                _ => {}
            }
            steps.push(DecodedInst {
                step,
                cost,
                lanes: lanes as u32,
                arity: d.arity,
            });
        }
        if insts.next().is_some() {
            return Err(Trap(
                "respecialize: code is longer than the decoded program".into(),
            ));
        }
        Ok(DecodedProgram {
            steps,
            len: self.len,
            vs,
            fusion: self.fusion,
        })
    }

    /// The decoded instruction stream.
    pub fn steps(&self) -> &[DecodedInst] {
        &self.steps
    }

    /// Whether there is nothing to execute.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrMode, MemAlign, VReg};
    use crate::target::{altivec, sse};
    use vapor_ir::{BinOp, ScalarTy};

    fn branchy_code() -> MCode {
        MCode {
            insts: vec![
                MInst::MovImmI {
                    dst: SReg(0),
                    imm: 0,
                },
                MInst::Label(Label(0)),
                MInst::SBinImm {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: SReg(0),
                    a: SReg(0),
                    imm: 1,
                },
                MInst::BranchImm {
                    cond: Cond::Lt,
                    a: SReg(0),
                    imm: 5,
                    target: Label(0),
                },
                MInst::Label(Label(1)),
                MInst::Jump(Label(2)),
                MInst::Label(Label(2)),
            ],
            n_sregs: 1,
            n_vregs: 0,
            note: String::new(),
        }
    }

    #[test]
    fn labels_are_stripped_and_targets_resolved() {
        let p = DecodedProgram::decode_unfused(&branchy_code(), &sse()).unwrap();
        assert_eq!(p.len, 4);
        match &p.steps()[2].step {
            DStep::BranchImm { target, .. } => assert_eq!(*target, 1),
            s => panic!("expected BranchImm, got {s:?}"),
        }
        match &p.steps()[3].step {
            // Label(2) is at the very end: the jump resolves to one past
            // the last instruction, i.e. normal termination.
            DStep::Jump { target } => assert_eq!(*target, 4),
            s => panic!("expected Jump, got {s:?}"),
        }
    }

    #[test]
    fn latch_fusion_remaps_branch_targets() {
        // The SBinImm+BranchImm backedge of branchy_code fuses into one
        // latch step whose target (and the trailing jump's) re-index
        // over the shortened stream.
        let p = DecodedProgram::decode(&branchy_code(), &sse()).unwrap();
        assert_eq!(p.len, 4, "len keeps counting source instructions");
        assert_eq!(p.n_steps(), 3);
        assert_eq!(p.fusion_stats().latch, 1);
        match &p.steps()[1].step {
            DStep::FusedLatch(l) => {
                assert_eq!(l.target, 1, "backedge lands on the latch head");
                assert_eq!((l.imm, l.br_imm), (1, 5));
            }
            s => panic!("expected FusedLatch, got {s:?}"),
        }
        match &p.steps()[2].step {
            DStep::Jump { target } => assert_eq!(*target, 3, "end jump re-indexed"),
            s => panic!("expected Jump, got {s:?}"),
        }
        // Cost and arity of the fused step cover both constituents.
        let unfused = DecodedProgram::decode_unfused(&branchy_code(), &sse()).unwrap();
        assert_eq!(p.steps()[1].arity, 2);
        assert_eq!(
            p.steps()[1].cost,
            unfused.steps()[1].cost + unfused.steps()[2].cost
        );
    }

    #[test]
    fn costs_match_the_cost_model() {
        let t = sse();
        let code = MCode {
            insts: vec![
                MInst::LoadV {
                    dst: VReg(0),
                    addr: AddrMode::base_disp(SReg(0), 0),
                    align: MemAlign::Unaligned,
                },
                MInst::VBin {
                    op: BinOp::Mul,
                    ty: ScalarTy::F32,
                    dst: VReg(0),
                    a: VReg(0),
                    b: VReg(0),
                },
            ],
            n_sregs: 1,
            n_vregs: 1,
            note: String::new(),
        };
        let p = DecodedProgram::decode_unfused(&code, &t).unwrap();
        for (d, inst) in p.steps().iter().zip(&code.insts) {
            assert_eq!(d.cost, t.cost.cost(inst, d.lanes as usize));
        }
        // The fused decode forms a LoadV→VBin superinstruction whose
        // cost is the exact sum (vm_cycles accounting must not move).
        let f = DecodedProgram::decode(&code, &t).unwrap();
        assert_eq!(f.fusion_stats().load_bin, 1);
        assert_eq!(f.n_steps(), 1);
        assert_eq!(
            f.steps()[0].cost,
            p.steps().iter().map(|d| d.cost).sum::<u64>()
        );
    }

    #[test]
    fn dstep_stays_within_the_niche_packed_budget() {
        // The hot-loop enum must not grow: superinstruction payloads are
        // boxed precisely to preserve this.
        assert!(
            std::mem::size_of::<DStep>() <= 32,
            "DStep grew to {} bytes",
            std::mem::size_of::<DStep>()
        );
    }

    #[test]
    fn three_op_fusion_requires_dataflow_and_free_interior() {
        let body = |dst: u32| {
            vec![
                MInst::LoadV {
                    dst: VReg(0),
                    addr: AddrMode::base_disp(SReg(0), 0),
                    align: MemAlign::Unaligned,
                },
                MInst::VBin {
                    op: BinOp::Add,
                    ty: ScalarTy::F32,
                    dst: VReg(dst),
                    a: VReg(0),
                    b: VReg(1),
                },
                MInst::StoreV {
                    src: VReg(2),
                    addr: AddrMode::base_disp(SReg(0), 16),
                    align: MemAlign::Unaligned,
                },
            ]
        };
        let code = |insts| MCode {
            insts,
            n_sregs: 1,
            n_vregs: 3,
            note: String::new(),
        };
        // Dataflow holds: load feeds the op, the op feeds the store.
        let p = DecodedProgram::decode(&code(body(2)), &sse()).unwrap();
        assert_eq!(p.fusion_stats().load_bin_store, 1);
        assert_eq!(p.n_steps(), 1);
        assert!(matches!(p.steps()[0].step, DStep::FusedLoadBinStore(_)));
        // Store reads a different register: only the two-op prefix fuses.
        let p = DecodedProgram::decode(&code(body(1)), &sse()).unwrap();
        assert_eq!(p.fusion_stats().load_bin_store, 0);
        assert_eq!(p.fusion_stats().load_bin, 1);
        // A branch landing on the VBin blocks the three-op fusion (and
        // the LoadV→VBin prefix), but the VBin→StoreV pair may still
        // fuse: the branch target is that group's *head*, which stays
        // addressable.
        let mut insts = body(2);
        insts.insert(1, MInst::Label(Label(0)));
        insts.push(MInst::BranchImm {
            cond: Cond::Lt,
            a: SReg(0),
            imm: 0,
            target: Label(0),
        });
        let p = DecodedProgram::decode(&code(insts), &sse()).unwrap();
        let stats = p.fusion_stats();
        assert_eq!(
            (stats.load_bin_store, stats.load_bin, stats.bin_store),
            (0, 0, 1),
            "{stats:?}"
        );
        match &p.steps()[2].step {
            DStep::BranchImm { target, .. } => {
                assert_eq!(*target, 1, "branch re-indexed onto the fused head")
            }
            s => panic!("expected BranchImm, got {s:?}"),
        }
    }

    #[test]
    fn fusion_is_idempotent() {
        let p = DecodedProgram::decode(&branchy_code(), &sse()).unwrap();
        let again = p.fuse();
        assert_eq!(again.n_steps(), p.n_steps());
        assert_eq!(again.fusion_stats(), p.fusion_stats());
        assert_eq!(
            crate::disasm::disasm_decoded(&again),
            crate::disasm::disasm_decoded(&p)
        );
    }

    #[test]
    fn reduce_lanes_depend_on_target() {
        let code = MCode {
            insts: vec![MInst::VReduce {
                op: crate::isa::ReduceOp::Plus,
                ty: ScalarTy::I16,
                dst: SReg(0),
                src: VReg(0),
            }],
            n_sregs: 1,
            n_vregs: 1,
            note: String::new(),
        };
        let p = DecodedProgram::decode(&code, &sse()).unwrap();
        assert_eq!(p.steps()[0].lanes, 8); // 16 bytes / 2
        let p = DecodedProgram::decode(&code, &altivec()).unwrap();
        assert_eq!(p.steps()[0].lanes, 8);
    }

    #[test]
    fn undefined_label_is_rejected_at_decode_time() {
        let code = MCode {
            insts: vec![MInst::Jump(Label(9))],
            n_sregs: 0,
            n_vregs: 0,
            note: String::new(),
        };
        let err = DecodedProgram::decode(&code, &sse()).unwrap_err();
        assert!(err.0.contains("undefined label"), "{err}");
    }

    #[test]
    fn predicated_vector_ops_get_fast_kernels() {
        // VBinVl/VUnVl must decode to the merging-predicated fast
        // kernels, not fall back to the generic Op path.
        let code = MCode {
            insts: vec![
                MInst::VBinVl {
                    op: BinOp::Add,
                    ty: ScalarTy::I32,
                    dst: VReg(0),
                    a: VReg(1),
                    b: VReg(2),
                },
                MInst::VUnVl {
                    op: vapor_ir::UnOp::Neg,
                    ty: ScalarTy::F64,
                    dst: VReg(0),
                    a: VReg(1),
                },
            ],
            n_sregs: 0,
            n_vregs: 3,
            note: String::new(),
        };
        let t = crate::target::sve().at_vl(512); // 64-byte registers
        let p = DecodedProgram::decode(&code, &t).unwrap();
        match &p.steps()[0].step {
            DStep::VBinVlFast {
                op, ty, max_lanes, ..
            } => {
                assert_eq!((*op, *ty), (BinOp::Add, ScalarTy::I32));
                assert_eq!(*max_lanes, 16);
            }
            s => panic!("expected VBinVlFast, got {s:?}"),
        }
        match &p.steps()[1].step {
            DStep::VUnVlFast { ty, max_lanes, .. } => {
                assert_eq!((*ty, *max_lanes), (ScalarTy::F64, 8));
            }
            s => panic!("expected VUnVlFast, got {s:?}"),
        }
        let text = crate::disasm::disasm_decoded(&p);
        assert!(text.contains("vl.fast"), "{text}");
    }

    #[test]
    fn hot_scalar_and_memory_ops_get_fast_steps() {
        // The dispatch-dominant instructions must not take the generic
        // Op fallback: loads/stores decode to flattened-address steps,
        // scalar ALU ops to specialized kernels.
        let code = MCode {
            insts: vec![
                MInst::LoadV {
                    dst: VReg(0),
                    addr: AddrMode::fused(SReg(0), SReg(1), 4, 16),
                    align: MemAlign::Aligned,
                },
                MInst::StoreV {
                    src: VReg(0),
                    addr: AddrMode::base_disp(SReg(0), 0),
                    align: MemAlign::Unaligned,
                },
                MInst::LoadS {
                    ty: ScalarTy::F32,
                    dst: SReg(2),
                    addr: AddrMode::base_disp(SReg(0), 4),
                },
                MInst::StoreS {
                    ty: ScalarTy::F32,
                    src: SReg(2),
                    addr: AddrMode::base_disp(SReg(0), 8),
                },
                MInst::SBin {
                    op: BinOp::Mul,
                    ty: ScalarTy::I64,
                    dst: SReg(3),
                    a: SReg(1),
                    b: SReg(2),
                },
                MInst::SBinImm {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: SReg(1),
                    a: SReg(1),
                    imm: 1,
                },
                MInst::MovS {
                    dst: SReg(4),
                    src: SReg(3),
                },
                // Out-of-range displacement: must fall back, not decode
                // a truncated address.
                MInst::LoadS {
                    ty: ScalarTy::F32,
                    dst: SReg(2),
                    addr: AddrMode::base_disp(SReg(0), i64::from(i32::MAX) + 1),
                },
            ],
            n_sregs: 5,
            n_vregs: 1,
            note: String::new(),
        };
        let p = DecodedProgram::decode(&code, &sse()).unwrap();
        assert!(matches!(
            p.steps()[0].step,
            DStep::LoadVFast {
                aligned: true,
                idx: 1,
                scale: 4,
                disp: 16,
                ..
            }
        ));
        assert!(matches!(
            p.steps()[1].step,
            DStep::StoreVFast {
                aligned: false,
                idx: super::NO_INDEX,
                ..
            }
        ));
        assert!(matches!(p.steps()[2].step, DStep::LoadSFast { .. }));
        assert!(matches!(p.steps()[3].step, DStep::StoreSFast { .. }));
        assert!(matches!(
            p.steps()[4].step,
            DStep::SBinFast {
                ty: ScalarTy::I64,
                rty: ScalarTy::I64,
                ..
            }
        ));
        assert!(matches!(
            p.steps()[5].step,
            DStep::SBinImmFast { imm: 1, .. }
        ));
        assert!(matches!(p.steps()[6].step, DStep::MovSFast { .. }));
        assert!(matches!(p.steps()[7].step, DStep::Op(MInst::LoadS { .. })));
        // Comparisons resolve their I32 result type at decode time.
        let cmp = MCode {
            insts: vec![MInst::SBin {
                op: BinOp::CmpLt,
                ty: ScalarTy::F64,
                dst: SReg(0),
                a: SReg(1),
                b: SReg(2),
            }],
            n_sregs: 3,
            n_vregs: 0,
            note: String::new(),
        };
        let p = DecodedProgram::decode(&cmp, &sse()).unwrap();
        assert!(matches!(
            p.steps()[0].step,
            DStep::SBinFast {
                ty: ScalarTy::F64,
                rty: ScalarTy::I32,
                ..
            }
        ));
    }

    #[test]
    fn respecialize_matches_a_fresh_decode() {
        // Re-specializing a family-minimum decode to another VL must
        // produce exactly what a from-scratch decode produces: same
        // targets, same costs, same lane clamps.
        let code = MCode {
            insts: vec![
                MInst::MovImmI {
                    dst: SReg(0),
                    imm: 0,
                },
                MInst::Label(Label(0)),
                MInst::VBinVl {
                    op: BinOp::Mul,
                    ty: ScalarTy::F32,
                    dst: VReg(0),
                    a: VReg(0),
                    b: VReg(1),
                },
                MInst::VReduce {
                    op: crate::isa::ReduceOp::Plus,
                    ty: ScalarTy::F32,
                    dst: SReg(1),
                    src: VReg(0),
                },
                MInst::SBinImm {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: SReg(0),
                    a: SReg(0),
                    imm: 1,
                },
                MInst::BranchImm {
                    cond: Cond::Lt,
                    a: SReg(0),
                    imm: 3,
                    target: Label(0),
                },
            ],
            n_sregs: 2,
            n_vregs: 2,
            note: String::new(),
        };
        let family = crate::target::sve();
        let base = DecodedProgram::decode(&code, &family).unwrap();
        for vl in [128usize, 512, 2048] {
            let exec = family.at_vl(vl);
            let fresh = DecodedProgram::decode(&code, &exec).unwrap();
            let respec = base.respecialize(&code, &exec).unwrap();
            assert_eq!(respec.vs, fresh.vs);
            assert_eq!(respec.len, fresh.len);
            for (a, b) in respec.steps().iter().zip(fresh.steps()) {
                assert_eq!(a.cost, b.cost, "VL={vl}");
                assert_eq!(a.lanes, b.lanes, "VL={vl}");
                assert_eq!(
                    crate::disasm::disasm_step(&a.step),
                    crate::disasm::disasm_step(&b.step),
                    "VL={vl}"
                );
            }
        }
    }

    #[test]
    fn respecialize_rejects_mismatched_code() {
        let code = MCode {
            insts: vec![MInst::MovImmI {
                dst: SReg(0),
                imm: 0,
            }],
            n_sregs: 1,
            n_vregs: 0,
            note: String::new(),
        };
        let p = DecodedProgram::decode(&code, &crate::target::sve()).unwrap();
        let longer = MCode {
            insts: vec![
                MInst::MovImmI {
                    dst: SReg(0),
                    imm: 0,
                },
                MInst::MovImmI {
                    dst: SReg(1),
                    imm: 1,
                },
            ],
            n_sregs: 2,
            n_vregs: 0,
            note: String::new(),
        };
        let err = p
            .respecialize(&longer, &crate::target::sve().at_vl(256))
            .unwrap_err();
        assert!(err.0.contains("longer"), "{err}");
        let empty = MCode {
            insts: vec![],
            n_sregs: 0,
            n_vregs: 0,
            note: String::new(),
        };
        let err = p
            .respecialize(&empty, &crate::target::sve().at_vl(256))
            .unwrap_err();
        assert!(err.0.contains("shorter"), "{err}");
    }

    #[test]
    fn duplicate_label_is_rejected_at_decode_time() {
        // `MCode` is freely constructible, so malformed programs must
        // come back as `Err`, not abort the process.
        let code = MCode {
            insts: vec![MInst::Label(Label(0)), MInst::Label(Label(0))],
            n_sregs: 0,
            n_vregs: 0,
            note: String::new(),
        };
        let err = DecodedProgram::decode(&code, &sse()).unwrap_err();
        assert!(err.0.contains("defined twice"), "{err}");
    }
}

//! Pre-decoded machine code: the load-time form the VM dispatch loop
//! actually executes.
//!
//! [`MCode`] is the portable, printable form the online compilers emit:
//! branch targets are symbolic labels, and per-instruction metadata
//! (cycle cost, lane counts) is implicit. The seed interpreter re-derived
//! all of that *every step*: a `HashMap` lookup per taken branch and a
//! full cost-model match per executed instruction. [`DecodedProgram`]
//! resolves everything once per (code, target) pair at compile time:
//!
//! * labels are stripped and every branch target becomes an instruction
//!   index into the decoded stream;
//! * the cycle cost of every instruction is pre-computed against the
//!   target's cost table (including the lane-count-dependent costs of
//!   reductions and helper calls);
//! * control flow is separated from computation, so the hot loop matches
//!   a four-variant enum instead of a ~40-variant one.
//!
//! A decoded program is target-specific (costs and lane counts depend on
//! the target) and immutable, so one decode is shared by every execution
//! of a compiled kernel — `vapor_jit::CompiledKernel` carries it behind
//! an `Arc`.

use std::collections::HashMap;

use vapor_ir::sem::{eval_bin, eval_un, read_elem, write_elem};
use vapor_ir::{BinOp, ScalarTy, UnOp};

use crate::isa::{Cond, Label, MCode, MInst, SReg, VReg};
use crate::machine::{Trap, VBytes, MAX_VS};
use crate::target::TargetDesc;

/// Specialized all-lanes kernel of a binary vector op: the operator and
/// element type are compile-time constants inside, so the per-lane
/// `eval_bin`/`read_elem`/`write_elem` matches of the generic
/// interpreter const-fold into a straight-line (auto-vectorizable) loop.
pub type VBinFn = fn(&VBytes, &VBytes, usize) -> VBytes;

/// Specialized all-lanes kernel of a unary vector op.
pub type VUnFn = fn(&VBytes, usize) -> VBytes;

/// Pick the specialized kernel for a (operator, element type) pair, if
/// one is generated. Pairs the online compilers never emit (e.g. float
/// comparisons as lane ops) fall back to the generic path.
fn vbin_fn(op: BinOp, ty: ScalarTy) -> Option<VBinFn> {
    macro_rules! k {
        ($opvar:ident, $tyvar:ident) => {{
            fn kernel(a: &VBytes, b: &VBytes, n: usize) -> VBytes {
                const TY: ScalarTy = ScalarTy::$tyvar;
                const SZ: usize = TY.size();
                let mut out = [0u8; MAX_VS];
                for k in 0..n {
                    let off = k * SZ;
                    let v = eval_bin(
                        BinOp::$opvar,
                        TY,
                        read_elem(TY, a, off),
                        read_elem(TY, b, off),
                    );
                    write_elem(TY, &mut out, off, v);
                }
                out
            }
            Some(kernel as VBinFn)
        }};
    }
    use BinOp::*;
    use ScalarTy::*;
    match (op, ty) {
        (Add, I8) => k!(Add, I8),
        (Add, U8) => k!(Add, U8),
        (Add, I16) => k!(Add, I16),
        (Add, U16) => k!(Add, U16),
        (Add, I32) => k!(Add, I32),
        (Add, U32) => k!(Add, U32),
        (Add, I64) => k!(Add, I64),
        (Add, F32) => k!(Add, F32),
        (Add, F64) => k!(Add, F64),
        (Sub, I8) => k!(Sub, I8),
        (Sub, U8) => k!(Sub, U8),
        (Sub, I16) => k!(Sub, I16),
        (Sub, U16) => k!(Sub, U16),
        (Sub, I32) => k!(Sub, I32),
        (Sub, U32) => k!(Sub, U32),
        (Sub, I64) => k!(Sub, I64),
        (Sub, F32) => k!(Sub, F32),
        (Sub, F64) => k!(Sub, F64),
        (Mul, I8) => k!(Mul, I8),
        (Mul, U8) => k!(Mul, U8),
        (Mul, I16) => k!(Mul, I16),
        (Mul, U16) => k!(Mul, U16),
        (Mul, I32) => k!(Mul, I32),
        (Mul, U32) => k!(Mul, U32),
        (Mul, I64) => k!(Mul, I64),
        (Mul, F32) => k!(Mul, F32),
        (Mul, F64) => k!(Mul, F64),
        (Div, I8) => k!(Div, I8),
        (Div, U8) => k!(Div, U8),
        (Div, I16) => k!(Div, I16),
        (Div, U16) => k!(Div, U16),
        (Div, I32) => k!(Div, I32),
        (Div, U32) => k!(Div, U32),
        (Div, I64) => k!(Div, I64),
        (Div, F32) => k!(Div, F32),
        (Div, F64) => k!(Div, F64),
        (Min, I8) => k!(Min, I8),
        (Min, U8) => k!(Min, U8),
        (Min, I16) => k!(Min, I16),
        (Min, U16) => k!(Min, U16),
        (Min, I32) => k!(Min, I32),
        (Min, U32) => k!(Min, U32),
        (Min, I64) => k!(Min, I64),
        (Min, F32) => k!(Min, F32),
        (Min, F64) => k!(Min, F64),
        (Max, I8) => k!(Max, I8),
        (Max, U8) => k!(Max, U8),
        (Max, I16) => k!(Max, I16),
        (Max, U16) => k!(Max, U16),
        (Max, I32) => k!(Max, I32),
        (Max, U32) => k!(Max, U32),
        (Max, I64) => k!(Max, I64),
        (Max, F32) => k!(Max, F32),
        (Max, F64) => k!(Max, F64),
        (And, I8) => k!(And, I8),
        (And, U8) => k!(And, U8),
        (And, I16) => k!(And, I16),
        (And, U16) => k!(And, U16),
        (And, I32) => k!(And, I32),
        (And, U32) => k!(And, U32),
        (And, I64) => k!(And, I64),
        (Or, I8) => k!(Or, I8),
        (Or, U8) => k!(Or, U8),
        (Or, I16) => k!(Or, I16),
        (Or, U16) => k!(Or, U16),
        (Or, I32) => k!(Or, I32),
        (Or, U32) => k!(Or, U32),
        (Or, I64) => k!(Or, I64),
        (Xor, I8) => k!(Xor, I8),
        (Xor, U8) => k!(Xor, U8),
        (Xor, I16) => k!(Xor, I16),
        (Xor, U16) => k!(Xor, U16),
        (Xor, I32) => k!(Xor, I32),
        (Xor, U32) => k!(Xor, U32),
        (Xor, I64) => k!(Xor, I64),
        (CmpEq, I8) => k!(CmpEq, I8),
        (CmpEq, U8) => k!(CmpEq, U8),
        (CmpEq, I16) => k!(CmpEq, I16),
        (CmpEq, U16) => k!(CmpEq, U16),
        (CmpEq, I32) => k!(CmpEq, I32),
        (CmpEq, U32) => k!(CmpEq, U32),
        (CmpEq, I64) => k!(CmpEq, I64),
        (CmpLt, I8) => k!(CmpLt, I8),
        (CmpLt, U8) => k!(CmpLt, U8),
        (CmpLt, I16) => k!(CmpLt, I16),
        (CmpLt, U16) => k!(CmpLt, U16),
        (CmpLt, I32) => k!(CmpLt, I32),
        (CmpLt, U32) => k!(CmpLt, U32),
        (CmpLt, I64) => k!(CmpLt, I64),
        _ => None,
    }
}

/// Pick the specialized kernel for a unary (operator, element type).
fn vun_fn(op: UnOp, ty: ScalarTy) -> Option<VUnFn> {
    macro_rules! k {
        ($opvar:ident, $tyvar:ident) => {{
            fn kernel(a: &VBytes, n: usize) -> VBytes {
                const TY: ScalarTy = ScalarTy::$tyvar;
                const SZ: usize = TY.size();
                let mut out = [0u8; MAX_VS];
                for k in 0..n {
                    let off = k * SZ;
                    write_elem(
                        TY,
                        &mut out,
                        off,
                        eval_un(UnOp::$opvar, TY, read_elem(TY, a, off)),
                    );
                }
                out
            }
            Some(kernel as VUnFn)
        }};
    }
    use ScalarTy::*;
    use UnOp::*;
    match (op, ty) {
        (Neg, I8) => k!(Neg, I8),
        (Neg, U8) => k!(Neg, U8),
        (Neg, I16) => k!(Neg, I16),
        (Neg, U16) => k!(Neg, U16),
        (Neg, I32) => k!(Neg, I32),
        (Neg, U32) => k!(Neg, U32),
        (Neg, I64) => k!(Neg, I64),
        (Neg, F32) => k!(Neg, F32),
        (Neg, F64) => k!(Neg, F64),
        (Abs, I8) => k!(Abs, I8),
        (Abs, U8) => k!(Abs, U8),
        (Abs, I16) => k!(Abs, I16),
        (Abs, U16) => k!(Abs, U16),
        (Abs, I32) => k!(Abs, I32),
        (Abs, U32) => k!(Abs, U32),
        (Abs, I64) => k!(Abs, I64),
        (Abs, F32) => k!(Abs, F32),
        (Abs, F64) => k!(Abs, F64),
        (Sqrt, F32) => k!(Sqrt, F32),
        (Sqrt, F64) => k!(Sqrt, F64),
        _ => None,
    }
}

/// Control-flow-resolved step of a decoded program.
///
/// No `PartialEq`: the fast variants hold function pointers, whose
/// comparison is not meaningful. Compare the source [`MCode`] instead.
#[derive(Debug, Clone)]
pub enum DStep {
    /// Unconditional jump to a decoded-instruction index.
    Jump {
        /// Target index.
        target: u32,
    },
    /// Conditional branch on two scalar registers.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: SReg,
        /// Right operand.
        b: SReg,
        /// Target index.
        target: u32,
    },
    /// Conditional branch against an immediate.
    BranchImm {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: SReg,
        /// Immediate right operand.
        imm: i64,
        /// Target index.
        target: u32,
    },
    /// [`MInst::VBin`] with a specialized all-lanes kernel resolved at
    /// decode time (operator/type matches hoisted out of the lane loop).
    VBinFast {
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Specialized lane kernel.
        f: VBinFn,
        /// Lane count of the element type on the decode target.
        lanes: u32,
    },
    /// [`MInst::VUn`] with a specialized all-lanes kernel.
    VUnFast {
        /// Destination.
        dst: VReg,
        /// Operand.
        a: VReg,
        /// Specialized lane kernel.
        f: VUnFn,
        /// Lane count of the element type on the decode target.
        lanes: u32,
    },
    /// Any other non-control instruction, executed by the shared
    /// (generic) semantics.
    Op(MInst),
}

/// One decoded instruction: the step plus everything the seed dispatch
/// loop used to re-derive per execution.
#[derive(Debug, Clone)]
pub struct DecodedInst {
    /// What to execute.
    pub step: DStep,
    /// Pre-computed cycle cost on the decode target.
    pub cost: u64,
    /// Pre-computed lane count of the instruction's element type (1 for
    /// scalar/control instructions).
    pub lanes: u32,
}

/// A fully decoded, target-specific program.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    steps: Vec<DecodedInst>,
    /// Executable (non-label) instruction count.
    pub len: usize,
    /// Vector width in bytes of the decode target (sanity-checked at run
    /// time: running a program decoded for one target on a machine of
    /// another is a harness bug).
    pub vs: usize,
}

impl DecodedProgram {
    /// Decode `code` for `target`: strip labels, resolve branch targets
    /// to instruction indices, and pre-compute per-instruction costs.
    ///
    /// # Errors
    /// Returns a [`Trap`] for branches to undefined labels and for
    /// duplicate label definitions (the seed interpreter deferred the
    /// former to run time; a decoded program rejects malformed code up
    /// front).
    pub fn decode(code: &MCode, target: &TargetDesc) -> Result<DecodedProgram, Trap> {
        let vs = target.vs.max(1);
        let lanes_of = |ty: vapor_ir::ScalarTy| (vs / ty.size()).max(1);

        // Pass 1: map every label to the index its successor instruction
        // will have once labels are stripped.
        let mut label_to_index: HashMap<Label, u32> = HashMap::new();
        let mut idx = 0u32;
        for inst in &code.insts {
            if let MInst::Label(l) = inst {
                if label_to_index.insert(*l, idx).is_some() {
                    return Err(Trap(format!("label {l} defined twice")));
                }
            } else {
                idx += 1;
            }
        }
        let resolve = |l: &Label| {
            label_to_index
                .get(l)
                .copied()
                .ok_or_else(|| Trap(format!("undefined label {l}")))
        };

        // Pass 2: decode.
        let mut steps = Vec::with_capacity(idx as usize);
        for inst in &code.insts {
            let step = match inst {
                MInst::Label(_) => continue,
                MInst::Jump(l) => DStep::Jump {
                    target: resolve(l)?,
                },
                MInst::Branch { cond, a, b, target } => DStep::Branch {
                    cond: *cond,
                    a: *a,
                    b: *b,
                    target: resolve(target)?,
                },
                MInst::BranchImm {
                    cond,
                    a,
                    imm,
                    target,
                } => DStep::BranchImm {
                    cond: *cond,
                    a: *a,
                    imm: *imm,
                    target: resolve(target)?,
                },
                MInst::VBin { op, ty, dst, a, b } => match vbin_fn(*op, *ty) {
                    Some(f) => DStep::VBinFast {
                        dst: *dst,
                        a: *a,
                        b: *b,
                        f,
                        lanes: lanes_of(*ty) as u32,
                    },
                    None => DStep::Op(inst.clone()),
                },
                MInst::VUn { op, ty, dst, a } => match vun_fn(*op, *ty) {
                    Some(f) => DStep::VUnFast {
                        dst: *dst,
                        a: *a,
                        f,
                        lanes: lanes_of(*ty) as u32,
                    },
                    None => DStep::Op(inst.clone()),
                },
                other => DStep::Op(other.clone()),
            };
            let lanes = match inst {
                MInst::VReduce { ty, .. } | MInst::VHelper { ty, .. } => lanes_of(*ty),
                _ => 1,
            };
            steps.push(DecodedInst {
                step,
                cost: target.cost.cost(inst, lanes),
                lanes: lanes as u32,
            });
        }
        let len = steps.len();
        Ok(DecodedProgram { steps, len, vs })
    }

    /// The decoded instruction stream.
    pub fn steps(&self) -> &[DecodedInst] {
        &self.steps
    }

    /// Whether there is nothing to execute.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrMode, MemAlign, VReg};
    use crate::target::{altivec, sse};
    use vapor_ir::{BinOp, ScalarTy};

    fn branchy_code() -> MCode {
        MCode {
            insts: vec![
                MInst::MovImmI {
                    dst: SReg(0),
                    imm: 0,
                },
                MInst::Label(Label(0)),
                MInst::SBinImm {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: SReg(0),
                    a: SReg(0),
                    imm: 1,
                },
                MInst::BranchImm {
                    cond: Cond::Lt,
                    a: SReg(0),
                    imm: 5,
                    target: Label(0),
                },
                MInst::Label(Label(1)),
                MInst::Jump(Label(2)),
                MInst::Label(Label(2)),
            ],
            n_sregs: 1,
            n_vregs: 0,
            note: String::new(),
        }
    }

    #[test]
    fn labels_are_stripped_and_targets_resolved() {
        let p = DecodedProgram::decode(&branchy_code(), &sse()).unwrap();
        assert_eq!(p.len, 4);
        match &p.steps()[2].step {
            DStep::BranchImm { target, .. } => assert_eq!(*target, 1),
            s => panic!("expected BranchImm, got {s:?}"),
        }
        match &p.steps()[3].step {
            // Label(2) is at the very end: the jump resolves to one past
            // the last instruction, i.e. normal termination.
            DStep::Jump { target } => assert_eq!(*target, 4),
            s => panic!("expected Jump, got {s:?}"),
        }
    }

    #[test]
    fn costs_match_the_cost_model() {
        let t = sse();
        let code = MCode {
            insts: vec![
                MInst::LoadV {
                    dst: VReg(0),
                    addr: AddrMode::base_disp(SReg(0), 0),
                    align: MemAlign::Unaligned,
                },
                MInst::VBin {
                    op: BinOp::Mul,
                    ty: ScalarTy::F32,
                    dst: VReg(0),
                    a: VReg(0),
                    b: VReg(0),
                },
            ],
            n_sregs: 1,
            n_vregs: 1,
            note: String::new(),
        };
        let p = DecodedProgram::decode(&code, &t).unwrap();
        for (d, inst) in p.steps().iter().zip(&code.insts) {
            assert_eq!(d.cost, t.cost.cost(inst, d.lanes as usize));
        }
    }

    #[test]
    fn reduce_lanes_depend_on_target() {
        let code = MCode {
            insts: vec![MInst::VReduce {
                op: crate::isa::ReduceOp::Plus,
                ty: ScalarTy::I16,
                dst: SReg(0),
                src: VReg(0),
            }],
            n_sregs: 1,
            n_vregs: 1,
            note: String::new(),
        };
        let p = DecodedProgram::decode(&code, &sse()).unwrap();
        assert_eq!(p.steps()[0].lanes, 8); // 16 bytes / 2
        let p = DecodedProgram::decode(&code, &altivec()).unwrap();
        assert_eq!(p.steps()[0].lanes, 8);
    }

    #[test]
    fn undefined_label_is_rejected_at_decode_time() {
        let code = MCode {
            insts: vec![MInst::Jump(Label(9))],
            n_sregs: 0,
            n_vregs: 0,
            note: String::new(),
        };
        let err = DecodedProgram::decode(&code, &sse()).unwrap_err();
        assert!(err.0.contains("undefined label"), "{err}");
    }

    #[test]
    fn duplicate_label_is_rejected_at_decode_time() {
        // `MCode` is freely constructible, so malformed programs must
        // come back as `Err`, not abort the process.
        let code = MCode {
            insts: vec![MInst::Label(Label(0)), MInst::Label(Label(0))],
            n_sregs: 0,
            n_vregs: 0,
            note: String::new(),
        };
        let err = DecodedProgram::decode(&code, &sse()).unwrap_err();
        assert!(err.0.contains("defined twice"), "{err}");
    }
}

//! Dynamic cycle cost models.
//!
//! Costs are *relative throughput weights*, not silicon-accurate
//! latencies: the experiments report ratios (split/native, JIT/native)
//! so only the relationships the paper relies on must hold:
//!
//! * aligned vector accesses beat misaligned ones (strongly on SSE);
//! * explicit realignment (`vperm`) adds per-iteration overhead;
//! * x87-style scalar float ops are much slower than SSE scalar ops;
//! * library-helper fallbacks cost a call plus per-lane software work;
//! * vector ops cost about the same as their scalar counterparts while
//!   processing VF elements — the source of vectorization speedups.

use vapor_ir::{BinOp, ScalarTy, UnOp};

use crate::isa::{HelperOp, MInst, ShiftSrc};

/// Per-instruction-class cycle weights for one target.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Scalar integer ALU op.
    pub salu: u32,
    /// Scalar float op (SSE-class scalar FPU).
    pub sfpu: u32,
    /// Scalar multiply.
    pub smul: u32,
    /// Scalar divide / sqrt.
    pub sdiv: u32,
    /// Extra cost of an x87-style `FpuBin` over `sfpu` (stack shuffling,
    /// memory round-trips). Zero on targets without the x87 artifact.
    pub fpu_penalty: u32,
    /// Scalar load.
    pub sload: u32,
    /// Scalar store.
    pub sstore: u32,
    /// Taken-or-not branch.
    pub branch: u32,
    /// Register move (scalar or vector).
    pub mov: u32,
    /// Vector ALU op (add/sub/logic/min/max).
    pub valu: u32,
    /// Vector multiply / dot / widening multiply.
    pub vmul: u32,
    /// Vector divide / sqrt.
    pub vdiv: u32,
    /// Aligned vector load (also `LoadVFloor`).
    pub vload_aligned: u32,
    /// Misaligned vector load (`movdqu` class).
    pub vload_unaligned: u32,
    /// Aligned vector store.
    pub vstore_aligned: u32,
    /// Misaligned vector store.
    pub vstore_unaligned: u32,
    /// Permute/shuffle (`vperm`, interleave, pack, unpack).
    pub vperm: u32,
    /// Building a permute control (`lvsr` class).
    pub vpermctrl: u32,
    /// Lane insert/extract, splat, iota.
    pub vlane: u32,
    /// Lane-wise conversion.
    pub vcvt: u32,
    /// Reduction: cost per halving step (`log2(lanes)` steps).
    pub vreduce_step: u32,
    /// Library helper call overhead.
    pub helper_call: u32,
    /// Library helper per-lane software cost.
    pub helper_per_lane: u32,
}

impl CostModel {
    /// Core2-class SSE weights: fast aligned accesses, 2× penalty for
    /// `movdqu`, cheap shuffles (SSSE3), painful x87 scalar floats.
    pub fn sse() -> CostModel {
        CostModel {
            salu: 1,
            sfpu: 2,
            smul: 3,
            sdiv: 20,
            fpu_penalty: 5,
            sload: 2,
            sstore: 2,
            branch: 1,
            mov: 1,
            valu: 1,
            vmul: 3,
            vdiv: 24,
            vload_aligned: 2,
            vload_unaligned: 4,
            vstore_aligned: 2,
            vstore_unaligned: 5,
            vperm: 1,
            vpermctrl: 2,
            vlane: 2,
            vcvt: 2,
            vreduce_step: 2,
            helper_call: 20,
            helper_per_lane: 4,
        }
    }

    /// PowerPC G5-class AltiVec weights: aligned-only accesses, cheap
    /// `lvsr`/`vperm`, no x87 analogue.
    pub fn altivec() -> CostModel {
        CostModel {
            salu: 1,
            sfpu: 2,
            smul: 3,
            sdiv: 25,
            fpu_penalty: 0,
            sload: 2,
            sstore: 2,
            branch: 1,
            mov: 1,
            valu: 1,
            vmul: 3,
            vdiv: 30,
            vload_aligned: 2,
            vload_unaligned: 1000, // illegal: the VM traps before charging
            vstore_aligned: 2,
            vstore_unaligned: 1000,
            vperm: 1,
            vpermctrl: 1,
            vlane: 3,
            vcvt: 2,
            vreduce_step: 2,
            helper_call: 24,
            helper_per_lane: 4,
        }
    }

    /// Cortex A8-class NEON weights: in-order core, modest misalignment
    /// penalty, expensive helper calls (libc-style software routines).
    pub fn neon64() -> CostModel {
        CostModel {
            salu: 1,
            sfpu: 4, // VFP-lite on A8 is slow
            smul: 4,
            sdiv: 30,
            fpu_penalty: 0,
            sload: 2,
            sstore: 2,
            branch: 2,
            mov: 1,
            valu: 1,
            vmul: 2,
            vdiv: 35,
            vload_aligned: 2,
            vload_unaligned: 3,
            vstore_aligned: 2,
            vstore_unaligned: 3,
            vperm: 1,
            vpermctrl: 2,
            vlane: 2,
            vcvt: 2,
            vreduce_step: 2,
            helper_call: 60,
            helper_per_lane: 10,
        }
    }

    /// Sandy-Bridge-class AVX weights (the Table 3 target).
    pub fn avx() -> CostModel {
        CostModel {
            salu: 1,
            sfpu: 1,
            smul: 2,
            sdiv: 14,
            fpu_penalty: 4,
            sload: 1,
            sstore: 1,
            branch: 1,
            mov: 1,
            valu: 1,
            vmul: 2,
            vdiv: 18,
            vload_aligned: 1,
            vload_unaligned: 2,
            vstore_aligned: 1,
            vstore_unaligned: 3,
            vperm: 1,
            vpermctrl: 2,
            vlane: 2,
            vcvt: 2,
            vreduce_step: 2,
            helper_call: 20,
            helper_per_lane: 3,
        }
    }

    /// SVE-class VLA core weights: modern out-of-order machine — cheap
    /// element-aligned (predication-friendly) memory ops, fast scalar
    /// floats, no x87 artifact. Per-op weights are width-independent
    /// (one instruction retires one whole register), which is exactly
    /// why wider runtime VLs translate into proportional speedups.
    pub fn sve_class() -> CostModel {
        CostModel {
            salu: 1,
            sfpu: 1,
            smul: 2,
            sdiv: 12,
            fpu_penalty: 0,
            sload: 1,
            sstore: 1,
            branch: 1,
            mov: 1,
            valu: 1,
            vmul: 2,
            vdiv: 14,
            vload_aligned: 1,
            vload_unaligned: 1, // predicated loads carry no alignment penalty
            vstore_aligned: 1,
            vstore_unaligned: 1,
            vperm: 1,
            vpermctrl: 1,
            vlane: 2,
            vcvt: 2,
            vreduce_step: 2,
            helper_call: 20,
            helper_per_lane: 3,
        }
    }

    /// RVV-class VLA core weights: longer vectors on a narrower-issue,
    /// more in-order core — slightly dearer scalar floats, multiplies
    /// and lane traffic than the SVE-class profile.
    pub fn rvv_class() -> CostModel {
        CostModel {
            salu: 1,
            sfpu: 2,
            smul: 3,
            sdiv: 16,
            fpu_penalty: 0,
            sload: 2,
            sstore: 2,
            branch: 1,
            mov: 1,
            valu: 1,
            vmul: 2,
            vdiv: 18,
            vload_aligned: 2,
            vload_unaligned: 2,
            vstore_aligned: 2,
            vstore_unaligned: 2,
            vperm: 1,
            vpermctrl: 1,
            vlane: 3,
            vcvt: 2,
            vreduce_step: 2,
            helper_call: 24,
            helper_per_lane: 4,
        }
    }

    /// Plain scalar machine for the no-SIMD target.
    pub fn generic_scalar() -> CostModel {
        CostModel {
            salu: 1,
            sfpu: 2,
            smul: 3,
            sdiv: 20,
            fpu_penalty: 0,
            sload: 2,
            sstore: 2,
            branch: 1,
            mov: 1,
            valu: 1,
            vmul: 3,
            vdiv: 20,
            vload_aligned: 2,
            vload_unaligned: 2,
            vstore_aligned: 2,
            vstore_unaligned: 2,
            vperm: 1,
            vpermctrl: 1,
            vlane: 2,
            vcvt: 2,
            vreduce_step: 2,
            helper_call: 20,
            helper_per_lane: 4,
        }
    }

    fn sbin_cost(&self, op: BinOp, ty: ScalarTy) -> u32 {
        match op {
            BinOp::Mul => self.smul,
            BinOp::Div => self.sdiv,
            _ if ty.is_float() => self.sfpu,
            _ => self.salu,
        }
    }

    /// Cycle cost of one executed instruction. `lanes` is the lane count
    /// of the *element type* of the instruction where relevant (used by
    /// reductions and helper calls).
    pub fn cost(&self, inst: &MInst, lanes: usize) -> u64 {
        // Scaled-index addressing pays an address-generation ALU op —
        // the dynamic counterpart of the port model's unlaminated µop.
        let agen = |addr: &crate::isa::AddrMode| -> u32 {
            if addr.idx.is_some() {
                self.salu
            } else {
                0
            }
        };
        let c = match inst {
            MInst::Label(_) => 0,
            MInst::Jump(_) => self.branch,
            MInst::Branch { .. } | MInst::BranchImm { .. } => self.branch + self.salu,
            MInst::MovImmI { .. } | MInst::MovImmF { .. } | MInst::MovS { .. } => self.mov,
            MInst::SBin { op, ty, .. } => self.sbin_cost(*op, *ty),
            MInst::SBinImm { op, ty, .. } => self.sbin_cost(*op, *ty),
            MInst::SUn { op, ty, .. } => match op {
                UnOp::Sqrt => self.sdiv,
                _ if ty.is_float() => self.sfpu,
                _ => self.salu,
            },
            MInst::SCvt { .. } => self.salu + 1,
            MInst::FpuBin { op, ty, .. } => self.sbin_cost(*op, *ty) + self.fpu_penalty,
            MInst::LoadS { addr, .. } => self.sload + agen(addr),
            MInst::SpillLd { .. } => self.sload,
            MInst::StoreS { addr, .. } => self.sstore + agen(addr),
            MInst::SpillSt { .. } => self.sstore,
            MInst::LoadV { align, addr, .. } => {
                agen(addr)
                    + match align {
                        crate::isa::MemAlign::Aligned => self.vload_aligned,
                        crate::isa::MemAlign::Unaligned => self.vload_unaligned,
                    }
            }
            MInst::LoadVFloor { addr, .. } => self.vload_aligned + agen(addr),
            MInst::StoreV { align, addr, .. } => {
                agen(addr)
                    + match align {
                        crate::isa::MemAlign::Aligned => self.vstore_aligned,
                        crate::isa::MemAlign::Unaligned => self.vstore_unaligned,
                    }
            }
            MInst::Splat { .. } => self.vlane,
            MInst::Iota { .. } => self.vlane * 2,
            MInst::SetLane { .. } | MInst::GetLane { .. } => self.vlane,
            MInst::VBin { op, ty, .. } => match op {
                BinOp::Mul => self.vmul,
                BinOp::Div => self.vdiv,
                _ => {
                    let _ = ty;
                    self.valu
                }
            },
            MInst::VUn { op, .. } => match op {
                UnOp::Sqrt => self.vdiv,
                _ => self.valu,
            },
            MInst::VShift { amt, .. } => {
                self.valu
                    + match amt {
                        ShiftSrc::PerLane(_) => 1,
                        _ => 0,
                    }
            }
            MInst::VWidenMul { .. } | MInst::VDotAcc { .. } => self.vmul,
            MInst::VPack { .. } | MInst::VUnpack { .. } | MInst::VInterleave { .. } => self.vperm,
            MInst::VCvt { .. } => self.vcvt,
            MInst::VExtractStride { stride, .. } => self.vperm * (*stride as u32),
            MInst::VPermCtrl { .. } => self.vpermctrl,
            MInst::VPerm { .. } => self.vperm,
            MInst::VReduce { .. } => {
                let steps = (lanes.max(2) as f64).log2().ceil() as u32;
                self.vreduce_step * steps + self.vlane
            }
            MInst::MovV { .. } => self.mov,
            MInst::VHelper { .. } => self.helper_call + self.helper_per_lane * lanes as u32,
            // VLA stripmine control is scalar-ALU-cheap (`vsetvli` class).
            MInst::SetVl { .. } => self.salu,
            // Predicated memory ops are element-aligned by contract:
            // charged at the unaligned rate (identical to aligned on the
            // VLA cost models).
            MInst::LoadVl { addr, .. } => self.vload_unaligned + agen(addr),
            MInst::StoreVl { addr, .. } => self.vstore_unaligned + agen(addr),
            MInst::VBinVl { op, .. } => match op {
                BinOp::Mul => self.vmul,
                BinOp::Div => self.vdiv,
                _ => self.valu,
            },
            MInst::VUnVl { op, .. } => match op {
                UnOp::Sqrt => self.vdiv,
                _ => self.valu,
            },
        };
        c as u64
    }
}

/// Cost of a helper op when expressed as [`HelperOp`] (used for
/// reporting).
pub fn helper_name(op: HelperOp) -> &'static str {
    match op {
        HelperOp::WidenMult(_) => "__vapor_widen_mult",
        HelperOp::Cvt(_) => "__vapor_cvt",
        HelperOp::FDiv => "__vapor_fdiv",
        HelperOp::FSqrt => "__vapor_fsqrt",
        HelperOp::Pack => "__vapor_pack",
        HelperOp::Unpack(_) => "__vapor_unpack",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrMode, MemAlign, SReg, VReg};

    #[test]
    fn misaligned_loads_cost_more_on_sse() {
        let m = CostModel::sse();
        let aligned = MInst::LoadV {
            dst: VReg(0),
            addr: AddrMode::base_disp(SReg(0), 0),
            align: MemAlign::Aligned,
        };
        let unaligned = MInst::LoadV {
            dst: VReg(0),
            addr: AddrMode::base_disp(SReg(0), 0),
            align: MemAlign::Unaligned,
        };
        assert!(m.cost(&unaligned, 4) > m.cost(&aligned, 4));
    }

    #[test]
    fn x87_penalty_applies_only_to_fpubin() {
        let m = CostModel::sse();
        let sse_fp = MInst::SBin {
            op: BinOp::Add,
            ty: ScalarTy::F32,
            dst: SReg(0),
            a: SReg(1),
            b: SReg(2),
        };
        let x87 = MInst::FpuBin {
            op: BinOp::Add,
            ty: ScalarTy::F32,
            dst: SReg(0),
            a: SReg(1),
            b: SReg(2),
        };
        assert_eq!(m.cost(&x87, 1) - m.cost(&sse_fp, 1), m.fpu_penalty as u64);
    }

    #[test]
    fn helper_cost_scales_with_lanes() {
        let m = CostModel::neon64();
        let h = |lanes| {
            m.cost(
                &MInst::VHelper {
                    op: HelperOp::Cvt(crate::isa::CvtDir::IntToFloat),
                    ty: ScalarTy::I32,
                    dst: VReg(0),
                    a: VReg(1),
                    b: None,
                },
                lanes,
            )
        };
        assert!(h(8) > h(2));
        assert!(
            h(2) > m.cost(
                &MInst::VCvt {
                    dir: crate::isa::CvtDir::IntToFloat,
                    ty: ScalarTy::I32,
                    dst: VReg(0),
                    a: VReg(1),
                },
                2
            )
        );
    }

    #[test]
    fn labels_are_free() {
        let m = CostModel::sse();
        assert_eq!(m.cost(&MInst::Label(crate::isa::Label(0)), 1), 0);
    }
}

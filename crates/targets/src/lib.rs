//! # vapor-targets — simulated SIMD hardware
//!
//! The substrate the paper runs on: SSE, AltiVec, NEON and AVX machines,
//! plus a vector-length-agnostic SVE/RVV-class family whose lane count
//! is a *runtime* parameter (128–2048 bits, bound at execution
//! specialization via [`TargetDesc::at_vl`]). Since no such hardware is
//! available here, this crate implements each target as data + a
//! virtual machine:
//!
//! * [`TargetDesc`] — the ISA facts of §IV-A (vector size, alignment
//!   rules, supported element types and idioms);
//! * [`MInst`]/[`MCode`] — the "machine code" the online compiler emits;
//! * [`Machine`] — a functionally faithful executor with per-target
//!   cycle accounting (stands in for the physical boards and for the
//!   Intel SDE AVX emulator);
//! * [`ports`] — a static loop-body throughput analyzer standing in for
//!   Intel IACA (Table 3).

pub mod cost;
pub mod decode;
pub mod disasm;
pub mod isa;
pub mod machine;
pub mod ports;
pub mod target;
pub mod thread;

pub use cost::{helper_name, CostModel};
pub use decode::{
    DStep, DecodedInst, DecodedProgram, FusedAddr, FusionStats, SBinFn, SplatFn, VBinFn, VReduceFn,
    VShiftFn, VUnFn, NO_INDEX,
};
pub use disasm::{disasm, disasm_decoded, disasm_inst, disasm_step};
pub use isa::{
    AddrMode, Cond, CvtDir, Half, HelperOp, Label, MCode, MInst, MemAlign, ReduceOp, SReg,
    ShiftSrc, VReg,
};
pub use machine::{ExecStats, Machine, Memory, Trap, VBytes, GUARD, INLINE_VS, MAX_VS};
pub use ports::{analyze_body, analyze_inner_loop, PortModel, PortPressure, Throughput};
pub use target::{
    altivec, avx, neon64, rvv, scalar_only, sse, sve, target, valid_vl, TargetDesc, TargetKind,
    VLA_MAX_BITS, VLA_MIN_BITS, VLA_TEST_BITS,
};
pub use thread::{disasm_threaded, Region, StreamDef, TAddr, TStep, ThreadedProgram};

use vapor_ir::ScalarTy;

/// The float type with the same lane width as `t` (conversion targets).
pub fn float_of_width(t: ScalarTy) -> Option<ScalarTy> {
    match t {
        ScalarTy::I32 | ScalarTy::U32 => Some(ScalarTy::F32),
        ScalarTy::I64 => Some(ScalarTy::F64),
        _ => None,
    }
}

/// The signed integer type with the same lane width as `t`.
pub fn int_of_width(t: ScalarTy) -> Option<ScalarTy> {
    match t {
        ScalarTy::F32 => Some(ScalarTy::I32),
        ScalarTy::F64 => Some(ScalarTy::I64),
        _ => None,
    }
}

//! The virtual SIMD machine: executes [`MCode`] over a byte-addressed
//! memory with real lane semantics and per-target cycle accounting.
//!
//! This is the substitute for the paper's physical Core2 / G5 / Cortex A8
//! machines and for the Intel SDE AVX emulator: functionally faithful
//! execution plus a deterministic cycle model (see `cost.rs`).

use std::fmt;

use vapor_ir::sem::{eval_bin, eval_cast, eval_un, read_elem, write_elem, Value};
use vapor_ir::{BinOp, ScalarTy};

use crate::decode::{DStep, DecodedProgram, FusedAddr, SBinFn, VBinFn};
use crate::isa::{
    AddrMode, Cond, CvtDir, Half, HelperOp, MCode, MInst, MemAlign, ReduceOp, ShiftSrc,
};
use crate::target::TargetDesc;
use crate::thread::{StreamDef, TAddr, TStep, ThreadedProgram};

/// Maximum vector register width in bytes. The seed capped this at the
/// paper's 2011-era 32 bytes; the vector-length-agnostic target family
/// raises it to the SVE architectural maximum of 2048 bits so one
/// register file serves every target. (The *hint* modulo of the offline
/// stage stays at 32 bytes — `vapor_vectorizer::HINT_MOD` — which any
/// larger runtime alignment subsumes.)
pub const MAX_VS: usize = 256;

/// Widest register kept *inline* (unboxed) in the VM register file.
/// Every fixed-width family fits: NEON64 is 8 bytes, SSE/AltiVec 16,
/// AVX 32 — and so do the two narrowest VLA specializations (128/256
/// bits). Only wider runtime-VL machines pay for heap-backed 2048-bit
/// registers; see [`VBytes`].
pub const INLINE_VS: usize = 32;

/// Guard zone at the bottom of memory; address 0 is never valid.
pub const GUARD: usize = 64;

/// Execution error (a *trap*): misalignment contract violations,
/// out-of-bounds accesses, type-domain confusion, or fuel exhaustion.
/// Any trap in the test suite indicates a compiler bug.
#[derive(Debug, Clone, PartialEq)]
pub struct Trap(pub String);

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine trap: {}", self.0)
    }
}

impl std::error::Error for Trap {}

/// Simulated memory: a bump arena with aligned allocation and padding so
/// floor-aligned vector loads near array ends stay in bounds (the same
/// guarantee a real runtime provides for `lvx`-style realignment).
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    next: usize,
    /// Allocation padding either side of every array (see [`Memory::pad_for`]).
    pad: usize,
}

impl Memory {
    /// Memory with the given capacity in bytes, padded for the widest
    /// (2048-bit) registers — the conservative default for callers that
    /// build a `Memory` without naming a target.
    pub fn new(capacity: usize) -> Memory {
        Memory::for_width(capacity, MAX_VS)
    }

    /// Memory whose allocation padding is sized for a machine with
    /// `vs`-byte vector registers, so a fixed-width target's image does
    /// not carry 2048-bit guard zones.
    pub fn for_width(capacity: usize, vs: usize) -> Memory {
        let pad = Memory::pad_for(vs);
        Memory {
            bytes: vec![0; capacity.max(GUARD + pad)],
            next: GUARD,
            pad,
        }
    }

    /// [`Memory::for_width`], but reusing `buf`'s backing allocation
    /// instead of allocating a fresh image. The buffer is zeroed over
    /// the required capacity (a memset over a warm allocation, not a
    /// fresh `malloc`) — the pooled-execution path of a service that
    /// must not allocate per request.
    pub fn recycled(mut buf: Vec<u8>, capacity: usize, vs: usize) -> Memory {
        let pad = Memory::pad_for(vs);
        buf.clear();
        buf.resize(capacity.max(GUARD + pad), 0);
        Memory {
            bytes: buf,
            next: GUARD,
            pad,
        }
    }

    /// Surrender the backing allocation for reuse (see
    /// [`Memory::recycled`]). The returned buffer's contents are
    /// unspecified; only its capacity is meant to be reused.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Padding required either side of an array on a machine with
    /// `vs`-byte registers: floor-aligned realignment loads read up to
    /// one register *past* the floored window (`lvx a, lvx a+VS`), so
    /// two registers of slack keep them in bounds; the 16-byte floor
    /// covers sub-vector machines.
    pub fn pad_for(vs: usize) -> usize {
        (2 * vs).max(16)
    }

    /// The allocation padding either side of every array.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Allocate `size` bytes aligned to `align` (power of two), plus
    /// [`Memory::pad`] bytes of padding on both sides. Returns the base
    /// address.
    ///
    /// # Panics
    /// Panics if `align` is not a power of two or memory is exhausted.
    pub fn alloc(&mut self, size: usize, align: usize) -> u64 {
        self.alloc_with_misalignment(size, align, 0)
    }

    /// Allocate with a deliberate misalignment of `mis` bytes past an
    /// `align` boundary — used by experiments that deny the runtime the
    /// ability to align arrays.
    ///
    /// # Panics
    /// Panics if `align` is not a power of two or memory is exhausted.
    pub fn alloc_with_misalignment(&mut self, size: usize, align: usize, mis: usize) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let start = (self.next + self.pad + align - 1) & !(align - 1);
        let base = start + mis;
        let end = base + size + self.pad;
        assert!(end <= self.bytes.len(), "simulated memory exhausted");
        self.next = end;
        base as u64
    }

    /// Raw view of a byte range.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn slice(&self, addr: u64, len: usize) -> &[u8] {
        &self.bytes[addr as usize..addr as usize + len]
    }

    /// Mutable raw view of a byte range.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn slice_mut(&mut self, addr: u64, len: usize) -> &mut [u8] {
        &mut self.bytes[addr as usize..addr as usize + len]
    }

    /// Read a typed element.
    pub fn read(&self, ty: ScalarTy, addr: u64) -> Value {
        read_elem(ty, &self.bytes, addr as usize)
    }

    /// Write a typed element.
    pub fn write(&mut self, ty: ScalarTy, addr: u64, v: Value) {
        write_elem(ty, &mut self.bytes, addr as usize, v);
    }

    fn check(&self, addr: u64, size: usize) -> Result<(), Trap> {
        let a = addr as usize;
        if a < GUARD || a + size > self.bytes.len() {
            return Err(Trap(format!(
                "access of {size} bytes at {addr} out of bounds"
            )));
        }
        Ok(())
    }
}

/// Statistics of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecStats {
    /// Modeled cycles (the quantity the figures report).
    pub cycles: u64,
    /// Dynamic instructions executed.
    pub insts: u64,
}

/// One vector register, sized to the executing target.
///
/// The seed kept every register as a flat `[u8; MAX_VS]` array, so once
/// the VLA family raised `MAX_VS` to 256 bytes every 16-byte SSE
/// register move copied a full 2048-bit array. This is the small-vector
/// representation that restores target-sizing: fixed-width families (and
/// the two narrowest VLA specializations) live *inline* in
/// [`INLINE_VS`] = 32 bytes, and only machines with wider runtime-VL
/// registers box the full [`MAX_VS`] lane array on the heap.
///
/// A register carries capacity, not an exact width: the machine slices
/// it by the target's `vs`, and bytes past the written lanes are kept
/// zero. Equality is therefore zero-extended, so an inline register and
/// a heap register holding the same lanes compare equal.
#[derive(Debug, Clone)]
pub enum VBytes {
    /// Register of a machine with `vs <= INLINE_VS`: no indirection, a
    /// move costs `size_of::<VBytes>()` (40 bytes) instead of `MAX_VS`.
    Inline([u8; INLINE_VS]),
    /// Wide runtime-VL register (`vs > INLINE_VS`), boxed so that only
    /// the VLA family pays for 2048-bit lanes.
    Heap(Box<[u8; MAX_VS]>),
}

impl VBytes {
    /// A zeroed register wide enough for `width` bytes of lanes.
    ///
    /// # Panics
    /// Panics if `width` exceeds [`MAX_VS`].
    pub fn zeroed(width: usize) -> VBytes {
        assert!(width <= MAX_VS, "register width {width} exceeds MAX_VS");
        if width <= INLINE_VS {
            VBytes::Inline([0; INLINE_VS])
        } else {
            VBytes::Heap(Box::new([0; MAX_VS]))
        }
    }

    /// Usable register bytes (32 inline, 256 boxed).
    pub fn capacity(&self) -> usize {
        match self {
            VBytes::Inline(_) => INLINE_VS,
            VBytes::Heap(_) => MAX_VS,
        }
    }

    /// The register's bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            VBytes::Inline(b) => b,
            VBytes::Heap(b) => &b[..],
        }
    }

    /// The register's bytes, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        match self {
            VBytes::Inline(b) => b,
            VBytes::Heap(b) => &mut b[..],
        }
    }
}

impl std::ops::Deref for VBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for VBytes {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl PartialEq for VBytes {
    /// Zero-extended equality: representations of different capacities
    /// are equal when the common prefix matches and the longer tail is
    /// all zeros (the invariant the machine maintains past `vs`).
    fn eq(&self, other: &VBytes) -> bool {
        let (a, b) = (self.as_slice(), other.as_slice());
        let n = a.len().min(b.len());
        a[..n] == b[..n] && a[n..].iter().all(|&x| x == 0) && b[n..].iter().all(|&x| x == 0)
    }
}

impl Eq for VBytes {}

/// The virtual machine.
#[derive(Debug)]
pub struct Machine<'t> {
    target: &'t TargetDesc,
    /// Memory image (arrays live here).
    pub mem: Memory,
    sregs: Vec<Value>,
    vregs: Vec<VBytes>,
    slots: Vec<Value>,
    /// Active vector length in *bytes* for the predicated `...Vl`
    /// instructions, latched by [`MInst::SetVl`]. Starts at the full
    /// register width (all lanes active).
    vl_bytes: usize,
    /// Force every register onto the heap at the full [`MAX_VS`] width
    /// (the seed representation). Measurement/differential-testing knob:
    /// results must be identical, only register-move traffic changes.
    wide_regs: bool,
    /// Recycled output register: the decoded fast kernels pop this,
    /// write into it, and [`Machine::put_vreg`] refills it with the
    /// displaced old value — steady-state vector dispatch does zero heap
    /// allocation even on 2048-bit machines.
    spare: Option<VBytes>,
    /// Instruction budget; a trap fires when exhausted (runaway guard).
    pub fuel: u64,
}

impl<'t> Machine<'t> {
    /// A machine for `target` with `mem_capacity` bytes of memory.
    pub fn new(target: &'t TargetDesc, mem_capacity: usize) -> Machine<'t> {
        Machine::with_memory(target, Memory::for_width(mem_capacity, target.vs.max(1)))
    }

    /// A machine for `target` over an already-built memory image —
    /// typically one recycled from a previous execution through
    /// [`Memory::recycled`], so a service's steady-state executions
    /// reuse one arena instead of allocating megabytes per request.
    pub fn with_memory(target: &'t TargetDesc, mem: Memory) -> Machine<'t> {
        let vl_bytes = target.vs.max(1);
        Machine {
            target,
            mem,
            sregs: Vec::new(),
            vregs: Vec::new(),
            slots: Vec::new(),
            vl_bytes,
            wide_regs: false,
            spare: None,
            fuel: 2_000_000_000,
        }
    }

    /// Tear the machine down, surrendering the memory arena's backing
    /// allocation for reuse by a later [`Machine::with_memory`] +
    /// [`Memory::recycled`] pair.
    pub fn into_arena(self) -> Vec<u8> {
        self.mem.into_bytes()
    }

    /// Force the seed-style register file: every register heap-backed at
    /// the full [`MAX_VS`] width regardless of the target. Execution
    /// results are bit-identical; only register-move traffic differs.
    /// Call before execution (existing registers are not migrated).
    pub fn set_wide_registers(&mut self, on: bool) {
        self.wide_regs = on;
        self.spare = None;
    }

    /// Set a scalar register (to pass arguments / array base addresses).
    pub fn set_sreg(&mut self, r: crate::isa::SReg, v: Value) {
        if self.sregs.len() <= r.0 as usize {
            self.sregs.resize(r.0 as usize + 1, Value::Int(0));
        }
        self.sregs[r.0 as usize] = v;
    }

    /// Read a scalar register after execution.
    pub fn sreg(&self, r: crate::isa::SReg) -> Value {
        self.sregs
            .get(r.0 as usize)
            .copied()
            .unwrap_or(Value::Int(0))
    }

    fn vs(&self) -> usize {
        self.target.vs.max(1)
    }

    fn lanes(&self, ty: ScalarTy) -> usize {
        (self.vs() / ty.size()).max(1)
    }

    /// Active lane count of `ty` under the current vector length (set by
    /// [`MInst::SetVl`]; defaults to all lanes).
    fn vl_lanes(&self, ty: ScalarTy) -> usize {
        (self.vl_bytes / ty.size()).min(self.lanes(ty))
    }

    /// Byte bound for explicit lane accesses ([`MInst::SetLane`] /
    /// [`MInst::GetLane`]): the target's register width, floored at one
    /// element so sub-vector machines keep single-lane access.
    /// Representation-independent by design — a sized and a forced-wide
    /// register file must trap identically.
    fn lane_limit(&self, ty: ScalarTy) -> usize {
        self.vs().max(ty.size())
    }

    /// A zeroed register sized for this machine.
    fn vzero(&self) -> VBytes {
        if self.wide_regs {
            VBytes::Heap(Box::new([0; MAX_VS]))
        } else {
            VBytes::zeroed(self.vs())
        }
    }

    /// Capacity class of this machine's registers.
    fn reg_capacity(&self) -> usize {
        if self.wide_regs || self.vs() > INLINE_VS {
            MAX_VS
        } else {
            INLINE_VS
        }
    }

    /// An output register of unspecified contents: the caller promises
    /// to overwrite it fully. Inline registers are built directly on the
    /// stack (cheaper than any recycling bookkeeping at 32 bytes); heap
    /// registers pop the spare slot so steady-state wide-VL dispatch
    /// does zero heap allocation.
    fn fresh_out_raw(&mut self) -> VBytes {
        if self.reg_capacity() == INLINE_VS {
            return VBytes::Inline([0; INLINE_VS]);
        }
        match self.spare.take() {
            Some(v) if v.capacity() == MAX_VS => v,
            _ => VBytes::Heap(Box::new([0; MAX_VS])),
        }
    }

    /// A zeroed output register for the decoded fast kernels.
    fn fresh_out(&mut self) -> VBytes {
        if self.reg_capacity() == INLINE_VS {
            return VBytes::Inline([0; INLINE_VS]);
        }
        let mut v = self.fresh_out_raw();
        v.fill(0);
        v
    }

    /// An output register pre-loaded with the current contents of `r`
    /// for merging predication; an unwritten register merges as zeros.
    /// The copy fully overwrites the recycled buffer, so no zero-fill
    /// happens first.
    fn merge_out(&mut self, r: crate::isa::VReg) -> VBytes {
        let mut out = self.fresh_out_raw();
        match self.vregs.get(r.0 as usize) {
            Some(v) => {
                let n = v.capacity().min(out.capacity());
                out[..n].copy_from_slice(&v[..n]);
                out[n..].fill(0);
            }
            None => out.fill(0),
        }
        out
    }

    fn sval(&self, r: crate::isa::SReg) -> Result<Value, Trap> {
        self.sregs
            .get(r.0 as usize)
            .copied()
            .ok_or_else(|| Trap(format!("read of undefined scalar register r{}", r.0)))
    }

    fn sint(&self, r: crate::isa::SReg) -> Result<i64, Trap> {
        match self.sval(r)? {
            Value::Int(v) => Ok(v),
            Value::Float(v) => Err(Trap(format!("r{} holds float {v}, expected int", r.0))),
        }
    }

    /// [`Machine::addr`] over the flattened address fields of the fast
    /// memory steps (same semantics, no `AddrMode` indirection).
    fn fast_addr(
        &self,
        base: crate::isa::SReg,
        idx: u32,
        scale: u8,
        disp: i32,
    ) -> Result<u64, Trap> {
        let mut a = self.sint(base)?;
        if idx != crate::decode::NO_INDEX {
            a = a.wrapping_add(self.sint(crate::isa::SReg(idx))?.wrapping_mul(scale as i64));
        }
        a = a.wrapping_add(disp as i64);
        if a < 0 {
            return Err(Trap(format!("negative address {a}")));
        }
        Ok(a as u64)
    }

    fn addr(&self, m: &AddrMode) -> Result<u64, Trap> {
        let mut a = self.sint(m.base)?;
        if let Some(idx) = m.idx {
            a = a.wrapping_add(self.sint(idx)?.wrapping_mul(m.scale as i64));
        }
        a = a.wrapping_add(m.disp);
        if a < 0 {
            return Err(Trap(format!("negative address {a}")));
        }
        Ok(a as u64)
    }

    /// Borrowed register contents: reads never copy the lane array
    /// (by-value reads cost a full register move per operand).
    fn vbytes(&self, r: crate::isa::VReg) -> Result<&VBytes, Trap> {
        vreg_of(&self.vregs, r)
    }

    fn set_vreg(&mut self, r: crate::isa::VReg, v: VBytes) {
        if self.vregs.len() <= r.0 as usize {
            let z = self.vzero();
            self.vregs.resize(r.0 as usize + 1, z);
        }
        self.vregs[r.0 as usize] = v;
    }

    /// Like [`Machine::set_vreg`], but recycles a displaced heap
    /// register into the spare slot so the next [`Machine::fresh_out`]
    /// reuses its allocation. Inline registers take the plain store
    /// path (nothing worth recycling).
    fn put_vreg(&mut self, r: crate::isa::VReg, v: VBytes) {
        if matches!(v, VBytes::Inline(_)) || self.vregs.len() <= r.0 as usize {
            self.set_vreg(r, v);
            return;
        }
        let old = std::mem::replace(&mut self.vregs[r.0 as usize], v);
        if matches!(old, VBytes::Heap(_)) {
            self.spare = Some(old);
        }
    }

    fn set_sreg_checked(&mut self, r: crate::isa::SReg, ty: ScalarTy, v: Value) {
        // Canonicalize domain per type to keep register file consistent.
        let v = match (ty.is_float(), v) {
            (true, Value::Float(_)) | (false, Value::Int(_)) => v,
            (true, Value::Int(i)) => Value::Float(i as f64),
            (false, Value::Float(f)) => Value::Int(f as i64),
        };
        self.set_sreg(r, v);
    }

    fn lane(&self, bytes: &[u8], ty: ScalarTy, k: usize) -> Value {
        read_elem(ty, bytes, k * ty.size())
    }

    fn with_lanes(
        &self,
        ty: ScalarTy,
        n: usize,
        mut f: impl FnMut(usize) -> Result<Value, Trap>,
    ) -> Result<VBytes, Trap> {
        let mut out = self.vzero();
        for k in 0..n {
            let v = f(k)?;
            write_elem(ty, &mut out, k * ty.size(), v);
        }
        Ok(out)
    }

    /// The one fuel check shared by every dispatch tier: pre-charge
    /// validation that executing `arity` more instructions stays within
    /// the budget. The seed loop charges per instruction (`arity` 1),
    /// the decoded loop per step (a superinstruction's full arity), the
    /// threaded loop per straight-line region — all with identical trap
    /// message and boundary semantics (`insts + arity > fuel` traps
    /// *before* executing any of the charged instructions).
    #[inline]
    fn charge_fuel(&self, insts: u64, arity: u64) -> Result<(), Trap> {
        if insts + arity > self.fuel {
            return Err(Trap(format!("fuel exhausted after {insts} instructions")));
        }
        Ok(())
    }

    /// Execute `code` from its first instruction until it falls off the
    /// end, re-deriving branch targets and instruction costs every step.
    /// Returns modeled cycles and instruction counts.
    ///
    /// This is the seed dispatch loop, kept as the baseline the decoded
    /// path ([`Machine::run_decoded`]) is benchmarked against; production
    /// callers go through the decoded form. Note one accounting nuance:
    /// this loop counts [`MInst::Label`] markers in `insts` (at zero
    /// cycles), while the decoded program strips them.
    ///
    /// # Errors
    /// Returns a [`Trap`] on contract violations (see type docs).
    pub fn run(&mut self, code: &MCode) -> Result<ExecStats, Trap> {
        let labels = code.label_map();
        let mut pc = 0usize;
        let mut stats = ExecStats::default();
        let cost = &self.target.cost;

        while pc < code.insts.len() {
            self.charge_fuel(stats.insts, 1)?;
            let inst = &code.insts[pc];
            let mut next = pc + 1;

            match inst {
                MInst::Label(_) => {}
                MInst::Jump(l) => {
                    next = *labels
                        .get(l)
                        .ok_or_else(|| Trap(format!("undefined label {l}")))?;
                }
                MInst::Branch { cond, a, b, target } => {
                    let (x, y) = (self.sint(*a)?, self.sint(*b)?);
                    if take(*cond, x, y) {
                        next = *labels
                            .get(target)
                            .ok_or_else(|| Trap(format!("undefined label {target}")))?;
                    }
                }
                MInst::BranchImm {
                    cond,
                    a,
                    imm,
                    target,
                } => {
                    let x = self.sint(*a)?;
                    if take(*cond, x, *imm) {
                        next = *labels
                            .get(target)
                            .ok_or_else(|| Trap(format!("undefined label {target}")))?;
                    }
                }
                other => self.exec_op(other)?,
            }

            stats.insts += 1;
            let lanes = match inst {
                MInst::VReduce { ty, .. } | MInst::VHelper { ty, .. } => self.lanes(*ty),
                _ => 1,
            };
            stats.cycles += cost.cost(inst, lanes);
            pc = next;
        }
        Ok(stats)
    }

    /// Execute a pre-decoded program (see [`DecodedProgram`]): branch
    /// targets are instruction indices and per-instruction costs are
    /// table lookups, so the hot loop does no metadata derivation.
    ///
    /// Fuel is checked per *step* against the step's full arity, so a
    /// superinstruction whose constituents would cross the budget traps
    /// at the group boundary without executing any of them — a fused
    /// program never runs an instruction the budget does not cover
    /// (the unfused form of the same program may execute up to two more
    /// instructions before its own trap; non-trapping executions are
    /// bit-identical either way).
    ///
    /// # Errors
    /// Returns a [`Trap`] on contract violations, or if the program was
    /// decoded for a target with a different vector width.
    pub fn run_decoded(&mut self, prog: &DecodedProgram) -> Result<ExecStats, Trap> {
        if prog.vs != self.vs() {
            return Err(Trap(format!(
                "program decoded for VS={} executed on a VS={} machine",
                prog.vs,
                self.vs()
            )));
        }
        let steps = prog.steps();
        let mut pc = 0usize;
        let mut stats = ExecStats::default();

        while let Some(d) = steps.get(pc) {
            self.charge_fuel(stats.insts, u64::from(d.arity))?;
            let mut next = pc + 1;
            match &d.step {
                DStep::Jump { target } => next = *target as usize,
                DStep::Branch { cond, a, b, target } => {
                    let (x, y) = (self.sint(*a)?, self.sint(*b)?);
                    if take(*cond, x, y) {
                        next = *target as usize;
                    }
                }
                DStep::BranchImm {
                    cond,
                    a,
                    imm,
                    target,
                } => {
                    let x = self.sint(*a)?;
                    if take(*cond, x, *imm) {
                        next = *target as usize;
                    }
                }
                DStep::SBinFast {
                    dst,
                    a,
                    b,
                    f,
                    ty,
                    rty,
                } => {
                    let x = self.coerce(*ty, self.sval(*a)?);
                    let y = self.coerce(*ty, self.sval(*b)?);
                    let r = f(x, y);
                    self.set_sreg_checked(*dst, *rty, r);
                }
                DStep::SBinImmFast {
                    dst,
                    a,
                    imm,
                    f,
                    ty,
                    rty,
                } => self.exec_sbin_imm(*dst, *a, *imm, *f, *ty, *rty)?,
                DStep::MovSFast { dst, src } => {
                    let v = self.sval(*src)?;
                    self.set_sreg(*dst, v);
                }
                DStep::LoadVFast {
                    dst,
                    base,
                    idx,
                    scale,
                    aligned,
                    disp,
                } => {
                    let addr = FusedAddr {
                        base: *base,
                        idx: *idx,
                        scale: *scale,
                        aligned: *aligned,
                        disp: *disp,
                    };
                    self.exec_load_v(*dst, &addr)?;
                }
                DStep::StoreVFast {
                    src,
                    base,
                    idx,
                    scale,
                    aligned,
                    disp,
                } => {
                    let addr = FusedAddr {
                        base: *base,
                        idx: *idx,
                        scale: *scale,
                        aligned: *aligned,
                        disp: *disp,
                    };
                    self.exec_store_v(*src, &addr)?;
                }
                DStep::LoadSFast {
                    ty,
                    dst,
                    base,
                    idx,
                    scale,
                    disp,
                } => {
                    let a = self.fast_addr(*base, *idx, *scale, *disp)?;
                    self.mem.check(a, ty.size())?;
                    let v = self.mem.read(*ty, a);
                    self.set_sreg_checked(*dst, *ty, v);
                }
                DStep::StoreSFast {
                    ty,
                    src,
                    base,
                    idx,
                    scale,
                    disp,
                } => {
                    let a = self.fast_addr(*base, *idx, *scale, *disp)?;
                    self.mem.check(a, ty.size())?;
                    let v = self.coerce(*ty, self.sval(*src)?);
                    self.mem.write(*ty, a, v);
                }
                DStep::VBinFast {
                    dst,
                    a,
                    b,
                    f,
                    lanes,
                    ..
                } => self.exec_vbin(*dst, *a, *b, *f, *lanes as usize)?,
                DStep::VUnFast {
                    dst, a, f, lanes, ..
                } => {
                    let mut out = self.fresh_out();
                    let x = self.vbytes(*a)?;
                    f(x, &mut out, *lanes as usize);
                    self.put_vreg(*dst, out);
                }
                DStep::VBinVlFast {
                    dst,
                    a,
                    b,
                    f,
                    ty,
                    max_lanes,
                    ..
                } => self.exec_vbin_vl(*dst, *a, *b, *f, *ty, *max_lanes)?,
                DStep::VUnVlFast {
                    dst,
                    a,
                    f,
                    ty,
                    max_lanes,
                    ..
                } => {
                    let n = (self.vl_bytes / ty.size()).min(*max_lanes as usize);
                    let mut out = self.merge_out(*dst);
                    let x = self.vbytes(*a)?;
                    f(x, &mut out, n);
                    self.put_vreg(*dst, out);
                }
                DStep::SplatFast {
                    dst,
                    src,
                    f,
                    ty,
                    lanes,
                } => {
                    let v = self.coerce(*ty, self.sval(*src)?);
                    let mut out = self.fresh_out();
                    f(v, &mut out, *lanes as usize);
                    self.put_vreg(*dst, out);
                }
                DStep::VShiftImmFast {
                    dst,
                    a,
                    f,
                    imm,
                    lanes,
                    ..
                } => {
                    let mut out = self.fresh_out();
                    let x = self.vbytes(*a)?;
                    f(x, *imm as i64, &mut out, *lanes as usize);
                    self.put_vreg(*dst, out);
                }
                DStep::VShiftRegFast {
                    dst,
                    a,
                    f,
                    amt,
                    lanes,
                    ..
                } => {
                    let amt = self.sint(*amt)?;
                    let mut out = self.fresh_out();
                    let x = self.vbytes(*a)?;
                    f(x, amt, &mut out, *lanes as usize);
                    self.put_vreg(*dst, out);
                }
                DStep::SpillLdFast { dst, slot } => {
                    let v = self
                        .slots
                        .get(*slot as usize)
                        .copied()
                        .ok_or_else(|| Trap(format!("reload of unwritten slot {slot}")))?;
                    self.set_sreg(*dst, v);
                }
                DStep::SpillStFast { src, slot } => {
                    let v = self.sval(*src)?;
                    if self.slots.len() <= *slot as usize {
                        self.slots.resize(*slot as usize + 1, Value::Int(0));
                    }
                    self.slots[*slot as usize] = v;
                }
                DStep::VReduceFast {
                    dst,
                    src,
                    f,
                    ty,
                    lanes,
                    ..
                } => {
                    let x = self.vbytes(*src)?;
                    let v = f(x, *lanes as usize);
                    self.set_sreg_checked(*dst, *ty, v);
                }
                // Superinstructions: the constituents execute in order,
                // every register write included, so machine state is
                // bit-identical to the unfused sequence — only the
                // per-step dispatch overhead is paid once.
                DStep::FusedLoadBinStore(p) => {
                    self.exec_load_v(p.load_dst, &p.load)?;
                    self.exec_vbin(p.dst, p.a, p.b, p.f, p.lanes as usize)?;
                    self.exec_store_v(p.dst, &p.store)?;
                }
                DStep::FusedLoadBinBin(p) => {
                    self.exec_load_v(p.load_dst, &p.load)?;
                    self.exec_vbin(p.dst1, p.a1, p.b1, p.f1, p.lanes1 as usize)?;
                    self.exec_vbin(p.dst2, p.a2, p.b2, p.f2, p.lanes2 as usize)?;
                }
                DStep::FusedLoadBin(p) => {
                    self.exec_load_v(p.load_dst, &p.load)?;
                    self.exec_vbin(p.dst, p.a, p.b, p.f, p.lanes as usize)?;
                }
                DStep::FusedBinStore(p) => {
                    self.exec_vbin(p.dst, p.a, p.b, p.f, p.lanes as usize)?;
                    self.exec_store_v(p.dst, &p.store)?;
                }
                DStep::FusedLoadBinStoreVl(p) => {
                    self.exec_load_vl(p.load_ty, p.load_dst, &p.load)?;
                    self.exec_vbin_vl(p.dst, p.a, p.b, p.f, p.ty, p.max_lanes)?;
                    self.exec_store_vl(p.store_ty, p.dst, &p.store)?;
                }
                DStep::FusedLatch(p) => {
                    self.exec_sbin_imm(p.dst, p.a, p.imm, p.f, p.ty, p.rty)?;
                    let x = self.sint(p.br_a)?;
                    let y = if p.br_reg == crate::decode::NO_INDEX {
                        p.br_imm
                    } else {
                        self.sint(crate::isa::SReg(p.br_reg))?
                    };
                    if take(p.cond, x, y) {
                        next = p.target as usize;
                    }
                }
                DStep::Op(inst) => self.exec_op(inst)?,
            }
            stats.insts += u64::from(d.arity);
            stats.cycles += d.cost;
            pc = next;
        }
        Ok(stats)
    }

    /// Execute a closure-threaded program (see [`ThreadedProgram`]):
    /// fuel and statistics are charged once per straight-line region
    /// with the region's pre-summed exact cost, vector registers live in
    /// one contiguous byte arena indexed by precomputed offsets, and
    /// affine loop addresses stride precomputed cursors instead of being
    /// recomputed per access. For every non-trapping execution the
    /// observable results — memory, scalar and vector registers, spill
    /// slots, `cycles` and `insts` — are bit-identical to
    /// [`Machine::run_decoded`] on the source decoded program.
    ///
    /// Two documented boundary differences, both confined to *trapping*
    /// executions: fuel traps fire at region granularity (the
    /// regionized analogue of the fused-step contract — a region whose
    /// constituents would cross the budget traps at the region boundary
    /// without executing any of them), and a read of a never-written
    /// vector register reads zeros instead of trapping (the arena
    /// carries no per-register written bit; compiled programs never
    /// read uninitialized registers — the decoded oracle would trap and
    /// the differential suite would catch it). Bounds and alignment
    /// checks remain per access and trap with the decoded messages.
    ///
    /// # Errors
    /// Returns a [`Trap`] on contract violations, or if the program was
    /// threaded for a target with a different vector width.
    pub fn run_threaded(&mut self, prog: &ThreadedProgram) -> Result<ExecStats, Trap> {
        if prog.vs != self.vs() {
            return Err(Trap(format!(
                "program threaded for VS={} executed on a VS={} machine",
                prog.vs,
                self.vs()
            )));
        }
        // Monomorphize the hot loop on the arena slot stride so the
        // scratch buffers are fixed-size stack arrays.
        if prog.stride() == INLINE_VS {
            self.run_threaded_impl::<INLINE_VS>(prog)
        } else {
            self.run_threaded_impl::<MAX_VS>(prog)
        }
    }

    fn run_threaded_impl<const CAP: usize>(
        &mut self,
        prog: &ThreadedProgram,
    ) -> Result<ExecStats, Trap> {
        debug_assert_eq!(prog.stride(), CAP);
        let vs = self.vs();
        // Widest byte span an all-lanes vector op writes:
        // `lanes(ty) * ty.size()` is `vs` for every type that fits and
        // one 8-byte element on sub-element machines. Every arena write
        // covers exactly `ew` bytes of a slot (zero-extending past the
        // written lanes, the invariant `VBytes` keeps), and bytes past
        // `ew` are zero for the slot's whole lifetime.
        let ew = vs.max(8);
        debug_assert!(ew <= CAP);
        let nv = prog.n_vregs();
        let steps = prog.steps();
        let regions = prog.regions();
        let mut stats = ExecStats::default();

        // Seed the arena from the live register file (arguments may have
        // been planted before execution).
        let mut arena = vec![0u8; nv * CAP];
        for (r, v) in self.vregs.iter().enumerate().take(nv) {
            let nb = v.capacity().min(CAP);
            arena[r * CAP..r * CAP + nb].copy_from_slice(&v[..nb]);
        }
        let mut st = TCtx {
            defs: prog.streams(),
            cursors: vec![0; prog.streams().len()],
            valid: vec![false; prog.streams().len()],
        };

        let mut r = 0usize;
        while let Some(reg) = regions.get(r) {
            self.charge_fuel(stats.insts, reg.arity)?;
            stats.insts += reg.arity;
            stats.cycles += reg.cost;
            // Control transfers only from a region's last step, so the
            // whole charged region executes unless a step traps.
            let mut next = r + 1;
            for step in &steps[reg.first as usize..(reg.first + reg.n) as usize] {
                match step {
                    TStep::Jump { target } => next = *target as usize,
                    TStep::Branch { cond, a, b, target } => {
                        let (x, y) = (self.sint(*a)?, self.sint(*b)?);
                        if take(*cond, x, y) {
                            next = *target as usize;
                        }
                    }
                    TStep::BranchImm {
                        cond,
                        a,
                        imm,
                        target,
                    } => {
                        let x = self.sint(*a)?;
                        if take(*cond, x, *imm) {
                            next = *target as usize;
                        }
                    }
                    TStep::InitStreams { first, n } => {
                        for s in *first as usize..(*first + *n) as usize {
                            st.valid[s] = match self.stream_base(&st.defs[s]) {
                                Some(c) => {
                                    st.cursors[s] = c;
                                    true
                                }
                                // Base registers not readable as ints:
                                // the use sites fall back to the
                                // per-access computation, which traps
                                // exactly like the decoded tier.
                                None => false,
                            };
                        }
                    }
                    TStep::VBin {
                        dst,
                        a,
                        b,
                        f,
                        lanes,
                        ..
                    } => t_vbin::<CAP>(&mut arena, ew, *dst, *a, *b, *f, *lanes as usize),
                    TStep::VUn {
                        dst, a, f, lanes, ..
                    } => {
                        if dst != a {
                            let (sa, sd) = slot1_mut::<CAP>(&mut arena, *a, *dst);
                            sd.fill(0);
                            f(sa, sd, *lanes as usize);
                        } else {
                            let mut tmp = [0u8; CAP];
                            f(slot::<CAP>(&arena, *a), &mut tmp, *lanes as usize);
                            arena[*dst as usize..*dst as usize + ew].copy_from_slice(&tmp[..ew]);
                        }
                    }
                    TStep::MovV { dst, src } => {
                        // Whole-slot copy: both slots honor the
                        // zeros-past-`ew` invariant, so this is exactly
                        // the decoded register move.
                        arena.copy_within(*src as usize..*src as usize + CAP, *dst as usize);
                    }
                    TStep::VBinVl {
                        dst,
                        a,
                        b,
                        f,
                        ty,
                        max_lanes,
                        ..
                    } => {
                        let n = (self.vl_bytes / ty.size()).min(*max_lanes as usize);
                        t_vbin_vl::<CAP>(&mut arena, ew, *dst, *a, *b, *f, n);
                    }
                    TStep::VUnVl {
                        dst,
                        a,
                        f,
                        ty,
                        max_lanes,
                        ..
                    } => {
                        let n = (self.vl_bytes / ty.size()).min(*max_lanes as usize);
                        if dst != a {
                            let (sa, sd) = slot1_mut::<CAP>(&mut arena, *a, *dst);
                            f(sa, sd, n);
                        } else {
                            let d = *dst as usize;
                            let mut tmp = [0u8; CAP];
                            tmp[..ew].copy_from_slice(&arena[d..d + ew]);
                            f(slot::<CAP>(&arena, *a), &mut tmp, n);
                            arena[d..d + ew].copy_from_slice(&tmp[..ew]);
                        }
                    }
                    TStep::LoadV { dst, aligned, addr } => {
                        self.t_load_v(&mut arena, ew, vs, *dst, *aligned, addr, &st)?
                    }
                    TStep::StoreV { src, aligned, addr } => {
                        self.t_store_v(&arena, vs, *src, *aligned, addr, &st)?
                    }
                    TStep::LoadS { ty, dst, addr } => {
                        let a = self.t_addr(addr, &st)?;
                        self.mem.check(a, ty.size())?;
                        let v = self.mem.read(*ty, a);
                        self.set_sreg_checked(*dst, *ty, v);
                    }
                    TStep::StoreS { ty, src, addr } => {
                        let a = self.t_addr(addr, &st)?;
                        self.mem.check(a, ty.size())?;
                        let v = self.coerce(*ty, self.sval(*src)?);
                        self.mem.write(*ty, a, v);
                    }
                    TStep::LoadVl { ty, dst, addr } => {
                        self.t_load_vl(&mut arena, ew, *ty, *dst, addr, &st)?
                    }
                    TStep::StoreVl { ty, src, addr } => {
                        self.t_store_vl(&arena, *ty, *src, addr, &st)?
                    }
                    TStep::SBin {
                        dst,
                        a,
                        b,
                        f,
                        ty,
                        rty,
                    } => {
                        let x = self.coerce(*ty, self.sval(*a)?);
                        let y = self.coerce(*ty, self.sval(*b)?);
                        self.set_sreg_checked(*dst, *rty, f(x, y));
                    }
                    TStep::SBinImm {
                        dst,
                        a,
                        imm,
                        f,
                        ty,
                        rty,
                    } => self.exec_sbin_imm(*dst, *a, *imm, *f, *ty, *rty)?,
                    TStep::SBin2(p) => {
                        let x = self.coerce(p.ty1, self.sval(p.a1)?);
                        let y = self.coerce(p.ty1, self.sval(p.b1)?);
                        self.set_sreg_checked(p.dst1, p.rty1, (p.f1)(x, y));
                        let x = self.coerce(p.ty2, self.sval(p.a2)?);
                        let y = self.coerce(p.ty2, self.sval(p.b2)?);
                        self.set_sreg_checked(p.dst2, p.rty2, (p.f2)(x, y));
                    }
                    TStep::MovS { dst, src } => {
                        let v = self.sval(*src)?;
                        self.set_sreg(*dst, v);
                    }
                    TStep::MovImm { dst, v } => self.set_sreg(*dst, *v),
                    TStep::Splat {
                        dst,
                        src,
                        f,
                        ty,
                        lanes,
                    } => {
                        let v = self.coerce(*ty, self.sval(*src)?);
                        let d = *dst as usize;
                        let sd = &mut arena[d..d + CAP];
                        sd.fill(0);
                        f(v, sd, *lanes as usize);
                    }
                    TStep::VShiftImm {
                        dst,
                        a,
                        f,
                        imm,
                        lanes,
                        ..
                    } => {
                        if dst != a {
                            let (sa, sd) = slot1_mut::<CAP>(&mut arena, *a, *dst);
                            sd.fill(0);
                            f(sa, *imm as i64, sd, *lanes as usize);
                        } else {
                            let mut tmp = [0u8; CAP];
                            f(
                                slot::<CAP>(&arena, *a),
                                *imm as i64,
                                &mut tmp,
                                *lanes as usize,
                            );
                            arena[*dst as usize..*dst as usize + ew].copy_from_slice(&tmp[..ew]);
                        }
                    }
                    TStep::VShiftReg {
                        dst,
                        a,
                        f,
                        amt,
                        lanes,
                        ..
                    } => {
                        let amt = self.sint(*amt)?;
                        if dst != a {
                            let (sa, sd) = slot1_mut::<CAP>(&mut arena, *a, *dst);
                            sd.fill(0);
                            f(sa, amt, sd, *lanes as usize);
                        } else {
                            let mut tmp = [0u8; CAP];
                            f(slot::<CAP>(&arena, *a), amt, &mut tmp, *lanes as usize);
                            arena[*dst as usize..*dst as usize + ew].copy_from_slice(&tmp[..ew]);
                        }
                    }
                    TStep::SpillLd { dst, slot } => {
                        let v = self
                            .slots
                            .get(*slot as usize)
                            .copied()
                            .ok_or_else(|| Trap(format!("reload of unwritten slot {slot}")))?;
                        self.set_sreg(*dst, v);
                    }
                    TStep::SpillSt { src, slot } => {
                        let v = self.sval(*src)?;
                        if self.slots.len() <= *slot as usize {
                            self.slots.resize(*slot as usize + 1, Value::Int(0));
                        }
                        self.slots[*slot as usize] = v;
                    }
                    TStep::VReduce {
                        dst,
                        src,
                        f,
                        ty,
                        lanes,
                        ..
                    } => {
                        let v = f(slot::<CAP>(&arena, *src), *lanes as usize);
                        self.set_sreg_checked(*dst, *ty, v);
                    }
                    // Superinstructions: constituents in order, every
                    // register write included — same contract as the
                    // decoded fused steps.
                    TStep::LoadBinStore(p) => {
                        self.t_load_v(
                            &mut arena,
                            ew,
                            vs,
                            p.load_dst,
                            p.load_aligned,
                            &p.load,
                            &st,
                        )?;
                        t_vbin::<CAP>(&mut arena, ew, p.dst, p.a, p.b, p.f, p.lanes as usize);
                        self.t_store_v(&arena, vs, p.dst, p.store_aligned, &p.store, &st)?;
                    }
                    TStep::LoadBinBin(p) => {
                        self.t_load_v(
                            &mut arena,
                            ew,
                            vs,
                            p.load_dst,
                            p.load_aligned,
                            &p.load,
                            &st,
                        )?;
                        t_vbin::<CAP>(&mut arena, ew, p.dst1, p.a1, p.b1, p.f1, p.lanes1 as usize);
                        t_vbin::<CAP>(&mut arena, ew, p.dst2, p.a2, p.b2, p.f2, p.lanes2 as usize);
                    }
                    TStep::LoadBin(p) => {
                        self.t_load_v(
                            &mut arena,
                            ew,
                            vs,
                            p.load_dst,
                            p.load_aligned,
                            &p.load,
                            &st,
                        )?;
                        t_vbin::<CAP>(&mut arena, ew, p.dst, p.a, p.b, p.f, p.lanes as usize);
                    }
                    TStep::BinStore(p) => {
                        t_vbin::<CAP>(&mut arena, ew, p.dst, p.a, p.b, p.f, p.lanes as usize);
                        self.t_store_v(&arena, vs, p.dst, p.store_aligned, &p.store, &st)?;
                    }
                    TStep::LoadBinStoreVl(p) => {
                        self.t_load_vl(&mut arena, ew, p.load_ty, p.load_dst, &p.load, &st)?;
                        let n = (self.vl_bytes / p.ty.size()).min(p.max_lanes as usize);
                        t_vbin_vl::<CAP>(&mut arena, ew, p.dst, p.a, p.b, p.f, n);
                        self.t_store_vl(&arena, p.store_ty, p.dst, &p.store, &st)?;
                    }
                    TStep::Latch(p) => {
                        self.exec_sbin_imm(p.dst, p.a, p.imm, p.f, p.ty, p.rty)?;
                        let x = self.sint(p.br_a)?;
                        let y = if p.br_reg == crate::decode::NO_INDEX {
                            p.br_imm
                        } else {
                            self.sint(crate::isa::SReg(p.br_reg))?
                        };
                        if take(p.cond, x, y) {
                            next = p.target as usize;
                            // Backedge taken: stride every live cursor of
                            // this loop by its precomputed delta. Exact
                            // by wrapping i64 arithmetic (see module
                            // docs of `thread`).
                            for s in
                                p.first_stream as usize..(p.first_stream + p.n_streams) as usize
                            {
                                if st.valid[s] {
                                    st.cursors[s] = st.cursors[s].wrapping_add(st.defs[s].delta);
                                }
                            }
                        }
                    }
                    TStep::ScalarOp(inst) => self.exec_op(inst)?,
                    TStep::VectorOp(inst) => {
                        // Rare escape hatch: materialize the register
                        // file, run the shared semantics, re-seed the
                        // arena.
                        self.t_flush(&arena, CAP, nv);
                        self.exec_op(inst)?;
                        t_fill(&self.vregs, &mut arena, CAP, nv);
                    }
                }
            }
            r = next;
        }
        self.t_flush(&arena, CAP, nv);
        Ok(stats)
    }

    /// Affine base of a stream at loop entry, or `None` when a base
    /// register is not readable as an int (undefined or float) — the
    /// non-trapping probe; use sites then fall back to the per-access
    /// address computation and its exact decoded trap.
    fn stream_base(&self, d: &StreamDef) -> Option<i64> {
        let Some(Value::Int(mut a)) = self.sregs.get(d.base.0 as usize).copied() else {
            return None;
        };
        if d.idx != crate::decode::NO_INDEX {
            let Some(Value::Int(i)) = self.sregs.get(d.idx as usize).copied() else {
                return None;
            };
            a = a.wrapping_add(i.wrapping_mul(d.scale as i64));
        }
        Some(a.wrapping_add(d.disp as i64))
    }

    /// Resolve a threaded memory operand: stream cursor when live,
    /// otherwise the flattened per-access computation.
    #[inline]
    fn t_addr(&self, addr: &TAddr, st: &TCtx) -> Result<u64, Trap> {
        match *addr {
            TAddr::Direct {
                base,
                idx,
                scale,
                disp,
            } => self.fast_addr(base, idx, scale, disp),
            TAddr::Stream(s) => {
                let s = s as usize;
                if !st.valid[s] {
                    let d = &st.defs[s];
                    return self.fast_addr(d.base, d.idx, d.scale, d.disp);
                }
                let a = st.cursors[s];
                if a < 0 {
                    return Err(Trap(format!("negative address {a}")));
                }
                Ok(a as u64)
            }
        }
    }

    /// Whole-register vector load into an arena slot.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn t_load_v(
        &mut self,
        arena: &mut [u8],
        ew: usize,
        vs: usize,
        dst: u32,
        aligned: bool,
        addr: &TAddr,
        st: &TCtx,
    ) -> Result<(), Trap> {
        let a = self.t_addr(addr, st)?;
        self.mem.check(a, vs)?;
        if aligned && !(a as usize).is_multiple_of(vs) {
            return Err(Trap(format!(
                "aligned vector load from misaligned address {a} (VS={vs})"
            )));
        }
        let d = dst as usize;
        arena[d..d + vs].copy_from_slice(self.mem.slice(a, vs));
        arena[d + vs..d + ew].fill(0);
        Ok(())
    }

    /// Whole-register vector store from an arena slot.
    #[inline]
    fn t_store_v(
        &mut self,
        arena: &[u8],
        vs: usize,
        src: u32,
        aligned: bool,
        addr: &TAddr,
        st: &TCtx,
    ) -> Result<(), Trap> {
        let a = self.t_addr(addr, st)?;
        self.mem.check(a, vs)?;
        if aligned && !(a as usize).is_multiple_of(vs) {
            return Err(Trap(format!(
                "aligned vector store to misaligned address {a} (VS={vs})"
            )));
        }
        let s = src as usize;
        self.mem.slice_mut(a, vs).copy_from_slice(&arena[s..s + vs]);
        Ok(())
    }

    /// Predicated (element-aligned, zeroing) vector load into an arena
    /// slot.
    #[inline]
    fn t_load_vl(
        &mut self,
        arena: &mut [u8],
        ew: usize,
        ty: ScalarTy,
        dst: u32,
        addr: &TAddr,
        st: &TCtx,
    ) -> Result<(), Trap> {
        let a = self.t_addr(addr, st)?;
        let bytes = self.vl_lanes(ty) * ty.size();
        if bytes > 0 {
            self.mem.check(a, bytes)?;
        }
        let d = dst as usize;
        arena[d..d + ew].fill(0);
        if bytes > 0 {
            arena[d..d + bytes].copy_from_slice(self.mem.slice(a, bytes));
        }
        Ok(())
    }

    /// Predicated vector store from an arena slot.
    #[inline]
    fn t_store_vl(
        &mut self,
        arena: &[u8],
        ty: ScalarTy,
        src: u32,
        addr: &TAddr,
        st: &TCtx,
    ) -> Result<(), Trap> {
        let a = self.t_addr(addr, st)?;
        let bytes = self.vl_lanes(ty) * ty.size();
        if bytes > 0 {
            self.mem.check(a, bytes)?;
            let s = src as usize;
            self.mem
                .slice_mut(a, bytes)
                .copy_from_slice(&arena[s..s + bytes]);
        }
        Ok(())
    }

    /// Materialize the register file from the arena (run exit and the
    /// `VectorOp` escape hatch): each slot becomes a machine-sized
    /// register, zero-extended past the arena stride.
    fn t_flush(&mut self, arena: &[u8], cap: usize, nv: usize) {
        for r in 0..nv {
            let mut v = self.vzero();
            let nb = v.capacity().min(cap);
            v[..nb].copy_from_slice(&arena[r * cap..r * cap + nb]);
            self.set_vreg(crate::isa::VReg(r as u32), v);
        }
    }

    /// One fixed-width fast vector load (shared by the standalone step
    /// and the superinstructions, so fused and unfused execution agree
    /// by construction).
    fn exec_load_v(&mut self, dst: crate::isa::VReg, m: &FusedAddr) -> Result<(), Trap> {
        let vs = self.vs();
        let a = self.fast_addr(m.base, m.idx, m.scale, m.disp)?;
        self.mem.check(a, vs)?;
        if m.aligned && !(a as usize).is_multiple_of(vs) {
            return Err(Trap(format!(
                "aligned vector load from misaligned address {a} (VS={vs})"
            )));
        }
        let mut out = self.fresh_out();
        out[..vs].copy_from_slice(self.mem.slice(a, vs));
        self.put_vreg(dst, out);
        Ok(())
    }

    /// One fixed-width fast vector store.
    fn exec_store_v(&mut self, src: crate::isa::VReg, m: &FusedAddr) -> Result<(), Trap> {
        let vs = self.vs();
        let a = self.fast_addr(m.base, m.idx, m.scale, m.disp)?;
        self.mem.check(a, vs)?;
        if m.aligned && !(a as usize).is_multiple_of(vs) {
            return Err(Trap(format!(
                "aligned vector store to misaligned address {a} (VS={vs})"
            )));
        }
        let v = vreg_of(&self.vregs, src)?;
        self.mem.slice_mut(a, vs).copy_from_slice(&v[..vs]);
        Ok(())
    }

    /// One all-lanes specialized vector binary op.
    fn exec_vbin(
        &mut self,
        dst: crate::isa::VReg,
        a: crate::isa::VReg,
        b: crate::isa::VReg,
        f: VBinFn,
        lanes: usize,
    ) -> Result<(), Trap> {
        let mut out = self.fresh_out();
        let (x, y) = (self.vbytes(a)?, self.vbytes(b)?);
        f(x, y, &mut out, lanes);
        self.put_vreg(dst, out);
        Ok(())
    }

    /// One merging-predicated specialized vector binary op: lanes past
    /// the active VL keep the destination's old contents (zeros if
    /// unwritten).
    fn exec_vbin_vl(
        &mut self,
        dst: crate::isa::VReg,
        a: crate::isa::VReg,
        b: crate::isa::VReg,
        f: VBinFn,
        ty: ScalarTy,
        max_lanes: u16,
    ) -> Result<(), Trap> {
        let n = (self.vl_bytes / ty.size()).min(max_lanes as usize);
        let mut out = self.merge_out(dst);
        let (x, y) = (self.vbytes(a)?, self.vbytes(b)?);
        f(x, y, &mut out, n);
        self.put_vreg(dst, out);
        Ok(())
    }

    /// One predicated (element-aligned, zeroing) vector load over a
    /// flattened address.
    fn exec_load_vl(
        &mut self,
        ty: ScalarTy,
        dst: crate::isa::VReg,
        m: &FusedAddr,
    ) -> Result<(), Trap> {
        let a = self.fast_addr(m.base, m.idx, m.scale, m.disp)?;
        let bytes = self.vl_lanes(ty) * ty.size();
        let mut out = self.vzero();
        if bytes > 0 {
            self.mem.check(a, bytes)?;
            out[..bytes].copy_from_slice(self.mem.slice(a, bytes));
        }
        self.set_vreg(dst, out);
        Ok(())
    }

    /// One predicated vector store over a flattened address.
    fn exec_store_vl(
        &mut self,
        ty: ScalarTy,
        src: crate::isa::VReg,
        m: &FusedAddr,
    ) -> Result<(), Trap> {
        let a = self.fast_addr(m.base, m.idx, m.scale, m.disp)?;
        let bytes = self.vl_lanes(ty) * ty.size();
        if bytes > 0 {
            self.mem.check(a, bytes)?;
            let v = vreg_of(&self.vregs, src)?;
            self.mem.slice_mut(a, bytes).copy_from_slice(&v[..bytes]);
        }
        Ok(())
    }

    /// One specialized scalar-immediate ALU op.
    fn exec_sbin_imm(
        &mut self,
        dst: crate::isa::SReg,
        a: crate::isa::SReg,
        imm: i32,
        f: SBinFn,
        ty: ScalarTy,
        rty: ScalarTy,
    ) -> Result<(), Trap> {
        let x = self.coerce(ty, self.sval(a)?);
        let y = self.coerce(ty, Value::Int(imm as i64));
        self.set_sreg_checked(dst, rty, f(x, y));
        Ok(())
    }

    /// Execute one non-control instruction (shared by both dispatch
    /// loops, so the two paths agree by construction).
    ///
    /// # Errors
    /// Returns a [`Trap`] on contract violations.
    fn exec_op(&mut self, inst: &MInst) -> Result<(), Trap> {
        let vs = self.vs();
        match inst {
            MInst::Label(_) | MInst::Jump(_) | MInst::Branch { .. } | MInst::BranchImm { .. } => {
                return Err(Trap(format!("control instruction in exec_op: {inst:?}")))
            }
            MInst::MovImmI { dst, imm } => self.set_sreg(*dst, Value::Int(*imm)),
            MInst::MovImmF { dst, imm } => self.set_sreg(*dst, Value::Float(*imm)),
            MInst::MovS { dst, src } => {
                let v = self.sval(*src)?;
                self.set_sreg(*dst, v);
            }
            MInst::SBin { op, ty, dst, a, b } | MInst::FpuBin { op, ty, dst, a, b } => {
                let (x, y) = (
                    self.coerce(*ty, self.sval(*a)?),
                    self.coerce(*ty, self.sval(*b)?),
                );
                let r = eval_bin(*op, *ty, x, y);
                let rty = if op.is_comparison() {
                    ScalarTy::I32
                } else {
                    *ty
                };
                self.set_sreg_checked(*dst, rty, r);
            }
            MInst::SBinImm {
                op,
                ty,
                dst,
                a,
                imm,
            } => {
                let x = self.coerce(*ty, self.sval(*a)?);
                let y = self.coerce(*ty, Value::Int(*imm));
                let r = eval_bin(*op, *ty, x, y);
                let rty = if op.is_comparison() {
                    ScalarTy::I32
                } else {
                    *ty
                };
                self.set_sreg_checked(*dst, rty, r);
            }
            MInst::SUn { op, ty, dst, a } => {
                let x = self.coerce(*ty, self.sval(*a)?);
                let r = eval_un(*op, *ty, x);
                self.set_sreg_checked(*dst, *ty, r);
            }
            MInst::SCvt { from, to, dst, a } => {
                let x = self.coerce(*from, self.sval(*a)?);
                let r = eval_cast(*from, *to, x);
                self.set_sreg_checked(*dst, *to, r);
            }
            MInst::LoadS { ty, dst, addr } => {
                let a = self.addr(addr)?;
                self.mem.check(a, ty.size())?;
                let v = self.mem.read(*ty, a);
                self.set_sreg_checked(*dst, *ty, v);
            }
            MInst::StoreS { ty, src, addr } => {
                let a = self.addr(addr)?;
                self.mem.check(a, ty.size())?;
                let v = self.coerce(*ty, self.sval(*src)?);
                self.mem.write(*ty, a, v);
            }
            MInst::LoadV { dst, addr, align } => {
                let a = self.addr(addr)?;
                self.mem.check(a, vs)?;
                if *align == MemAlign::Aligned && !(a as usize).is_multiple_of(vs) {
                    return Err(Trap(format!(
                        "aligned vector load from misaligned address {a} (VS={vs})"
                    )));
                }
                let mut out = self.vzero();
                out[..vs].copy_from_slice(self.mem.slice(a, vs));
                self.set_vreg(*dst, out);
            }
            MInst::LoadVFloor { dst, addr } => {
                let a = self.addr(addr)? & !(vs as u64 - 1);
                self.mem.check(a, vs)?;
                let mut out = self.vzero();
                out[..vs].copy_from_slice(self.mem.slice(a, vs));
                self.set_vreg(*dst, out);
            }
            MInst::StoreV { src, addr, align } => {
                let a = self.addr(addr)?;
                self.mem.check(a, vs)?;
                if *align == MemAlign::Aligned && !(a as usize).is_multiple_of(vs) {
                    return Err(Trap(format!(
                        "aligned vector store to misaligned address {a} (VS={vs})"
                    )));
                }
                let v = vreg_of(&self.vregs, *src)?;
                self.mem.slice_mut(a, vs).copy_from_slice(&v[..vs]);
            }
            MInst::Splat { ty, dst, src } => {
                let v = self.coerce(*ty, self.sval(*src)?);
                let n = self.lanes(*ty);
                let out = self.with_lanes(*ty, n, |_| Ok(v))?;
                self.set_vreg(*dst, out);
            }
            MInst::Iota {
                ty,
                dst,
                start,
                inc,
            } => {
                let s = self.coerce(*ty, self.sval(*start)?);
                let i = self.coerce(*ty, self.sval(*inc)?);
                let n = self.lanes(*ty);
                let out = self.with_lanes(*ty, n, |k| {
                    let mut v = s;
                    for _ in 0..k {
                        v = eval_bin(BinOp::Add, *ty, v, i);
                    }
                    Ok(v)
                })?;
                self.set_vreg(*dst, out);
            }
            MInst::SetLane { ty, dst, lane, src } => {
                let v = self.coerce(*ty, self.sval(*src)?);
                let off = *lane as usize * ty.size();
                if off + ty.size() > self.lane_limit(*ty) {
                    return Err(Trap(format!("lane {lane} out of range for {ty}")));
                }
                self.vbytes(*dst)?; // undefined-register trap before the copy
                let mut cur = self.merge_out(*dst);
                write_elem(*ty, &mut cur, off, v);
                self.put_vreg(*dst, cur);
            }
            MInst::GetLane { ty, dst, src, lane } => {
                let v = self.vbytes(*src)?;
                let off = *lane as usize * ty.size();
                if off + ty.size() > self.lane_limit(*ty) {
                    return Err(Trap(format!("lane {lane} out of range for {ty}")));
                }
                let x = read_elem(*ty, v, off);
                self.set_sreg_checked(*dst, *ty, x);
            }
            MInst::VBin { op, ty, dst, a, b } => {
                let (x, y) = (self.vbytes(*a)?, self.vbytes(*b)?);
                let n = self.lanes(*ty);
                let out = self.with_lanes(*ty, n, |k| {
                    Ok(eval_bin(
                        *op,
                        *ty,
                        self.lane(x, *ty, k),
                        self.lane(y, *ty, k),
                    ))
                })?;
                self.set_vreg(*dst, out);
            }
            MInst::VUn { op, ty, dst, a } => {
                let x = self.vbytes(*a)?;
                let n = self.lanes(*ty);
                let out =
                    self.with_lanes(*ty, n, |k| Ok(eval_un(*op, *ty, self.lane(x, *ty, k))))?;
                self.set_vreg(*dst, out);
            }
            MInst::VShift {
                left,
                ty,
                dst,
                a,
                amt,
            } => {
                let x = self.vbytes(*a)?;
                let n = self.lanes(*ty);
                let op = if *left { BinOp::Shl } else { BinOp::Shr };
                let out = match amt {
                    ShiftSrc::Imm(v) => {
                        let amt = Value::Int(*v as i64);
                        self.with_lanes(*ty, n, |k| {
                            Ok(eval_bin(op, *ty, self.lane(x, *ty, k), amt))
                        })?
                    }
                    ShiftSrc::Reg(r) => {
                        let amt = Value::Int(self.sint(*r)?);
                        self.with_lanes(*ty, n, |k| {
                            Ok(eval_bin(op, *ty, self.lane(x, *ty, k), amt))
                        })?
                    }
                    ShiftSrc::PerLane(r) => {
                        let amts = self.vbytes(*r)?;
                        self.with_lanes(*ty, n, |k| {
                            Ok(eval_bin(
                                op,
                                *ty,
                                self.lane(x, *ty, k),
                                self.lane(amts, *ty, k),
                            ))
                        })?
                    }
                };
                self.set_vreg(*dst, out);
            }
            MInst::VWidenMul {
                half,
                ty,
                dst,
                a,
                b,
            } => {
                let out = self.widen_mul(*half, *ty, *a, *b)?;
                self.set_vreg(*dst, out);
            }
            MInst::VDotAcc { ty, dst, a, b, acc } => {
                let wide = ty
                    .widened()
                    .ok_or_else(|| Trap(format!("dot: {ty} has no widened type")))?;
                let (x, y, z) = (self.vbytes(*a)?, self.vbytes(*b)?, self.vbytes(*acc)?);
                let n = self.lanes(*ty);
                let out = self.with_lanes(wide, n / 2, |j| {
                    let mut sum = self.lane(z, wide, j);
                    for k in [2 * j, 2 * j + 1] {
                        let p = eval_bin(
                            BinOp::Mul,
                            wide,
                            eval_cast(*ty, wide, self.lane(x, *ty, k)),
                            eval_cast(*ty, wide, self.lane(y, *ty, k)),
                        );
                        sum = eval_bin(BinOp::Add, wide, sum, p);
                    }
                    Ok(sum)
                })?;
                self.set_vreg(*dst, out);
            }
            MInst::VPack { ty, dst, a, b } => {
                let out = self.pack(*ty, *a, *b)?;
                self.set_vreg(*dst, out);
            }
            MInst::VUnpack { half, ty, dst, a } => {
                let out = self.unpack(*half, *ty, *a)?;
                self.set_vreg(*dst, out);
            }
            MInst::VCvt { dir, ty, dst, a } => {
                let out = self.cvt(*dir, *ty, *a)?;
                self.set_vreg(*dst, out);
            }
            MInst::VInterleave {
                half,
                ty,
                dst,
                a,
                b,
            } => {
                let (x, y) = (self.vbytes(*a)?, self.vbytes(*b)?);
                let n = self.lanes(*ty);
                let base = if *half == Half::Lo { 0 } else { n / 2 };
                let out = self.with_lanes(*ty, n, |k| {
                    let src = if k % 2 == 0 { x } else { y };
                    Ok(self.lane(src, *ty, base + k / 2))
                })?;
                self.set_vreg(*dst, out);
            }
            MInst::VExtractStride {
                ty,
                stride,
                offset,
                dst,
                srcs,
            } => {
                let n = self.lanes(*ty);
                let mut all = Vec::with_capacity(srcs.len());
                for r in srcs {
                    all.push(self.vbytes(*r)?);
                }
                let out = self.with_lanes(*ty, n, |k| {
                    let pos = *offset as usize + k * *stride as usize;
                    let (vi, li) = (pos / n, pos % n);
                    let v = *all
                        .get(vi)
                        .ok_or_else(|| Trap("extract reads past sources".into()))?;
                    Ok(self.lane(v, *ty, li))
                })?;
                self.set_vreg(*dst, out);
            }
            MInst::VPermCtrl { dst, addr } => {
                let a = self.addr(addr)?;
                let mut out = self.vzero();
                out[0] = (a as usize % vs) as u8;
                self.set_vreg(*dst, out);
            }
            MInst::VPerm { dst, a, b, ctrl } => {
                // Select the `vs`-byte window at offset `mis` of x ++ y,
                // without materializing the 2·VS concatenation.
                let (x, y, c) = (self.vbytes(*a)?, self.vbytes(*b)?, self.vbytes(*ctrl)?);
                let mis = c[0] as usize % vs;
                let mut out = self.vzero();
                for i in 0..vs {
                    let p = mis + i;
                    out[i] = if p < vs { x[p] } else { y[p - vs] };
                }
                self.set_vreg(*dst, out);
            }
            MInst::VReduce { op, ty, dst, src } => {
                let x = self.vbytes(*src)?;
                let n = self.lanes(*ty);
                let bop = match op {
                    ReduceOp::Plus => BinOp::Add,
                    ReduceOp::Max => BinOp::Max,
                    ReduceOp::Min => BinOp::Min,
                };
                let mut acc = self.lane(x, *ty, 0);
                for k in 1..n {
                    acc = eval_bin(bop, *ty, acc, self.lane(x, *ty, k));
                }
                self.set_sreg_checked(*dst, *ty, acc);
            }
            MInst::MovV { dst, src } => {
                self.vbytes(*src)?; // undefined-register trap before the copy
                let v = self.merge_out(*src);
                self.put_vreg(*dst, v);
            }
            MInst::SpillLd { dst, slot } => {
                let v = self
                    .slots
                    .get(*slot as usize)
                    .copied()
                    .ok_or_else(|| Trap(format!("reload of unwritten slot {slot}")))?;
                self.set_sreg(*dst, v);
            }
            MInst::SpillSt { src, slot } => {
                let v = self.sval(*src)?;
                if self.slots.len() <= *slot as usize {
                    self.slots.resize(*slot as usize + 1, Value::Int(0));
                }
                self.slots[*slot as usize] = v;
            }
            MInst::VHelper { op, ty, dst, a, b } => {
                let out = match op {
                    HelperOp::WidenMult(h) => {
                        let b = b.ok_or_else(|| Trap("widen_mult helper needs b".into()))?;
                        self.widen_mul(*h, *ty, *a, b)?
                    }
                    HelperOp::Cvt(d) => self.cvt(*d, *ty, *a)?,
                    HelperOp::FDiv => {
                        let b = b.ok_or_else(|| Trap("fdiv helper needs b".into()))?;
                        let (x, y) = (self.vbytes(*a)?, self.vbytes(b)?);
                        let n = self.lanes(*ty);
                        self.with_lanes(*ty, n, |k| {
                            Ok(eval_bin(
                                BinOp::Div,
                                *ty,
                                self.lane(x, *ty, k),
                                self.lane(y, *ty, k),
                            ))
                        })?
                    }
                    HelperOp::FSqrt => {
                        let x = self.vbytes(*a)?;
                        let n = self.lanes(*ty);
                        self.with_lanes(*ty, n, |k| {
                            Ok(eval_un(vapor_ir::UnOp::Sqrt, *ty, self.lane(x, *ty, k)))
                        })?
                    }
                    HelperOp::Pack => {
                        let b = b.ok_or_else(|| Trap("pack helper needs b".into()))?;
                        self.pack(*ty, *a, b)?
                    }
                    HelperOp::Unpack(h) => self.unpack(*h, *ty, *a)?,
                };
                self.set_vreg(*dst, out);
            }
            MInst::SetVl { ty, dst, avl } => {
                let vlmax = self.lanes(*ty) as i64;
                let vl = self.sint(*avl)?.clamp(0, vlmax);
                self.vl_bytes = vl as usize * ty.size();
                self.set_sreg(*dst, Value::Int(vl));
            }
            MInst::LoadVl { ty, dst, addr } => {
                let a = self.addr(addr)?;
                let bytes = self.vl_lanes(*ty) * ty.size();
                let mut out = self.vzero();
                if bytes > 0 {
                    self.mem.check(a, bytes)?;
                    out[..bytes].copy_from_slice(self.mem.slice(a, bytes));
                }
                self.set_vreg(*dst, out);
            }
            MInst::StoreVl { ty, src, addr } => {
                let a = self.addr(addr)?;
                let bytes = self.vl_lanes(*ty) * ty.size();
                if bytes > 0 {
                    self.mem.check(a, bytes)?;
                    let v = vreg_of(&self.vregs, *src)?;
                    self.mem.slice_mut(a, bytes).copy_from_slice(&v[..bytes]);
                }
            }
            MInst::VBinVl { op, ty, dst, a, b } => {
                let n = self.vl_lanes(*ty);
                let mut out = self.merge_out(*dst);
                let (x, y) = (self.vbytes(*a)?, self.vbytes(*b)?);
                for k in 0..n {
                    let v = eval_bin(*op, *ty, self.lane(x, *ty, k), self.lane(y, *ty, k));
                    write_elem(*ty, &mut out, k * ty.size(), v);
                }
                self.put_vreg(*dst, out);
            }
            MInst::VUnVl { op, ty, dst, a } => {
                let n = self.vl_lanes(*ty);
                let mut out = self.merge_out(*dst);
                let x = self.vbytes(*a)?;
                for k in 0..n {
                    let v = eval_un(*op, *ty, self.lane(x, *ty, k));
                    write_elem(*ty, &mut out, k * ty.size(), v);
                }
                self.put_vreg(*dst, out);
            }
        }
        Ok(())
    }

    fn coerce(&self, ty: ScalarTy, v: Value) -> Value {
        match (ty.is_float(), v) {
            (true, Value::Float(_)) | (false, Value::Int(_)) => v,
            (true, Value::Int(i)) => Value::Float(i as f64),
            (false, Value::Float(f)) => Value::Int(f as i64),
        }
    }

    fn widen_mul(
        &self,
        half: Half,
        ty: ScalarTy,
        a: crate::isa::VReg,
        b: crate::isa::VReg,
    ) -> Result<VBytes, Trap> {
        let wide = ty
            .widened()
            .ok_or_else(|| Trap(format!("widen_mult: {ty} has no widened type")))?;
        let (x, y) = (self.vbytes(a)?, self.vbytes(b)?);
        let n = self.lanes(ty);
        let base = if half == Half::Lo { 0 } else { n / 2 };
        self.with_lanes(wide, n / 2, |j| {
            Ok(eval_bin(
                BinOp::Mul,
                wide,
                eval_cast(ty, wide, self.lane(x, ty, base + j)),
                eval_cast(ty, wide, self.lane(y, ty, base + j)),
            ))
        })
    }

    fn pack(&self, ty: ScalarTy, a: crate::isa::VReg, b: crate::isa::VReg) -> Result<VBytes, Trap> {
        let narrow = ty
            .narrowed()
            .ok_or_else(|| Trap(format!("pack: {ty} has no narrowed type")))?;
        let (x, y) = (self.vbytes(a)?, self.vbytes(b)?);
        let n = self.lanes(ty);
        self.with_lanes(narrow, 2 * n, |k| {
            let src = if k < n { x } else { y };
            Ok(eval_cast(ty, narrow, self.lane(src, ty, k % n)))
        })
    }

    fn cvt(&self, dir: CvtDir, ty: ScalarTy, a: crate::isa::VReg) -> Result<VBytes, Trap> {
        let to = match dir {
            CvtDir::IntToFloat => crate::float_of_width(ty)
                .ok_or_else(|| Trap(format!("cvt_int2fp: no float of width of {ty}")))?,
            CvtDir::FloatToInt => crate::int_of_width(ty)
                .ok_or_else(|| Trap(format!("cvt_fp2int: no int of width of {ty}")))?,
        };
        let x = self.vbytes(a)?;
        let n = self.lanes(ty);
        self.with_lanes(to, n, |k| Ok(eval_cast(ty, to, self.lane(x, ty, k))))
    }

    fn unpack(&self, half: Half, ty: ScalarTy, a: crate::isa::VReg) -> Result<VBytes, Trap> {
        let wide = ty
            .widened()
            .ok_or_else(|| Trap(format!("unpack: {ty} has no widened type")))?;
        let x = self.vbytes(a)?;
        let n = self.lanes(ty);
        let base = if half == Half::Lo { 0 } else { n / 2 };
        self.with_lanes(wide, n / 2, |j| {
            Ok(eval_cast(ty, wide, self.lane(x, ty, base + j)))
        })
    }
}

/// Borrowed register contents. A free function over the register file
/// (rather than a `&self` method) so store paths can split borrows:
/// a shared borrow of `vregs` coexisting with a mutable borrow of `mem`.
fn vreg_of(vregs: &[VBytes], r: crate::isa::VReg) -> Result<&VBytes, Trap> {
    vregs
        .get(r.0 as usize)
        .ok_or_else(|| Trap(format!("read of undefined vector register v{}", r.0)))
}

fn take(cond: Cond, a: i64, b: i64) -> bool {
    match cond {
        Cond::Lt => a < b,
        Cond::Ge => a >= b,
        Cond::Eq => a == b,
        Cond::Ne => a != b,
    }
}

/// Runtime stream state of one threaded execution: per-stream cursors
/// plus the liveness bit set at loop entry ([`TStep::InitStreams`]).
struct TCtx<'a> {
    defs: &'a [StreamDef],
    cursors: Vec<i64>,
    valid: Vec<bool>,
}

/// One arena register slot (`CAP` bytes at byte offset `off`).
#[inline]
fn slot<const CAP: usize>(arena: &[u8], off: u32) -> &[u8] {
    &arena[off as usize..off as usize + CAP]
}

/// Split one exclusive and one shared `CAP`-byte slot out of the arena.
/// Callers must pass distinct offsets (slot offsets are multiples of
/// `CAP`, so distinct offsets mean disjoint spans).
#[inline]
fn slot1_mut<const CAP: usize>(arena: &mut [u8], a: u32, dst: u32) -> (&[u8], &mut [u8]) {
    debug_assert_ne!(dst, a);
    debug_assert!(a as usize + CAP <= arena.len() && dst as usize + CAP <= arena.len());
    let base = arena.as_mut_ptr();
    // SAFETY: both spans are in bounds; offsets are distinct multiples
    // of CAP, so the exclusive span cannot overlap the shared one.
    unsafe {
        (
            std::slice::from_raw_parts(base.add(a as usize), CAP),
            std::slice::from_raw_parts_mut(base.add(dst as usize), CAP),
        )
    }
}

/// Split one exclusive and two shared `CAP`-byte slots out of the
/// arena. Callers must pass a destination distinct from both operands.
#[inline]
fn slot2_mut<const CAP: usize>(
    arena: &mut [u8],
    a: u32,
    b: u32,
    dst: u32,
) -> (&[u8], &[u8], &mut [u8]) {
    debug_assert!(dst != a && dst != b);
    debug_assert!(
        a as usize + CAP <= arena.len()
            && b as usize + CAP <= arena.len()
            && dst as usize + CAP <= arena.len()
    );
    let base = arena.as_mut_ptr();
    // SAFETY: all spans are in bounds; offsets are multiples of CAP and
    // dst differs from a and b, so the exclusive span cannot overlap
    // either shared one (the two shared spans may alias each other,
    // which shared references permit).
    unsafe {
        (
            std::slice::from_raw_parts(base.add(a as usize), CAP),
            std::slice::from_raw_parts(base.add(b as usize), CAP),
            std::slice::from_raw_parts_mut(base.add(dst as usize), CAP),
        )
    }
}

/// All-lanes specialized vector binary op on arena slots — fresh
/// (non-merging) semantics: every lane past the written ones is zero.
/// Disjoint destinations are written in place; a destination aliasing
/// an operand goes through a scratch register.
#[inline]
fn t_vbin<const CAP: usize>(
    arena: &mut [u8],
    ew: usize,
    dst: u32,
    a: u32,
    b: u32,
    f: VBinFn,
    lanes: usize,
) {
    if dst != a && dst != b {
        let (sa, sb, sd) = slot2_mut::<CAP>(arena, a, b, dst);
        sd.fill(0);
        f(sa, sb, sd, lanes);
    } else {
        let mut tmp = [0u8; CAP];
        f(
            slot::<CAP>(arena, a),
            slot::<CAP>(arena, b),
            &mut tmp,
            lanes,
        );
        arena[dst as usize..dst as usize + ew].copy_from_slice(&tmp[..ew]);
    }
}

/// Merging-predicated vector binary op on arena slots: lanes past the
/// active VL keep the destination's old values, so the in-place path
/// needs no seeding at all.
#[inline]
fn t_vbin_vl<const CAP: usize>(
    arena: &mut [u8],
    ew: usize,
    dst: u32,
    a: u32,
    b: u32,
    f: VBinFn,
    n: usize,
) {
    if dst != a && dst != b {
        let (sa, sb, sd) = slot2_mut::<CAP>(arena, a, b, dst);
        f(sa, sb, sd, n);
    } else {
        let d = dst as usize;
        let mut tmp = [0u8; CAP];
        tmp[..ew].copy_from_slice(&arena[d..d + ew]);
        f(slot::<CAP>(arena, a), slot::<CAP>(arena, b), &mut tmp, n);
        arena[d..d + ew].copy_from_slice(&tmp[..ew]);
    }
}

/// Re-seed the arena from the register file after a `VectorOp` escape.
/// A free function so the shared borrow of `vregs` coexists with the
/// mutable borrow of the caller-owned arena.
fn t_fill(vregs: &[VBytes], arena: &mut [u8], cap: usize, nv: usize) {
    for (r, v) in vregs.iter().enumerate().take(nv) {
        let nb = v.capacity().min(cap);
        arena[r * cap..r * cap + nb].copy_from_slice(&v[..nb]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Label, SReg, VReg};
    use crate::target::{altivec, sse};

    fn code(insts: Vec<MInst>) -> MCode {
        MCode {
            insts,
            n_sregs: 16,
            n_vregs: 16,
            note: String::new(),
        }
    }

    #[test]
    fn scalar_loop_sums() {
        // r2 = 0; for (r0 = 0; r0 < 10; r0++) r2 += r0;
        let t = sse();
        let mut m = Machine::new(&t, 4096);
        let c = code(vec![
            MInst::MovImmI {
                dst: SReg(0),
                imm: 0,
            },
            MInst::MovImmI {
                dst: SReg(2),
                imm: 0,
            },
            MInst::Label(Label(0)),
            MInst::SBin {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: SReg(2),
                a: SReg(2),
                b: SReg(0),
            },
            MInst::SBinImm {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: SReg(0),
                a: SReg(0),
                imm: 1,
            },
            MInst::BranchImm {
                cond: Cond::Lt,
                a: SReg(0),
                imm: 10,
                target: Label(0),
            },
        ]);
        let stats = m.run(&c).unwrap();
        assert_eq!(m.sreg(SReg(2)), Value::Int(45));
        assert!(stats.cycles > 0 && stats.insts > 20);
    }

    #[test]
    fn vector_add_roundtrip_through_memory() {
        let t = sse();
        let mut m = Machine::new(&t, 4096);
        let a = m.mem.alloc(16, 16);
        let b = m.mem.alloc(16, 16);
        for k in 0..4 {
            m.mem
                .write(ScalarTy::F32, a + 4 * k, Value::Float(k as f64));
            m.mem.write(ScalarTy::F32, b + 4 * k, Value::Float(10.0));
        }
        m.set_sreg(SReg(0), Value::Int(a as i64));
        m.set_sreg(SReg(1), Value::Int(b as i64));
        let c = code(vec![
            MInst::LoadV {
                dst: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 0),
                align: MemAlign::Aligned,
            },
            MInst::LoadV {
                dst: VReg(1),
                addr: AddrMode::base_disp(SReg(1), 0),
                align: MemAlign::Aligned,
            },
            MInst::VBin {
                op: BinOp::Add,
                ty: ScalarTy::F32,
                dst: VReg(2),
                a: VReg(0),
                b: VReg(1),
            },
            MInst::StoreV {
                src: VReg(2),
                addr: AddrMode::base_disp(SReg(0), 0),
                align: MemAlign::Aligned,
            },
        ]);
        m.run(&c).unwrap();
        for k in 0..4 {
            assert_eq!(
                m.mem.read(ScalarTy::F32, a + 4 * k),
                Value::Float(10.0 + k as f64)
            );
        }
    }

    #[test]
    fn aligned_access_traps_on_misaligned_address() {
        let t = sse();
        let mut m = Machine::new(&t, 4096);
        let a = m.mem.alloc(64, 16);
        m.set_sreg(SReg(0), Value::Int(a as i64 + 4));
        let c = code(vec![MInst::LoadV {
            dst: VReg(0),
            addr: AddrMode::base_disp(SReg(0), 0),
            align: MemAlign::Aligned,
        }]);
        let err = m.run(&c).unwrap_err();
        assert!(err.0.contains("misaligned"), "{err}");
    }

    #[test]
    fn realignment_via_perm_matches_unaligned_load() {
        // AltiVec-style: floor loads + permctrl + perm == the unaligned window.
        let t = altivec();
        let mut m = Machine::new(&t, 4096);
        let a = m.mem.alloc(64, 16);
        for k in 0..16 {
            m.mem.write(ScalarTy::I32, a + 4 * k, Value::Int(k as i64));
        }
        let addr = a + 8; // misaligned by 8
        m.set_sreg(SReg(0), Value::Int(addr as i64));
        let c = code(vec![
            MInst::LoadVFloor {
                dst: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 0),
            },
            MInst::LoadVFloor {
                dst: VReg(1),
                addr: AddrMode::base_disp(SReg(0), 16),
            },
            MInst::VPermCtrl {
                dst: VReg(2),
                addr: AddrMode::base_disp(SReg(0), 0),
            },
            MInst::VPerm {
                dst: VReg(3),
                a: VReg(0),
                b: VReg(1),
                ctrl: VReg(2),
            },
            MInst::StoreV {
                src: VReg(3),
                addr: AddrMode::base_disp(SReg(1), 0),
                align: MemAlign::Aligned,
            },
        ]);
        let out = m.mem.alloc(16, 16);
        m.set_sreg(SReg(1), Value::Int(out as i64));
        m.run(&c).unwrap();
        for k in 0..4u64 {
            assert_eq!(
                m.mem.read(ScalarTy::I32, out + 4 * k),
                Value::Int(2 + k as i64)
            );
        }
    }

    #[test]
    fn widen_mul_and_pack_roundtrip() {
        let t = sse();
        let mut m = Machine::new(&t, 4096);
        // v0 = [1..8] i16, v1 = all 3.
        let a = m.mem.alloc(16, 16);
        for k in 0..8 {
            m.mem
                .write(ScalarTy::I16, a + 2 * k, Value::Int(k as i64 + 1));
        }
        m.set_sreg(SReg(0), Value::Int(a as i64));
        m.set_sreg(SReg(1), Value::Int(3));
        let out = m.mem.alloc(32, 16);
        m.set_sreg(SReg(2), Value::Int(out as i64));
        let c = code(vec![
            MInst::LoadV {
                dst: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 0),
                align: MemAlign::Aligned,
            },
            MInst::Splat {
                ty: ScalarTy::I16,
                dst: VReg(1),
                src: SReg(1),
            },
            MInst::VWidenMul {
                half: Half::Lo,
                ty: ScalarTy::I16,
                dst: VReg(2),
                a: VReg(0),
                b: VReg(1),
            },
            MInst::VWidenMul {
                half: Half::Hi,
                ty: ScalarTy::I16,
                dst: VReg(3),
                a: VReg(0),
                b: VReg(1),
            },
            MInst::VPack {
                ty: ScalarTy::I32,
                dst: VReg(4),
                a: VReg(2),
                b: VReg(3),
            },
            MInst::StoreV {
                src: VReg(4),
                addr: AddrMode::base_disp(SReg(2), 0),
                align: MemAlign::Aligned,
            },
        ]);
        m.run(&c).unwrap();
        for k in 0..8 {
            assert_eq!(
                m.mem.read(ScalarTy::I16, out + 2 * k),
                Value::Int(3 * (k as i64 + 1))
            );
        }
    }

    #[test]
    fn dot_product_accumulates_pairs() {
        let t = sse();
        let mut m = Machine::new(&t, 4096);
        let a = m.mem.alloc(16, 16);
        for k in 0..8 {
            m.mem.write(ScalarTy::I16, a + 2 * k, Value::Int(2));
        }
        m.set_sreg(SReg(0), Value::Int(a as i64));
        let c = code(vec![
            MInst::LoadV {
                dst: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 0),
                align: MemAlign::Aligned,
            },
            MInst::MovImmI {
                dst: SReg(1),
                imm: 0,
            },
            MInst::Splat {
                ty: ScalarTy::I32,
                dst: VReg(1),
                src: SReg(1),
            },
            MInst::VDotAcc {
                ty: ScalarTy::I16,
                dst: VReg(2),
                a: VReg(0),
                b: VReg(0),
                acc: VReg(1),
            },
            MInst::VReduce {
                op: ReduceOp::Plus,
                ty: ScalarTy::I32,
                dst: SReg(2),
                src: VReg(2),
            },
        ]);
        m.run(&c).unwrap();
        // 8 lanes of 2*2 = 32.
        assert_eq!(m.sreg(SReg(2)), Value::Int(32));
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let t = sse();
        let mut m = Machine::new(&t, 1024);
        m.fuel = 100;
        let c = code(vec![MInst::Label(Label(0)), MInst::Jump(Label(0))]);
        let err = m.run(&c).unwrap_err();
        assert!(err.0.contains("fuel"));
    }

    #[test]
    fn oob_access_traps() {
        let t = sse();
        let mut m = Machine::new(&t, 1024);
        m.set_sreg(SReg(0), Value::Int(0));
        let c = code(vec![MInst::LoadS {
            ty: ScalarTy::I32,
            dst: SReg(1),
            addr: AddrMode::base_disp(SReg(0), 0),
        }]);
        assert!(m.run(&c).is_err());
    }

    #[test]
    fn extract_stride_deinterleaves() {
        let t = sse();
        let mut m = Machine::new(&t, 4096);
        let a = m.mem.alloc(32, 16);
        for k in 0..8 {
            m.mem.write(ScalarTy::I32, a + 4 * k, Value::Int(k as i64));
        }
        m.set_sreg(SReg(0), Value::Int(a as i64));
        let c = code(vec![
            MInst::LoadV {
                dst: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 0),
                align: MemAlign::Aligned,
            },
            MInst::LoadV {
                dst: VReg(1),
                addr: AddrMode::base_disp(SReg(0), 16),
                align: MemAlign::Aligned,
            },
            MInst::VExtractStride {
                ty: ScalarTy::I32,
                stride: 2,
                offset: 1,
                dst: VReg(2),
                srcs: vec![VReg(0), VReg(1)],
            },
            MInst::VReduce {
                op: ReduceOp::Plus,
                ty: ScalarTy::I32,
                dst: SReg(1),
                src: VReg(2),
            },
        ]);
        m.run(&c).unwrap();
        // odd elements: 1+3+5+7 = 16
        assert_eq!(m.sreg(SReg(1)), Value::Int(16));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::isa::{AddrMode, MInst, SReg, ShiftSrc, VReg};
    use crate::target::{neon64, sse};
    use vapor_ir::ScalarTy;

    fn mcode(insts: Vec<MInst>) -> crate::isa::MCode {
        crate::isa::MCode {
            insts,
            n_sregs: 8,
            n_vregs: 8,
            note: String::new(),
        }
    }

    #[test]
    fn iota_and_lane_ops() {
        let t = sse();
        let mut m = Machine::new(&t, 2048);
        m.set_sreg(SReg(0), Value::Int(5));
        m.set_sreg(SReg(1), Value::Int(3));
        m.set_sreg(SReg(2), Value::Int(-9));
        let c = mcode(vec![
            MInst::Iota {
                ty: ScalarTy::I32,
                dst: VReg(0),
                start: SReg(0),
                inc: SReg(1),
            },
            MInst::SetLane {
                ty: ScalarTy::I32,
                dst: VReg(0),
                lane: 2,
                src: SReg(2),
            },
            MInst::GetLane {
                ty: ScalarTy::I32,
                dst: SReg(3),
                src: VReg(0),
                lane: 2,
            },
            MInst::GetLane {
                ty: ScalarTy::I32,
                dst: SReg(4),
                src: VReg(0),
                lane: 3,
            },
        ]);
        m.run(&c).unwrap();
        assert_eq!(m.sreg(SReg(3)), Value::Int(-9));
        assert_eq!(m.sreg(SReg(4)), Value::Int(5 + 3 * 3));
    }

    #[test]
    fn per_lane_shift_matches_scalar_semantics() {
        let t = neon64();
        let mut m = Machine::new(&t, 2048);
        m.set_sreg(SReg(0), Value::Int(-64));
        m.set_sreg(SReg(1), Value::Int(1));
        m.set_sreg(SReg(2), Value::Int(3));
        let c = mcode(vec![
            MInst::Splat {
                ty: ScalarTy::I16,
                dst: VReg(0),
                src: SReg(0),
            },
            MInst::Iota {
                ty: ScalarTy::I16,
                dst: VReg(1),
                start: SReg(1),
                inc: SReg(1),
            },
            MInst::VShift {
                left: false,
                ty: ScalarTy::I16,
                dst: VReg(2),
                a: VReg(0),
                amt: ShiftSrc::PerLane(VReg(1)),
            },
            MInst::GetLane {
                ty: ScalarTy::I16,
                dst: SReg(3),
                src: VReg(2),
                lane: 0,
            },
            MInst::GetLane {
                ty: ScalarTy::I16,
                dst: SReg(4),
                src: VReg(2),
                lane: 2,
            },
        ]);
        m.run(&c).unwrap();
        assert_eq!(m.sreg(SReg(3)), Value::Int(-64 >> 1));
        assert_eq!(m.sreg(SReg(4)), Value::Int(-64 >> 3));
    }

    #[test]
    fn helper_semantics_match_native_instructions() {
        // VHelper(widen_mult) must compute exactly what VWidenMul does.
        let t = neon64();
        let mut m = Machine::new(&t, 2048);
        let a = m.mem.alloc(8, 8);
        for k in 0..8 {
            m.mem.write(ScalarTy::U8, a + k, Value::Int(k as i64 + 250)); // wraps u8
        }
        m.set_sreg(SReg(0), Value::Int(a as i64));
        let c = mcode(vec![
            MInst::LoadV {
                dst: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 0),
                align: MemAlign::Aligned,
            },
            MInst::VWidenMul {
                half: Half::Lo,
                ty: ScalarTy::U8,
                dst: VReg(1),
                a: VReg(0),
                b: VReg(0),
            },
            MInst::VHelper {
                op: HelperOp::WidenMult(Half::Lo),
                ty: ScalarTy::U8,
                dst: VReg(2),
                a: VReg(0),
                b: Some(VReg(0)),
            },
            MInst::GetLane {
                ty: ScalarTy::U16,
                dst: SReg(1),
                src: VReg(1),
                lane: 1,
            },
            MInst::GetLane {
                ty: ScalarTy::U16,
                dst: SReg(2),
                src: VReg(2),
                lane: 1,
            },
        ]);
        m.run(&c).unwrap();
        assert_eq!(m.sreg(SReg(1)), m.sreg(SReg(2)));
        // 251*251 mod 2^16
        assert_eq!(m.sreg(SReg(1)), Value::Int((251 * 251) & 0xffff));
    }

    #[test]
    fn decoded_dispatch_matches_baseline() {
        // Same code, both dispatch loops: identical register/memory
        // state and identical cycle count (insts differ by the stripped
        // labels only).
        let t = sse();
        let c = mcode(vec![
            MInst::MovImmI {
                dst: SReg(0),
                imm: 0,
            },
            MInst::MovImmI {
                dst: SReg(2),
                imm: 0,
            },
            MInst::Label(crate::isa::Label(0)),
            MInst::SBin {
                op: vapor_ir::BinOp::Add,
                ty: ScalarTy::I64,
                dst: SReg(2),
                a: SReg(2),
                b: SReg(0),
            },
            MInst::SBinImm {
                op: vapor_ir::BinOp::Add,
                ty: ScalarTy::I64,
                dst: SReg(0),
                a: SReg(0),
                imm: 1,
            },
            MInst::BranchImm {
                cond: crate::isa::Cond::Lt,
                a: SReg(0),
                imm: 100,
                target: crate::isa::Label(0),
            },
        ]);
        let mut base = Machine::new(&t, 1024);
        let s1 = base.run(&c).unwrap();
        let prog = crate::decode::DecodedProgram::decode(&c, &t).unwrap();
        let mut dec = Machine::new(&t, 1024);
        let s2 = dec.run_decoded(&prog).unwrap();
        assert_eq!(base.sreg(SReg(2)), dec.sreg(SReg(2)));
        assert_eq!(base.sreg(SReg(2)), Value::Int(4950));
        assert_eq!(s1.cycles, s2.cycles);
        // The baseline counts the label marker once per iteration.
        assert_eq!(s1.insts, s2.insts + 100);
    }

    #[test]
    fn decoded_dispatch_rejects_wrong_vector_width() {
        let t = sse();
        let c = mcode(vec![MInst::MovImmI {
            dst: SReg(0),
            imm: 1,
        }]);
        let prog = crate::decode::DecodedProgram::decode(&c, &t).unwrap();
        let wide = crate::target::avx();
        let mut m = Machine::new(&wide, 1024);
        let err = m.run_decoded(&prog).unwrap_err();
        assert!(err.0.contains("decoded for VS="), "{err}");
    }

    #[test]
    fn decoded_dispatch_honors_fuel() {
        let t = sse();
        let c = mcode(vec![
            MInst::Label(crate::isa::Label(0)),
            MInst::Jump(crate::isa::Label(0)),
        ]);
        let prog = crate::decode::DecodedProgram::decode(&c, &t).unwrap();
        let mut m = Machine::new(&t, 1024);
        m.fuel = 50;
        let err = m.run_decoded(&prog).unwrap_err();
        assert!(err.0.contains("fuel"), "{err}");
    }

    #[test]
    fn fused_steps_never_execute_past_the_fuel_budget() {
        // A superinstruction whose constituents would cross the fuel
        // budget traps at the group boundary: none of its side effects
        // (here the store) may land.
        let t = sse();
        let c = mcode(vec![
            MInst::LoadV {
                dst: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 0),
                align: MemAlign::Unaligned,
            },
            MInst::VBin {
                op: vapor_ir::BinOp::Add,
                ty: ScalarTy::I32,
                dst: VReg(1),
                a: VReg(0),
                b: VReg(0),
            },
            MInst::StoreV {
                src: VReg(1),
                addr: AddrMode::base_disp(SReg(0), 0),
                align: MemAlign::Unaligned,
            },
        ]);
        let prog = crate::decode::DecodedProgram::decode(&c, &t).unwrap();
        assert_eq!(prog.n_steps(), 1, "the triple must fuse");
        let mut m = Machine::new(&t, 1024);
        let a = m.mem.alloc(16, 16);
        for k in 0..4 {
            m.mem.write(ScalarTy::I32, a + 4 * k, Value::Int(5));
        }
        m.set_sreg(SReg(0), Value::Int(a as i64));
        m.fuel = 2; // group needs 3
        let err = m.run_decoded(&prog).unwrap_err();
        assert!(err.0.contains("fuel exhausted after 0"), "{err}");
        for k in 0..4 {
            assert_eq!(
                m.mem.read(ScalarTy::I32, a + 4 * k),
                Value::Int(5),
                "store must not have landed"
            );
        }
    }

    #[test]
    fn vla_stripmine_masks_the_tail() {
        // Sum 10 i32s on a 256-bit (8-lane) VLA machine with a
        // setvl-stripmined loop: one full iteration plus a 2-lane
        // predicated tail, no scalar epilogue.
        let t = crate::target::sve().at_vl(256);
        let mut m = Machine::new(&t, 4096);
        let n = 10u64;
        let a = m.mem.alloc(4 * n as usize, 32);
        for k in 0..n {
            m.mem.write(ScalarTy::I32, a + 4 * k, Value::Int(k as i64));
        }
        m.set_sreg(SReg(0), Value::Int(a as i64));
        m.set_sreg(SReg(1), Value::Int(n as i64)); // n
        m.set_sreg(SReg(2), Value::Int(0)); // i
        m.set_sreg(SReg(3), Value::Int(0)); // zero for the accumulator splat
        let c = mcode(vec![
            MInst::Splat {
                ty: ScalarTy::I32,
                dst: VReg(1),
                src: SReg(3),
            },
            MInst::Label(crate::isa::Label(0)),
            // rem = n - i; vl = setvl(rem)
            MInst::SBin {
                op: vapor_ir::BinOp::Sub,
                ty: ScalarTy::I64,
                dst: SReg(4),
                a: SReg(1),
                b: SReg(2),
            },
            MInst::SetVl {
                ty: ScalarTy::I32,
                dst: SReg(5),
                avl: SReg(4),
            },
            MInst::LoadVl {
                ty: ScalarTy::I32,
                dst: VReg(0),
                addr: AddrMode::fused(SReg(0), SReg(2), 4, 0),
            },
            MInst::VBinVl {
                op: vapor_ir::BinOp::Add,
                ty: ScalarTy::I32,
                dst: VReg(1),
                a: VReg(1),
                b: VReg(0),
            },
            MInst::SBin {
                op: vapor_ir::BinOp::Add,
                ty: ScalarTy::I64,
                dst: SReg(2),
                a: SReg(2),
                b: SReg(5),
            },
            MInst::Branch {
                cond: crate::isa::Cond::Lt,
                a: SReg(2),
                b: SReg(1),
                target: crate::isa::Label(0),
            },
            MInst::VReduce {
                op: ReduceOp::Plus,
                ty: ScalarTy::I32,
                dst: SReg(6),
                src: VReg(1),
            },
        ]);
        m.run(&c).unwrap();
        assert_eq!(m.sreg(SReg(6)), Value::Int(45));
        // Two stripmine iterations: the second saw vl = 2.
        assert_eq!(m.sreg(SReg(5)), Value::Int(2));
    }

    #[test]
    fn predicated_fast_dispatch_matches_generic_baseline() {
        // The VLA stripmine loop through both dispatch loops: the
        // decoded path takes DStep::VBinVlFast, the baseline the generic
        // merge-predicated interpreter — results and cycles must agree.
        let t = crate::target::sve().at_vl(256);
        let build = || {
            let mut m = Machine::new(&t, 4096);
            let n = 10u64;
            let a = m.mem.alloc(4 * n as usize, 32);
            for k in 0..n {
                m.mem.write(ScalarTy::I32, a + 4 * k, Value::Int(k as i64));
            }
            m.set_sreg(SReg(0), Value::Int(a as i64));
            m.set_sreg(SReg(1), Value::Int(n as i64));
            m.set_sreg(SReg(2), Value::Int(0));
            m.set_sreg(SReg(3), Value::Int(0));
            m
        };
        let c = mcode(vec![
            MInst::Splat {
                ty: ScalarTy::I32,
                dst: VReg(1),
                src: SReg(3),
            },
            MInst::Label(crate::isa::Label(0)),
            MInst::SBin {
                op: vapor_ir::BinOp::Sub,
                ty: ScalarTy::I64,
                dst: SReg(4),
                a: SReg(1),
                b: SReg(2),
            },
            MInst::SetVl {
                ty: ScalarTy::I32,
                dst: SReg(5),
                avl: SReg(4),
            },
            MInst::LoadVl {
                ty: ScalarTy::I32,
                dst: VReg(0),
                addr: AddrMode::fused(SReg(0), SReg(2), 4, 0),
            },
            MInst::VBinVl {
                op: vapor_ir::BinOp::Add,
                ty: ScalarTy::I32,
                dst: VReg(1),
                a: VReg(1),
                b: VReg(0),
            },
            MInst::VUnVl {
                op: vapor_ir::UnOp::Abs,
                ty: ScalarTy::I32,
                dst: VReg(1),
                a: VReg(1),
            },
            MInst::SBin {
                op: vapor_ir::BinOp::Add,
                ty: ScalarTy::I64,
                dst: SReg(2),
                a: SReg(2),
                b: SReg(5),
            },
            MInst::Branch {
                cond: crate::isa::Cond::Lt,
                a: SReg(2),
                b: SReg(1),
                target: crate::isa::Label(0),
            },
            MInst::VReduce {
                op: ReduceOp::Plus,
                ty: ScalarTy::I32,
                dst: SReg(6),
                src: VReg(1),
            },
        ]);
        let prog = crate::decode::DecodedProgram::decode(&c, &t).unwrap();
        assert!(
            prog.steps()
                .iter()
                .any(|d| matches!(d.step, crate::decode::DStep::VBinVlFast { .. })),
            "VBinVl must take the fast path"
        );
        assert!(
            prog.steps()
                .iter()
                .any(|d| matches!(d.step, crate::decode::DStep::VUnVlFast { .. })),
            "VUnVl must take the fast path"
        );
        let mut base = build();
        let s1 = base.run(&c).unwrap();
        let mut dec = build();
        let s2 = dec.run_decoded(&prog).unwrap();
        assert_eq!(base.sreg(SReg(6)), dec.sreg(SReg(6)));
        assert_eq!(base.sreg(SReg(6)), Value::Int(45));
        assert_eq!(s1.cycles, s2.cycles);
        // Merging predication preserved: the tail lanes of the
        // accumulator match between the two dispatch loops.
        assert_eq!(base.vbytes(VReg(1)).unwrap(), dec.vbytes(VReg(1)).unwrap());
    }

    #[test]
    fn masked_store_never_writes_past_vl() {
        let t = crate::target::sve().at_vl(512); // 64-byte registers
        let mut m = Machine::new(&t, 4096);
        let out = m.mem.alloc(64, 64);
        for k in 0..16 {
            m.mem.write(ScalarTy::I32, out + 4 * k, Value::Int(-1));
        }
        m.set_sreg(SReg(0), Value::Int(out as i64));
        m.set_sreg(SReg(1), Value::Int(3)); // avl = 3 of 16 lanes
        m.set_sreg(SReg(2), Value::Int(7));
        let c = mcode(vec![
            MInst::SetVl {
                ty: ScalarTy::I32,
                dst: SReg(3),
                avl: SReg(1),
            },
            MInst::Splat {
                ty: ScalarTy::I32,
                dst: VReg(0),
                src: SReg(2),
            },
            MInst::StoreVl {
                ty: ScalarTy::I32,
                src: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 0),
            },
        ]);
        m.run(&c).unwrap();
        for k in 0..16u64 {
            let want = if k < 3 { 7 } else { -1 };
            assert_eq!(m.mem.read(ScalarTy::I32, out + 4 * k), Value::Int(want));
        }
    }

    #[test]
    fn masked_load_zeroes_inactive_lanes_and_stays_in_bounds() {
        let t = crate::target::sve().at_vl(2048); // 256-byte registers
        let mut m = Machine::new(&t, 4096);
        // Place 4 floats at the very end of memory minus the padding the
        // allocator guarantees: a full-width load would still be fine
        // here, but the masked load must only touch 16 bytes.
        let a = m.mem.alloc(16, 32);
        for k in 0..4 {
            m.mem
                .write(ScalarTy::F32, a + 4 * k, Value::Float(1.5 * k as f64));
        }
        m.set_sreg(SReg(0), Value::Int(a as i64 + 4)); // element-aligned only
        m.set_sreg(SReg(1), Value::Int(3));
        let c = mcode(vec![
            MInst::SetVl {
                ty: ScalarTy::F32,
                dst: SReg(2),
                avl: SReg(1),
            },
            MInst::LoadVl {
                ty: ScalarTy::F32,
                dst: VReg(0),
                addr: AddrMode::base_disp(SReg(0), 0),
            },
            MInst::GetLane {
                ty: ScalarTy::F32,
                dst: SReg(3),
                src: VReg(0),
                lane: 2,
            },
            MInst::GetLane {
                ty: ScalarTy::F32,
                dst: SReg(4),
                src: VReg(0),
                lane: 3,
            },
        ]);
        m.run(&c).unwrap();
        assert_eq!(m.sreg(SReg(3)), Value::Float(4.5));
        // Lane 3 is inactive (vl = 3): zero-filled, not read from memory.
        assert_eq!(m.sreg(SReg(4)), Value::Float(0.0));
    }

    #[test]
    fn misaligned_allocation_is_really_misaligned() {
        let t = sse();
        let mut m = Machine::new(&t, 2048);
        let base = m.mem.alloc_with_misalignment(64, 32, 4);
        assert_eq!(base % 32, 4);
        let aligned = m.mem.alloc(64, 32);
        assert_eq!(aligned % 32, 0);
    }
}

#[cfg(test)]
mod register_file_tests {
    //! The target-sized register file: representation boundaries,
    //! guard-zone arithmetic at those boundaries, and equivalence of the
    //! sized and max-width (seed-style) representations.

    use super::*;
    use crate::isa::{AddrMode, Label, MInst, SReg, VReg};
    use crate::target::{avx, neon64, sse};

    #[test]
    fn representation_switches_at_the_inline_boundary() {
        // 16 and 32 bytes (SSE/AltiVec and AVX, and VLA at 128/256
        // bits) stay inline; 33 is the first heap width; 256 is the
        // VLA maximum.
        for w in [1, 8, 16, INLINE_VS] {
            let v = VBytes::zeroed(w);
            assert!(matches!(v, VBytes::Inline(_)), "width {w}");
            assert_eq!(v.capacity(), INLINE_VS);
        }
        for w in [INLINE_VS + 1, 64, MAX_VS] {
            let v = VBytes::zeroed(w);
            assert!(matches!(v, VBytes::Heap(_)), "width {w}");
            assert_eq!(v.capacity(), MAX_VS);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_VS")]
    fn oversized_register_width_panics() {
        let _ = VBytes::zeroed(MAX_VS + 1);
    }

    #[test]
    fn equality_is_zero_extended_across_representations() {
        let mut narrow = VBytes::zeroed(16);
        let mut wide = VBytes::zeroed(256);
        assert_eq!(narrow, wide, "all-zero registers are equal");
        narrow[3] = 7;
        assert_ne!(narrow, wide);
        wide[3] = 7;
        assert_eq!(narrow, wide, "same lanes, different capacity");
        wide[INLINE_VS + 5] = 1;
        assert_ne!(narrow, wide, "nonzero tail breaks equality");
    }

    #[test]
    fn memory_padding_is_target_sized() {
        // Guard padding at the representation boundary widths.
        assert_eq!(Memory::pad_for(16), 32);
        assert_eq!(Memory::pad_for(32), 64);
        assert_eq!(Memory::pad_for(33), 66);
        assert_eq!(Memory::pad_for(256), 512);
        // Sub-vector machines keep a 16-byte floor.
        assert_eq!(Memory::pad_for(1), 16);
        assert_eq!(Memory::pad_for(8), 16);
        // A fixed-width machine's image no longer pays 2048-bit pads.
        let t = sse();
        let m = Machine::new(&t, 0);
        assert_eq!(m.mem.pad(), 32);
    }

    #[test]
    fn guard_padding_keeps_floor_realignment_loads_in_bounds() {
        // AltiVec-style realignment issues a floor load at `a + VS` for
        // an element near the end of an array: with target-sized (not
        // MAX_VS) padding this must still be in bounds.
        let t = crate::target::altivec();
        let vs = t.vs;
        let mut m = Machine::new(&t, 4096);
        let a = m.mem.alloc(64, 16);
        // Address of the *last* element, misaligned window.
        m.set_sreg(SReg(0), Value::Int(a as i64 + 60));
        let c = MCode {
            insts: vec![
                MInst::LoadVFloor {
                    dst: VReg(0),
                    addr: AddrMode::base_disp(SReg(0), 0),
                },
                MInst::LoadVFloor {
                    dst: VReg(1),
                    addr: AddrMode::base_disp(SReg(0), vs as i64),
                },
            ],
            n_sregs: 1,
            n_vregs: 2,
            note: String::new(),
        };
        m.run(&c)
            .expect("floor loads near the array end must stay in bounds");
    }

    #[test]
    fn misaligned_boundary_allocations_respect_guards() {
        // Misaligned allocation at each boundary width: the deliberate
        // misalignment must never eat into the guard zone.
        for (vs, mis) in [(16usize, 15usize), (32, 31), (33, 1), (256, 129)] {
            let mut mem = Memory::for_width(8192, vs);
            let base = mem.alloc_with_misalignment(64, 32, mis) as usize;
            assert_eq!(base % 32, mis % 32, "vs={vs}");
            assert!(base >= GUARD + mem.pad(), "vs={vs}: base {base} in guard");
        }
    }

    #[test]
    fn wide_and_sized_register_files_agree() {
        // The same program on the same target, once with target-sized
        // registers and once with the seed-style max-width file:
        // identical scalar results, identical cycles.
        let run_one = |wide: bool, t: &TargetDesc| {
            let mut m = Machine::new(t, 4096);
            m.set_wide_registers(wide);
            let a = m.mem.alloc(64, 32);
            for k in 0..8 {
                m.mem
                    .write(ScalarTy::I32, a + 4 * k, Value::Int(k as i64 + 1));
            }
            m.set_sreg(SReg(0), Value::Int(a as i64));
            let c = MCode {
                insts: vec![
                    MInst::Label(Label(0)),
                    MInst::LoadV {
                        dst: VReg(0),
                        addr: AddrMode::base_disp(SReg(0), 0),
                        align: crate::isa::MemAlign::Unaligned,
                    },
                    MInst::VBin {
                        op: BinOp::Mul,
                        ty: ScalarTy::I32,
                        dst: VReg(1),
                        a: VReg(0),
                        b: VReg(0),
                    },
                    MInst::VReduce {
                        op: ReduceOp::Plus,
                        ty: ScalarTy::I32,
                        dst: SReg(1),
                        src: VReg(1),
                    },
                ],
                n_sregs: 2,
                n_vregs: 2,
                note: String::new(),
            };
            let stats = m.run(&c).unwrap();
            (m.sreg(SReg(1)), stats.cycles)
        };
        for t in [sse(), neon64(), avx()] {
            let (sized, c1) = run_one(false, &t);
            let (wide, c2) = run_one(true, &t);
            assert_eq!(sized, wide, "{}", t.name);
            assert_eq!(c1, c2, "{}", t.name);
        }
    }

    #[test]
    fn lane_bounds_are_representation_independent() {
        // An out-of-range SetLane/GetLane must trap identically under
        // the target-sized and the forced max-width register file — the
        // bound is the target's width, never the container's capacity.
        let t = sse(); // vs = 16: lane 4 of i32 is the first out of range
        for wide in [false, true] {
            let mut m = Machine::new(&t, 1024);
            m.set_wide_registers(wide);
            m.set_sreg(SReg(0), Value::Int(7));
            let ok = MCode {
                insts: vec![
                    MInst::Splat {
                        ty: ScalarTy::I32,
                        dst: VReg(0),
                        src: SReg(0),
                    },
                    MInst::SetLane {
                        ty: ScalarTy::I32,
                        dst: VReg(0),
                        lane: 3,
                        src: SReg(0),
                    },
                ],
                n_sregs: 1,
                n_vregs: 1,
                note: String::new(),
            };
            m.run(&ok).unwrap();
            for lane in [4u8, 9] {
                let bad = MCode {
                    insts: vec![MInst::GetLane {
                        ty: ScalarTy::I32,
                        dst: SReg(1),
                        src: VReg(0),
                        lane,
                    }],
                    n_sregs: 2,
                    n_vregs: 1,
                    note: String::new(),
                };
                let err = m.run(&bad).unwrap_err();
                assert!(err.0.contains("out of range"), "wide={wide}: {err}");
            }
        }
    }

    #[test]
    fn fixed_width_register_files_stay_inline() {
        // The whole point: no fixed-width family allocates MAX_VS-sized
        // registers, and a register move costs size_of::<VBytes>()
        // (inline payload), not 2048 bits.
        assert!(std::mem::size_of::<VBytes>() <= INLINE_VS + 8);
        assert!(
            MAX_VS / std::mem::size_of::<VBytes>() >= 4,
            "register-move bytes must shrink >= 4x"
        );
        for t in [sse(), neon64(), avx()] {
            let mut m = Machine::new(&t, 2048);
            m.set_sreg(SReg(0), Value::Int(3));
            let c = MCode {
                insts: vec![MInst::Splat {
                    ty: ScalarTy::I32,
                    dst: VReg(0),
                    src: SReg(0),
                }],
                n_sregs: 1,
                n_vregs: 1,
                note: String::new(),
            };
            m.run(&c).unwrap();
            assert!(
                matches!(m.vregs[0], VBytes::Inline(_)),
                "{}: fixed-width registers must stay inline",
                t.name
            );
        }
        // Wide runtime-VL machines are the only payers for heap lanes.
        let t = crate::target::sve().at_vl(2048);
        let mut m = Machine::new(&t, 4096);
        m.set_sreg(SReg(0), Value::Int(3));
        let c = MCode {
            insts: vec![MInst::Splat {
                ty: ScalarTy::I32,
                dst: VReg(0),
                src: SReg(0),
            }],
            n_sregs: 1,
            n_vregs: 1,
            note: String::new(),
        };
        m.run(&c).unwrap();
        assert!(matches!(m.vregs[0], VBytes::Heap(_)));
    }

    #[test]
    fn narrow_vla_specializations_use_inline_registers() {
        // VLA at 128/256 bits fits inline; 512+ goes to the heap.
        let fam = crate::target::sve();
        for (bits, inline) in [(128, true), (256, true), (512, false), (2048, false)] {
            let t = fam.at_vl(bits);
            let m = Machine::new(&t, 1024);
            let z = m.vzero();
            assert_eq!(matches!(z, VBytes::Inline(_)), inline, "VL={bits}");
        }
    }
}

//! The virtual machine instruction set ("machine code" of the simulated
//! targets).
//!
//! The online compiler lowers bytecode into this ISA; the VM executes it
//! with a per-target cycle model. The ISA is deliberately close to the
//! common shape of SSE/AltiVec/NEON/AVX: two register files, explicit
//! aligned/unaligned memory ops, permute-based realignment, and a small
//! set of widening/packing/conversion operations.

use std::fmt;

use vapor_ir::{BinOp, ScalarTy, UnOp};

/// Scalar register (i64 or f64 payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SReg(pub u32);

/// Vector register (up to 32 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

/// Branch label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

impl fmt::Display for SReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Memory addressing mode.
///
/// `Fused` is the rich `[base + idx*scale + disp]` form an optimizing
/// code generator uses; a weaker generator computes the address into a
/// register first and uses `[base + disp]` only — this difference is one
/// of the paper's observed native-vs-split code-generation deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddrMode {
    /// Base address register.
    pub base: SReg,
    /// Optional scaled index register.
    pub idx: Option<SReg>,
    /// Scale applied to the index (bytes).
    pub scale: u8,
    /// Constant displacement (bytes).
    pub disp: i64,
}

impl AddrMode {
    /// `[base + disp]`.
    pub fn base_disp(base: SReg, disp: i64) -> AddrMode {
        AddrMode {
            base,
            idx: None,
            scale: 1,
            disp,
        }
    }

    /// `[base + idx*scale + disp]`.
    pub fn fused(base: SReg, idx: SReg, scale: u8, disp: i64) -> AddrMode {
        AddrMode {
            base,
            idx: Some(idx),
            scale,
            disp,
        }
    }
}

/// Branch condition on two scalar integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// `a < b` (signed).
    Lt,
    /// `a >= b` (signed).
    Ge,
    /// `a == b`.
    Eq,
    /// `a != b`.
    Ne,
}

/// Alignment contract of a vector memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAlign {
    /// Must be VS-aligned; the VM traps otherwise (a miscompile).
    Aligned,
    /// May be misaligned (`movdqu`-class; slower on most targets).
    Unaligned,
}

/// Which half of the input(s) a widening/interleave op consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Half {
    /// Low half.
    Lo,
    /// High half.
    Hi,
}

/// Direction of a lane-wise conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CvtDir {
    /// Integer to float (same lane width).
    IntToFloat,
    /// Float to integer (same lane width, saturating).
    FloatToInt,
}

/// Reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of lanes.
    Plus,
    /// Maximum lane.
    Max,
    /// Minimum lane.
    Min,
}

/// Shift amount source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShiftSrc {
    /// Immediate amount.
    Imm(u8),
    /// Scalar register amount (broadcast).
    Reg(SReg),
    /// Per-lane amounts in a vector register.
    PerLane(VReg),
}

/// Library-helper operations used when a target's backend lacks an idiom
/// (the paper's NEON `dissolve`/`dct` fallback). Executed correctly but
/// charged a call + per-lane software cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelperOp {
    /// Widening multiply of a half.
    WidenMult(Half),
    /// Lane-wise conversion.
    Cvt(CvtDir),
    /// Vector float division.
    FDiv,
    /// Vector square root.
    FSqrt,
    /// Pack/demote.
    Pack,
    /// Unpack/promote a half.
    Unpack(Half),
}

/// One machine instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum MInst {
    // ----- control -----
    /// Branch target marker (resolved at load time; free at run time).
    Label(Label),
    /// Unconditional jump.
    Jump(Label),
    /// Conditional branch comparing two scalar registers.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: SReg,
        /// Right operand.
        b: SReg,
        /// Target label.
        target: Label,
    },
    /// Conditional branch against an immediate.
    BranchImm {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: SReg,
        /// Immediate right operand.
        imm: i64,
        /// Target label.
        target: Label,
    },

    // ----- scalar -----
    /// Load integer immediate.
    MovImmI {
        /// Destination.
        dst: SReg,
        /// Value.
        imm: i64,
    },
    /// Load float immediate.
    MovImmF {
        /// Destination.
        dst: SReg,
        /// Value.
        imm: f64,
    },
    /// Register copy.
    MovS {
        /// Destination.
        dst: SReg,
        /// Source.
        src: SReg,
    },
    /// Scalar binary ALU op at type `ty`.
    SBin {
        /// Operator.
        op: BinOp,
        /// Operation type.
        ty: ScalarTy,
        /// Destination.
        dst: SReg,
        /// Left operand.
        a: SReg,
        /// Right operand.
        b: SReg,
    },
    /// Scalar binary ALU op with immediate.
    SBinImm {
        /// Operator.
        op: BinOp,
        /// Operation type.
        ty: ScalarTy,
        /// Destination.
        dst: SReg,
        /// Left operand.
        a: SReg,
        /// Immediate.
        imm: i64,
    },
    /// Scalar unary op.
    SUn {
        /// Operator.
        op: UnOp,
        /// Operation type.
        ty: ScalarTy,
        /// Destination.
        dst: SReg,
        /// Operand.
        a: SReg,
    },
    /// Scalar conversion.
    SCvt {
        /// Source type.
        from: ScalarTy,
        /// Destination type.
        to: ScalarTy,
        /// Destination register.
        dst: SReg,
        /// Operand.
        a: SReg,
    },
    /// Scalar float op routed through an x87-style FPU stack — the Mono
    /// x86 artifact of §V-A; same semantics as [`MInst::SBin`], higher
    /// cost.
    FpuBin {
        /// Operator.
        op: BinOp,
        /// Operation type (float).
        ty: ScalarTy,
        /// Destination.
        dst: SReg,
        /// Left operand.
        a: SReg,
        /// Right operand.
        b: SReg,
    },
    /// Scalar load.
    LoadS {
        /// Element type.
        ty: ScalarTy,
        /// Destination.
        dst: SReg,
        /// Address.
        addr: AddrMode,
    },
    /// Scalar store.
    StoreS {
        /// Element type.
        ty: ScalarTy,
        /// Source.
        src: SReg,
        /// Address.
        addr: AddrMode,
    },

    // ----- vector memory -----
    /// Vector load.
    LoadV {
        /// Destination.
        dst: VReg,
        /// Address.
        addr: AddrMode,
        /// Alignment contract.
        align: MemAlign,
    },
    /// Floor-aligned vector load (`lvx` semantics: low address bits are
    /// ignored). Never traps on misalignment.
    LoadVFloor {
        /// Destination.
        dst: VReg,
        /// Address (rounded down to VS).
        addr: AddrMode,
    },
    /// Vector store.
    StoreV {
        /// Source.
        src: VReg,
        /// Address.
        addr: AddrMode,
        /// Alignment contract.
        align: MemAlign,
    },

    // ----- vector compute -----
    /// Broadcast a scalar to all lanes.
    Splat {
        /// Element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// Source scalar.
        src: SReg,
    },
    /// Lane `k` gets `start + k*inc` (for `init_affine`).
    Iota {
        /// Element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// Start value.
        start: SReg,
        /// Increment.
        inc: SReg,
    },
    /// Insert a scalar into one lane.
    SetLane {
        /// Element type.
        ty: ScalarTy,
        /// Destination (modified in place).
        dst: VReg,
        /// Lane index.
        lane: u8,
        /// Source scalar.
        src: SReg,
    },
    /// Extract one lane to a scalar.
    GetLane {
        /// Element type.
        ty: ScalarTy,
        /// Destination scalar.
        dst: SReg,
        /// Source vector.
        src: VReg,
        /// Lane index.
        lane: u8,
    },
    /// Elementwise binary op.
    VBin {
        /// Operator.
        op: BinOp,
        /// Element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// Elementwise unary op.
    VUn {
        /// Operator.
        op: UnOp,
        /// Element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// Operand.
        a: VReg,
    },
    /// Vector shift.
    VShift {
        /// Left (`true`) or right shift.
        left: bool,
        /// Element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// Operand.
        a: VReg,
        /// Amount.
        amt: ShiftSrc,
    },
    /// Widening multiply of one half of the inputs.
    VWidenMul {
        /// Which half.
        half: Half,
        /// Source element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// Dot-product accumulate (`pmaddwd`-class): pairwise widening
    /// multiply, pairs summed, added to `acc`.
    VDotAcc {
        /// Source element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Accumulator (widened type).
        acc: VReg,
    },
    /// Demote two vectors into one (modular truncation).
    VPack {
        /// Source element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// Low source.
        a: VReg,
        /// High source.
        b: VReg,
    },
    /// Promote one half of a vector.
    VUnpack {
        /// Which half.
        half: Half,
        /// Source element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// Operand.
        a: VReg,
    },
    /// Lane-wise conversion.
    VCvt {
        /// Direction.
        dir: CvtDir,
        /// Source element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// Operand.
        a: VReg,
    },
    /// Interleave one half of two vectors.
    VInterleave {
        /// Which half.
        half: Half,
        /// Element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// First source.
        a: VReg,
        /// Second source.
        b: VReg,
    },
    /// Strided lane extraction from concatenated sources (lowered from
    /// the `extract` idiom; costed as `stride` shuffles).
    VExtractStride {
        /// Element type.
        ty: ScalarTy,
        /// Stride.
        stride: u8,
        /// Phase offset.
        offset: u8,
        /// Destination.
        dst: VReg,
        /// `stride` sources.
        srcs: Vec<VReg>,
    },
    /// Build a realignment control from an address (`lvsr` role): the
    /// control captures `addr % VS`.
    VPermCtrl {
        /// Destination control register.
        dst: VReg,
        /// Address whose misalignment is captured.
        addr: AddrMode,
    },
    /// Byte-window extraction `concat(a,b)[ctrl .. ctrl+VS]` (`vperm`
    /// role; implements realignment).
    VPerm {
        /// Destination.
        dst: VReg,
        /// Low source.
        a: VReg,
        /// High source.
        b: VReg,
        /// Control from [`MInst::VPermCtrl`].
        ctrl: VReg,
    },
    /// Horizontal reduction to a scalar.
    VReduce {
        /// Reduction operator.
        op: ReduceOp,
        /// Element type.
        ty: ScalarTy,
        /// Destination scalar.
        dst: SReg,
        /// Source vector.
        src: VReg,
    },
    /// Vector register copy.
    MovV {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
    /// Reload a scalar from a spill slot (naive register allocation).
    SpillLd {
        /// Destination register.
        dst: SReg,
        /// Slot index.
        slot: u32,
    },
    /// Spill a scalar to a slot (naive register allocation).
    SpillSt {
        /// Source register.
        src: SReg,
        /// Slot index.
        slot: u32,
    },
    /// Library-helper call for an idiom the backend lacks.
    VHelper {
        /// Which operation.
        op: HelperOp,
        /// Source element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// First operand.
        a: VReg,
        /// Second operand (ops that need one).
        b: Option<VReg>,
    },

    // ----- vector-length-agnostic (SVE/RVV-class) -----
    /// Stripmine control (`vsetvli` / `whilelt` role): set the active
    /// vector length to `min(max(avl, 0), VLMAX)` elements of `ty`, where
    /// `VLMAX` is the lane count of `ty` in the *executing* machine's
    /// vector register — a quantity unknown until run time on a VLA
    /// target. The chosen `vl` (in elements) is written to `dst` and
    /// latched in the machine for subsequent `...Vl` instructions.
    SetVl {
        /// Element type the length is counted in.
        ty: ScalarTy,
        /// Destination: receives the chosen `vl` in elements.
        dst: SReg,
        /// Application vector length: elements remaining to process.
        avl: SReg,
    },
    /// Predicated vector load: reads only the `vl` active lanes
    /// (element-aligned; VLA memory ops carry no whole-register alignment
    /// contract), zeroing the inactive lanes (SVE zeroing predication).
    LoadVl {
        /// Element type.
        ty: ScalarTy,
        /// Destination.
        dst: VReg,
        /// Address.
        addr: AddrMode,
    },
    /// Predicated vector store: writes only the `vl` active lanes.
    StoreVl {
        /// Element type.
        ty: ScalarTy,
        /// Source.
        src: VReg,
        /// Address.
        addr: AddrMode,
    },
    /// Predicated elementwise binary op: active lanes are computed,
    /// inactive lanes keep `dst`'s previous contents (merging
    /// predication, so loop-carried accumulators stay correct on the
    /// partial final stripmine iteration).
    VBinVl {
        /// Operator.
        op: BinOp,
        /// Element type.
        ty: ScalarTy,
        /// Destination (inactive lanes preserved).
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// Predicated elementwise unary op (merging predication).
    VUnVl {
        /// Operator.
        op: UnOp,
        /// Element type.
        ty: ScalarTy,
        /// Destination (inactive lanes preserved).
        dst: VReg,
        /// Operand.
        a: VReg,
    },
}

impl MInst {
    /// Whether this instruction is a pure marker (no execution cost).
    pub fn is_label(&self) -> bool {
        matches!(self, MInst::Label(_))
    }
}

/// A compiled function: a flat instruction list plus register counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MCode {
    /// Instructions.
    pub insts: Vec<MInst>,
    /// Number of scalar registers used.
    pub n_sregs: u32,
    /// Number of vector registers used.
    pub n_vregs: u32,
    /// Human-readable provenance (kernel + pipeline), for reports.
    pub note: String,
}

impl MCode {
    /// Count non-label instructions (static code size).
    pub fn len(&self) -> usize {
        self.insts.iter().filter(|i| !i.is_label()).count()
    }

    /// Whether there are no executable instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolve labels to instruction indices.
    ///
    /// # Panics
    /// Panics if a label is defined twice.
    pub fn label_map(&self) -> std::collections::HashMap<Label, usize> {
        let mut m = std::collections::HashMap::new();
        for (i, inst) in self.insts.iter().enumerate() {
            if let MInst::Label(l) = inst {
                let prev = m.insert(*l, i);
                assert!(prev.is_none(), "label {l} defined twice");
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_map_resolves() {
        let code = MCode {
            insts: vec![
                MInst::Label(Label(0)),
                MInst::MovImmI {
                    dst: SReg(0),
                    imm: 1,
                },
                MInst::Label(Label(1)),
            ],
            n_sregs: 1,
            n_vregs: 0,
            note: String::new(),
        };
        let m = code.label_map();
        assert_eq!(m[&Label(0)], 0);
        assert_eq!(m[&Label(1)], 2);
        assert_eq!(code.len(), 1);
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_labels_panic() {
        let code = MCode {
            insts: vec![MInst::Label(Label(0)), MInst::Label(Label(0))],
            ..Default::default()
        };
        let _ = code.label_map();
    }
}

//! Target descriptions: the ISA facts from §IV-A of the paper, encoded as
//! data the online compiler and the cost model consume.

use vapor_ir::ScalarTy;

use crate::cost::CostModel;
use crate::ports::PortModel;

/// Identifier for the built-in targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// x86 SSE/SSSE3, 128-bit (Intel Core2-class).
    Sse,
    /// PowerPC AltiVec, 128-bit, aligned-only, no doubles (G5-class).
    Altivec,
    /// ARM NEON in 64-bit mode (Cortex A8-class).
    Neon64,
    /// Intel AVX, 256-bit float vectors (emulated; no hardware in 2011).
    Avx,
    /// No SIMD at all: everything scalarizes.
    ScalarOnly,
    /// ARM-SVE-class vector-length-agnostic target: the lane count is a
    /// *runtime* parameter (128–2048 bits).
    Sve,
    /// RISC-V-Vector-class vector-length-agnostic target.
    Rvv,
}

impl TargetKind {
    /// All built-in targets.
    pub const ALL: [TargetKind; 7] = [
        TargetKind::Sse,
        TargetKind::Altivec,
        TargetKind::Neon64,
        TargetKind::Avx,
        TargetKind::ScalarOnly,
        TargetKind::Sve,
        TargetKind::Rvv,
    ];
}

/// Narrowest legal vector length of the VLA family, in bits (both SVE
/// and RVV application profiles mandate at least 128).
pub const VLA_MIN_BITS: usize = 128;

/// Widest legal vector length, in bits (the SVE architectural maximum).
pub const VLA_MAX_BITS: usize = 2048;

/// The runtime vector lengths the test suite and the gains table
/// exercise.
pub const VLA_TEST_BITS: [usize; 5] = [128, 256, 512, 1024, 2048];

/// Whether `vl_bits` is a legal runtime vector length for the VLA
/// family: a multiple of 128 bits between 128 and 2048 (the SVE rule;
/// every RVV power-of-two VLEN in range also satisfies it).
pub fn valid_vl(vl_bits: usize) -> bool {
    (VLA_MIN_BITS..=VLA_MAX_BITS).contains(&vl_bits) && vl_bits.is_multiple_of(VLA_MIN_BITS)
}

/// A SIMD target description.
///
/// Every field encodes a fact the paper relies on: vector size drives the
/// VF, alignment capabilities drive the realignment strategy choice of
/// §III-C, and the feature booleans drive scalarization/library-fallback
/// decisions (e.g. `double` on AltiVec, immature idioms on NEON).
#[derive(Debug, Clone)]
pub struct TargetDesc {
    /// Display name.
    pub name: &'static str,
    /// Which built-in target this is.
    pub kind: TargetKind,
    /// Vector size in bytes (VS). 0 disables SIMD entirely.
    ///
    /// For a vector-length-agnostic target (`vla == true`) this is *not*
    /// a compile-time contract: the constructor sets it to the family
    /// minimum ([`VLA_MIN_BITS`]) so offline/online planning stays
    /// conservative, and [`TargetDesc::at_vl`] rebinds it to the concrete
    /// runtime VL at execution-specialization time.
    pub vs: usize,
    /// Vector-length-agnostic family (SVE/RVV-class): the compiled
    /// artifact must not bake in a lane count; the online stage emits
    /// `setvl`-stripmined, predicated code instead.
    pub vla: bool,
    /// Whether misaligned vector *loads* are supported (SSE `movdqu`).
    pub misaligned_loads: bool,
    /// Whether misaligned vector *stores* are supported.
    pub misaligned_stores: bool,
    /// Whether explicit realignment idioms (`lvsr`+`vperm`) exist.
    pub explicit_realign: bool,
    /// Element types with vector support.
    pub vector_elems: &'static [ScalarTy],
    /// `dot_product` idiom available (`pmaddwd` / `vmsumshm`).
    pub has_dot_product: bool,
    /// Widening multiply claimed by the backend.
    pub has_widen_mult: bool,
    /// Widening multiply implemented via a library helper rather than a
    /// native instruction (the paper's immature NEON backend: `dissolve`
    /// "falls back to library support").
    pub widen_mult_via_helper: bool,
    /// pack/unpack promotion/demotion available.
    pub has_pack_unpack: bool,
    /// Lane-wise int↔float conversions claimed by the backend.
    pub has_cvt: bool,
    /// Conversions implemented via a library helper (NEON `dct` case).
    pub cvt_via_helper: bool,
    /// Vector float division (AltiVec only has a reciprocal estimate).
    pub has_fdiv: bool,
    /// Vector square root.
    pub has_fsqrt: bool,
    /// Per-lane variable shift counts supported.
    pub has_per_lane_shift: bool,
    /// Dynamic-instruction cycle model.
    pub cost: CostModel,
    /// Port model for the static throughput analyzer (IACA role).
    pub ports: PortModel,
}

impl TargetDesc {
    /// Number of lanes of `ty` in one vector register (`get_VF`).
    pub fn lanes(&self, ty: ScalarTy) -> usize {
        if self.vs == 0 {
            1
        } else {
            self.vs / ty.size()
        }
    }

    /// Whether vector code for element type `ty` is worthwhile: the type
    /// must be supported and at least 2 lanes must fit.
    pub fn supports_elem(&self, ty: ScalarTy) -> bool {
        self.vs > 0 && self.vector_elems.contains(&ty) && self.lanes(ty) >= 2
    }

    /// Alignment requirement in bytes for vector memory accesses.
    pub fn align_limit_bytes(&self) -> usize {
        self.vs.max(1)
    }

    /// Whether the target has any SIMD support at all.
    pub fn has_simd(&self) -> bool {
        self.vs > 0
    }

    /// Specialize a vector-length-agnostic target to a concrete runtime
    /// vector length. The compiled artifact is shared across VLs — only
    /// execution (decode, machine, cycle accounting) consumes the
    /// specialized description.
    ///
    /// # Panics
    /// Panics when called on a fixed-width target or with an illegal VL
    /// (see [`valid_vl`]); both are harness bugs.
    pub fn at_vl(&self, vl_bits: usize) -> TargetDesc {
        assert!(self.vla, "{} is not a VLA target", self.name);
        assert!(valid_vl(vl_bits), "illegal runtime VL of {vl_bits} bits");
        TargetDesc {
            vs: vl_bits / 8,
            ..self.clone()
        }
    }
}

const ALL_VECTOR_ELEMS: &[ScalarTy] = &[
    ScalarTy::I8,
    ScalarTy::I16,
    ScalarTy::I32,
    ScalarTy::I64,
    ScalarTy::U8,
    ScalarTy::U16,
    ScalarTy::U32,
    ScalarTy::F32,
    ScalarTy::F64,
];

/// AltiVec supports 8/16/32-bit element types only (§IV-A: "it does not
/// support 64-bit operations").
const ALTIVEC_ELEMS: &[ScalarTy] = &[
    ScalarTy::I8,
    ScalarTy::I16,
    ScalarTy::I32,
    ScalarTy::U8,
    ScalarTy::U16,
    ScalarTy::U32,
    ScalarTy::F32,
];

/// NEON in 64-bit mode: 8-byte registers; 64-bit element types would have
/// a single lane, so they are not vectorized.
const NEON64_ELEMS: &[ScalarTy] = &[
    ScalarTy::I8,
    ScalarTy::I16,
    ScalarTy::I32,
    ScalarTy::U8,
    ScalarTy::U16,
    ScalarTy::U32,
    ScalarTy::F32,
];

/// Intel Core2-class SSE target: 16-byte vectors, misaligned accesses
/// supported but slower (`movdqu`), no explicit realignment idiom.
pub fn sse() -> TargetDesc {
    TargetDesc {
        name: "SSE (128-bit)",
        kind: TargetKind::Sse,
        vs: 16,
        vla: false,
        misaligned_loads: true,
        misaligned_stores: true,
        explicit_realign: false,
        vector_elems: ALL_VECTOR_ELEMS,
        has_dot_product: true, // pmaddwd
        has_widen_mult: true,
        widen_mult_via_helper: false,
        has_pack_unpack: true,
        has_cvt: true,
        cvt_via_helper: false,
        has_fdiv: true,
        has_fsqrt: true,
        has_per_lane_shift: false,
        cost: CostModel::sse(),
        ports: PortModel::core2(),
    }
}

/// PowerPC G5-class AltiVec target: 16-byte vectors, aligned accesses
/// only, `lvsr`/`vperm` realignment, no 64-bit element types.
pub fn altivec() -> TargetDesc {
    TargetDesc {
        name: "AltiVec (128-bit)",
        kind: TargetKind::Altivec,
        vs: 16,
        vla: false,
        misaligned_loads: false,
        misaligned_stores: false,
        explicit_realign: true,
        vector_elems: ALTIVEC_ELEMS,
        has_dot_product: true, // vmsumshm
        has_widen_mult: true,  // vmulesh/vmulosh
        widen_mult_via_helper: false,
        has_pack_unpack: true,
        has_cvt: true,
        cvt_via_helper: false,
        has_fdiv: false, // vrefp is an estimate; GCC scalarizes exact division
        has_fsqrt: false,
        has_per_lane_shift: true,
        cost: CostModel::altivec(),
        ports: PortModel::g5(),
    }
}

/// ARM Cortex A8-class NEON target in 64-bit mode. Misaligned accesses
/// are architecturally supported; the 2011-era GCC NEON backend was
/// immature, so widening multiplies and int↔float conversions fall back
/// to library helpers (the paper's `dissolve`/`dct` cases).
pub fn neon64() -> TargetDesc {
    TargetDesc {
        name: "NEON (64-bit)",
        kind: TargetKind::Neon64,
        vs: 8,
        vla: false,
        misaligned_loads: true,
        misaligned_stores: true,
        explicit_realign: false,
        vector_elems: NEON64_ELEMS,
        has_dot_product: true,
        has_widen_mult: true,
        widen_mult_via_helper: true, // immature backend: library fallback
        has_pack_unpack: true,
        has_cvt: true,
        cvt_via_helper: true, // immature backend: library fallback
        has_fdiv: false,
        has_fsqrt: false,
        has_per_lane_shift: true,
        cost: CostModel::neon64(),
        ports: PortModel::cortex_a8(),
    }
}

/// Intel AVX target: 32-byte float vectors. In 2011 no hardware existed;
/// like the paper we execute it only under emulation (the VM plays the
/// SDE role) and analyze loop bodies statically (the IACA role).
pub fn avx() -> TargetDesc {
    TargetDesc {
        name: "AVX (256-bit)",
        kind: TargetKind::Avx,
        vs: 32,
        vla: false,
        misaligned_loads: true,
        misaligned_stores: true,
        explicit_realign: false,
        vector_elems: ALL_VECTOR_ELEMS,
        has_dot_product: true,
        has_widen_mult: true,
        widen_mult_via_helper: false,
        has_pack_unpack: true,
        has_cvt: true,
        cvt_via_helper: false,
        has_fdiv: true,
        has_fsqrt: true,
        has_per_lane_shift: false,
        cost: CostModel::avx(),
        ports: PortModel::sandy_bridge(),
    }
}

/// A target without SIMD: the online stage scalarizes everything
/// (Figure 3b of the paper).
pub fn scalar_only() -> TargetDesc {
    TargetDesc {
        name: "scalar (no SIMD)",
        kind: TargetKind::ScalarOnly,
        vs: 0,
        vla: false,
        misaligned_loads: false,
        misaligned_stores: false,
        explicit_realign: false,
        vector_elems: &[],
        has_dot_product: false,
        has_widen_mult: false,
        widen_mult_via_helper: false,
        has_pack_unpack: false,
        has_cvt: false,
        cvt_via_helper: false,
        has_fdiv: false,
        has_fsqrt: false,
        has_per_lane_shift: false,
        cost: CostModel::generic_scalar(),
        ports: PortModel::single_issue(),
    }
}

/// ARM-SVE-class vector-length-agnostic target. The description is
/// VL-*agnostic*: `vs` holds the family minimum (128 bits) purely for
/// conservative planning, and the online stage emits `setvl`-stripmined
/// predicated code with no lane count baked in. [`TargetDesc::at_vl`]
/// produces the execution-time specialization for a concrete VL.
///
/// Half-based sub-vector idioms (widening multiply, pack/unpack, dot
/// product) have no fixed meaning when the register width is a runtime
/// quantity, so the backend declines them and those groups scalarize —
/// the VLA analogue of the paper's immature-NEON-backend story.
pub fn sve() -> TargetDesc {
    TargetDesc {
        name: "SVE-class (VLA)",
        kind: TargetKind::Sve,
        vs: VLA_MIN_BITS / 8,
        vla: true,
        misaligned_loads: true, // VLA memory ops are element-aligned only
        misaligned_stores: true,
        explicit_realign: false,
        vector_elems: ALL_VECTOR_ELEMS,
        has_dot_product: false, // half-based idioms undefined at runtime VL
        has_widen_mult: false,
        widen_mult_via_helper: false,
        has_pack_unpack: false,
        has_cvt: true, // same-width lane conversions are VL-clean
        cvt_via_helper: false,
        has_fdiv: true,
        has_fsqrt: true,
        has_per_lane_shift: true,
        cost: CostModel::sve_class(),
        ports: PortModel::sve_core(),
    }
}

/// RISC-V-Vector-class vector-length-agnostic target: same VLA execution
/// model as [`sve`] (`vsetvli` stripmining, predicated lane ops), with
/// the cost/port profile of a longer-vector, narrower-issue core.
pub fn rvv() -> TargetDesc {
    TargetDesc {
        name: "RVV-class (VLA)",
        kind: TargetKind::Rvv,
        vs: VLA_MIN_BITS / 8,
        vla: true,
        misaligned_loads: true,
        misaligned_stores: true,
        explicit_realign: false,
        vector_elems: ALL_VECTOR_ELEMS,
        has_dot_product: false,
        has_widen_mult: false,
        widen_mult_via_helper: false,
        has_pack_unpack: false,
        has_cvt: true,
        cvt_via_helper: false,
        has_fdiv: true,
        has_fsqrt: true,
        has_per_lane_shift: true,
        cost: CostModel::rvv_class(),
        ports: PortModel::rvv_core(),
    }
}

/// Construct a target description by kind.
pub fn target(kind: TargetKind) -> TargetDesc {
    match kind {
        TargetKind::Sse => sse(),
        TargetKind::Altivec => altivec(),
        TargetKind::Neon64 => neon64(),
        TargetKind::Avx => avx(),
        TargetKind::ScalarOnly => scalar_only(),
        TargetKind::Sve => sve(),
        TargetKind::Rvv => rvv(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_factors_match_paper_examples() {
        // §II: 16-byte AltiVec/SSE give VF=4 for float; 8-byte NEON gives VF=2.
        assert_eq!(sse().lanes(ScalarTy::F32), 4);
        assert_eq!(altivec().lanes(ScalarTy::F32), 4);
        assert_eq!(neon64().lanes(ScalarTy::F32), 2);
        assert_eq!(avx().lanes(ScalarTy::F32), 8);
        assert_eq!(avx().lanes(ScalarTy::F64), 4);
    }

    #[test]
    fn altivec_has_no_doubles() {
        assert!(!altivec().supports_elem(ScalarTy::F64));
        assert!(sse().supports_elem(ScalarTy::F64));
    }

    #[test]
    fn neon64_misses_immature_idioms() {
        let t = neon64();
        assert!(t.has_widen_mult && t.widen_mult_via_helper);
        assert!(t.has_cvt && t.cvt_via_helper);
        assert!(t.supports_elem(ScalarTy::I16));
        // One f64 lane only: not vectorizable.
        assert!(!t.supports_elem(ScalarTy::F64));
    }

    #[test]
    fn scalar_only_supports_nothing() {
        let t = scalar_only();
        assert!(!t.has_simd());
        assert!(!t.supports_elem(ScalarTy::F32));
        assert_eq!(t.lanes(ScalarTy::F32), 1);
    }

    #[test]
    fn alignment_limits() {
        assert_eq!(sse().align_limit_bytes(), 16);
        assert_eq!(neon64().align_limit_bytes(), 8);
        assert_eq!(avx().align_limit_bytes(), 32);
    }

    #[test]
    fn vla_lane_count_is_a_runtime_parameter() {
        for t in [sve(), rvv()] {
            assert!(t.vla);
            // The agnostic description plans at the family minimum …
            assert_eq!(t.lanes(ScalarTy::F32), 4);
            // … and every legal runtime VL rebinds the lane count.
            for (bits, lanes) in [(128, 4), (256, 8), (512, 16), (1024, 32), (2048, 64)] {
                let s = t.at_vl(bits);
                assert_eq!(s.lanes(ScalarTy::F32), lanes, "{} @{bits}", t.name);
                assert!(s.vla, "specialization stays in the VLA family");
                assert!(s.vs <= crate::machine::MAX_VS);
            }
        }
    }

    #[test]
    fn vla_declines_half_based_idioms() {
        for t in [sve(), rvv()] {
            assert!(!t.has_dot_product && !t.has_widen_mult && !t.has_pack_unpack);
            assert!(t.has_fdiv && t.has_fsqrt && t.has_cvt);
            assert!(t.misaligned_loads && t.misaligned_stores && !t.explicit_realign);
        }
    }

    #[test]
    fn vl_validity_rules() {
        assert!(valid_vl(128) && valid_vl(384) && valid_vl(2048));
        assert!(!valid_vl(64) && !valid_vl(192) && !valid_vl(4096) && !valid_vl(0));
    }

    #[test]
    #[should_panic(expected = "not a VLA target")]
    fn fixed_targets_cannot_specialize() {
        let _ = sse().at_vl(256);
    }

    #[test]
    #[should_panic(expected = "illegal runtime VL")]
    fn illegal_vl_panics() {
        let _ = sve().at_vl(96);
    }
}

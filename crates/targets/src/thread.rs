//! Closure-threaded execution tier: the lowering below [`DecodedProgram`].
//!
//! A decoded program still pays three per-step costs that have nothing
//! to do with the step's own work: the fuel check + `insts`/`cycles`
//! bookkeeping, the `VBytes` register-file dispatch on every vector
//! operand, and the `base + i*scale + disp` address recomputation on
//! every memory access of an affine loop. The threaded form removes all
//! three at *thread time* (one more offline pass, amortized exactly like
//! decoding itself):
//!
//! * **Regions** — steps are grouped into straight-line regions (control
//!   can only be the last step of a region), and each region's exact
//!   instruction arity and cycle cost are pre-summed. The executor
//!   charges fuel and statistics once per region instead of once per
//!   step. Like the fused-step fuel contract, a region whose
//!   constituents would cross the budget traps at the region boundary
//!   without executing any of them; non-trapping executions are
//!   bit-identical.
//! * **Register arena** — vector registers live in one contiguous byte
//!   arena; every operand of every step is a pre-multiplied byte offset,
//!   so the hot loop does no `Vec` + `Option` + enum dispatch per
//!   operand. The lane kernels already operate on plain byte slices, so
//!   they are reused unchanged.
//! * **Affine address streams** — for innermost loops whose latch is a
//!   fused `i += #imm` / `i -= #imm` step on `i64`, every memory leg
//!   whose address is affine in the induction variable gets a *stream*:
//!   a cursor initialized on loop entry and bumped by a precomputed
//!   constant on every taken backedge. The `LoadV`/`StoreV` steps stride
//!   the cursor instead of re-reading two scalar registers and
//!   re-multiplying per iteration. Streams are bit-exact by
//!   construction: the induction step is a wrapping `i64` add, so
//!   `base + (i+d)*scale + disp == (base + i*scale + disp) + d*scale`
//!   modulo 2⁶⁴, which is precisely the decoded computation.
//!
//! Bounds and alignment checks stay *per access* — they are part of the
//! trap contract and must fire at exactly the same instruction with
//! exactly the same message as the decoded tier. Only fuel is hoisted,
//! because its region-boundary semantics are provably equivalent for
//! every non-trapping execution.
//!
//! The decoded tier remains the differential oracle: machine state,
//! `vm_cycles` and instruction counts must be bit-identical (see
//! `tests/threaded_differential.rs`).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt::Write as _;

use vapor_ir::sem::Value;
use vapor_ir::{BinOp, ScalarTy, UnOp};

use crate::decode::{
    flatten_addr, sbin_fn, DStep, DecodedProgram, FusedAddr, SBinFn, SplatFn, VBinFn, VReduceFn,
    VShiftFn, VUnFn, NO_INDEX,
};
use crate::isa::{Cond, MCode, MInst, ReduceOp, SReg};
use crate::machine::{INLINE_VS, MAX_VS};

/// One memory-operand address of a threaded step: either the flattened
/// affine fields (recomputed per access, exactly like the decoded fast
/// steps) or a reference to a precomputed address stream.
#[derive(Debug, Clone, Copy)]
pub enum TAddr {
    /// Recompute `base + idx*scale + disp` on every access.
    Direct {
        /// Base address register.
        base: SReg,
        /// Index register number, or [`NO_INDEX`].
        idx: u32,
        /// Scale applied to the index (bytes).
        scale: u8,
        /// Constant displacement (bytes).
        disp: i32,
    },
    /// Read the cursor of stream `.0` (see [`StreamDef`]).
    Stream(u32),
}

/// A precomputed affine address stream. The full flattened address is
/// kept alongside the per-iteration delta so an *invalid* initialization
/// (a base register holding a float, or still undefined at loop entry)
/// falls back to the per-access computation and reproduces the decoded
/// tier's exact trap.
#[derive(Debug, Clone, Copy)]
pub struct StreamDef {
    /// Base address register.
    pub base: SReg,
    /// Index register number, or [`NO_INDEX`].
    pub idx: u32,
    /// Scale applied to the index (bytes).
    pub scale: u8,
    /// Constant displacement (bytes).
    pub disp: i32,
    /// Cursor increment per taken backedge (bytes, wrapping).
    pub delta: i64,
}

/// One straight-line region: `n` consecutive steps of which only the
/// last may transfer control, plus the region's pre-summed instruction
/// arity and cycle cost (charged once at region entry).
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// Index of the first step.
    pub first: u32,
    /// Number of steps.
    pub n: u32,
    /// Sum of the constituent steps' source-instruction arities.
    pub arity: u64,
    /// Sum of the constituent steps' cycle costs.
    pub cost: u64,
}

/// Payload of the threaded `LoadV → VBin → StoreV` superinstruction.
#[derive(Debug, Clone)]
pub struct TLoadBinStore {
    /// Arena byte offset of the load destination.
    pub load_dst: u32,
    /// Whether the load carries the aligned contract.
    pub load_aligned: bool,
    /// Load address.
    pub load: TAddr,
    /// Arena byte offset of the binary-op destination (also the store
    /// source).
    pub dst: u32,
    /// Arena byte offset of the left operand.
    pub a: u32,
    /// Arena byte offset of the right operand.
    pub b: u32,
    /// Specialized lane kernel.
    pub f: VBinFn,
    /// Operator (for disassembly).
    pub op: BinOp,
    /// Element type.
    pub ty: ScalarTy,
    /// Lane count.
    pub lanes: u16,
    /// Whether the store carries the aligned contract.
    pub store_aligned: bool,
    /// Store address.
    pub store: TAddr,
}

/// Payload of the threaded `LoadV → VBin → VBin` superinstruction.
#[derive(Debug, Clone)]
pub struct TLoadBinBin {
    /// Arena byte offset of the load destination.
    pub load_dst: u32,
    /// Whether the load carries the aligned contract.
    pub load_aligned: bool,
    /// Load address.
    pub load: TAddr,
    /// Arena byte offset of the first op's destination.
    pub dst1: u32,
    /// Arena byte offset of the first op's left operand.
    pub a1: u32,
    /// Arena byte offset of the first op's right operand.
    pub b1: u32,
    /// First specialized lane kernel.
    pub f1: VBinFn,
    /// First operator.
    pub op1: BinOp,
    /// First element type.
    pub ty1: ScalarTy,
    /// First lane count.
    pub lanes1: u16,
    /// Arena byte offset of the second op's destination.
    pub dst2: u32,
    /// Arena byte offset of the second op's left operand.
    pub a2: u32,
    /// Arena byte offset of the second op's right operand.
    pub b2: u32,
    /// Second specialized lane kernel.
    pub f2: VBinFn,
    /// Second operator.
    pub op2: BinOp,
    /// Second element type.
    pub ty2: ScalarTy,
    /// Second lane count.
    pub lanes2: u16,
}

/// Payload of the threaded `LoadV → VBin` superinstruction.
#[derive(Debug, Clone)]
pub struct TLoadBin {
    /// Arena byte offset of the load destination.
    pub load_dst: u32,
    /// Whether the load carries the aligned contract.
    pub load_aligned: bool,
    /// Load address.
    pub load: TAddr,
    /// Arena byte offset of the binary-op destination.
    pub dst: u32,
    /// Arena byte offset of the left operand.
    pub a: u32,
    /// Arena byte offset of the right operand.
    pub b: u32,
    /// Specialized lane kernel.
    pub f: VBinFn,
    /// Operator.
    pub op: BinOp,
    /// Element type.
    pub ty: ScalarTy,
    /// Lane count.
    pub lanes: u16,
}

/// Payload of the threaded `VBin → StoreV` superinstruction.
#[derive(Debug, Clone)]
pub struct TBinStore {
    /// Arena byte offset of the binary-op destination (also the store
    /// source).
    pub dst: u32,
    /// Arena byte offset of the left operand.
    pub a: u32,
    /// Arena byte offset of the right operand.
    pub b: u32,
    /// Specialized lane kernel.
    pub f: VBinFn,
    /// Operator.
    pub op: BinOp,
    /// Element type.
    pub ty: ScalarTy,
    /// Lane count.
    pub lanes: u16,
    /// Whether the store carries the aligned contract.
    pub store_aligned: bool,
    /// Store address.
    pub store: TAddr,
}

/// Payload of the threaded predicated `LoadVl → VBinVl → StoreVl`
/// runtime-VL superinstruction.
#[derive(Debug, Clone)]
pub struct TLoadBinStoreVl {
    /// Element type of the predicated load.
    pub load_ty: ScalarTy,
    /// Arena byte offset of the load destination.
    pub load_dst: u32,
    /// Load address.
    pub load: TAddr,
    /// Arena byte offset of the binary-op destination (merge source;
    /// also the store source).
    pub dst: u32,
    /// Arena byte offset of the left operand.
    pub a: u32,
    /// Arena byte offset of the right operand.
    pub b: u32,
    /// Specialized lane kernel.
    pub f: VBinFn,
    /// Operator.
    pub op: BinOp,
    /// Element type of the binary op.
    pub ty: ScalarTy,
    /// Full-register lane count (VL clamp).
    pub max_lanes: u16,
    /// Element type of the predicated store.
    pub store_ty: ScalarTy,
    /// Store address.
    pub store: TAddr,
}

/// Payload of the threaded loop latch: the fused induction step +
/// backedge test, plus the range of streams to bump when the backedge
/// is taken.
#[derive(Debug, Clone)]
pub struct TLatch {
    /// Destination of the scalar op.
    pub dst: SReg,
    /// Left operand of the scalar op.
    pub a: SReg,
    /// Immediate right operand.
    pub imm: i32,
    /// Specialized scalar kernel.
    pub f: SBinFn,
    /// Operand type.
    pub ty: ScalarTy,
    /// Result type.
    pub rty: ScalarTy,
    /// Branch condition.
    pub cond: Cond,
    /// Left branch operand.
    pub br_a: SReg,
    /// Right branch operand register number, or [`NO_INDEX`].
    pub br_reg: u32,
    /// Immediate right branch operand (used when `br_reg` is
    /// [`NO_INDEX`]).
    pub br_imm: i64,
    /// Target *region* of the backedge.
    pub target: u32,
    /// First stream owned by this loop.
    pub first_stream: u32,
    /// Number of streams owned by this loop (zero when none qualified).
    pub n_streams: u32,
}

/// Payload of [`TStep::SBin2`]: two back-to-back register-register
/// scalar ALU ops merged into one dispatch by the thread-time peephole.
/// Constituents execute in order with both register writes, so state
/// and traps are exactly those of the unfused pair.
#[derive(Debug, Clone, Copy)]
pub struct TSBin2 {
    /// Destination of the first op.
    pub dst1: SReg,
    /// Left operand of the first op.
    pub a1: SReg,
    /// Right operand of the first op.
    pub b1: SReg,
    /// Specialized scalar kernel of the first op.
    pub f1: SBinFn,
    /// Operand type of the first op.
    pub ty1: ScalarTy,
    /// Result type of the first op.
    pub rty1: ScalarTy,
    /// Destination of the second op.
    pub dst2: SReg,
    /// Left operand of the second op.
    pub a2: SReg,
    /// Right operand of the second op.
    pub b2: SReg,
    /// Specialized scalar kernel of the second op.
    pub f2: SBinFn,
    /// Operand type of the second op.
    pub ty2: ScalarTy,
    /// Result type of the second op.
    pub rty2: ScalarTy,
}

/// One threaded step. Vector operands are pre-multiplied byte offsets
/// into the register arena; branch targets are *region* indices; memory
/// operands are [`TAddr`]s (possibly stream-backed).
///
/// No `PartialEq` (function pointers); compare the source program.
#[derive(Debug, Clone)]
pub enum TStep {
    /// Unconditional jump to a region.
    Jump {
        /// Target region.
        target: u32,
    },
    /// Conditional branch on two scalar registers.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: SReg,
        /// Right operand.
        b: SReg,
        /// Target region.
        target: u32,
    },
    /// Conditional branch against an immediate.
    BranchImm {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: SReg,
        /// Immediate right operand.
        imm: i64,
        /// Target region.
        target: u32,
    },
    /// Initialize the cursors of streams `first..first+n` from the
    /// current scalar registers (arity 0, cost 0; inserted at the entry
    /// of every streamed loop so every path into the loop passes it).
    InitStreams {
        /// First stream to initialize.
        first: u32,
        /// Number of streams.
        n: u32,
    },
    /// All-lanes specialized vector binary op on arena slots.
    VBin {
        /// Arena byte offset of the destination.
        dst: u32,
        /// Arena byte offset of the left operand.
        a: u32,
        /// Arena byte offset of the right operand.
        b: u32,
        /// Specialized lane kernel.
        f: VBinFn,
        /// Operator (for disassembly).
        op: BinOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count.
        lanes: u16,
    },
    /// All-lanes specialized vector unary op.
    VUn {
        /// Arena byte offset of the destination.
        dst: u32,
        /// Arena byte offset of the operand.
        a: u32,
        /// Specialized lane kernel.
        f: VUnFn,
        /// Operator.
        op: UnOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count.
        lanes: u16,
    },
    /// Vector register copy between arena slots (a whole-slot memcpy:
    /// both slots keep the zeros-past-`ew` invariant, so copying the
    /// full slot is exact).
    MovV {
        /// Arena byte offset of the destination.
        dst: u32,
        /// Arena byte offset of the source.
        src: u32,
    },
    /// Merging-predicated (runtime-VL) vector binary op.
    VBinVl {
        /// Arena byte offset of the destination (merge source).
        dst: u32,
        /// Arena byte offset of the left operand.
        a: u32,
        /// Arena byte offset of the right operand.
        b: u32,
        /// Specialized lane kernel.
        f: VBinFn,
        /// Operator.
        op: BinOp,
        /// Element type.
        ty: ScalarTy,
        /// Full-register lane count (VL clamp).
        max_lanes: u16,
    },
    /// Merging-predicated vector unary op.
    VUnVl {
        /// Arena byte offset of the destination (merge source).
        dst: u32,
        /// Arena byte offset of the operand.
        a: u32,
        /// Specialized lane kernel.
        f: VUnFn,
        /// Operator.
        op: UnOp,
        /// Element type.
        ty: ScalarTy,
        /// Full-register lane count (VL clamp).
        max_lanes: u16,
    },
    /// Whole-register vector load into an arena slot.
    LoadV {
        /// Arena byte offset of the destination.
        dst: u32,
        /// Whether the access carries the aligned contract.
        aligned: bool,
        /// Address.
        addr: TAddr,
    },
    /// Whole-register vector store from an arena slot.
    StoreV {
        /// Arena byte offset of the source.
        src: u32,
        /// Whether the access carries the aligned contract.
        aligned: bool,
        /// Address.
        addr: TAddr,
    },
    /// Scalar load.
    LoadS {
        /// Element type.
        ty: ScalarTy,
        /// Destination register.
        dst: SReg,
        /// Address.
        addr: TAddr,
    },
    /// Scalar store.
    StoreS {
        /// Element type.
        ty: ScalarTy,
        /// Source register.
        src: SReg,
        /// Address.
        addr: TAddr,
    },
    /// Predicated (element-aligned, zeroing) vector load.
    LoadVl {
        /// Element type.
        ty: ScalarTy,
        /// Arena byte offset of the destination.
        dst: u32,
        /// Address.
        addr: TAddr,
    },
    /// Predicated vector store.
    StoreVl {
        /// Element type.
        ty: ScalarTy,
        /// Arena byte offset of the source.
        src: u32,
        /// Address.
        addr: TAddr,
    },
    /// Specialized scalar ALU op.
    SBin {
        /// Destination.
        dst: SReg,
        /// Left operand.
        a: SReg,
        /// Right operand.
        b: SReg,
        /// Specialized scalar kernel.
        f: SBinFn,
        /// Operand type.
        ty: ScalarTy,
        /// Result type.
        rty: ScalarTy,
    },
    /// Specialized scalar-immediate ALU op.
    SBinImm {
        /// Destination.
        dst: SReg,
        /// Left operand.
        a: SReg,
        /// Immediate right operand.
        imm: i32,
        /// Specialized scalar kernel.
        f: SBinFn,
        /// Operand type.
        ty: ScalarTy,
        /// Result type.
        rty: ScalarTy,
    },
    /// Two consecutive register-register scalar ALU ops in one
    /// dispatch, merged by the thread-time peephole when the second op
    /// is not a branch target. Scalar-chain loop bodies (derived
    /// address arithmetic like `a[i*n + j]`) are dominated by dispatch,
    /// not work, so halving the dispatches is the whole win.
    SBin2(Box<TSBin2>),
    /// Scalar register move.
    MovS {
        /// Destination.
        dst: SReg,
        /// Source.
        src: SReg,
    },
    /// Scalar immediate materialization (`MovImmI` / `MovImmF`), lifted
    /// to a runtime [`Value`] at thread time so a loop-resident constant
    /// does not pay the generic [`TStep::ScalarOp`] dispatch.
    MovImm {
        /// Destination.
        dst: SReg,
        /// The immediate in its runtime domain.
        v: Value,
    },
    /// Specialized broadcast.
    Splat {
        /// Arena byte offset of the destination.
        dst: u32,
        /// Source scalar register.
        src: SReg,
        /// Specialized broadcast kernel.
        f: SplatFn,
        /// Element type.
        ty: ScalarTy,
        /// Lane count.
        lanes: u16,
    },
    /// Specialized vector shift by an immediate.
    VShiftImm {
        /// Arena byte offset of the destination.
        dst: u32,
        /// Arena byte offset of the operand.
        a: u32,
        /// Specialized shift kernel.
        f: VShiftFn,
        /// Immediate amount.
        imm: u8,
        /// Shift direction (for disassembly).
        left: bool,
        /// Element type.
        ty: ScalarTy,
        /// Lane count.
        lanes: u16,
    },
    /// Specialized vector shift by a scalar register amount.
    VShiftReg {
        /// Arena byte offset of the destination.
        dst: u32,
        /// Arena byte offset of the operand.
        a: u32,
        /// Specialized shift kernel.
        f: VShiftFn,
        /// Amount register.
        amt: SReg,
        /// Shift direction (for disassembly).
        left: bool,
        /// Element type.
        ty: ScalarTy,
        /// Lane count.
        lanes: u16,
    },
    /// Spill reload.
    SpillLd {
        /// Destination register.
        dst: SReg,
        /// Slot index.
        slot: u32,
    },
    /// Spill store.
    SpillSt {
        /// Source register.
        src: SReg,
        /// Slot index.
        slot: u32,
    },
    /// Specialized reduction.
    VReduce {
        /// Destination scalar register.
        dst: SReg,
        /// Arena byte offset of the source.
        src: u32,
        /// Specialized fold kernel.
        f: VReduceFn,
        /// Reduction operator (for disassembly).
        op: ReduceOp,
        /// Element type.
        ty: ScalarTy,
        /// Lane count.
        lanes: u16,
    },
    /// `LoadV → VBin → StoreV` superinstruction.
    LoadBinStore(Box<TLoadBinStore>),
    /// `LoadV → VBin → VBin` superinstruction.
    LoadBinBin(Box<TLoadBinBin>),
    /// `LoadV → VBin` superinstruction.
    LoadBin(Box<TLoadBin>),
    /// `VBin → StoreV` superinstruction.
    BinStore(Box<TBinStore>),
    /// Predicated `LoadVl → VBinVl → StoreVl` superinstruction.
    LoadBinStoreVl(Box<TLoadBinStoreVl>),
    /// Loop latch (induction step + backedge + stream bumps).
    Latch(Box<TLatch>),
    /// A generic instruction that touches only scalar machine state
    /// (scalar registers, spill slots, memory elements, the VL latch):
    /// executed by the shared semantics with no arena synchronization.
    ScalarOp(MInst),
    /// A generic instruction that reads or writes vector registers:
    /// the arena is flushed to the register file, the instruction runs
    /// under the shared semantics, and the arena is refilled. Rare by
    /// construction (everything hot has a fast threaded form).
    VectorOp(MInst),
}

/// A fully threaded, target-specific program: the closure-threaded
/// execution tier below [`DecodedProgram`]. Built by
/// [`ThreadedProgram::thread`]; executed by
/// [`crate::Machine::run_threaded`].
#[derive(Debug, Clone)]
pub struct ThreadedProgram {
    steps: Vec<TStep>,
    regions: Vec<Region>,
    streams: Vec<StreamDef>,
    /// Executable *source* instruction count (sum of region arities of a
    /// straight-line pass; same convention as [`DecodedProgram::len`]).
    pub len: usize,
    /// Vector width in bytes of the thread target.
    pub vs: usize,
    /// Arena slot stride in bytes (the register capacity class of a
    /// `vs`-wide machine: [`INLINE_VS`] or [`MAX_VS`]).
    stride: usize,
    /// Number of vector-register slots in the arena.
    n_vregs: usize,
    /// Number of loops that produced at least one stream.
    streamed_loops: usize,
}

impl ThreadedProgram {
    /// The threaded steps.
    pub fn steps(&self) -> &[TStep] {
        &self.steps
    }

    /// The straight-line regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The affine address streams.
    pub fn streams(&self) -> &[StreamDef] {
        &self.streams
    }

    /// Number of threaded steps.
    pub fn n_steps(&self) -> usize {
        self.steps.len()
    }

    /// Arena slot stride in bytes.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of vector-register slots in the arena.
    pub fn n_vregs(&self) -> usize {
        self.n_vregs
    }

    /// Number of loops that produced at least one address stream.
    pub fn streamed_loops(&self) -> usize {
        self.streamed_loops
    }

    /// Thread a decoded program: group steps into straight-line regions
    /// with pre-summed fuel/cycle charges, flatten vector operands to
    /// arena byte offsets, and attach affine address streams to the
    /// innermost loops that qualify. `code` is the source machine code
    /// (for the register-file size; the decoded program does not carry
    /// it).
    ///
    /// Threading never fails: steps with no fast threaded form fall back
    /// to the shared generic semantics ([`TStep::ScalarOp`] /
    /// [`TStep::VectorOp`]), exactly as decode falls back to
    /// [`DStep::Op`].
    pub fn thread(prog: &DecodedProgram, code: &MCode) -> ThreadedProgram {
        let steps = prog.steps();
        let n = steps.len();
        let vs = prog.vs;
        let stride = if vs > INLINE_VS { MAX_VS } else { INLINE_VS };

        // ---- Affine stream analysis ------------------------------------
        // A loop qualifies when its backedge is a fused latch stepping an
        // i64 induction register by a constant (`i += #d` / `i -= #d`,
        // recognized by kernel identity so the wrapping semantics are
        // exactly `eval_bin`'s), its body is straight-line fast steps
        // (no control, no generic ops), nothing jumps into the interior,
        // and the induction register is written only by the latch.
        let add_i64 = sbin_fn(BinOp::Add, ScalarTy::I64);
        let sub_i64 = sbin_fn(BinOp::Sub, ScalarTy::I64);
        let control_targets: Vec<usize> = steps
            .iter()
            .filter_map(|d| match &d.step {
                DStep::Jump { target }
                | DStep::Branch { target, .. }
                | DStep::BranchImm { target, .. } => Some(*target as usize),
                DStep::FusedLatch(p) => Some(p.target as usize),
                _ => None,
            })
            .collect();

        let mut streams: Vec<StreamDef> = Vec::new();
        let mut streamed_loops = 0usize;
        // header (old index) -> (first stream, count); also identifies
        // where an InitStreams step must be inserted.
        let mut loop_at: HashMap<usize, (u32, u32)> = HashMap::new();
        // latch (old index) -> (first stream, count, header).
        let mut latch_of: HashMap<usize, (u32, u32, usize)> = HashMap::new();
        // (old index, leg) -> stream; leg 0 is the (only or load) leg,
        // leg 1 the store leg of a fused step.
        let mut leg_stream: HashMap<(usize, u8), u32> = HashMap::new();

        'latches: for j in 0..n {
            let DStep::FusedLatch(p) = &steps[j].step else {
                continue;
            };
            let t = p.target as usize;
            if t >= j || loop_at.contains_key(&t) {
                continue;
            }
            if p.dst != p.a || p.ty != ScalarTy::I64 || p.rty != ScalarTy::I64 {
                continue;
            }
            // Identify the induction step by kernel identity: pointer
            // equality implies identical code, so a match is sound and a
            // miss merely skips the optimization.
            let delta_i = if add_i64.is_some_and(|f| std::ptr::fn_addr_eq(p.f, f)) {
                p.imm as i64
            } else if sub_i64.is_some_and(|f| std::ptr::fn_addr_eq(p.f, f)) {
                -(p.imm as i64)
            } else {
                continue;
            };
            let ind = p.dst.0;
            // Body must be straight-line fast steps, entered only at the
            // header, with the induction written only by the latch.
            if control_targets.iter().any(|&tt| tt > t && tt <= j) {
                continue;
            }
            let mut written: HashSet<u32> = HashSet::new();
            for d in &steps[t..j] {
                match &d.step {
                    DStep::Jump { .. }
                    | DStep::Branch { .. }
                    | DStep::BranchImm { .. }
                    | DStep::FusedLatch(_)
                    | DStep::Op(_) => continue 'latches,
                    DStep::SBinFast { dst, .. }
                    | DStep::SBinImmFast { dst, .. }
                    | DStep::MovSFast { dst, .. }
                    | DStep::LoadSFast { dst, .. }
                    | DStep::SpillLdFast { dst, .. }
                    | DStep::VReduceFast { dst, .. } => {
                        written.insert(dst.0);
                    }
                    _ => {}
                }
            }
            if written.contains(&ind) {
                continue;
            }
            // Collect the affine memory legs.
            let leg = |base: SReg, idx: u32, scale: u8| -> Option<i64> {
                let mut d = 0i64;
                if base.0 == ind {
                    d = delta_i;
                } else if written.contains(&base.0) {
                    return None;
                }
                if idx != NO_INDEX {
                    if idx == ind {
                        d = d.wrapping_add(delta_i.wrapping_mul(scale as i64));
                    } else if written.contains(&idx) {
                        return None;
                    }
                }
                Some(d)
            };
            let first = streams.len() as u32;
            let mut push = |streams: &mut Vec<StreamDef>, i: usize, lg: u8, m: &FusedAddr| {
                if let Some(delta) = leg(m.base, m.idx, m.scale) {
                    leg_stream.insert((i, lg), streams.len() as u32);
                    streams.push(StreamDef {
                        base: m.base,
                        idx: m.idx,
                        scale: m.scale,
                        disp: m.disp,
                        delta,
                    });
                }
            };
            for (i, d) in steps.iter().enumerate().take(j).skip(t) {
                match &d.step {
                    DStep::LoadVFast {
                        base,
                        idx,
                        scale,
                        aligned,
                        disp,
                        ..
                    }
                    | DStep::StoreVFast {
                        base,
                        idx,
                        scale,
                        aligned,
                        disp,
                        ..
                    } => {
                        let m = FusedAddr {
                            base: *base,
                            idx: *idx,
                            scale: *scale,
                            aligned: *aligned,
                            disp: *disp,
                        };
                        push(&mut streams, i, 0, &m);
                    }
                    DStep::LoadSFast {
                        base,
                        idx,
                        scale,
                        disp,
                        ..
                    }
                    | DStep::StoreSFast {
                        base,
                        idx,
                        scale,
                        disp,
                        ..
                    } => {
                        let m = FusedAddr {
                            base: *base,
                            idx: *idx,
                            scale: *scale,
                            aligned: false,
                            disp: *disp,
                        };
                        push(&mut streams, i, 0, &m);
                    }
                    DStep::FusedLoadBinStore(p) => {
                        push(&mut streams, i, 0, &p.load);
                        push(&mut streams, i, 1, &p.store);
                    }
                    DStep::FusedLoadBinBin(p) => push(&mut streams, i, 0, &p.load),
                    DStep::FusedLoadBin(p) => push(&mut streams, i, 0, &p.load),
                    DStep::FusedBinStore(p) => push(&mut streams, i, 1, &p.store),
                    DStep::FusedLoadBinStoreVl(p) => {
                        push(&mut streams, i, 0, &p.load);
                        push(&mut streams, i, 1, &p.store);
                    }
                    _ => {}
                }
            }
            let count = streams.len() as u32 - first;
            if count > 0 {
                loop_at.insert(t, (first, count));
                latch_of.insert(j, (first, count, t));
                streamed_loops += 1;
            }
        }

        // ---- Lowering --------------------------------------------------
        // Pass 1: lower every step (targets still old decoded indices),
        // inserting an InitStreams step before each streamed header.
        let ta = |i: usize, lg: u8, base: SReg, idx: u32, scale: u8, disp: i32| -> TAddr {
            match leg_stream.get(&(i, lg)) {
                Some(&s) => TAddr::Stream(s),
                None => TAddr::Direct {
                    base,
                    idx,
                    scale,
                    disp,
                },
            }
        };
        let mut out: Vec<(TStep, u64, u64)> = Vec::with_capacity(n + loop_at.len());
        let mut orig: Vec<usize> = Vec::with_capacity(n + loop_at.len());
        let mut new_index = vec![0u32; n + 1];
        let mut header_pos = vec![0u32; n];
        let mut max_vreg = 0u32;
        let seen_v = |r: crate::isa::VReg, max_vreg: &mut u32| -> u32 {
            *max_vreg = (*max_vreg).max(r.0 + 1);
            r.0 * stride as u32
        };
        for (i, d) in steps.iter().enumerate() {
            new_index[i] = out.len() as u32;
            if let Some(&(first, count)) = loop_at.get(&i) {
                out.push((TStep::InitStreams { first, n: count }, 0, 0));
                orig.push(i);
            }
            header_pos[i] = out.len() as u32;
            let step = match &d.step {
                DStep::Jump { target } => TStep::Jump { target: *target },
                DStep::Branch { cond, a, b, target } => TStep::Branch {
                    cond: *cond,
                    a: *a,
                    b: *b,
                    target: *target,
                },
                DStep::BranchImm {
                    cond,
                    a,
                    imm,
                    target,
                } => TStep::BranchImm {
                    cond: *cond,
                    a: *a,
                    imm: *imm,
                    target: *target,
                },
                DStep::VBinFast {
                    dst,
                    a,
                    b,
                    f,
                    op,
                    ty,
                    lanes,
                } => TStep::VBin {
                    dst: seen_v(*dst, &mut max_vreg),
                    a: seen_v(*a, &mut max_vreg),
                    b: seen_v(*b, &mut max_vreg),
                    f: *f,
                    op: *op,
                    ty: *ty,
                    lanes: *lanes,
                },
                DStep::VUnFast {
                    dst,
                    a,
                    f,
                    op,
                    ty,
                    lanes,
                } => TStep::VUn {
                    dst: seen_v(*dst, &mut max_vreg),
                    a: seen_v(*a, &mut max_vreg),
                    f: *f,
                    op: *op,
                    ty: *ty,
                    lanes: *lanes,
                },
                DStep::VBinVlFast {
                    dst,
                    a,
                    b,
                    f,
                    op,
                    ty,
                    max_lanes,
                } => TStep::VBinVl {
                    dst: seen_v(*dst, &mut max_vreg),
                    a: seen_v(*a, &mut max_vreg),
                    b: seen_v(*b, &mut max_vreg),
                    f: *f,
                    op: *op,
                    ty: *ty,
                    max_lanes: *max_lanes,
                },
                DStep::VUnVlFast {
                    dst,
                    a,
                    f,
                    op,
                    ty,
                    max_lanes,
                } => TStep::VUnVl {
                    dst: seen_v(*dst, &mut max_vreg),
                    a: seen_v(*a, &mut max_vreg),
                    f: *f,
                    op: *op,
                    ty: *ty,
                    max_lanes: *max_lanes,
                },
                DStep::LoadVFast {
                    dst,
                    base,
                    idx,
                    scale,
                    aligned,
                    disp,
                } => TStep::LoadV {
                    dst: seen_v(*dst, &mut max_vreg),
                    aligned: *aligned,
                    addr: ta(i, 0, *base, *idx, *scale, *disp),
                },
                DStep::StoreVFast {
                    src,
                    base,
                    idx,
                    scale,
                    aligned,
                    disp,
                } => TStep::StoreV {
                    src: seen_v(*src, &mut max_vreg),
                    aligned: *aligned,
                    addr: ta(i, 0, *base, *idx, *scale, *disp),
                },
                DStep::LoadSFast {
                    ty,
                    dst,
                    base,
                    idx,
                    scale,
                    disp,
                } => TStep::LoadS {
                    ty: *ty,
                    dst: *dst,
                    addr: ta(i, 0, *base, *idx, *scale, *disp),
                },
                DStep::StoreSFast {
                    ty,
                    src,
                    base,
                    idx,
                    scale,
                    disp,
                } => TStep::StoreS {
                    ty: *ty,
                    src: *src,
                    addr: ta(i, 0, *base, *idx, *scale, *disp),
                },
                DStep::SBinFast {
                    dst,
                    a,
                    b,
                    f,
                    ty,
                    rty,
                } => TStep::SBin {
                    dst: *dst,
                    a: *a,
                    b: *b,
                    f: *f,
                    ty: *ty,
                    rty: *rty,
                },
                DStep::SBinImmFast {
                    dst,
                    a,
                    imm,
                    f,
                    ty,
                    rty,
                } => TStep::SBinImm {
                    dst: *dst,
                    a: *a,
                    imm: *imm,
                    f: *f,
                    ty: *ty,
                    rty: *rty,
                },
                DStep::MovSFast { dst, src } => TStep::MovS {
                    dst: *dst,
                    src: *src,
                },
                DStep::SplatFast {
                    dst,
                    src,
                    f,
                    ty,
                    lanes,
                } => TStep::Splat {
                    dst: seen_v(*dst, &mut max_vreg),
                    src: *src,
                    f: *f,
                    ty: *ty,
                    lanes: *lanes,
                },
                DStep::VShiftImmFast {
                    dst,
                    a,
                    f,
                    imm,
                    left,
                    ty,
                    lanes,
                } => TStep::VShiftImm {
                    dst: seen_v(*dst, &mut max_vreg),
                    a: seen_v(*a, &mut max_vreg),
                    f: *f,
                    imm: *imm,
                    left: *left,
                    ty: *ty,
                    lanes: *lanes,
                },
                DStep::VShiftRegFast {
                    dst,
                    a,
                    f,
                    amt,
                    left,
                    ty,
                    lanes,
                } => TStep::VShiftReg {
                    dst: seen_v(*dst, &mut max_vreg),
                    a: seen_v(*a, &mut max_vreg),
                    f: *f,
                    amt: *amt,
                    left: *left,
                    ty: *ty,
                    lanes: *lanes,
                },
                DStep::SpillLdFast { dst, slot } => TStep::SpillLd {
                    dst: *dst,
                    slot: *slot,
                },
                DStep::SpillStFast { src, slot } => TStep::SpillSt {
                    src: *src,
                    slot: *slot,
                },
                DStep::VReduceFast {
                    dst,
                    src,
                    f,
                    op,
                    ty,
                    lanes,
                } => TStep::VReduce {
                    dst: *dst,
                    src: seen_v(*src, &mut max_vreg),
                    f: *f,
                    op: *op,
                    ty: *ty,
                    lanes: *lanes,
                },
                DStep::FusedLoadBinStore(p) => TStep::LoadBinStore(Box::new(TLoadBinStore {
                    load_dst: seen_v(p.load_dst, &mut max_vreg),
                    load_aligned: p.load.aligned,
                    load: ta(i, 0, p.load.base, p.load.idx, p.load.scale, p.load.disp),
                    dst: seen_v(p.dst, &mut max_vreg),
                    a: seen_v(p.a, &mut max_vreg),
                    b: seen_v(p.b, &mut max_vreg),
                    f: p.f,
                    op: p.op,
                    ty: p.ty,
                    lanes: p.lanes,
                    store_aligned: p.store.aligned,
                    store: ta(i, 1, p.store.base, p.store.idx, p.store.scale, p.store.disp),
                })),
                DStep::FusedLoadBinBin(p) => TStep::LoadBinBin(Box::new(TLoadBinBin {
                    load_dst: seen_v(p.load_dst, &mut max_vreg),
                    load_aligned: p.load.aligned,
                    load: ta(i, 0, p.load.base, p.load.idx, p.load.scale, p.load.disp),
                    dst1: seen_v(p.dst1, &mut max_vreg),
                    a1: seen_v(p.a1, &mut max_vreg),
                    b1: seen_v(p.b1, &mut max_vreg),
                    f1: p.f1,
                    op1: p.op1,
                    ty1: p.ty1,
                    lanes1: p.lanes1,
                    dst2: seen_v(p.dst2, &mut max_vreg),
                    a2: seen_v(p.a2, &mut max_vreg),
                    b2: seen_v(p.b2, &mut max_vreg),
                    f2: p.f2,
                    op2: p.op2,
                    ty2: p.ty2,
                    lanes2: p.lanes2,
                })),
                DStep::FusedLoadBin(p) => TStep::LoadBin(Box::new(TLoadBin {
                    load_dst: seen_v(p.load_dst, &mut max_vreg),
                    load_aligned: p.load.aligned,
                    load: ta(i, 0, p.load.base, p.load.idx, p.load.scale, p.load.disp),
                    dst: seen_v(p.dst, &mut max_vreg),
                    a: seen_v(p.a, &mut max_vreg),
                    b: seen_v(p.b, &mut max_vreg),
                    f: p.f,
                    op: p.op,
                    ty: p.ty,
                    lanes: p.lanes,
                })),
                DStep::FusedBinStore(p) => TStep::BinStore(Box::new(TBinStore {
                    dst: seen_v(p.dst, &mut max_vreg),
                    a: seen_v(p.a, &mut max_vreg),
                    b: seen_v(p.b, &mut max_vreg),
                    f: p.f,
                    op: p.op,
                    ty: p.ty,
                    lanes: p.lanes,
                    store_aligned: p.store.aligned,
                    store: ta(i, 1, p.store.base, p.store.idx, p.store.scale, p.store.disp),
                })),
                DStep::FusedLoadBinStoreVl(p) => TStep::LoadBinStoreVl(Box::new(TLoadBinStoreVl {
                    load_ty: p.load_ty,
                    load_dst: seen_v(p.load_dst, &mut max_vreg),
                    load: ta(i, 0, p.load.base, p.load.idx, p.load.scale, p.load.disp),
                    dst: seen_v(p.dst, &mut max_vreg),
                    a: seen_v(p.a, &mut max_vreg),
                    b: seen_v(p.b, &mut max_vreg),
                    f: p.f,
                    op: p.op,
                    ty: p.ty,
                    max_lanes: p.max_lanes,
                    store_ty: p.store_ty,
                    store: ta(i, 1, p.store.base, p.store.idx, p.store.scale, p.store.disp),
                })),
                DStep::FusedLatch(p) => {
                    let (first_stream, n_streams) =
                        latch_of.get(&i).map(|&(f, c, _)| (f, c)).unwrap_or((0, 0));
                    TStep::Latch(Box::new(TLatch {
                        dst: p.dst,
                        a: p.a,
                        imm: p.imm,
                        f: p.f,
                        ty: p.ty,
                        rty: p.rty,
                        cond: p.cond,
                        br_a: p.br_a,
                        br_reg: p.br_reg,
                        br_imm: p.br_imm,
                        target: p.target,
                        first_stream,
                        n_streams,
                    }))
                }
                DStep::Op(inst) => lower_op(inst, stride, &mut max_vreg),
            };
            out.push((step, d.cost, u64::from(d.arity)));
            orig.push(i);
        }
        new_index[n] = out.len() as u32;

        // Pass 2: remap control targets from decoded indices to new step
        // positions. A streamed latch's backedge bypasses its own
        // InitStreams step (the cursors are bumped in place); every
        // other transfer to that header goes through it.
        let m = out.len();
        for p in 0..m {
            let i = orig[p];
            match &mut out[p].0 {
                TStep::Jump { target }
                | TStep::Branch { target, .. }
                | TStep::BranchImm { target, .. } => {
                    *target = new_index[*target as usize];
                }
                TStep::Latch(l) => {
                    let t = l.target as usize;
                    l.target = if latch_of.contains_key(&i) {
                        header_pos[t]
                    } else {
                        new_index[t]
                    };
                }
                _ => {}
            }
        }

        // Pass 2.5: scalar pair fusion. Merge two adjacent
        // register-register scalar ALU steps into one dispatch whenever
        // no control transfer can land on the second one (the first may
        // be a target: the pair starts there). Scalar-chain loop bodies
        // (derived address arithmetic like `a[i*n + j]`) are dispatch-
        // bound, not work-bound; the pair executes both constituents in
        // order with both register writes, and carries their combined
        // cycle/arity charge, so state, stats, and traps are exactly the
        // unfused sequence.
        let targets: HashSet<u32> = out
            .iter()
            .filter_map(|(s, ..)| match s {
                TStep::Jump { target }
                | TStep::Branch { target, .. }
                | TStep::BranchImm { target, .. } => Some(*target),
                TStep::Latch(l) => Some(l.target),
                _ => None,
            })
            .collect();
        let old_len = out.len();
        let mut fused: Vec<(TStep, u64, u64)> = Vec::with_capacity(old_len);
        let mut old2new = vec![0u32; old_len + 1];
        let mut it = out.into_iter().enumerate().peekable();
        while let Some((p, (step, c, ar))) = it.next() {
            old2new[p] = fused.len() as u32;
            if let TStep::SBin {
                dst,
                a: ra,
                b: rb,
                f,
                ty,
                rty,
            } = step
            {
                let mergeable = matches!(
                    it.peek(),
                    Some((q, (TStep::SBin { .. }, ..))) if !targets.contains(&(*q as u32))
                );
                if mergeable {
                    let Some((
                        q,
                        (
                            TStep::SBin {
                                dst: dst2,
                                a: a2,
                                b: b2,
                                f: f2,
                                ty: ty2,
                                rty: rty2,
                            },
                            c2,
                            ar2,
                        ),
                    )) = it.next()
                    else {
                        unreachable!("peeked pair vanished");
                    };
                    old2new[q] = fused.len() as u32;
                    fused.push((
                        TStep::SBin2(Box::new(TSBin2 {
                            dst1: dst,
                            a1: ra,
                            b1: rb,
                            f1: f,
                            ty1: ty,
                            rty1: rty,
                            dst2,
                            a2,
                            b2,
                            f2,
                            ty2,
                            rty2,
                        })),
                        c + c2,
                        ar + ar2,
                    ));
                    continue;
                }
                fused.push((
                    TStep::SBin {
                        dst,
                        a: ra,
                        b: rb,
                        f,
                        ty,
                        rty,
                    },
                    c,
                    ar,
                ));
                continue;
            }
            fused.push((step, c, ar));
        }
        old2new[old_len] = fused.len() as u32;
        for (step, ..) in &mut fused {
            match step {
                TStep::Jump { target }
                | TStep::Branch { target, .. }
                | TStep::BranchImm { target, .. } => *target = old2new[*target as usize],
                TStep::Latch(l) => l.target = old2new[l.target as usize],
                _ => {}
            }
        }
        let out = fused;
        let m = out.len();

        // Pass 3: region construction. Leaders: entry, every branch
        // target, every fall-through after a control step.
        let mut leaders: BTreeSet<usize> = BTreeSet::new();
        leaders.insert(0);
        leaders.insert(m);
        for (p, (step, ..)) in out.iter().enumerate() {
            match step {
                TStep::Jump { target }
                | TStep::Branch { target, .. }
                | TStep::BranchImm { target, .. } => {
                    leaders.insert(p + 1);
                    leaders.insert(*target as usize);
                }
                TStep::Latch(l) => {
                    leaders.insert(p + 1);
                    leaders.insert(l.target as usize);
                }
                _ => {}
            }
        }
        let bounds: Vec<usize> = leaders.into_iter().collect();
        let mut regions = Vec::with_capacity(bounds.len());
        let mut pos2region = vec![u32::MAX; m + 1];
        for w in bounds.windows(2) {
            let (first, end) = (w[0], w[1]);
            pos2region[first] = regions.len() as u32;
            let (mut arity, mut cost) = (0u64, 0u64);
            for (_, c, a) in &out[first..end] {
                cost += c;
                arity += a;
            }
            regions.push(Region {
                first: first as u32,
                n: (end - first) as u32,
                arity,
                cost,
            });
        }
        pos2region[m] = regions.len() as u32;

        // Pass 4: control targets from step positions to region indices.
        let mut steps_out: Vec<TStep> = out.into_iter().map(|(s, ..)| s).collect();
        for step in &mut steps_out {
            match step {
                TStep::Jump { target }
                | TStep::Branch { target, .. }
                | TStep::BranchImm { target, .. } => {
                    *target = pos2region[*target as usize];
                    debug_assert_ne!(*target, u32::MAX);
                }
                TStep::Latch(l) => {
                    l.target = pos2region[l.target as usize];
                    debug_assert_ne!(l.target, u32::MAX);
                }
                _ => {}
            }
        }

        let n_vregs = code.n_vregs.max(max_vreg) as usize;
        ThreadedProgram {
            steps: steps_out,
            regions,
            streams,
            len: prog.len,
            vs,
            stride,
            n_vregs,
            streamed_loops,
        }
    }
}

// ---- Disassembly ----------------------------------------------------

fn taddr_str(a: &TAddr) -> String {
    match *a {
        TAddr::Direct {
            base,
            idx,
            scale,
            disp,
        } => {
            let mut s = format!("[{base}");
            if idx != NO_INDEX {
                let _ = write!(s, " + {}*{scale}", SReg(idx));
            }
            if disp != 0 {
                let _ = write!(s, " {} {}", if disp < 0 { "-" } else { "+" }, disp.abs());
            }
            s.push(']');
            s
        }
        TAddr::Stream(s) => format!("[s{s}]"),
    }
}

fn au(aligned: bool) -> &'static str {
    if aligned {
        "a"
    } else {
        "u"
    }
}

/// One threaded step as text. Arena byte offsets render back as the
/// register numbers they encode (`off / stride`), streams as `[sN]`,
/// control targets as `@RN` region indices.
fn tstep_str(step: &TStep, stride: usize) -> String {
    let v = |off: u32| format!("v{}", off as usize / stride);
    match step {
        TStep::Jump { target } => format!("  jmp @R{target}"),
        TStep::Branch { cond, a, b, target } => format!("  b.{cond:?} {a}, {b} -> @R{target}"),
        TStep::BranchImm {
            cond,
            a,
            imm,
            target,
        } => format!("  b.{cond:?} {a}, #{imm} -> @R{target}"),
        TStep::InitStreams { first, n } => {
            if *n == 1 {
                format!("  init s{first}")
            } else {
                format!("  init s{first}..s{}", first + n - 1)
            }
        }
        TStep::VBin {
            dst,
            a,
            b,
            op,
            ty,
            lanes,
            ..
        } => format!(
            "  {} = v{op:?}.fast.{ty} {}, {} ; {lanes} lanes",
            v(*dst),
            v(*a),
            v(*b)
        ),
        TStep::VUn {
            dst,
            a,
            op,
            ty,
            lanes,
            ..
        } => format!(
            "  {} = v{op:?}.fast.{ty} {} ; {lanes} lanes",
            v(*dst),
            v(*a)
        ),
        TStep::MovV { dst, src } => format!("  {} = {} ; slot copy", v(*dst), v(*src)),
        TStep::VBinVl {
            dst,
            a,
            b,
            op,
            ty,
            max_lanes,
            ..
        } => format!(
            "  {} = v{op:?}.vl.fast.{ty} {}, {} ; vl<={max_lanes}",
            v(*dst),
            v(*a),
            v(*b)
        ),
        TStep::VUnVl {
            dst,
            a,
            op,
            ty,
            max_lanes,
            ..
        } => format!(
            "  {} = v{op:?}.vl.fast.{ty} {} ; vl<={max_lanes}",
            v(*dst),
            v(*a)
        ),
        TStep::LoadV { dst, aligned, addr } => {
            format!(
                "  {} = vld.fast.{} {}",
                v(*dst),
                au(*aligned),
                taddr_str(addr)
            )
        }
        TStep::StoreV { src, aligned, addr } => {
            format!(
                "  vst.fast.{} {}, {}",
                au(*aligned),
                taddr_str(addr),
                v(*src)
            )
        }
        TStep::LoadS { ty, dst, addr } => format!("  {dst} = ld.fast.{ty} {}", taddr_str(addr)),
        TStep::StoreS { ty, src, addr } => format!("  st.fast.{ty} {}, {src}", taddr_str(addr)),
        TStep::LoadVl { ty, dst, addr } => {
            format!("  {} = vld.vl.fast.{ty} {}", v(*dst), taddr_str(addr))
        }
        TStep::StoreVl { ty, src, addr } => {
            format!("  vst.vl.fast.{ty} {}, {}", taddr_str(addr), v(*src))
        }
        TStep::SBin {
            dst, a, b, ty, rty, ..
        } => format!("  {dst} = sbin.fast.{ty} {a}, {b} -> {rty}"),
        TStep::SBinImm {
            dst,
            a,
            imm,
            ty,
            rty,
            ..
        } => format!("  {dst} = sbin.fast.{ty} {a}, #{imm} -> {rty}"),
        TStep::SBin2(p) => format!(
            "  fuse2s {} = sbin.fast.{} {}, {} -> {} | {} = sbin.fast.{} {}, {} -> {}",
            p.dst1, p.ty1, p.a1, p.b1, p.rty1, p.dst2, p.ty2, p.a2, p.b2, p.rty2
        ),
        TStep::MovS { dst, src } => format!("  {dst} = {src} ; fast"),
        TStep::MovImm { dst, v } => match v {
            Value::Int(i) => format!("  {dst} = #{i} ; imm fast"),
            Value::Float(f) => format!("  {dst} = #{f:?} ; imm fast"),
        },
        TStep::Splat {
            dst,
            src,
            ty,
            lanes,
            ..
        } => format!("  {} = splat.fast.{ty} {src} ; {lanes} lanes", v(*dst)),
        TStep::VShiftImm {
            dst,
            a,
            imm,
            left,
            ty,
            lanes,
            ..
        } => {
            let dir = if *left { "shl" } else { "shr" };
            format!(
                "  {} = v{dir}.fast.{ty} {}, #{imm} ; {lanes} lanes",
                v(*dst),
                v(*a)
            )
        }
        TStep::VShiftReg {
            dst,
            a,
            amt,
            left,
            ty,
            lanes,
            ..
        } => {
            let dir = if *left { "shl" } else { "shr" };
            format!(
                "  {} = v{dir}.fast.{ty} {}, {amt} ; {lanes} lanes",
                v(*dst),
                v(*a)
            )
        }
        TStep::SpillLd { dst, slot } => format!("  {dst} = reload.fast slot{slot}"),
        TStep::SpillSt { src, slot } => format!("  spill.fast slot{slot} = {src}"),
        TStep::VReduce {
            dst,
            src,
            op,
            ty,
            lanes,
            ..
        } => {
            let o = match op {
                ReduceOp::Plus => "add",
                ReduceOp::Max => "max",
                ReduceOp::Min => "min",
            };
            format!(
                "  {dst} = vreduce.fast.{o}.{ty} {} ; {lanes} lanes",
                v(*src)
            )
        }
        TStep::LoadBinStore(p) => format!(
            "  fuse3 {} = vld.{} {} | {} = v{:?}.{} {}, {} | vst.{} {}, {} ; {} lanes",
            v(p.load_dst),
            au(p.load_aligned),
            taddr_str(&p.load),
            v(p.dst),
            p.op,
            p.ty,
            v(p.a),
            v(p.b),
            au(p.store_aligned),
            taddr_str(&p.store),
            v(p.dst),
            p.lanes
        ),
        TStep::LoadBinBin(p) => format!(
            "  fuse3 {} = vld.{} {} | {} = v{:?}.{} {}, {} | {} = v{:?}.{} {}, {} ; {} lanes",
            v(p.load_dst),
            au(p.load_aligned),
            taddr_str(&p.load),
            v(p.dst1),
            p.op1,
            p.ty1,
            v(p.a1),
            v(p.b1),
            v(p.dst2),
            p.op2,
            p.ty2,
            v(p.a2),
            v(p.b2),
            p.lanes2
        ),
        TStep::LoadBin(p) => format!(
            "  fuse2 {} = vld.{} {} | {} = v{:?}.{} {}, {} ; {} lanes",
            v(p.load_dst),
            au(p.load_aligned),
            taddr_str(&p.load),
            v(p.dst),
            p.op,
            p.ty,
            v(p.a),
            v(p.b),
            p.lanes
        ),
        TStep::BinStore(p) => format!(
            "  fuse2 {} = v{:?}.{} {}, {} | vst.{} {}, {} ; {} lanes",
            v(p.dst),
            p.op,
            p.ty,
            v(p.a),
            v(p.b),
            au(p.store_aligned),
            taddr_str(&p.store),
            v(p.dst),
            p.lanes
        ),
        TStep::LoadBinStoreVl(p) => format!(
            "  fuse3 {} = vld.vl.{} {} | {} = v{:?}.vl.{} {}, {} | vst.vl.{} {}, {} ; vl<={}",
            v(p.load_dst),
            p.load_ty,
            taddr_str(&p.load),
            v(p.dst),
            p.op,
            p.ty,
            v(p.a),
            v(p.b),
            p.store_ty,
            taddr_str(&p.store),
            v(p.dst),
            p.max_lanes
        ),
        TStep::Latch(p) => {
            let rhs = if p.br_reg == NO_INDEX {
                format!("#{}", p.br_imm)
            } else {
                SReg(p.br_reg).to_string()
            };
            let bumps = match p.n_streams {
                0 => String::new(),
                1 => format!(" ; bumps s{}", p.first_stream),
                _ => format!(
                    " ; bumps s{}..s{}",
                    p.first_stream,
                    p.first_stream + p.n_streams - 1
                ),
            };
            format!(
                "  fuse2 {} = sbin.fast.{} {}, #{} -> {} | b.{:?} {}, {} -> @R{}{bumps}",
                p.dst, p.ty, p.a, p.imm, p.rty, p.cond, p.br_a, rhs, p.target
            )
        }
        TStep::ScalarOp(inst) => format!("{} ; scalar op", crate::disasm::disasm_inst(inst)),
        TStep::VectorOp(inst) => format!(
            "{} ; vector op (arena sync)",
            crate::disasm::disasm_inst(inst)
        ),
    }
}

/// Whole threaded program as text: the stream table, then the steps
/// grouped by region with each region's pre-summed fuel/cycle charge.
pub fn disasm_threaded(prog: &ThreadedProgram) -> String {
    let mut out = format!(
        "; threaded for VS={} ({} steps / {} regions / {} insts, {} streams in {} loops)\n",
        prog.vs,
        prog.n_steps(),
        prog.regions.len(),
        prog.len,
        prog.streams.len(),
        prog.streamed_loops,
    );
    for (i, s) in prog.streams.iter().enumerate() {
        let shape = taddr_str(&TAddr::Direct {
            base: s.base,
            idx: s.idx,
            scale: s.scale,
            disp: s.disp,
        });
        let _ = writeln!(
            out,
            "; s{i} = {shape}, step {}{}",
            if s.delta < 0 { "-" } else { "+" },
            s.delta.abs()
        );
    }
    for (r, reg) in prog.regions.iter().enumerate() {
        let _ = writeln!(out, "R{r}: ; {} insts, {} cycles", reg.arity, reg.cost);
        for step in &prog.steps[reg.first as usize..(reg.first + reg.n) as usize] {
            out.push_str(&tstep_str(step, prog.stride));
            out.push('\n');
        }
    }
    out
}

/// Lower a generic [`DStep::Op`] instruction: predicated memory ops get
/// dedicated arena steps, instructions touching only scalar state skip
/// arena synchronization, everything else pays a full arena round-trip.
fn lower_op(inst: &MInst, stride: usize, max_vreg: &mut u32) -> TStep {
    match inst {
        MInst::LoadVl { ty, dst, addr } => {
            if let Some((base, idx, scale, disp)) = flatten_addr(addr) {
                *max_vreg = (*max_vreg).max(dst.0 + 1);
                return TStep::LoadVl {
                    ty: *ty,
                    dst: dst.0 * stride as u32,
                    addr: TAddr::Direct {
                        base,
                        idx,
                        scale,
                        disp,
                    },
                };
            }
            TStep::VectorOp(inst.clone())
        }
        MInst::StoreVl { ty, src, addr } => {
            if let Some((base, idx, scale, disp)) = flatten_addr(addr) {
                *max_vreg = (*max_vreg).max(src.0 + 1);
                return TStep::StoreVl {
                    ty: *ty,
                    src: src.0 * stride as u32,
                    addr: TAddr::Direct {
                        base,
                        idx,
                        scale,
                        disp,
                    },
                };
            }
            TStep::VectorOp(inst.clone())
        }
        MInst::MovV { dst, src } => {
            *max_vreg = (*max_vreg).max(dst.0.max(src.0) + 1);
            TStep::MovV {
                dst: dst.0 * stride as u32,
                src: src.0 * stride as u32,
            }
        }
        MInst::MovImmI { dst, imm } => TStep::MovImm {
            dst: *dst,
            v: Value::Int(*imm),
        },
        MInst::MovImmF { dst, imm } => TStep::MovImm {
            dst: *dst,
            v: Value::Float(*imm),
        },
        MInst::MovS { .. }
        | MInst::SBin { .. }
        | MInst::FpuBin { .. }
        | MInst::SBinImm { .. }
        | MInst::SUn { .. }
        | MInst::SCvt { .. }
        | MInst::LoadS { .. }
        | MInst::StoreS { .. }
        | MInst::SpillLd { .. }
        | MInst::SpillSt { .. }
        | MInst::SetVl { .. } => TStep::ScalarOp(inst.clone()),
        _ => TStep::VectorOp(inst.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrMode, Label, MemAlign, VReg};
    use crate::machine::Machine;
    use crate::target::sse;
    use vapor_ir::sem::Value;

    fn mcode(insts: Vec<MInst>) -> MCode {
        MCode {
            insts,
            n_sregs: 16,
            n_vregs: 16,
            note: String::new(),
        }
    }

    /// A byte-copy loop: `for (i = 0; i < 64; i += 16) dst[i] = src[i]`
    /// over whole vectors, with an `i64` induction the latch fuser
    /// recognizes.
    fn copy_loop() -> MCode {
        mcode(vec![
            MInst::Label(Label(0)),
            MInst::LoadV {
                dst: VReg(0),
                addr: AddrMode::fused(SReg(0), SReg(2), 1, 0),
                align: MemAlign::Unaligned,
            },
            MInst::StoreV {
                src: VReg(0),
                addr: AddrMode::fused(SReg(1), SReg(2), 1, 0),
                align: MemAlign::Unaligned,
            },
            MInst::SBinImm {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: SReg(2),
                a: SReg(2),
                imm: 16,
            },
            MInst::BranchImm {
                cond: crate::isa::Cond::Lt,
                a: SReg(2),
                imm: 64,
                target: Label(0),
            },
        ])
    }

    fn copy_machine<'t>(t: &'t crate::target::TargetDesc) -> (Machine<'t>, u64, u64) {
        let mut m = Machine::new(t, 4096);
        let src = m.mem.alloc(64, 16);
        let dst = m.mem.alloc(64, 16);
        for k in 0..64u64 {
            m.mem.write(ScalarTy::I8, src + k, Value::Int(k as i64 + 1));
        }
        m.set_sreg(SReg(0), Value::Int(src as i64));
        m.set_sreg(SReg(1), Value::Int(dst as i64));
        m.set_sreg(SReg(2), Value::Int(0));
        (m, src, dst)
    }

    #[test]
    fn affine_loop_legs_become_streams() {
        let t = sse();
        let c = copy_loop();
        let prog = DecodedProgram::decode(&c, &t).unwrap();
        let tp = ThreadedProgram::thread(&prog, &c);
        assert_eq!(tp.streamed_loops(), 1, "{}", disasm_threaded(&tp));
        assert_eq!(tp.streams().len(), 2, "{}", disasm_threaded(&tp));
        for s in tp.streams() {
            assert_eq!(s.delta, 16);
        }
        let text = disasm_threaded(&tp);
        assert!(text.contains("init s0..s1"), "{text}");
        assert!(text.contains("[s0]"), "{text}");
        assert!(text.contains("bumps s0..s1"), "{text}");
    }

    #[test]
    fn threaded_copy_matches_decoded_bit_for_bit() {
        let t = sse();
        let c = copy_loop();
        let prog = DecodedProgram::decode(&c, &t).unwrap();
        let tp = ThreadedProgram::thread(&prog, &c);
        let (mut md, _, dstd) = copy_machine(&t);
        let sd = md.run_decoded(&prog).unwrap();
        let (mut mt, _, dstt) = copy_machine(&t);
        let st = mt.run_threaded(&tp).unwrap();
        assert_eq!(sd, st, "cycles/insts diverged");
        for k in 0..64u64 {
            assert_eq!(
                md.mem.read(ScalarTy::I8, dstd + k),
                mt.mem.read(ScalarTy::I8, dstt + k),
                "byte {k}"
            );
        }
        assert_eq!(md.sreg(SReg(2)), mt.sreg(SReg(2)));
    }

    #[test]
    fn region_fuel_traps_before_any_region_instruction_runs() {
        let t = sse();
        let c = copy_loop();
        let prog = DecodedProgram::decode(&c, &t).unwrap();
        let tp = ThreadedProgram::thread(&prog, &c);
        let (mut m, _, dst) = copy_machine(&t);
        m.fuel = 1; // the first region needs more
        let err = m.run_threaded(&tp).unwrap_err();
        assert!(err.0.contains("fuel exhausted after 0"), "{err}");
        assert_eq!(
            m.mem.read(ScalarTy::I8, dst),
            Value::Int(0),
            "no store may have landed"
        );
    }

    #[test]
    fn invalid_stream_base_falls_back_to_the_decoded_trap() {
        let t = sse();
        let c = copy_loop();
        let prog = DecodedProgram::decode(&c, &t).unwrap();
        let tp = ThreadedProgram::thread(&prog, &c);
        let (mut m, _, _) = copy_machine(&t);
        // A float in the base register: stream init goes invalid and the
        // load's fallback must produce the decoded tier's exact trap.
        m.set_sreg(SReg(0), Value::Float(1.5));
        let te = m.run_threaded(&tp).unwrap_err();
        let (mut md, _, _) = copy_machine(&t);
        md.set_sreg(SReg(0), Value::Float(1.5));
        let de = md.run_decoded(&prog).unwrap_err();
        assert_eq!(te, de);
    }
}

//! Compact textual disassembly of machine code (for examples, debugging
//! and golden tests).

use std::fmt::Write as _;

use crate::isa::{AddrMode, CvtDir, Half, MCode, MInst, MemAlign, ReduceOp, ShiftSrc};

fn addr(a: &AddrMode) -> String {
    let mut s = format!("[{}", a.base);
    if let Some(i) = a.idx {
        let _ = write!(s, " + {i}*{}", a.scale);
    }
    if a.disp != 0 {
        let _ = write!(
            s,
            " {} {}",
            if a.disp < 0 { "-" } else { "+" },
            a.disp.abs()
        );
    }
    s.push(']');
    s
}

fn half(h: Half) -> &'static str {
    match h {
        Half::Lo => "lo",
        Half::Hi => "hi",
    }
}

fn mem(a: MemAlign) -> &'static str {
    match a {
        MemAlign::Aligned => "a",
        MemAlign::Unaligned => "u",
    }
}

/// One instruction as text.
pub fn disasm_inst(inst: &MInst) -> String {
    use MInst::*;
    match inst {
        Label(l) => format!("{l}:"),
        Jump(l) => format!("  jmp {l}"),
        Branch { cond, a, b, target } => format!("  b.{cond:?} {a}, {b} -> {target}"),
        BranchImm {
            cond,
            a,
            imm,
            target,
        } => format!("  b.{cond:?} {a}, #{imm} -> {target}"),
        MovImmI { dst, imm } => format!("  {dst} = #{imm}"),
        MovImmF { dst, imm } => format!("  {dst} = #{imm:?}"),
        MovS { dst, src } => format!("  {dst} = {src}"),
        SBin { op, ty, dst, a, b } => format!("  {dst} = {op:?}.{ty} {a}, {b}"),
        SBinImm {
            op,
            ty,
            dst,
            a,
            imm,
        } => format!("  {dst} = {op:?}.{ty} {a}, #{imm}"),
        SUn { op, ty, dst, a } => format!("  {dst} = {op:?}.{ty} {a}"),
        SCvt { from, to, dst, a } => format!("  {dst} = cvt.{from}->{to} {a}"),
        FpuBin { op, ty, dst, a, b } => format!("  {dst} = x87.{op:?}.{ty} {a}, {b}"),
        LoadS { ty, dst, addr: am } => format!("  {dst} = ld.{ty} {}", addr(am)),
        StoreS { ty, src, addr: am } => format!("  st.{ty} {}, {src}", addr(am)),
        LoadV {
            dst,
            addr: am,
            align,
        } => format!("  {dst} = vld.{} {}", mem(*align), addr(am)),
        LoadVFloor { dst, addr: am } => format!("  {dst} = vld.floor {}", addr(am)),
        StoreV {
            src,
            addr: am,
            align,
        } => format!("  vst.{} {}, {src}", mem(*align), addr(am)),
        Splat { ty, dst, src } => format!("  {dst} = splat.{ty} {src}"),
        Iota {
            ty,
            dst,
            start,
            inc,
        } => format!("  {dst} = iota.{ty} {start}, {inc}"),
        SetLane { ty, dst, lane, src } => format!("  {dst}[{lane}].{ty} = {src}"),
        GetLane { ty, dst, src, lane } => format!("  {dst} = {src}[{lane}].{ty}"),
        VBin { op, ty, dst, a, b } => format!("  {dst} = v{op:?}.{ty} {a}, {b}"),
        VUn { op, ty, dst, a } => format!("  {dst} = v{op:?}.{ty} {a}"),
        VShift {
            left,
            ty,
            dst,
            a,
            amt,
        } => {
            let dir = if *left { "shl" } else { "shr" };
            let amt = match amt {
                ShiftSrc::Imm(v) => format!("#{v}"),
                ShiftSrc::Reg(r) => r.to_string(),
                ShiftSrc::PerLane(v) => format!("{v} (per-lane)"),
            };
            format!("  {dst} = v{dir}.{ty} {a}, {amt}")
        }
        VWidenMul {
            half: h,
            ty,
            dst,
            a,
            b,
        } => {
            format!("  {dst} = vwidenmul.{}.{ty} {a}, {b}", half(*h))
        }
        VDotAcc { ty, dst, a, b, acc } => format!("  {dst} = vdot.{ty} {a}, {b} + {acc}"),
        VPack { ty, dst, a, b } => format!("  {dst} = vpack.{ty} {a}, {b}"),
        VUnpack {
            half: h,
            ty,
            dst,
            a,
        } => format!("  {dst} = vunpack.{}.{ty} {a}", half(*h)),
        VCvt { dir, ty, dst, a } => {
            let d = match dir {
                CvtDir::IntToFloat => "i2f",
                CvtDir::FloatToInt => "f2i",
            };
            format!("  {dst} = vcvt.{d}.{ty} {a}")
        }
        VInterleave {
            half: h,
            ty,
            dst,
            a,
            b,
        } => {
            format!("  {dst} = vinterleave.{}.{ty} {a}, {b}", half(*h))
        }
        VExtractStride {
            ty,
            stride,
            offset,
            dst,
            srcs,
        } => {
            let srcs: Vec<String> = srcs.iter().map(|r| r.to_string()).collect();
            format!(
                "  {dst} = vextract.{ty} s={stride} off={offset} {}",
                srcs.join(", ")
            )
        }
        VPermCtrl { dst, addr: am } => format!("  {dst} = lvsr {}", addr(am)),
        VPerm { dst, a, b, ctrl } => format!("  {dst} = vperm {a}, {b}, {ctrl}"),
        VReduce { op, ty, dst, src } => {
            let o = match op {
                ReduceOp::Plus => "add",
                ReduceOp::Max => "max",
                ReduceOp::Min => "min",
            };
            format!("  {dst} = vreduce.{o}.{ty} {src}")
        }
        MovV { dst, src } => format!("  {dst} = {src}"),
        SpillLd { dst, slot } => format!("  {dst} = reload slot{slot}"),
        SpillSt { src, slot } => format!("  spill slot{slot} = {src}"),
        VHelper { op, ty, dst, a, b } => {
            let b = b.map(|r| format!(", {r}")).unwrap_or_default();
            format!(
                "  {dst} = call {}.{ty}({a}{b})",
                crate::cost::helper_name(*op)
            )
        }
        SetVl { ty, dst, avl } => format!("  {dst} = setvl.{ty} {avl}"),
        LoadVl { ty, dst, addr: am } => format!("  {dst} = vld.vl.{ty} {}", addr(am)),
        StoreVl { ty, src, addr: am } => format!("  vst.vl.{ty} {}, {src}", addr(am)),
        VBinVl { op, ty, dst, a, b } => format!("  {dst} = v{op:?}.vl.{ty} {a}, {b}"),
        VUnVl { op, ty, dst, a } => format!("  {dst} = v{op:?}.vl.{ty} {a}"),
    }
}

/// Flattened address fields of a fast memory step as text.
fn fast_addr(base: crate::isa::SReg, idx: u32, scale: u8, disp: i32) -> String {
    let m = crate::isa::AddrMode {
        base,
        idx: (idx != crate::decode::NO_INDEX).then_some(crate::isa::SReg(idx)),
        scale,
        disp: disp as i64,
    };
    addr(&m)
}

/// One decoded step as text: fast-kernel forms are annotated so tests
/// and debugging sessions can see which instructions escaped the
/// generic interpreter (`.fast` all-lanes kernels, `.vl.fast` the
/// merging-predicated runtime-VL kernels).
pub fn disasm_step(step: &crate::decode::DStep) -> String {
    use crate::decode::DStep;
    match step {
        DStep::Jump { target } => format!("  jmp @{target}"),
        DStep::Branch { cond, a, b, target } => format!("  b.{cond:?} {a}, {b} -> @{target}"),
        DStep::BranchImm {
            cond,
            a,
            imm,
            target,
        } => format!("  b.{cond:?} {a}, #{imm} -> @{target}"),
        DStep::SBinFast {
            dst, a, b, ty, rty, ..
        } => format!("  {dst} = sbin.fast.{ty} {a}, {b} -> {rty}"),
        DStep::SBinImmFast {
            dst,
            a,
            imm,
            ty,
            rty,
            ..
        } => format!("  {dst} = sbin.fast.{ty} {a}, #{imm} -> {rty}"),
        DStep::MovSFast { dst, src } => format!("  {dst} = {src} ; fast"),
        DStep::LoadVFast {
            dst,
            base,
            idx,
            scale,
            aligned,
            disp,
        } => format!(
            "  {dst} = vld.fast.{} {}",
            if *aligned { "a" } else { "u" },
            fast_addr(*base, *idx, *scale, *disp)
        ),
        DStep::StoreVFast {
            src,
            base,
            idx,
            scale,
            aligned,
            disp,
        } => format!(
            "  vst.fast.{} {}, {src}",
            if *aligned { "a" } else { "u" },
            fast_addr(*base, *idx, *scale, *disp)
        ),
        DStep::LoadSFast {
            ty,
            dst,
            base,
            idx,
            scale,
            disp,
        } => format!(
            "  {dst} = ld.fast.{ty} {}",
            fast_addr(*base, *idx, *scale, *disp)
        ),
        DStep::StoreSFast {
            ty,
            src,
            base,
            idx,
            scale,
            disp,
        } => format!(
            "  st.fast.{ty} {}, {src}",
            fast_addr(*base, *idx, *scale, *disp)
        ),
        DStep::VBinFast {
            dst,
            a,
            b,
            op,
            ty,
            lanes,
            ..
        } => format!("  {dst} = v{op:?}.fast.{ty} {a}, {b} ; {lanes} lanes"),
        DStep::VUnFast {
            dst,
            a,
            op,
            ty,
            lanes,
            ..
        } => format!("  {dst} = v{op:?}.fast.{ty} {a} ; {lanes} lanes"),
        DStep::VBinVlFast {
            dst,
            a,
            b,
            op,
            ty,
            max_lanes,
            ..
        } => format!("  {dst} = v{op:?}.vl.fast.{ty} {a}, {b} ; vl<={max_lanes}"),
        DStep::VUnVlFast {
            dst,
            a,
            op,
            ty,
            max_lanes,
            ..
        } => format!("  {dst} = v{op:?}.vl.fast.{ty} {a} ; vl<={max_lanes}"),
        DStep::SplatFast {
            dst,
            src,
            ty,
            lanes,
            ..
        } => format!("  {dst} = splat.fast.{ty} {src} ; {lanes} lanes"),
        DStep::VShiftImmFast {
            dst,
            a,
            imm,
            left,
            ty,
            lanes,
            ..
        } => {
            let dir = if *left { "shl" } else { "shr" };
            format!("  {dst} = v{dir}.fast.{ty} {a}, #{imm} ; {lanes} lanes")
        }
        DStep::VShiftRegFast {
            dst,
            a,
            amt,
            left,
            ty,
            lanes,
            ..
        } => {
            let dir = if *left { "shl" } else { "shr" };
            format!("  {dst} = v{dir}.fast.{ty} {a}, {amt} ; {lanes} lanes")
        }
        DStep::SpillLdFast { dst, slot } => format!("  {dst} = reload.fast slot{slot}"),
        DStep::SpillStFast { src, slot } => format!("  spill.fast slot{slot} = {src}"),
        DStep::VReduceFast {
            dst,
            src,
            op,
            ty,
            lanes,
            ..
        } => {
            let o = match op {
                crate::isa::ReduceOp::Plus => "add",
                crate::isa::ReduceOp::Max => "max",
                crate::isa::ReduceOp::Min => "min",
            };
            format!("  {dst} = vreduce.fast.{o}.{ty} {src} ; {lanes} lanes")
        }
        DStep::FusedLoadBinStore(p) => format!(
            "  fuse3 {} = vld.{} {} | {} = v{:?}.{} {}, {} | vst.{} {}, {} ; {} lanes",
            p.load_dst,
            if p.load.aligned { "a" } else { "u" },
            fused_addr(&p.load),
            p.dst,
            p.op,
            p.ty,
            p.a,
            p.b,
            if p.store.aligned { "a" } else { "u" },
            fused_addr(&p.store),
            p.dst,
            p.lanes
        ),
        DStep::FusedLoadBinBin(p) => format!(
            "  fuse3 {} = vld.{} {} | {} = v{:?}.{} {}, {} | {} = v{:?}.{} {}, {} ; {} lanes",
            p.load_dst,
            if p.load.aligned { "a" } else { "u" },
            fused_addr(&p.load),
            p.dst1,
            p.op1,
            p.ty1,
            p.a1,
            p.b1,
            p.dst2,
            p.op2,
            p.ty2,
            p.a2,
            p.b2,
            p.lanes2
        ),
        DStep::FusedLoadBin(p) => format!(
            "  fuse2 {} = vld.{} {} | {} = v{:?}.{} {}, {} ; {} lanes",
            p.load_dst,
            if p.load.aligned { "a" } else { "u" },
            fused_addr(&p.load),
            p.dst,
            p.op,
            p.ty,
            p.a,
            p.b,
            p.lanes
        ),
        DStep::FusedBinStore(p) => format!(
            "  fuse2 {} = v{:?}.{} {}, {} | vst.{} {}, {} ; {} lanes",
            p.dst,
            p.op,
            p.ty,
            p.a,
            p.b,
            if p.store.aligned { "a" } else { "u" },
            fused_addr(&p.store),
            p.dst,
            p.lanes
        ),
        DStep::FusedLoadBinStoreVl(p) => format!(
            "  fuse3 {} = vld.vl.{} {} | {} = v{:?}.vl.{} {}, {} | vst.vl.{} {}, {} ; vl<={}",
            p.load_dst,
            p.load_ty,
            fused_addr(&p.load),
            p.dst,
            p.op,
            p.ty,
            p.a,
            p.b,
            p.store_ty,
            fused_addr(&p.store),
            p.dst,
            p.max_lanes
        ),
        DStep::FusedLatch(p) => {
            let rhs = if p.br_reg == crate::decode::NO_INDEX {
                format!("#{}", p.br_imm)
            } else {
                crate::isa::SReg(p.br_reg).to_string()
            };
            format!(
                "  fuse2 {} = sbin.fast.{} {}, #{} -> {} | b.{:?} {}, {} -> @{}",
                p.dst, p.ty, p.a, p.imm, p.rty, p.cond, p.br_a, rhs, p.target
            )
        }
        DStep::Op(inst) => disasm_inst(inst),
    }
}

/// Flattened address of a fused superinstruction leg as text.
fn fused_addr(m: &crate::decode::FusedAddr) -> String {
    fast_addr(m.base, m.idx, m.scale, m.disp)
}

/// Whole decoded program as text (one line per step; superinstructions
/// render their constituents `|`-joined on one line).
pub fn disasm_decoded(prog: &crate::decode::DecodedProgram) -> String {
    let mut out = format!(
        "; decoded for VS={} ({} steps / {} insts, {} superinstructions)\n",
        prog.vs,
        prog.n_steps(),
        prog.len,
        prog.fusion_stats().total()
    );
    for d in prog.steps() {
        out.push_str(&disasm_step(&d.step));
        out.push('\n');
    }
    out
}

/// Whole function as text.
pub fn disasm(code: &MCode) -> String {
    let mut out = format!("; {} ({} insts)\n", code.note, code.len());
    for inst in &code.insts {
        out.push_str(&disasm_inst(inst));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Label, SReg, VReg};
    use vapor_ir::{BinOp, ScalarTy};

    #[test]
    fn renders_core_instructions() {
        let code = MCode {
            insts: vec![
                MInst::Label(Label(0)),
                MInst::LoadV {
                    dst: VReg(1),
                    addr: AddrMode::fused(SReg(0), SReg(2), 4, 8),
                    align: MemAlign::Unaligned,
                },
                MInst::VBin {
                    op: BinOp::Add,
                    ty: ScalarTy::F32,
                    dst: VReg(1),
                    a: VReg(1),
                    b: VReg(0),
                },
            ],
            n_sregs: 3,
            n_vregs: 2,
            note: "demo".into(),
        };
        let text = disasm(&code);
        assert!(text.contains("L0:"), "{text}");
        assert!(text.contains("vld.u [r0 + r2*4 + 8]"), "{text}");
        assert!(text.contains("v1 = vAdd.float v1, v0"), "{text}");
    }
}

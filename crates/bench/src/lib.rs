//! # vapor-bench — experiment harness
//!
//! Regenerates every figure and table of the paper's evaluation (§V).
//! Runtime numbers are deterministic VM cycle counts from the target
//! cost models; bytecode sizes are real encoded bytes; compile times are
//! real wall-clock measurements of the online stage.
//!
//! The `report` binary prints the paper-style rows; the criterion benches
//! under `benches/` wrap the same computations for `cargo bench`.

use std::collections::BTreeMap;

use vapor_core::{CompileConfig, ExecRequest, Flow};

pub use vapor_core::{CompileJob, Engine};
use vapor_ir::Kernel;
use vapor_kernels::{suite, KernelSpec, Scale, SuiteKind};
use vapor_targets::{altivec, avx, neon64, sse, TargetDesc, TargetKind, VLA_TEST_BITS};

/// Cycle count of one kernel under one flow. Compilation goes through
/// `engine`, so regenerating several figures over the same suite
/// compiles each (kernel, flow, target, config) tuple once.
///
/// # Panics
/// Panics when compilation or execution fails — the correctness matrix
/// guarantees they cannot for suite kernels.
pub fn cycles(
    engine: &Engine,
    kernel: &Kernel,
    flow: Flow,
    target: &TargetDesc,
    env: &vapor_ir::Bindings,
    cfg: &CompileConfig,
) -> u64 {
    engine
        .execute(
            &ExecRequest::new(kernel, target, env)
                .flow(flow)
                .config(cfg.clone()),
        )
        .unwrap_or_else(|e| panic!("{} [{flow} on {}]: {e}", kernel.name, target.name))
        .stats
        .cycles
}

/// One row of Figure 5: normalized vectorization impact,
/// `(scalar/vector under the naive JIT) / (scalar/vector native)`.
#[derive(Debug, Clone)]
pub struct ImpactRow {
    /// Kernel name.
    pub name: String,
    /// JIT vectorization speedup (C/A).
    pub jit_speedup: f64,
    /// Native vectorization speedup (F/E).
    pub native_speedup: f64,
    /// Normalized impact (higher is better).
    pub impact: f64,
}

/// Figure 5 (a: SSE, b: AltiVec): Mono-class JIT vectorization impact.
/// Returns per-kernel rows, the Polybench average row, and the arithmetic
/// mean row — the same series the paper plots.
pub fn fig5(engine: &Engine, target: &TargetDesc, scale: Scale) -> Vec<ImpactRow> {
    let cfg = CompileConfig::default();
    let members = |s: &KernelSpec| match target.kind {
        TargetKind::Sse => s.fig5a,
        _ => s.fig5b,
    };
    let mut rows = Vec::new();
    let mut poly = Vec::new();
    for spec in suite() {
        let media = spec.suite == SuiteKind::Media;
        if media && !members(&spec) {
            continue;
        }
        let kernel = spec.kernel();
        let env = spec.env(scale);
        let a = cycles(engine, &kernel, Flow::SplitVectorNaive, target, &env, &cfg) as f64;
        let c = cycles(engine, &kernel, Flow::SplitScalarNaive, target, &env, &cfg) as f64;
        let e = cycles(engine, &kernel, Flow::NativeVector, target, &env, &cfg) as f64;
        let f = cycles(engine, &kernel, Flow::NativeScalar, target, &env, &cfg) as f64;
        let row = ImpactRow {
            name: spec.name.to_owned(),
            jit_speedup: c / a,
            native_speedup: f / e,
            impact: (c / a) / (f / e),
        };
        if media {
            rows.push(row);
        } else {
            poly.push(row.impact);
        }
    }
    if !poly.is_empty() {
        let avg = poly.iter().sum::<f64>() / poly.len() as f64;
        rows.push(ImpactRow {
            name: "polybench_avg".into(),
            jit_speedup: f64::NAN,
            native_speedup: f64::NAN,
            impact: avg,
        });
    }
    let mean = rows.iter().map(|r| r.impact).sum::<f64>() / rows.len() as f64;
    rows.push(ImpactRow {
        name: "Arith. Mean".into(),
        jit_speedup: f64::NAN,
        native_speedup: f64::NAN,
        impact: mean,
    });
    rows
}

/// One row of Figure 6: split/native normalized execution time.
#[derive(Debug, Clone)]
pub struct RatioRow {
    /// Kernel name.
    pub name: String,
    /// Split (optimizing online) cycles.
    pub split: u64,
    /// Native cycles.
    pub native: u64,
    /// `split / native` (lower is better).
    pub ratio: f64,
}

/// Figure 6 (a: SSE, b: AltiVec, c: NEON): split-vectorized execution
/// time normalized to native-vectorized, all 32 kernels + harmonic mean.
pub fn fig6(engine: &Engine, target: &TargetDesc, scale: Scale) -> Vec<RatioRow> {
    let cfg = CompileConfig::default();
    let mut rows = Vec::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(scale);
        let d = cycles(engine, &kernel, Flow::SplitVectorOpt, target, &env, &cfg);
        let e = cycles(engine, &kernel, Flow::NativeVector, target, &env, &cfg);
        rows.push(RatioRow {
            name: spec.name.to_owned(),
            split: d,
            native: e,
            ratio: d as f64 / e as f64,
        });
    }
    let hmean = rows.len() as f64 / rows.iter().map(|r| 1.0 / r.ratio).sum::<f64>();
    rows.push(RatioRow {
        name: "Har. Mean".into(),
        split: 0,
        native: 0,
        ratio: hmean,
    });
    rows
}

/// One row of Table 3: static cycles/iteration on AVX.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Kernel name.
    pub name: String,
    /// Native flow cycles per vector-loop iteration.
    pub native: u32,
    /// Split flow cycles per vector-loop iteration.
    pub split: u32,
    /// Functional validation on the emulated AVX machine (the SDE role).
    pub validated: bool,
}

/// Table 3: IACA-style throughput analysis of the vectorized inner loop
/// on the 256-bit AVX target, native vs split, plus SDE-style execution
/// validation.
pub fn table3(engine: &Engine, scale: Scale) -> Vec<Table3Row> {
    let target = avx();
    let cfg = CompileConfig::default();
    let mut rows = Vec::new();
    for spec in suite().into_iter().filter(|s| s.table3) {
        let kernel = spec.kernel();
        let env = spec.env(scale);
        let analyze = |flow: Flow| {
            let c = engine.compile(&kernel, flow, &target, &cfg).unwrap();
            vapor_targets::analyze_inner_loop(&c.jit.code, &target.ports)
                .map(|t| t.cycles_per_iter)
                .unwrap_or(0)
        };
        let native = analyze(Flow::NativeVector);
        let split = analyze(Flow::SplitVectorOpt);
        // SDE role: run both flows on the emulated machine and compare to
        // the oracle.
        let oracle = vapor_core::reference(&kernel, &env).unwrap();
        let mut validated = true;
        for flow in [Flow::NativeVector, Flow::SplitVectorOpt] {
            let r = engine
                .execute(&ExecRequest::new(&kernel, &target, &env).flow(flow))
                .unwrap();
            for (name, expected) in oracle.arrays() {
                if vapor_core::arrays_match(expected, r.out.array(name).unwrap(), 2e-4).is_err() {
                    validated = false;
                }
            }
        }
        rows.push(Table3Row {
            name: spec.name.to_owned(),
            native,
            split,
            validated,
        });
    }
    rows
}

/// One row of the §V-A(b) ablation: degradation from disabling the
/// offline alignment optimizations and hints.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Kernel name.
    pub name: String,
    /// Target name.
    pub target: String,
    /// Cycles with alignment optimizations.
    pub with_opts: u64,
    /// Cycles with them disabled.
    pub without_opts: u64,
    /// Degradation factor (≥ 1 expected).
    pub degradation: f64,
}

/// §V-A(b): re-run the Mono-class experiment with alignment
/// optimizations/hints disabled; the paper reports an average 2.5×
/// degradation, with AltiVec falling back to scalar code.
pub fn ablation(engine: &Engine, scale: Scale) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for target in [sse(), altivec()] {
        for spec in suite().into_iter().filter(|s| s.expect_vectorized) {
            let kernel = spec.kernel();
            let env = spec.env(scale);
            let with_opts = cycles(
                engine,
                &kernel,
                Flow::SplitVectorNaive,
                &target,
                &env,
                &CompileConfig::default(),
            );
            let without = cycles(
                engine,
                &kernel,
                Flow::SplitVectorNaive,
                &target,
                &env,
                &CompileConfig {
                    no_alignment_opts: true,
                    ..Default::default()
                },
            );
            rows.push(AblationRow {
                name: spec.name.to_owned(),
                target: target.name.to_owned(),
                with_opts,
                without_opts: without,
                degradation: without as f64 / with_opts as f64,
            });
        }
    }
    rows
}

/// One row of the §V-A(c) size/compile-time experiment.
#[derive(Debug, Clone)]
pub struct SizeRow {
    /// Kernel name.
    pub name: String,
    /// Scalar bytecode bytes.
    pub scalar_bytes: usize,
    /// Vectorized bytecode bytes.
    pub vector_bytes: usize,
    /// Scalar online-compile time (µs).
    pub scalar_us: f64,
    /// Vectorized online-compile time (µs).
    pub vector_us: f64,
}

/// §V-A(c): bytecode size increase (~5× in the paper) and JIT compile
/// time increase (~4.85×/5.37×), measured on real encoded bytes and real
/// wall-clock online compilation.
pub fn size_and_time(engine: &Engine, target: &TargetDesc) -> Vec<SizeRow> {
    let cfg = CompileConfig::default();
    let mut rows = Vec::new();
    for spec in suite() {
        let kernel = spec.kernel();
        // Best-of-5 wall times to de-noise. Deliberately uncached: this
        // experiment measures the real online stage, which a cache hit
        // would collapse to a map lookup.
        let timed = |flow: Flow| {
            let mut best = f64::INFINITY;
            let mut bytes = 0;
            for _ in 0..5 {
                let c = engine
                    .compile_uncached(&kernel, flow, target, &cfg)
                    .unwrap();
                best = best.min(c.online_time.as_secs_f64() * 1e6);
                bytes = c.bytecode_bytes;
            }
            (bytes, best)
        };
        let (scalar_bytes, scalar_us) = timed(Flow::SplitScalarNaive);
        let (vector_bytes, vector_us) = timed(Flow::SplitVectorNaive);
        rows.push(SizeRow {
            name: spec.name.to_owned(),
            scalar_bytes,
            vector_bytes,
            scalar_us,
            vector_us,
        });
    }
    rows
}

/// Cycle count of one kernel under one flow on a VLA target at a
/// concrete runtime vector length: the compile is cached VL-agnostically
/// and the execution specialization is what carries `vl_bits`.
///
/// # Panics
/// Panics when compilation or execution fails (suite kernels cannot).
pub fn cycles_at_vl(
    engine: &Engine,
    kernel: &Kernel,
    flow: Flow,
    family: &TargetDesc,
    vl_bits: usize,
    env: &vapor_ir::Bindings,
    cfg: &CompileConfig,
) -> u64 {
    engine
        .execute(
            &ExecRequest::new(kernel, family, env)
                .flow(flow)
                .config(cfg.clone())
                .vl_bits(vl_bits),
        )
        .unwrap_or_else(|e| {
            panic!(
                "{} [{flow} on {} @VL={vl_bits}]: {e}",
                kernel.name, family.name
            )
        })
        .stats
        .cycles
}

/// One row of the VLA gains table: scalar cycles on the family core and
/// the vectorized cycles (plus speedup) at every tested runtime VL.
#[derive(Debug, Clone)]
pub struct VlaGainRow {
    /// Kernel name.
    pub name: String,
    /// Scalar-flow cycles (the normalization baseline; VL-independent).
    pub scalar: u64,
    /// `(vl_bits, vector cycles, scalar/vector gain)` per tested VL.
    pub per_vl: Vec<(usize, u64, f64)>,
}

/// The Figure-4-style gains table for one VLA family: one VL-agnostic
/// compiled artifact per kernel, executed at every VL in
/// [`VLA_TEST_BITS`], normalized to the scalar flow on the same core.
/// Groups the VLA backend declines (half-based sub-vector idioms) run
/// scalar and report a gain of ~1 — the honest analogue of the paper's
/// immature-backend rows.
pub fn vla_gains(engine: &Engine, family: &TargetDesc, scale: Scale) -> Vec<VlaGainRow> {
    assert!(family.vla, "{} is not a VLA family", family.name);
    let cfg = CompileConfig::default();
    let mut rows = Vec::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let env = spec.env(scale);
        // Scalar baseline: the same optimizing online pipeline with the
        // vectorizer off. Scalar code has no width dependence; run it at
        // the family minimum.
        let scalar = cycles_at_vl(
            engine,
            &kernel,
            Flow::SplitScalarOpt,
            family,
            VLA_TEST_BITS[0],
            &env,
            &cfg,
        );
        let per_vl = VLA_TEST_BITS
            .iter()
            .map(|&vl| {
                let c = cycles_at_vl(
                    engine,
                    &kernel,
                    Flow::SplitVectorOpt,
                    family,
                    vl,
                    &env,
                    &cfg,
                );
                (vl, c, scalar as f64 / c as f64)
            })
            .collect();
        rows.push(VlaGainRow {
            name: spec.name.to_owned(),
            scalar,
            per_vl,
        });
    }
    rows
}

/// Geometric-mean helper for summary lines.
pub fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in vals {
        if v.is_finite() && v > 0.0 {
            sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        (sum / n as f64).exp()
    }
}

/// Render rows as an aligned text table.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = format!("== {title} ==\n");
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
        out.push('\n');
    }
    out
}

/// The §V-A(c) summary: (geomean size ratio, geomean time ratio).
pub fn size_time_summary(rows: &[SizeRow]) -> (f64, f64) {
    let size = geomean(
        rows.iter()
            .map(|r| r.vector_bytes as f64 / r.scalar_bytes as f64),
    );
    let time = geomean(rows.iter().map(|r| r.vector_us / r.scalar_us));
    (size, time)
}

/// Every Figure-6 target.
pub fn fig6_targets() -> Vec<TargetDesc> {
    vec![sse(), altivec(), neon64()]
}

/// Ablation of the §III-A design choice: the offline compiler emits
/// *optimized* realignment (cross-iteration reuse of the previous
/// aligned load) rather than per-access realignment. Only matters on
/// explicit-realignment targets (AltiVec); returns (kernel, reuse
/// cycles, no-reuse cycles, slowdown-without-reuse).
pub fn realign_reuse_ablation(engine: &Engine, scale: Scale) -> Vec<AblationRow> {
    let target = altivec();
    let mut rows = Vec::new();
    for name in ["sfir_s16", "sfir_fp", "convolve_s32", "jacobi_fp"] {
        let spec = suite().into_iter().find(|s| s.name == name).unwrap();
        let kernel = spec.kernel();
        let env = spec.env(scale);
        let with_reuse = cycles(
            engine,
            &kernel,
            Flow::SplitVectorOpt,
            &target,
            &env,
            &CompileConfig::default(),
        );
        let without = cycles(
            engine,
            &kernel,
            Flow::SplitVectorOpt,
            &target,
            &env,
            &CompileConfig {
                no_realign_reuse: true,
                ..Default::default()
            },
        );
        rows.push(AblationRow {
            name: name.to_owned(),
            target: target.name.to_owned(),
            with_opts: with_reuse,
            without_opts: without,
            degradation: without as f64 / with_reuse as f64,
        });
    }
    rows
}

/// Named outliers the paper calls out, for the shape assertions in tests
/// and EXPERIMENTS.md.
pub fn named_outliers(rows: &[RatioRow]) -> BTreeMap<String, f64> {
    rows.iter()
        .filter(|r| {
            [
                "sad_s8",
                "mix_streams_s16",
                "dissolve_s8",
                "dct_s32fp",
                "dscal_dp",
                "saxpy_dp",
            ]
            .contains(&r.name.as_str())
        })
        .map(|r| (r.name.clone(), r.ratio))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shapes_at_test_scale() {
        let rows = fig5(&Engine::new(), &sse(), Scale::Test);
        assert!(rows.iter().any(|r| r.name == "Arith. Mean"));
        assert!(rows.iter().any(|r| r.name == "polybench_avg"));
        for r in &rows {
            assert!(
                r.impact.is_finite() && r.impact > 0.0,
                "{}: {}",
                r.name,
                r.impact
            );
        }
    }

    #[test]
    fn table3_split_never_beats_native() {
        for row in table3(&Engine::new(), Scale::Test) {
            assert!(row.validated, "{} failed SDE validation", row.name);
            assert!(
                row.split >= row.native,
                "{}: split {} < native {}",
                row.name,
                row.split,
                row.native
            );
        }
    }

    #[test]
    fn ablation_degrades() {
        let rows = ablation(&Engine::new(), Scale::Test);
        let mean = geomean(rows.iter().map(|r| r.degradation));
        assert!(mean > 1.2, "alignment ablation should hurt, got {mean:.2}");
    }

    #[test]
    fn optimized_realignment_pays_off_on_altivec() {
        // Paper-scale trip counts: the reuse scheme amortizes its setup.
        // (At toy sizes the setup dominates, which is exactly why §III-A
        // leaves this decision to the *offline* cost model.)
        let rows = realign_reuse_ablation(&Engine::new(), Scale::Full);
        for r in &rows {
            assert!(
                r.degradation >= 0.95,
                "{}: reuse much slower? {:.2}",
                r.name,
                r.degradation
            );
        }
        assert!(
            rows.iter().any(|r| r.degradation > 1.02),
            "reuse should save realignment work: {rows:?}"
        );
    }

    #[test]
    fn vla_gains_never_regress_with_wider_vectors() {
        let engine = Engine::new();
        for family in [vapor_targets::sve(), vapor_targets::rvv()] {
            let rows = vla_gains(&engine, &family, Scale::Test);
            assert_eq!(rows.len(), 32);
            for r in &rows {
                let first = r.per_vl.first().unwrap();
                let last = r.per_vl.last().unwrap();
                assert!(
                    last.1 <= first.1,
                    "{} on {}: VL=2048 ({} cycles) slower than VL=128 ({})",
                    r.name,
                    family.name,
                    last.1,
                    first.1
                );
            }
            // The clean streaming kernels must show real, growing gains.
            let saxpy = rows.iter().find(|r| r.name == "saxpy_fp").unwrap();
            assert!(saxpy.per_vl.last().unwrap().2 > saxpy.per_vl.first().unwrap().2);
            assert!(saxpy.per_vl.first().unwrap().2 > 1.5);
        }
    }

    #[test]
    fn bytecode_size_ratio_is_large() {
        let rows = size_and_time(&Engine::new(), &sse());
        let (size, _) = size_time_summary(&rows);
        assert!(
            size > 2.5,
            "vectorized bytecode should be much larger, got {size:.2}x"
        );
    }
}

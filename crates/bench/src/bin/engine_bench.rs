//! Engine benchmark: quantifies the wins of the engine + VM layers and
//! writes them to `BENCH_engine.json`.
//!
//! 1. **Compilation caching** — a cache-hit `Engine::compile` versus a
//!    cold end-to-end compile, over every suite kernel.
//! 2. **Pre-decoded VM dispatch** — wall-clock `Machine` throughput of
//!    the decoded program (`run`) versus the seed per-instruction
//!    interpreter (`run_baseline`) on the saxpy/polybench suite.
//! 3. **Runtime-VL specialization** — what bringing up a *new* VL costs
//!    under "compile once" (one re-specialization of the shared decode)
//!    versus what a VL-keyed engine would pay (a full pipeline run).
//! 4. **Target-sized register file** — decoded dispatch with the sized
//!    (inline ≤32-byte) register file versus the seed-style max-width
//!    (2048-bit) file, on the SSE-class target, plus the bytes one
//!    register move costs in each representation.
//! 5. **Predicated VLA fast dispatch** — decoded runtime-VL execution
//!    (`DStep::VBinVlFast`/`VUnVlFast` kernels) versus the generic
//!    merge-predicated interpreter loop, on the SVE-class target at
//!    VL=512.
//! 6. **Superinstruction fusion** — fused decoded dispatch (the
//!    production path) versus an unfused decode of the same code, per
//!    kernel, with the per-kernel superinstruction hit counts.
//! 7. **Closure-threaded tier** — the region-threaded program with the
//!    flattened register arena and precomputed address streams
//!    (`Engine::thread` + `run_threaded`) versus the seed interpreter
//!    and versus the decoded dispatch, on the same suite. The threaded
//!    run's `vm_cycles` are asserted equal to the decoded run's before
//!    any number is written: the tiers share one cycle model.
//!
//! ```text
//! cargo run --release -p vapor-bench --bin engine_bench [out.json] [--baseline=committed.json]
//! ```
//!
//! With `--baseline=`, the fresh speedups are compared against the
//! committed JSON's values and the process fails on a regression below
//! 70% of the committed number (or below the absolute floors). The
//! per-kernel `vm_cycles` of the dispatch suite are additionally gated
//! on *exact* equality: the VM cycle model is deterministic, so any
//! drift is a real interpreter regression, caught without wall-clock
//! noise.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use vapor_bench::Engine;
use vapor_core::{
    run, run_baseline, run_specialized, run_threaded, run_wide, AllocPolicy, CompileConfig, Flow,
};
use vapor_kernels::{suite, KernelSpec, Scale, SuiteKind};
use vapor_targets::{sse, sve, DecodedProgram, VBytes, MAX_VS};

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct CacheRow {
    name: String,
    cold_us: f64,
    hit_us: f64,
}

struct DispatchRow {
    name: String,
    baseline_us: f64,
    decoded_us: f64,
    cycles: u64,
}

fn cache_experiment(engine: &Engine) -> Vec<CacheRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let mut rows = Vec::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let cold_us = best_secs(5, || {
            engine
                .compile_uncached(&kernel, flow, &target, &cfg)
                .unwrap()
        }) * 1e6;
        engine.compile(&kernel, flow, &target, &cfg).unwrap(); // warm
        let hit_us = best_secs(5, || {
            // 100 hits per rep: a single lookup is near the clock's
            // resolution.
            for _ in 0..100 {
                black_box(engine.compile(&kernel, flow, &target, &cfg).unwrap());
            }
        }) * 1e6
            / 100.0;
        rows.push(CacheRow {
            name: spec.name.to_owned(),
            cold_us,
            hit_us,
        });
    }
    rows
}

fn dispatch_suite() -> Vec<KernelSpec> {
    suite()
        .into_iter()
        .filter(|s| s.suite == SuiteKind::Polybench || s.name.starts_with("saxpy"))
        .collect()
}

fn dispatch_experiment(engine: &Engine) -> Vec<DispatchRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let c = engine.compile(&kernel, flow, &target, &cfg).unwrap();
        // The cycle read doubles as the warmup so the first timed tier
        // does not pay the cold-cache cost of the kernel's arrays.
        let cycles = run(&target, &c, &env, AllocPolicy::Aligned)
            .unwrap()
            .stats
            .cycles;
        let baseline_us = best_secs(9, || {
            run_baseline(&target, &c, &env, AllocPolicy::Aligned).unwrap()
        }) * 1e6;
        let decoded_us =
            best_secs(9, || run(&target, &c, &env, AllocPolicy::Aligned).unwrap()) * 1e6;
        rows.push(DispatchRow {
            name: spec.name.to_owned(),
            baseline_us,
            decoded_us,
            cycles,
        });
    }
    rows
}

/// Specialization experiment: the cost of bringing up a *new* runtime
/// VL. A VL-keyed engine would re-run the whole pipeline per VL; the
/// VL-agnostic engine re-specializes the one shared decode (label and
/// target resolution, fast-kernel selection all reused).
fn vl_specialize_experiment(engine: &Engine) -> Vec<DispatchRow> {
    let family = sve();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let vl = 512;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let recompile_us = best_secs(5, || {
            engine
                .compile_uncached(&kernel, flow, &family, &cfg)
                .unwrap()
        }) * 1e6;
        let (compiled, _) = engine.specialize(&kernel, flow, &family, &cfg, vl).unwrap();
        let exec = family.at_vl(vl);
        let respec_us = best_secs(5, || {
            black_box(
                compiled
                    .jit
                    .decoded
                    .respecialize(&compiled.jit.code, &exec)
                    .unwrap(),
            )
        }) * 1e6;
        rows.push(DispatchRow {
            name: spec.name.to_owned(),
            baseline_us: recompile_us,
            decoded_us: respec_us,
            cycles: 0,
        });
    }
    rows
}

/// Register-file experiment: decoded dispatch with target-sized
/// registers versus the seed-style max-width (2048-bit, heap-backed)
/// register file, on the 16-byte SSE target. Identical code, identical
/// cycles — only register-move traffic differs.
fn regmove_experiment(engine: &Engine) -> Vec<DispatchRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let c = engine.compile(&kernel, flow, &target, &cfg).unwrap();
        let sized_us = best_secs(5, || run(&target, &c, &env, AllocPolicy::Aligned).unwrap()) * 1e6;
        let wide_us = best_secs(5, || {
            run_wide(&target, &c, &env, AllocPolicy::Aligned).unwrap()
        }) * 1e6;
        rows.push(DispatchRow {
            name: spec.name.to_owned(),
            baseline_us: wide_us,
            decoded_us: sized_us,
            cycles: 0,
        });
    }
    rows
}

/// Predicated VLA dispatch experiment: decoded runtime-VL execution
/// (with the `VBinVlFast`/`VUnVlFast` lane kernels) versus the generic
/// merge-predicated interpreter loop, SVE-class at VL=512.
fn vla_dispatch_experiment(engine: &Engine) -> Vec<DispatchRow> {
    let family = sve();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let vl = 512;
    let exec = family.at_vl(vl);
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let (compiled, prog) = engine.specialize(&kernel, flow, &family, &cfg, vl).unwrap();
        let fast_us = best_secs(5, || {
            run_specialized(&exec, &compiled, &prog, &env, AllocPolicy::Aligned).unwrap()
        }) * 1e6;
        let generic_us = best_secs(5, || {
            run_baseline(&exec, &compiled, &env, AllocPolicy::Aligned).unwrap()
        }) * 1e6;
        let cycles = run_specialized(&exec, &compiled, &prog, &env, AllocPolicy::Aligned)
            .unwrap()
            .stats
            .cycles;
        rows.push(DispatchRow {
            name: spec.name.to_owned(),
            baseline_us: generic_us,
            decoded_us: fast_us,
            cycles,
        });
    }
    rows
}

/// One row of the closure-threaded experiment: the three-tier ladder
/// (seed interpreter, decoded dispatch, threaded regions) on one kernel.
struct ThreadedRow {
    name: String,
    baseline_us: f64,
    decoded_us: f64,
    threaded_us: f64,
    cycles: u64,
}

/// Closure-threaded tier experiment: `Engine::thread` + `run_threaded`
/// versus both the seed interpreter (the speedup the JSON gates) and the
/// decoded dispatch (the incremental win of this tier). The decoded tier
/// is the differential oracle, so the threaded run's `ExecStats` are
/// asserted bit-equal to the decoded run's before anything is recorded.
fn threaded_experiment(engine: &Engine) -> Vec<ThreadedRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let vl = target.vs * 8;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let (c, prog) = engine.thread(&kernel, flow, &target, &cfg, vl).unwrap();
        // Oracle check first: it doubles as the warmup, so no tier's
        // timing loop pays the cold-cache cost of touching the kernel's
        // arrays for the first time.
        let threaded = run_threaded(&target, &c, &prog, &env, AllocPolicy::Aligned).unwrap();
        let decoded = run(&target, &c, &env, AllocPolicy::Aligned).unwrap();
        assert_eq!(
            threaded.stats, decoded.stats,
            "{}: threaded tier diverged from the decoded oracle",
            spec.name
        );
        let baseline_us = best_secs(9, || {
            run_baseline(&target, &c, &env, AllocPolicy::Aligned).unwrap()
        }) * 1e6;
        let decoded_us =
            best_secs(9, || run(&target, &c, &env, AllocPolicy::Aligned).unwrap()) * 1e6;
        let threaded_us = best_secs(9, || {
            run_threaded(&target, &c, &prog, &env, AllocPolicy::Aligned).unwrap()
        }) * 1e6;
        rows.push(ThreadedRow {
            name: spec.name.to_owned(),
            baseline_us,
            decoded_us,
            threaded_us,
            cycles: threaded.stats.cycles,
        });
    }
    rows
}

/// One row of the fusion experiment: fused vs unfused decoded dispatch
/// plus the hit counts that explain the delta.
struct FusionRow {
    name: String,
    unfused_us: f64,
    fused_us: f64,
    superinstructions: u32,
    three_op: u32,
}

/// Superinstruction fusion experiment: the engine's compiled artifact
/// carries the fused decode (the production path); the baseline is an
/// unfused decode of the *same* machine code, so the delta isolates the
/// dispatch-overhead saving (results and `vm_cycles` are bit-identical
/// — that part is the differential test suite's job).
fn fusion_experiment(engine: &Engine) -> Vec<FusionRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let c = engine.compile(&kernel, flow, &target, &cfg).unwrap();
        let unfused = DecodedProgram::decode_unfused(&c.jit.code, &target).unwrap();
        let fused_us = best_secs(5, || run(&target, &c, &env, AllocPolicy::Aligned).unwrap()) * 1e6;
        let unfused_us = best_secs(5, || {
            run_specialized(&target, &c, &unfused, &env, AllocPolicy::Aligned).unwrap()
        }) * 1e6;
        let stats = c.jit.decoded.fusion_stats();
        rows.push(FusionRow {
            name: spec.name.to_owned(),
            unfused_us,
            fused_us,
            superinstructions: stats.total(),
            three_op: stats.three_op(),
        });
    }
    rows
}

/// Pull a top-level `"key": <number>` out of a committed benchmark JSON
/// (no serde in the offline container; the format is our own writer's).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Per-kernel value of `key` inside the named array section of a
/// committed benchmark JSON (scoped to that section, since several
/// sections share row keys).
fn baseline_row_number(text: &str, section: &str, kernel: &str, key: &str) -> Option<u64> {
    let start = text.find(&format!("\"{section}\": ["))?;
    let sec = &text[start..];
    let sec = &sec[..sec.find(']').unwrap_or(sec.len())];
    let row_at = sec.find(&format!("\"kernel\": \"{kernel}\""))?;
    let row = &sec[row_at..];
    let row = &row[..row.find('}').unwrap_or(row.len())];
    json_number(row, key).map(|v| v as u64)
}

/// Per-kernel `vm_cycles` of the committed JSON's `"dispatch"` section
/// (scoped to that section: the `vla_dispatch` rows carry cycles too).
fn baseline_dispatch_cycles(text: &str, kernel: &str) -> Option<u64> {
    baseline_row_number(text, "dispatch", kernel, "vm_cycles")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let baseline_path = args
        .iter()
        .find_map(|a| a.strip_prefix("--baseline="))
        .map(str::to_owned);
    let engine = Engine::new();

    eprintln!("[1/7] compilation cache: cold vs hit ...");
    let cache = cache_experiment(&engine);
    let cold_total: f64 = cache.iter().map(|r| r.cold_us).sum();
    let hit_total: f64 = cache.iter().map(|r| r.hit_us).sum();
    let cache_speedup = cold_total / hit_total;

    eprintln!("[2/7] VM dispatch: seed interpreter vs pre-decoded ...");
    let dispatch = dispatch_experiment(&engine);
    let base_total: f64 = dispatch.iter().map(|r| r.baseline_us).sum();
    let dec_total: f64 = dispatch.iter().map(|r| r.decoded_us).sum();
    let dispatch_speedup = base_total / dec_total;

    eprintln!("[3/7] runtime-VL specialization: re-specialize vs full recompile ...");
    let vl_rows = vl_specialize_experiment(&engine);
    let vl_fresh: f64 = vl_rows.iter().map(|r| r.baseline_us).sum();
    let vl_hit: f64 = vl_rows.iter().map(|r| r.decoded_us).sum();
    let vl_speedup = vl_fresh / vl_hit;

    eprintln!("[4/7] register file: target-sized vs seed max-width ...");
    let regmove = regmove_experiment(&engine);
    let wide_total: f64 = regmove.iter().map(|r| r.baseline_us).sum();
    let sized_total: f64 = regmove.iter().map(|r| r.decoded_us).sum();
    let regmove_speedup = wide_total / sized_total;
    // Bytes one register move costs: the full 2048-bit array in the
    // seed representation vs the inline VBytes payload for every
    // fixed-width target.
    let regmove_bytes_wide = MAX_VS;
    let regmove_bytes_sized = std::mem::size_of::<VBytes>();

    eprintln!("[5/7] VLA dispatch: generic predicated loop vs fast kernels ...");
    let vla = vla_dispatch_experiment(&engine);
    let vla_base: f64 = vla.iter().map(|r| r.baseline_us).sum();
    let vla_fast: f64 = vla.iter().map(|r| r.decoded_us).sum();
    let vla_dispatch_speedup = vla_base / vla_fast;

    eprintln!("[6/7] superinstruction fusion: fused vs unfused dispatch ...");
    let fusion = fusion_experiment(&engine);
    let fusion_unfused: f64 = fusion.iter().map(|r| r.unfused_us).sum();
    let fusion_fused: f64 = fusion.iter().map(|r| r.fused_us).sum();
    let fusion_speedup = fusion_unfused / fusion_fused;

    eprintln!("[7/7] closure-threaded tier: seed vs decoded vs threaded ...");
    let threaded = threaded_experiment(&engine);
    let thr_base: f64 = threaded.iter().map(|r| r.baseline_us).sum();
    let thr_dec: f64 = threaded.iter().map(|r| r.decoded_us).sum();
    let thr_thr: f64 = threaded.iter().map(|r| r.threaded_us).sum();
    let threaded_speedup = thr_base / thr_thr;
    let threaded_vs_decoded = thr_dec / thr_thr;

    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"target\": \"{}\",", sse().name);
    let _ = writeln!(j, "  \"flow\": \"{}\",", Flow::SplitVectorOpt);
    let _ = writeln!(j, "  \"cache_speedup\": {cache_speedup:.1},");
    let _ = writeln!(j, "  \"dispatch_speedup\": {dispatch_speedup:.3},");
    let _ = writeln!(j, "  \"vl_specialize_speedup\": {vl_speedup:.1},");
    let _ = writeln!(j, "  \"regmove_speedup\": {regmove_speedup:.3},");
    let _ = writeln!(j, "  \"regmove_bytes_wide\": {regmove_bytes_wide},");
    let _ = writeln!(j, "  \"regmove_bytes_sized\": {regmove_bytes_sized},");
    let _ = writeln!(j, "  \"vla_dispatch_speedup\": {vla_dispatch_speedup:.3},");
    let _ = writeln!(j, "  \"fusion_speedup\": {fusion_speedup:.3},");
    let _ = writeln!(j, "  \"threaded_speedup\": {threaded_speedup:.3},");
    let _ = writeln!(j, "  \"threaded_vs_decoded\": {threaded_vs_decoded:.3},");
    j.push_str("  \"compile\": [\n");
    for (i, r) in cache.iter().enumerate() {
        let sep = if i + 1 == cache.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"cold_us\": {:.2}, \"hit_us\": {:.3}, \"speedup\": {:.1}}}{sep}",
            r.name,
            r.cold_us,
            r.hit_us,
            r.cold_us / r.hit_us
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"vl_specialize\": [\n");
    for (i, r) in vl_rows.iter().enumerate() {
        let sep = if i + 1 == vl_rows.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"recompile_us\": {:.3}, \"specialize_us\": {:.3}, \"speedup\": {:.1}}}{sep}",
            r.name,
            r.baseline_us,
            r.decoded_us,
            r.baseline_us / r.decoded_us
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"dispatch\": [\n");
    for (i, r) in dispatch.iter().enumerate() {
        let sep = if i + 1 == dispatch.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"baseline_us\": {:.2}, \"decoded_us\": {:.2}, \"speedup\": {:.3}, \"vm_cycles\": {}}}{sep}",
            r.name,
            r.baseline_us,
            r.decoded_us,
            r.baseline_us / r.decoded_us,
            r.cycles
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"regmove\": [\n");
    for (i, r) in regmove.iter().enumerate() {
        let sep = if i + 1 == regmove.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"wide_us\": {:.2}, \"sized_us\": {:.2}, \"speedup\": {:.3}}}{sep}",
            r.name,
            r.baseline_us,
            r.decoded_us,
            r.baseline_us / r.decoded_us
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"fusion\": [\n");
    for (i, r) in fusion.iter().enumerate() {
        let sep = if i + 1 == fusion.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"unfused_us\": {:.2}, \"fused_us\": {:.2}, \"speedup\": {:.3}, \"superinstructions\": {}, \"three_op\": {}}}{sep}",
            r.name,
            r.unfused_us,
            r.fused_us,
            r.unfused_us / r.fused_us,
            r.superinstructions,
            r.three_op
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"vla_dispatch\": [\n");
    for (i, r) in vla.iter().enumerate() {
        let sep = if i + 1 == vla.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"generic_us\": {:.2}, \"fast_us\": {:.2}, \"speedup\": {:.3}, \"vm_cycles\": {}}}{sep}",
            r.name,
            r.baseline_us,
            r.decoded_us,
            r.baseline_us / r.decoded_us,
            r.cycles
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"threaded\": [\n");
    for (i, r) in threaded.iter().enumerate() {
        let sep = if i + 1 == threaded.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"baseline_us\": {:.2}, \"decoded_us\": {:.2}, \"threaded_us\": {:.2}, \"speedup\": {:.3}, \"vs_decoded\": {:.3}, \"vm_cycles\": {}}}{sep}",
            r.name,
            r.baseline_us,
            r.decoded_us,
            r.threaded_us,
            r.baseline_us / r.threaded_us,
            r.decoded_us / r.threaded_us,
            r.cycles
        );
    }
    j.push_str("  ]\n}\n");

    std::fs::write(&out_path, &j).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("cache-hit compile speedup:    {cache_speedup:.1}x (floor ≥ 10x)");
    println!("pre-decoded dispatch speedup: {dispatch_speedup:.3}x (floor ≥ 1.2x)");
    println!("VL-specialize vs recompile:   {vl_speedup:.1}x");
    println!(
        "register file sized vs wide:  {regmove_speedup:.3}x wall clock, \
         {regmove_bytes_wide} -> {regmove_bytes_sized} bytes/move ({:.1}x)",
        regmove_bytes_wide as f64 / regmove_bytes_sized as f64
    );
    println!("VLA fast vs generic dispatch: {vla_dispatch_speedup:.3}x (floor ≥ 1.3x)");
    println!(
        "superinstruction fusion:      {fusion_speedup:.3}x fused vs unfused (never-slower floor)"
    );
    println!(
        "closure-threaded tier:        {threaded_speedup:.3}x vs seed \
         ({threaded_vs_decoded:.3}x vs decoded, floor ≥ 1.2x)"
    );
    println!("wrote {out_path}");

    // Regression gate: absolute floors, tightened by the committed
    // baseline when one is given (70% of the committed speedup absorbs
    // CI timing noise while catching real regressions). Per-kernel VM
    // cycle counts are deterministic, so those are gated on *exact*
    // equality — an interpreter perf/semantics drift fails CI even when
    // wall-clock noise would hide it.
    let mut fail = false;
    let (mut cache_floor, mut dispatch_floor, mut vla_floor): (f64, f64, f64) = (10.0, 1.2, 1.3);
    let mut threaded_floor: f64 = 1.2;
    // Fusion's wall-clock effect on an out-of-order host is small (the
    // bookkeeping it removes predicts/pipelines well), so its wall gate
    // is a loose never-slower floor; the *deterministic* gate below on
    // per-kernel superinstruction counts is what catches a silently
    // weakened pass exactly.
    let mut fusion_floor: f64 = 0.95;
    if let Some(path) = baseline_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base_cache = json_number(&text, "cache_speedup")
            .unwrap_or_else(|| panic!("no cache_speedup in {path}"));
        let base_dispatch = json_number(&text, "dispatch_speedup")
            .unwrap_or_else(|| panic!("no dispatch_speedup in {path}"));
        cache_floor = cache_floor.max(0.7 * base_cache);
        dispatch_floor = dispatch_floor.max(0.7 * base_dispatch);
        // Present only in baselines recorded after the register-file PR.
        if let Some(base_vla) = json_number(&text, "vla_dispatch_speedup") {
            vla_floor = vla_floor.max(0.7 * base_vla);
        }
        // Present only in baselines recorded after the fusion PR.
        if let Some(base_fusion) = json_number(&text, "fusion_speedup") {
            fusion_floor = fusion_floor.max(0.7 * base_fusion);
        }
        // Present only in baselines recorded after the threaded-tier PR.
        if let Some(base_threaded) = json_number(&text, "threaded_speedup") {
            threaded_floor = threaded_floor.max(0.7 * base_threaded);
        }
        println!(
            "baseline {path}: cache {base_cache:.1}x, dispatch {base_dispatch:.3}x \
             -> thresholds {cache_floor:.1}x / {dispatch_floor:.3}x / {vla_floor:.3}x"
        );
        for r in &dispatch {
            match baseline_dispatch_cycles(&text, &r.name) {
                Some(want) if want != r.cycles => {
                    eprintln!(
                        "REGRESSION: {} executed {} VM cycles, committed baseline says {want} \
                         (deterministic counter; exact match required)",
                        r.name, r.cycles
                    );
                    fail = true;
                }
                Some(_) => {}
                None => {
                    eprintln!("WARNING: no committed vm_cycles for {} in {path}", r.name);
                }
            }
        }
        // The threaded tier shares the decoded cycle model, so its
        // per-kernel vm_cycles are gated on exact equality too (present
        // only in baselines recorded after the threaded-tier PR).
        for r in &threaded {
            match baseline_row_number(&text, "threaded", &r.name, "vm_cycles") {
                Some(want) if want != r.cycles => {
                    eprintln!(
                        "REGRESSION: {} executed {} VM cycles through the threaded tier, \
                         committed baseline says {want} (deterministic counter; exact match \
                         required)",
                        r.name, r.cycles
                    );
                    fail = true;
                }
                _ => {}
            }
        }
        // Superinstruction counts are as deterministic as vm_cycles:
        // they change only when codegen or the fusion pass changes, so
        // they are gated on exact equality (present only in baselines
        // recorded after the fusion PR).
        for r in &fusion {
            match baseline_row_number(&text, "fusion", &r.name, "superinstructions") {
                Some(want) if want != u64::from(r.superinstructions) => {
                    eprintln!(
                        "REGRESSION: {} formed {} superinstructions, committed baseline says \
                         {want} (deterministic counter; exact match required)",
                        r.name, r.superinstructions
                    );
                    fail = true;
                }
                _ => {}
            }
        }
    }
    if cache_speedup < cache_floor {
        eprintln!(
            "REGRESSION: cache-hit speedup {cache_speedup:.1}x < threshold {cache_floor:.1}x"
        );
        fail = true;
    }
    if dispatch_speedup < dispatch_floor {
        eprintln!(
            "REGRESSION: dispatch speedup {dispatch_speedup:.3}x < threshold {dispatch_floor:.3}x"
        );
        fail = true;
    }
    if vla_dispatch_speedup < vla_floor {
        eprintln!(
            "REGRESSION: VLA fast-dispatch speedup {vla_dispatch_speedup:.3}x < threshold {vla_floor:.3}x"
        );
        fail = true;
    }
    if fusion_speedup < fusion_floor {
        eprintln!("REGRESSION: fusion speedup {fusion_speedup:.3}x < threshold {fusion_floor:.3}x");
        fail = true;
    }
    if threaded_speedup < threaded_floor {
        eprintln!(
            "REGRESSION: threaded-tier speedup {threaded_speedup:.3}x < threshold \
             {threaded_floor:.3}x"
        );
        fail = true;
    }
    if fusion.iter().all(|r| r.three_op == 0) {
        eprintln!("REGRESSION: no three-op superinstruction fired on the dispatch suite");
        fail = true;
    }
    if fail {
        std::process::exit(1);
    }
}

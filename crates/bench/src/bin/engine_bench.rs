//! Engine benchmark: quantifies the wins of the engine + VM layers and
//! writes them to `BENCH_engine.json`.
//!
//! 1. **Compilation caching** — a cache-hit `Engine::compile` versus a
//!    cold end-to-end compile, over every suite kernel.
//! 2. **Pre-decoded VM dispatch** — wall-clock `Machine` throughput of
//!    the decoded program (`Tier::Decoded`) versus the seed
//!    per-instruction interpreter (`Tier::Baseline`) on the
//!    saxpy/polybench suite.
//! 3. **Runtime-VL specialization** — what bringing up a *new* VL costs
//!    under "compile once" (one re-specialization of the shared decode)
//!    versus what a VL-keyed engine would pay (a full pipeline run).
//! 4. **Target-sized register file** — decoded dispatch with the sized
//!    (inline ≤32-byte) register file versus the seed-style max-width
//!    (2048-bit) file, on the SSE-class target, plus the bytes one
//!    register move costs in each representation.
//! 5. **Predicated VLA fast dispatch** — decoded runtime-VL execution
//!    (`DStep::VBinVlFast`/`VUnVlFast` kernels) versus the generic
//!    merge-predicated interpreter loop, on the SVE-class target at
//!    VL=512.
//! 6. **Superinstruction fusion** — fused decoded dispatch (the
//!    production path) versus an unfused decode of the same code, per
//!    kernel, with the per-kernel superinstruction hit counts.
//! 7. **Closure-threaded tier** — the region-threaded program with the
//!    flattened register arena and precomputed address streams
//!    (`Tier::Threaded`) versus the seed interpreter and versus the
//!    decoded dispatch, on the same suite. The threaded run's
//!    `vm_cycles` are asserted equal to the decoded run's before any
//!    number is written: the tiers share one cycle model.
//! 8. **Multi-tenant service stress** — thousands of mixed
//!    compile/specialize/execute requests across threads through
//!    `Engine::execute`, with p50/p99 latency and throughput; plus a
//!    sharded vs single-lock contention A/B and a cold vs artifact-warm
//!    compile A/B. Exact stats equalities (one lookup per request, one
//!    compile per distinct tuple) are asserted inside the experiment.
//! 9. **Allen–Kennedy distribution** — the former floor kernels
//!    (`lu`/`ludcmp`/`seidel`): vector-flow vs scalar-flow wall clock,
//!    the per-kernel count of vectorized loops and recorded dependence
//!    SCCs, and a deterministic check that toggling
//!    `CompileConfig::no_distribution` leaves these kernels' `vm_cycles`
//!    bit-identical (their distribution verdicts are report-only).
//!
//! ```text
//! cargo run --release -p vapor-bench --bin engine_bench [out.json] [--baseline=committed.json]
//! ```
//!
//! With `--baseline=`, the fresh speedups are compared against the
//! committed JSON's values and the process fails on a regression below
//! 70% of the committed number (or below the absolute floors). The
//! per-kernel `vm_cycles` of the dispatch suite are additionally gated
//! on *exact* equality: the VM cycle model is deterministic, so any
//! drift is a real interpreter regression, caught without wall-clock
//! noise.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use vapor_bench::Engine;
use vapor_core::{CompileConfig, ExecRequest, Flow, Tier};
use vapor_kernels::{suite, KernelSpec, Scale, SuiteKind};
use vapor_targets::{sse, sve, VBytes, MAX_VS};

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct CacheRow {
    name: String,
    cold_us: f64,
    hit_us: f64,
}

struct DispatchRow {
    name: String,
    baseline_us: f64,
    decoded_us: f64,
    cycles: u64,
}

fn cache_experiment(engine: &Engine) -> Vec<CacheRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let mut rows = Vec::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let cold_us = best_secs(5, || {
            engine
                .compile_uncached(&kernel, flow, &target, &cfg)
                .unwrap()
        }) * 1e6;
        engine.compile(&kernel, flow, &target, &cfg).unwrap(); // warm
        let hit_us = best_secs(5, || {
            // 100 hits per rep: a single lookup is near the clock's
            // resolution.
            for _ in 0..100 {
                black_box(engine.compile(&kernel, flow, &target, &cfg).unwrap());
            }
        }) * 1e6
            / 100.0;
        rows.push(CacheRow {
            name: spec.name.to_owned(),
            cold_us,
            hit_us,
        });
    }
    rows
}

fn dispatch_suite() -> Vec<KernelSpec> {
    suite()
        .into_iter()
        .filter(|s| s.suite == SuiteKind::Polybench || s.name.starts_with("saxpy"))
        .collect()
}

fn dispatch_experiment(engine: &Engine) -> Vec<DispatchRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let decoded_req = ExecRequest::new(&kernel, &target, &env)
            .flow(flow)
            .config(cfg.clone());
        let baseline_req = decoded_req.clone().tier(Tier::Baseline);
        // The cycle read doubles as the warmup so the first timed tier
        // does not pay the cold-cache cost of the kernel's arrays.
        let cycles = engine.execute(&decoded_req).unwrap().stats.cycles;
        let baseline_us = best_secs(9, || engine.execute(&baseline_req).unwrap()) * 1e6;
        let decoded_us = best_secs(9, || engine.execute(&decoded_req).unwrap()) * 1e6;
        rows.push(DispatchRow {
            name: spec.name.to_owned(),
            baseline_us,
            decoded_us,
            cycles,
        });
    }
    rows
}

/// Specialization experiment: the cost of bringing up a *new* runtime
/// VL. A VL-keyed engine would re-run the whole pipeline per VL; the
/// VL-agnostic engine re-specializes the one shared decode (label and
/// target resolution, fast-kernel selection all reused).
fn vl_specialize_experiment(engine: &Engine) -> Vec<DispatchRow> {
    let family = sve();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let vl = 512;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let recompile_us = best_secs(5, || {
            engine
                .compile_uncached(&kernel, flow, &family, &cfg)
                .unwrap()
        }) * 1e6;
        let (compiled, _) = engine.specialize(&kernel, flow, &family, &cfg, vl).unwrap();
        let exec = family.at_vl(vl);
        let respec_us = best_secs(5, || {
            black_box(
                compiled
                    .jit
                    .decoded
                    .respecialize(&compiled.jit.code, &exec)
                    .unwrap(),
            )
        }) * 1e6;
        rows.push(DispatchRow {
            name: spec.name.to_owned(),
            baseline_us: recompile_us,
            decoded_us: respec_us,
            cycles: 0,
        });
    }
    rows
}

/// Register-file experiment: decoded dispatch with target-sized
/// registers versus the seed-style max-width (2048-bit, heap-backed)
/// register file, on the 16-byte SSE target. Identical code, identical
/// cycles — only register-move traffic differs.
fn regmove_experiment(engine: &Engine) -> Vec<DispatchRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let sized_req = ExecRequest::new(&kernel, &target, &env)
            .flow(flow)
            .config(cfg.clone());
        let wide_req = sized_req.clone().wide_registers(true);
        let sized_us = best_secs(5, || engine.execute(&sized_req).unwrap()) * 1e6;
        let wide_us = best_secs(5, || engine.execute(&wide_req).unwrap()) * 1e6;
        rows.push(DispatchRow {
            name: spec.name.to_owned(),
            baseline_us: wide_us,
            decoded_us: sized_us,
            cycles: 0,
        });
    }
    rows
}

/// Predicated VLA dispatch experiment: decoded runtime-VL execution
/// (with the `VBinVlFast`/`VUnVlFast` lane kernels) versus the generic
/// merge-predicated interpreter loop, SVE-class at VL=512.
fn vla_dispatch_experiment(engine: &Engine) -> Vec<DispatchRow> {
    let family = sve();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let vl = 512;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let fast_req = ExecRequest::new(&kernel, &family, &env)
            .flow(flow)
            .config(cfg.clone())
            .vl_bits(vl);
        let generic_req = fast_req.clone().tier(Tier::Baseline);
        let fast_us = best_secs(5, || engine.execute(&fast_req).unwrap()) * 1e6;
        let generic_us = best_secs(5, || engine.execute(&generic_req).unwrap()) * 1e6;
        let cycles = engine.execute(&fast_req).unwrap().stats.cycles;
        rows.push(DispatchRow {
            name: spec.name.to_owned(),
            baseline_us: generic_us,
            decoded_us: fast_us,
            cycles,
        });
    }
    rows
}

/// One row of the closure-threaded experiment: the three-tier ladder
/// (seed interpreter, decoded dispatch, threaded regions) on one kernel.
struct ThreadedRow {
    name: String,
    baseline_us: f64,
    decoded_us: f64,
    threaded_us: f64,
    cycles: u64,
}

/// Closure-threaded tier experiment: the threaded tier
/// versus both the seed interpreter (the speedup the JSON gates) and the
/// decoded dispatch (the incremental win of this tier). The decoded tier
/// is the differential oracle, so the threaded run's `ExecStats` are
/// asserted bit-equal to the decoded run's before anything is recorded.
fn threaded_experiment(engine: &Engine) -> Vec<ThreadedRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let decoded_req = ExecRequest::new(&kernel, &target, &env)
            .flow(flow)
            .config(cfg.clone());
        let baseline_req = decoded_req.clone().tier(Tier::Baseline);
        let threaded_req = decoded_req.clone().tier(Tier::Threaded);
        // Oracle check first: it doubles as the warmup, so no tier's
        // timing loop pays the cold-cache cost of touching the kernel's
        // arrays for the first time.
        let threaded = engine.execute(&threaded_req).unwrap();
        let decoded = engine.execute(&decoded_req).unwrap();
        assert_eq!(
            threaded.stats, decoded.stats,
            "{}: threaded tier diverged from the decoded oracle",
            spec.name
        );
        let baseline_us = best_secs(9, || engine.execute(&baseline_req).unwrap()) * 1e6;
        let decoded_us = best_secs(9, || engine.execute(&decoded_req).unwrap()) * 1e6;
        let threaded_us = best_secs(9, || engine.execute(&threaded_req).unwrap()) * 1e6;
        rows.push(ThreadedRow {
            name: spec.name.to_owned(),
            baseline_us,
            decoded_us,
            threaded_us,
            cycles: threaded.stats.cycles,
        });
    }
    rows
}

/// One row of the fusion experiment: fused vs unfused decoded dispatch
/// plus the hit counts that explain the delta.
struct FusionRow {
    name: String,
    unfused_us: f64,
    fused_us: f64,
    superinstructions: u32,
    three_op: u32,
}

/// Superinstruction fusion experiment: the engine's compiled artifact
/// carries the fused decode (the production path); the baseline is an
/// unfused decode of the *same* machine code, so the delta isolates the
/// dispatch-overhead saving (results and `vm_cycles` are bit-identical
/// — that part is the differential test suite's job).
fn fusion_experiment(engine: &Engine) -> Vec<FusionRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let fused_req = ExecRequest::new(&kernel, &target, &env)
            .flow(flow)
            .config(cfg.clone());
        let unfused_req = fused_req.clone().fused(false);
        let c = engine.execute(&fused_req).unwrap().compiled;
        let fused_us = best_secs(5, || engine.execute(&fused_req).unwrap()) * 1e6;
        let unfused_us = best_secs(5, || engine.execute(&unfused_req).unwrap()) * 1e6;
        let stats = c.jit.decoded.fusion_stats();
        rows.push(FusionRow {
            name: spec.name.to_owned(),
            unfused_us,
            fused_us,
            superinstructions: stats.total(),
            three_op: stats.three_op(),
        });
    }
    rows
}

/// One row of the distribution experiment: a former floor kernel's
/// vector-vs-scalar gain plus the planner's distribution stats.
struct DistributionRow {
    name: String,
    scalar_us: f64,
    vector_us: f64,
    cycles: u64,
    vector_loops: usize,
    scc_parts: usize,
}

/// Allen–Kennedy distribution experiment: the solver kernels the planner
/// historically rejected whole. `lu`/`ludcmp` now vectorize their inner
/// loops (the "moving toward the pack" gain the wall clock records);
/// `seidel` stays scalar but must carry its SCC partition. None of the
/// three emits a *distributed* loop, so disabling distribution must not
/// change their `vm_cycles` — asserted here, deterministically, before
/// any number is written.
fn distribution_experiment(engine: &Engine) -> Vec<DistributionRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let no_dist = CompileConfig {
        no_distribution: true,
        ..CompileConfig::default()
    };
    let mut rows = Vec::new();
    for spec in suite() {
        if !["lu_fp", "ludcmp_fp", "seidel_fp"].contains(&spec.name) {
            continue;
        }
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let vec_req = ExecRequest::new(&kernel, &target, &env)
            .flow(Flow::SplitVectorOpt)
            .config(cfg.clone());
        let sca_req = vec_req.clone().flow(Flow::SplitScalarOpt);
        let vec_run = engine.execute(&vec_req).unwrap();
        let c = vec_run.compiled;
        let vector_loops = c.reports.iter().filter(|r| r.vectorized).count();
        let scc_parts: usize = c.reports.iter().map(|r| r.parts.len()).sum();
        let nodist_cycles = engine
            .execute(&vec_req.clone().config(no_dist.clone()))
            .unwrap()
            .stats
            .cycles;
        assert_eq!(
            vec_run.stats.cycles, nodist_cycles,
            "{}: no_distribution changed emission on a kernel with no distributed loop",
            spec.name
        );
        let scalar_us = best_secs(5, || engine.execute(&sca_req).unwrap()) * 1e6;
        let vector_us = best_secs(5, || engine.execute(&vec_req).unwrap()) * 1e6;
        rows.push(DistributionRow {
            name: spec.name.to_owned(),
            scalar_us,
            vector_us,
            cycles: vec_run.stats.cycles,
            vector_loops,
            scc_parts,
        });
    }
    rows
}

/// Summary of the multi-tenant service stress experiment.
struct ServiceSummary {
    threads: usize,
    requests: usize,
    p50_us: f64,
    p99_us: f64,
    throughput_rps: f64,
    pool_reuses: u64,
    pool_allocs: u64,
    sharded_contended: u64,
    single_contended: u64,
    artifact_cold_us: f64,
    artifact_warm_us: f64,
}

/// One planned request of the mixed storm (indices into the spec list;
/// the plan is built up front so the expected distinct-tuple count — and
/// therefore the exact miss count — is known before any thread runs).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct PlannedReq {
    spec: usize,
    vla: bool,
    tier: Tier,
    fused: bool,
}

/// The service stress section: ≥1k mixed compile/specialize/execute
/// requests across ≥4 threads against one shared engine, with
/// per-request latencies (p50/p99), aggregate throughput, an exact
/// stats-consistency check (hits + misses == requests; misses == the
/// plan's distinct compile tuples — racing threads must deduplicate
/// in-flight compiles, never duplicate or lose one), a sharded vs
/// single-lock contention A/B, and a cold vs artifact-warm compile A/B.
fn service_experiment() -> ServiceSummary {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().max(4));
    let per_thread = 300usize;
    let specs = dispatch_suite();
    let sse_t = sse();
    let sve_t = sve();
    let envs: Vec<_> = specs.iter().map(|s| s.env(Scale::Test)).collect();
    let kernels: Vec<_> = specs.iter().map(|s| s.kernel()).collect();

    // The deterministic request mix: 50% decoded fixed-width, 20%
    // runtime-VL specializations, 20% threaded tier, 10% unfused.
    let plan_for = |tid: usize| -> Vec<PlannedReq> {
        (0..per_thread)
            .map(|i| {
                let spec = (i * 7 + tid) % specs.len();
                match i % 10 {
                    0..=4 => PlannedReq {
                        spec,
                        vla: false,
                        tier: Tier::Decoded,
                        fused: true,
                    },
                    5 | 6 => PlannedReq {
                        spec,
                        vla: true,
                        tier: Tier::Decoded,
                        fused: true,
                    },
                    7 | 8 => PlannedReq {
                        spec,
                        vla: false,
                        tier: Tier::Threaded,
                        fused: true,
                    },
                    _ => PlannedReq {
                        spec,
                        vla: false,
                        tier: Tier::Decoded,
                        fused: false,
                    },
                }
            })
            .collect()
    };
    let plans: Vec<Vec<PlannedReq>> = (0..threads).map(plan_for).collect();
    // The compile cache keys on (kernel, flow, target, cfg) only — the
    // tier, fusion, and VL dimensions live in the execution caches — so
    // the expected misses are the distinct (spec, target) pairs.
    let distinct: std::collections::HashSet<(usize, bool)> =
        plans.iter().flatten().map(|p| (p.spec, p.vla)).collect();

    let engine = Engine::new();
    let issued = threads * per_thread;
    eprintln!("    storm: {threads} threads x {per_thread} mixed requests ...");
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let engine = &engine;
                let kernels = &kernels;
                let envs = &envs;
                let (sse_t, sve_t) = (&sse_t, &sve_t);
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(plan.len());
                    for (i, p) in plan.iter().enumerate() {
                        let target = if p.vla { sve_t } else { sse_t };
                        let mut req = ExecRequest::new(&kernels[p.spec], target, &envs[p.spec])
                            .tier(p.tier)
                            .fused(p.fused);
                        if p.vla {
                            req = req.vl_bits([128, 512, 1024, 2048][i % 4]);
                        }
                        let t0 = Instant::now();
                        engine
                            .execute(&req)
                            .unwrap_or_else(|e| panic!("{}: {e}", kernels[p.spec].name));
                        lats.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("storm worker panicked"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let s = engine.stats();
    // Exact stats equalities: every request is exactly one cache
    // lookup, every distinct tuple is compiled exactly once (in-flight
    // dedup), and every request cycles one arena through the pool.
    assert_eq!(
        s.hits + s.misses,
        issued as u64,
        "every request makes exactly one compile-cache lookup"
    );
    assert_eq!(
        s.misses,
        distinct.len() as u64,
        "in-flight dedup: one compile per distinct tuple, none lost or duplicated"
    );
    assert_eq!(
        s.pool_reuses + s.pool_allocs,
        issued as u64,
        "every request takes exactly one arena"
    );
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];

    // Contention A/B: the same hit-storm against a default-sharded and a
    // single-lock engine; failed first-try lock acquisitions are counted
    // inside the engine. (On a single-core host contention comes from
    // preemption while a lock is held, so totals are small — the A/B
    // ratio is the signal, not the absolute count.)
    let contended = |shards: usize| {
        let e = Engine::builder().shards(shards).build().unwrap();
        let cfg = CompileConfig::default();
        for k in &kernels {
            e.compile(k, Flow::SplitVectorOpt, &sse_t, &cfg).unwrap();
        }
        std::thread::scope(|scope| {
            for _ in 0..threads.max(8) {
                let e = &e;
                let kernels = &kernels;
                let (cfg, sse_t) = (&cfg, &sse_t);
                scope.spawn(move || {
                    for _ in 0..20 {
                        for k in kernels {
                            black_box(e.compile(k, Flow::SplitVectorOpt, sse_t, cfg).unwrap());
                        }
                    }
                });
            }
        });
        e.stats().contended_locks
    };
    eprintln!("    contention A/B: sharded vs single-lock hit storm ...");
    let sharded_contended = contended(vapor_core::DEFAULT_SHARDS);
    let single_contended = contended(1);

    // Artifact tier A/B: cold (full pipeline + write-back) vs warm (a
    // fresh engine on the same store: offline stage skipped).
    eprintln!("    artifact tier: cold vs warm process ...");
    // CI sets VAPOR_ARTIFACT_DIR to keep (and upload) the store the
    // cold engine writes; unset, the A/B runs in a scratch temp dir.
    let (dir, keep) = match std::env::var_os("VAPOR_ARTIFACT_DIR") {
        Some(d) => (std::path::PathBuf::from(d), true),
        None => (
            std::env::temp_dir().join(format!("vapor-service-bench-{}", std::process::id())),
            false,
        ),
    };
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = CompileConfig::default();
    let cold_engine = Engine::builder().artifact_dir(&dir).build().unwrap();
    let t0 = Instant::now();
    for k in &kernels {
        cold_engine
            .compile(k, Flow::SplitVectorOpt, &sse_t, &cfg)
            .unwrap();
    }
    let artifact_cold_us = t0.elapsed().as_secs_f64() * 1e6;
    let warm_engine = Engine::builder().artifact_dir(&dir).build().unwrap();
    let t0 = Instant::now();
    for k in &kernels {
        warm_engine
            .compile(k, Flow::SplitVectorOpt, &sse_t, &cfg)
            .unwrap();
    }
    let artifact_warm_us = t0.elapsed().as_secs_f64() * 1e6;
    let ws = warm_engine.stats();
    assert_eq!(
        ws.artifact_hits,
        kernels.len() as u64,
        "the warm engine must serve every compile from the artifact store"
    );
    if !keep {
        let _ = std::fs::remove_dir_all(&dir);
    }

    ServiceSummary {
        threads,
        requests: issued,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        throughput_rps: issued as f64 / wall,
        pool_reuses: s.pool_reuses,
        pool_allocs: s.pool_allocs,
        sharded_contended,
        single_contended,
        artifact_cold_us,
        artifact_warm_us,
    }
}

/// Pull a top-level `"key": <number>` out of a committed benchmark JSON
/// (no serde in the offline container; the format is our own writer's).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Per-kernel value of `key` inside the named array section of a
/// committed benchmark JSON (scoped to that section, since several
/// sections share row keys).
fn baseline_row_number(text: &str, section: &str, kernel: &str, key: &str) -> Option<u64> {
    let start = text.find(&format!("\"{section}\": ["))?;
    let sec = &text[start..];
    let sec = &sec[..sec.find(']').unwrap_or(sec.len())];
    let row_at = sec.find(&format!("\"kernel\": \"{kernel}\""))?;
    let row = &sec[row_at..];
    let row = &row[..row.find('}').unwrap_or(row.len())];
    json_number(row, key).map(|v| v as u64)
}

/// Per-kernel `vm_cycles` of the committed JSON's `"dispatch"` section
/// (scoped to that section: the `vla_dispatch` rows carry cycles too).
fn baseline_dispatch_cycles(text: &str, kernel: &str) -> Option<u64> {
    baseline_row_number(text, "dispatch", kernel, "vm_cycles")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let baseline_path = args
        .iter()
        .find_map(|a| a.strip_prefix("--baseline="))
        .map(str::to_owned);
    let engine = Engine::new();

    eprintln!("[1/9] compilation cache: cold vs hit ...");
    let cache = cache_experiment(&engine);
    let cold_total: f64 = cache.iter().map(|r| r.cold_us).sum();
    let hit_total: f64 = cache.iter().map(|r| r.hit_us).sum();
    let cache_speedup = cold_total / hit_total;

    eprintln!("[2/9] VM dispatch: seed interpreter vs pre-decoded ...");
    let dispatch = dispatch_experiment(&engine);
    let base_total: f64 = dispatch.iter().map(|r| r.baseline_us).sum();
    let dec_total: f64 = dispatch.iter().map(|r| r.decoded_us).sum();
    let dispatch_speedup = base_total / dec_total;

    eprintln!("[3/9] runtime-VL specialization: re-specialize vs full recompile ...");
    let vl_rows = vl_specialize_experiment(&engine);
    let vl_fresh: f64 = vl_rows.iter().map(|r| r.baseline_us).sum();
    let vl_hit: f64 = vl_rows.iter().map(|r| r.decoded_us).sum();
    let vl_speedup = vl_fresh / vl_hit;

    eprintln!("[4/9] register file: target-sized vs seed max-width ...");
    let regmove = regmove_experiment(&engine);
    let wide_total: f64 = regmove.iter().map(|r| r.baseline_us).sum();
    let sized_total: f64 = regmove.iter().map(|r| r.decoded_us).sum();
    let regmove_speedup = wide_total / sized_total;
    // Bytes one register move costs: the full 2048-bit array in the
    // seed representation vs the inline VBytes payload for every
    // fixed-width target.
    let regmove_bytes_wide = MAX_VS;
    let regmove_bytes_sized = std::mem::size_of::<VBytes>();

    eprintln!("[5/9] VLA dispatch: generic predicated loop vs fast kernels ...");
    let vla = vla_dispatch_experiment(&engine);
    let vla_base: f64 = vla.iter().map(|r| r.baseline_us).sum();
    let vla_fast: f64 = vla.iter().map(|r| r.decoded_us).sum();
    let vla_dispatch_speedup = vla_base / vla_fast;

    eprintln!("[6/9] superinstruction fusion: fused vs unfused dispatch ...");
    let fusion = fusion_experiment(&engine);
    let fusion_unfused: f64 = fusion.iter().map(|r| r.unfused_us).sum();
    let fusion_fused: f64 = fusion.iter().map(|r| r.fused_us).sum();
    let fusion_speedup = fusion_unfused / fusion_fused;

    eprintln!("[7/9] closure-threaded tier: seed vs decoded vs threaded ...");
    let threaded = threaded_experiment(&engine);
    let thr_base: f64 = threaded.iter().map(|r| r.baseline_us).sum();
    let thr_dec: f64 = threaded.iter().map(|r| r.decoded_us).sum();
    let thr_thr: f64 = threaded.iter().map(|r| r.threaded_us).sum();
    let threaded_speedup = thr_base / thr_thr;
    let threaded_vs_decoded = thr_dec / thr_thr;

    eprintln!("[8/9] multi-tenant service: mixed request storm ...");
    let service = service_experiment();
    let artifact_speedup = service.artifact_cold_us / service.artifact_warm_us;

    eprintln!("[9/9] Allen–Kennedy distribution: floor-kernel vector gains ...");
    let distribution = distribution_experiment(&engine);
    // The summary speedup covers the kernels that actually vectorize
    // (seidel is a genuine recurrence — its row documents the SCC, not a
    // gain).
    let dist_scalar: f64 = distribution
        .iter()
        .filter(|r| r.vector_loops > 0)
        .map(|r| r.scalar_us)
        .sum();
    let dist_vector: f64 = distribution
        .iter()
        .filter(|r| r.vector_loops > 0)
        .map(|r| r.vector_us)
        .sum();
    let distribution_speedup = dist_scalar / dist_vector;

    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"target\": \"{}\",", sse().name);
    let _ = writeln!(j, "  \"flow\": \"{}\",", Flow::SplitVectorOpt);
    let _ = writeln!(j, "  \"cache_speedup\": {cache_speedup:.1},");
    let _ = writeln!(j, "  \"dispatch_speedup\": {dispatch_speedup:.3},");
    let _ = writeln!(j, "  \"vl_specialize_speedup\": {vl_speedup:.1},");
    let _ = writeln!(j, "  \"regmove_speedup\": {regmove_speedup:.3},");
    let _ = writeln!(j, "  \"regmove_bytes_wide\": {regmove_bytes_wide},");
    let _ = writeln!(j, "  \"regmove_bytes_sized\": {regmove_bytes_sized},");
    let _ = writeln!(j, "  \"vla_dispatch_speedup\": {vla_dispatch_speedup:.3},");
    let _ = writeln!(j, "  \"fusion_speedup\": {fusion_speedup:.3},");
    let _ = writeln!(j, "  \"threaded_speedup\": {threaded_speedup:.3},");
    let _ = writeln!(j, "  \"threaded_vs_decoded\": {threaded_vs_decoded:.3},");
    let _ = writeln!(j, "  \"distribution_speedup\": {distribution_speedup:.3},");
    j.push_str("  \"distribution\": [\n");
    for (i, r) in distribution.iter().enumerate() {
        let sep = if i + 1 == distribution.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"scalar_us\": {:.2}, \"vector_us\": {:.2}, \"speedup\": {:.3}, \"vm_cycles\": {}, \"vector_loops\": {}, \"scc_parts\": {}}}{sep}",
            r.name,
            r.scalar_us,
            r.vector_us,
            r.scalar_us / r.vector_us,
            r.cycles,
            r.vector_loops,
            r.scc_parts
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"compile\": [\n");
    for (i, r) in cache.iter().enumerate() {
        let sep = if i + 1 == cache.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"cold_us\": {:.2}, \"hit_us\": {:.3}, \"speedup\": {:.1}}}{sep}",
            r.name,
            r.cold_us,
            r.hit_us,
            r.cold_us / r.hit_us
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"vl_specialize\": [\n");
    for (i, r) in vl_rows.iter().enumerate() {
        let sep = if i + 1 == vl_rows.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"recompile_us\": {:.3}, \"specialize_us\": {:.3}, \"speedup\": {:.1}}}{sep}",
            r.name,
            r.baseline_us,
            r.decoded_us,
            r.baseline_us / r.decoded_us
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"dispatch\": [\n");
    for (i, r) in dispatch.iter().enumerate() {
        let sep = if i + 1 == dispatch.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"baseline_us\": {:.2}, \"decoded_us\": {:.2}, \"speedup\": {:.3}, \"vm_cycles\": {}}}{sep}",
            r.name,
            r.baseline_us,
            r.decoded_us,
            r.baseline_us / r.decoded_us,
            r.cycles
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"regmove\": [\n");
    for (i, r) in regmove.iter().enumerate() {
        let sep = if i + 1 == regmove.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"wide_us\": {:.2}, \"sized_us\": {:.2}, \"speedup\": {:.3}}}{sep}",
            r.name,
            r.baseline_us,
            r.decoded_us,
            r.baseline_us / r.decoded_us
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"fusion\": [\n");
    for (i, r) in fusion.iter().enumerate() {
        let sep = if i + 1 == fusion.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"unfused_us\": {:.2}, \"fused_us\": {:.2}, \"speedup\": {:.3}, \"superinstructions\": {}, \"three_op\": {}}}{sep}",
            r.name,
            r.unfused_us,
            r.fused_us,
            r.unfused_us / r.fused_us,
            r.superinstructions,
            r.three_op
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"vla_dispatch\": [\n");
    for (i, r) in vla.iter().enumerate() {
        let sep = if i + 1 == vla.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"generic_us\": {:.2}, \"fast_us\": {:.2}, \"speedup\": {:.3}, \"vm_cycles\": {}}}{sep}",
            r.name,
            r.baseline_us,
            r.decoded_us,
            r.baseline_us / r.decoded_us,
            r.cycles
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"threaded\": [\n");
    for (i, r) in threaded.iter().enumerate() {
        let sep = if i + 1 == threaded.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"baseline_us\": {:.2}, \"decoded_us\": {:.2}, \"threaded_us\": {:.2}, \"speedup\": {:.3}, \"vs_decoded\": {:.3}, \"vm_cycles\": {}}}{sep}",
            r.name,
            r.baseline_us,
            r.decoded_us,
            r.threaded_us,
            r.baseline_us / r.threaded_us,
            r.decoded_us / r.threaded_us,
            r.cycles
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"service\": {\n");
    let _ = writeln!(j, "    \"threads\": {},", service.threads);
    let _ = writeln!(j, "    \"requests\": {},", service.requests);
    let _ = writeln!(j, "    \"p50_us\": {:.2},", service.p50_us);
    let _ = writeln!(j, "    \"p99_us\": {:.2},", service.p99_us);
    let _ = writeln!(j, "    \"throughput_rps\": {:.1},", service.throughput_rps);
    let _ = writeln!(j, "    \"pool_reuses\": {},", service.pool_reuses);
    let _ = writeln!(j, "    \"pool_allocs\": {},", service.pool_allocs);
    let _ = writeln!(
        j,
        "    \"sharded_contended\": {},",
        service.sharded_contended
    );
    let _ = writeln!(j, "    \"single_contended\": {},", service.single_contended);
    let _ = writeln!(
        j,
        "    \"artifact_cold_us\": {:.1},",
        service.artifact_cold_us
    );
    let _ = writeln!(
        j,
        "    \"artifact_warm_us\": {:.1},",
        service.artifact_warm_us
    );
    let _ = writeln!(j, "    \"artifact_speedup\": {artifact_speedup:.2}");
    j.push_str("  }\n}\n");

    std::fs::write(&out_path, &j).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("cache-hit compile speedup:    {cache_speedup:.1}x (floor ≥ 10x)");
    println!("pre-decoded dispatch speedup: {dispatch_speedup:.3}x (floor ≥ 1.2x)");
    println!("VL-specialize vs recompile:   {vl_speedup:.1}x");
    println!(
        "register file sized vs wide:  {regmove_speedup:.3}x wall clock, \
         {regmove_bytes_wide} -> {regmove_bytes_sized} bytes/move ({:.1}x)",
        regmove_bytes_wide as f64 / regmove_bytes_sized as f64
    );
    println!("VLA fast vs generic dispatch: {vla_dispatch_speedup:.3}x (floor ≥ 1.3x)");
    println!(
        "superinstruction fusion:      {fusion_speedup:.3}x fused vs unfused (never-slower floor)"
    );
    println!(
        "closure-threaded tier:        {threaded_speedup:.3}x vs seed \
         ({threaded_vs_decoded:.3}x vs decoded, floor ≥ 1.2x)"
    );
    println!(
        "service storm:                {} reqs / {} threads, p50 {:.1}us p99 {:.1}us, \
         {:.0} req/s",
        service.requests, service.threads, service.p50_us, service.p99_us, service.throughput_rps
    );
    println!(
        "  arena pool:                 {} reuses / {} allocs",
        service.pool_reuses, service.pool_allocs
    );
    println!(
        "  cache contention (A/B):     {} contended locks sharded vs {} single-lock",
        service.sharded_contended, service.single_contended
    );
    println!(
        "  artifact tier warm start:   {artifact_speedup:.2}x ({:.0}us cold -> {:.0}us warm)",
        service.artifact_cold_us, service.artifact_warm_us
    );
    println!(
        "distribution floor kernels:   {distribution_speedup:.3}x vector vs scalar on the \
         vectorizing solvers (floor ≥ 1.0x)"
    );
    println!("wrote {out_path}");

    // Regression gate: absolute floors, tightened by the committed
    // baseline when one is given (70% of the committed speedup absorbs
    // CI timing noise while catching real regressions). Per-kernel VM
    // cycle counts are deterministic, so those are gated on *exact*
    // equality — an interpreter perf/semantics drift fails CI even when
    // wall-clock noise would hide it.
    let mut fail = false;
    let (mut cache_floor, mut dispatch_floor, mut vla_floor): (f64, f64, f64) = (10.0, 1.2, 1.3);
    let mut threaded_floor: f64 = 1.2;
    // Fusion's wall-clock effect on an out-of-order host is small (the
    // bookkeeping it removes predicts/pipelines well), so its wall gate
    // is a loose never-slower floor; the *deterministic* gate below on
    // per-kernel superinstruction counts is what catches a silently
    // weakened pass exactly.
    let mut fusion_floor: f64 = 0.95;
    // The vectorizing solvers must never run slower under the vector
    // flow than the scalar flow; a committed baseline raises the bar to
    // 70% of the recorded gain.
    let mut distribution_floor: f64 = 1.0;
    // No absolute floor for the service storm (throughput is
    // host-dependent); a committed baseline sets the 70% wall floor.
    let mut service_floor: f64 = 0.0;
    if let Some(path) = baseline_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base_cache = json_number(&text, "cache_speedup")
            .unwrap_or_else(|| panic!("no cache_speedup in {path}"));
        let base_dispatch = json_number(&text, "dispatch_speedup")
            .unwrap_or_else(|| panic!("no dispatch_speedup in {path}"));
        cache_floor = cache_floor.max(0.7 * base_cache);
        dispatch_floor = dispatch_floor.max(0.7 * base_dispatch);
        // Present only in baselines recorded after the register-file PR.
        if let Some(base_vla) = json_number(&text, "vla_dispatch_speedup") {
            vla_floor = vla_floor.max(0.7 * base_vla);
        }
        // Present only in baselines recorded after the fusion PR.
        if let Some(base_fusion) = json_number(&text, "fusion_speedup") {
            fusion_floor = fusion_floor.max(0.7 * base_fusion);
        }
        // Present only in baselines recorded after the threaded-tier PR.
        if let Some(base_threaded) = json_number(&text, "threaded_speedup") {
            threaded_floor = threaded_floor.max(0.7 * base_threaded);
        }
        // Present only in baselines recorded after the service PR.
        if let Some(base_service) = json_number(&text, "throughput_rps") {
            service_floor = 0.7 * base_service;
        }
        // Present only in baselines recorded after the distribution PR.
        if let Some(base_dist) = json_number(&text, "distribution_speedup") {
            distribution_floor = distribution_floor.max(0.7 * base_dist);
        }
        println!(
            "baseline {path}: cache {base_cache:.1}x, dispatch {base_dispatch:.3}x \
             -> thresholds {cache_floor:.1}x / {dispatch_floor:.3}x / {vla_floor:.3}x"
        );
        for r in &dispatch {
            match baseline_dispatch_cycles(&text, &r.name) {
                Some(want) if want != r.cycles => {
                    eprintln!(
                        "REGRESSION: {} executed {} VM cycles, committed baseline says {want} \
                         (deterministic counter; exact match required)",
                        r.name, r.cycles
                    );
                    fail = true;
                }
                Some(_) => {}
                None => {
                    eprintln!("WARNING: no committed vm_cycles for {} in {path}", r.name);
                }
            }
        }
        // The threaded tier shares the decoded cycle model, so its
        // per-kernel vm_cycles are gated on exact equality too (present
        // only in baselines recorded after the threaded-tier PR).
        for r in &threaded {
            match baseline_row_number(&text, "threaded", &r.name, "vm_cycles") {
                Some(want) if want != r.cycles => {
                    eprintln!(
                        "REGRESSION: {} executed {} VM cycles through the threaded tier, \
                         committed baseline says {want} (deterministic counter; exact match \
                         required)",
                        r.name, r.cycles
                    );
                    fail = true;
                }
                _ => {}
            }
        }
        // The distribution rows' vm_cycles are deterministic (vector
        // flow, decoded tier), so they too are gated on exact equality
        // (present only in baselines recorded after the distribution
        // PR). This is what pins seidel: a planner change that silently
        // flips its emission shows up as a cycle drift here.
        for r in &distribution {
            match baseline_row_number(&text, "distribution", &r.name, "vm_cycles") {
                Some(want) if want != r.cycles => {
                    eprintln!(
                        "REGRESSION: {} executed {} VM cycles under the vector flow, committed \
                         baseline says {want} (deterministic counter; exact match required)",
                        r.name, r.cycles
                    );
                    fail = true;
                }
                _ => {}
            }
        }
        // Superinstruction counts are as deterministic as vm_cycles:
        // they change only when codegen or the fusion pass changes, so
        // they are gated on exact equality (present only in baselines
        // recorded after the fusion PR).
        for r in &fusion {
            match baseline_row_number(&text, "fusion", &r.name, "superinstructions") {
                Some(want) if want != u64::from(r.superinstructions) => {
                    eprintln!(
                        "REGRESSION: {} formed {} superinstructions, committed baseline says \
                         {want} (deterministic counter; exact match required)",
                        r.name, r.superinstructions
                    );
                    fail = true;
                }
                _ => {}
            }
        }
    }
    if cache_speedup < cache_floor {
        eprintln!(
            "REGRESSION: cache-hit speedup {cache_speedup:.1}x < threshold {cache_floor:.1}x"
        );
        fail = true;
    }
    if dispatch_speedup < dispatch_floor {
        eprintln!(
            "REGRESSION: dispatch speedup {dispatch_speedup:.3}x < threshold {dispatch_floor:.3}x"
        );
        fail = true;
    }
    if vla_dispatch_speedup < vla_floor {
        eprintln!(
            "REGRESSION: VLA fast-dispatch speedup {vla_dispatch_speedup:.3}x < threshold {vla_floor:.3}x"
        );
        fail = true;
    }
    if fusion_speedup < fusion_floor {
        eprintln!("REGRESSION: fusion speedup {fusion_speedup:.3}x < threshold {fusion_floor:.3}x");
        fail = true;
    }
    if threaded_speedup < threaded_floor {
        eprintln!(
            "REGRESSION: threaded-tier speedup {threaded_speedup:.3}x < threshold \
             {threaded_floor:.3}x"
        );
        fail = true;
    }
    if distribution_speedup < distribution_floor {
        eprintln!(
            "REGRESSION: distribution floor-kernel speedup {distribution_speedup:.3}x < \
             threshold {distribution_floor:.3}x"
        );
        fail = true;
    }
    if service.throughput_rps < service_floor {
        eprintln!(
            "REGRESSION: service throughput {:.0} req/s < threshold {service_floor:.0} req/s",
            service.throughput_rps
        );
        fail = true;
    }
    // The sharded cache must never contend *more* than the single-lock
    // configuration under the same hit storm. (Exact stats equalities —
    // lookups, dedup'd misses, arena cycling — are asserted inside
    // service_experiment itself.)
    if service.single_contended < service.sharded_contended {
        eprintln!(
            "REGRESSION: sharded cache contended {} times vs {} for a single lock \
             under the same hit storm",
            service.sharded_contended, service.single_contended
        );
        fail = true;
    }
    if fusion.iter().all(|r| r.three_op == 0) {
        eprintln!("REGRESSION: no three-op superinstruction fired on the dispatch suite");
        fail = true;
    }
    if fail {
        std::process::exit(1);
    }
}

//! Engine benchmark: quantifies the two wins of the engine layer and
//! writes them to `BENCH_engine.json`.
//!
//! 1. **Compilation caching** — a cache-hit `Engine::compile` versus a
//!    cold end-to-end compile, over every suite kernel.
//! 2. **Pre-decoded VM dispatch** — wall-clock `Machine` throughput of
//!    the decoded program (`run`) versus the seed per-instruction
//!    interpreter (`run_baseline`) on the saxpy/polybench suite.
//!
//! ```text
//! cargo run --release -p vapor-bench --bin engine_bench [out.json]
//! ```

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use vapor_bench::Engine;
use vapor_core::{run, run_baseline, AllocPolicy, CompileConfig, Flow};
use vapor_kernels::{suite, KernelSpec, Scale, SuiteKind};
use vapor_targets::sse;

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct CacheRow {
    name: String,
    cold_us: f64,
    hit_us: f64,
}

struct DispatchRow {
    name: String,
    baseline_us: f64,
    decoded_us: f64,
    cycles: u64,
}

fn cache_experiment(engine: &Engine) -> Vec<CacheRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let mut rows = Vec::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let cold_us = best_secs(5, || {
            engine
                .compile_uncached(&kernel, flow, &target, &cfg)
                .unwrap()
        }) * 1e6;
        engine.compile(&kernel, flow, &target, &cfg).unwrap(); // warm
        let hit_us = best_secs(5, || {
            // 100 hits per rep: a single lookup is near the clock's
            // resolution.
            for _ in 0..100 {
                black_box(engine.compile(&kernel, flow, &target, &cfg).unwrap());
            }
        }) * 1e6
            / 100.0;
        rows.push(CacheRow {
            name: spec.name.to_owned(),
            cold_us,
            hit_us,
        });
    }
    rows
}

fn dispatch_suite() -> Vec<KernelSpec> {
    suite()
        .into_iter()
        .filter(|s| s.suite == SuiteKind::Polybench || s.name.starts_with("saxpy"))
        .collect()
}

fn dispatch_experiment(engine: &Engine) -> Vec<DispatchRow> {
    let target = sse();
    let cfg = CompileConfig::default();
    let flow = Flow::SplitVectorOpt;
    let mut rows = Vec::new();
    for spec in dispatch_suite() {
        let kernel = spec.kernel();
        let env = spec.env(Scale::Full);
        let c = engine.compile(&kernel, flow, &target, &cfg).unwrap();
        let decoded_us =
            best_secs(5, || run(&target, &c, &env, AllocPolicy::Aligned).unwrap()) * 1e6;
        let baseline_us = best_secs(5, || {
            run_baseline(&target, &c, &env, AllocPolicy::Aligned).unwrap()
        }) * 1e6;
        let cycles = run(&target, &c, &env, AllocPolicy::Aligned)
            .unwrap()
            .stats
            .cycles;
        rows.push(DispatchRow {
            name: spec.name.to_owned(),
            baseline_us,
            decoded_us,
            cycles,
        });
    }
    rows
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let engine = Engine::new();

    eprintln!("[1/2] compilation cache: cold vs hit ...");
    let cache = cache_experiment(&engine);
    let cold_total: f64 = cache.iter().map(|r| r.cold_us).sum();
    let hit_total: f64 = cache.iter().map(|r| r.hit_us).sum();
    let cache_speedup = cold_total / hit_total;

    eprintln!("[2/2] VM dispatch: seed interpreter vs pre-decoded ...");
    let dispatch = dispatch_experiment(&engine);
    let base_total: f64 = dispatch.iter().map(|r| r.baseline_us).sum();
    let dec_total: f64 = dispatch.iter().map(|r| r.decoded_us).sum();
    let dispatch_speedup = base_total / dec_total;

    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"target\": \"{}\",", sse().name);
    let _ = writeln!(j, "  \"flow\": \"{}\",", Flow::SplitVectorOpt);
    let _ = writeln!(j, "  \"cache_speedup\": {cache_speedup:.1},");
    let _ = writeln!(j, "  \"dispatch_speedup\": {dispatch_speedup:.3},");
    j.push_str("  \"compile\": [\n");
    for (i, r) in cache.iter().enumerate() {
        let sep = if i + 1 == cache.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"cold_us\": {:.2}, \"hit_us\": {:.3}, \"speedup\": {:.1}}}{sep}",
            r.name,
            r.cold_us,
            r.hit_us,
            r.cold_us / r.hit_us
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"dispatch\": [\n");
    for (i, r) in dispatch.iter().enumerate() {
        let sep = if i + 1 == dispatch.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"baseline_us\": {:.2}, \"decoded_us\": {:.2}, \"speedup\": {:.3}, \"vm_cycles\": {}}}{sep}",
            r.name,
            r.baseline_us,
            r.decoded_us,
            r.baseline_us / r.decoded_us,
            r.cycles
        );
    }
    j.push_str("  ]\n}\n");

    std::fs::write(&out_path, &j).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("cache-hit compile speedup:   {cache_speedup:.1}x (target ≥ 10x)");
    println!("pre-decoded dispatch speedup: {dispatch_speedup:.3}x (target ≥ 1.2x)");
    println!("wrote {out_path}");
    if cache_speedup < 10.0 || dispatch_speedup < 1.2 {
        eprintln!("BELOW TARGET");
        std::process::exit(1);
    }
}

//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p vapor-bench --bin report            # everything
//! cargo run --release -p vapor-bench --bin report fig5a      # one experiment
//! cargo run --release -p vapor-bench --bin report --quick    # test-scale sizes
//! ```

use vapor_bench::{
    ablation, fig5, fig6, format_table, geomean, realign_reuse_ablation, size_and_time,
    size_time_summary, table3,
};
use vapor_kernels::Scale;
use vapor_targets::{altivec, neon64, sse};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Test } else { Scale::Full };
    let wanted: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let want = |name: &str| wanted.is_empty() || wanted.contains(&name);

    if want("fig5a") {
        print_fig5("Figure 5a — Mono-class JIT, normalized vectorization impact, SSE", &sse(), scale);
    }
    if want("fig5b") {
        print_fig5(
            "Figure 5b — Mono-class JIT, normalized vectorization impact, AltiVec",
            &altivec(),
            scale,
        );
    }
    if want("ablation") {
        let rows = ablation(scale);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.target.clone(),
                    r.with_opts.to_string(),
                    r.without_opts.to_string(),
                    format!("{:.2}x", r.degradation),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                "§V-A(b) — alignment optimizations disabled (naive JIT)",
                &["kernel", "target", "with", "without", "degradation"],
                &table
            )
        );
        println!(
            "average degradation factor: {:.2}x (paper: ~2.5x)\n",
            geomean(rows.iter().map(|r| r.degradation))
        );
    }
    if want("realign") {
        let rows = realign_reuse_ablation(scale);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.with_opts.to_string(),
                    r.without_opts.to_string(),
                    format!("{:.2}x", r.degradation),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                "§III-A design-choice ablation — optimized realignment disabled (AltiVec, opt online)",
                &["kernel", "with reuse", "without", "slowdown"],
                &table
            )
        );
    }
    if want("size") {
        let rows = size_and_time(&sse());
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.scalar_bytes.to_string(),
                    r.vector_bytes.to_string(),
                    format!("{:.2}x", r.vector_bytes as f64 / r.scalar_bytes as f64),
                    format!("{:.1}", r.scalar_us),
                    format!("{:.1}", r.vector_us),
                    format!("{:.2}x", r.vector_us / r.scalar_us),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                "§V-A(c) — bytecode size and online compile time (naive JIT, SSE)",
                &["kernel", "scalar B", "vector B", "size ratio", "scalar µs", "vector µs", "time ratio"],
                &table
            )
        );
        let (s, t) = size_time_summary(&rows);
        println!("geomean size ratio: {s:.2}x (paper: ~5x); geomean compile-time ratio: {t:.2}x (paper: 4.85x/5.37x)\n");
    }
    if want("fig6a") {
        print_fig6("Figure 6a — split/native normalized execution time, SSE", &sse(), scale);
    }
    if want("fig6b") {
        print_fig6("Figure 6b — split/native normalized execution time, AltiVec", &altivec(), scale);
    }
    if want("fig6c") {
        print_fig6("Figure 6c — split/native normalized execution time, NEON (64-bit)", &neon64(), scale);
    }
    if want("table3") {
        let rows = table3(scale);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.native.to_string(),
                    r.split.to_string(),
                    if r.validated { "ok".into() } else { "FAIL".into() },
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                "Table 3 — AVX cycles per vector-loop iteration (IACA-style static analysis)",
                &["kernel", "native", "split", "SDE validation"],
                &table
            )
        );
    }
}

fn print_fig5(title: &str, target: &vapor_targets::TargetDesc, scale: Scale) {
    let rows = fig5(target, scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let f = |v: f64| {
                if v.is_nan() {
                    "-".to_string()
                } else {
                    format!("{v:.2}")
                }
            };
            vec![r.name.clone(), f(r.jit_speedup), f(r.native_speedup), format!("{:.2}x", r.impact)]
        })
        .collect();
    println!(
        "{}",
        format_table(title, &["kernel", "JIT speedup", "native speedup", "impact"], &table)
    );
}

fn print_fig6(title: &str, target: &vapor_targets::TargetDesc, scale: Scale) {
    let rows = fig6(target, scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.split.to_string(),
                r.native.to_string(),
                format!("{:.2}x", r.ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(title, &["kernel", "split cycles", "native cycles", "ratio"], &table)
    );
}

//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p vapor-bench --bin report              # everything
//! cargo run --release -p vapor-bench --bin report fig5a       # one experiment
//! cargo run --release -p vapor-bench --bin report --quick     # test-scale sizes
//! cargo run --release -p vapor-bench --bin report --target=sse        # one target's figures
//! cargo run --release -p vapor-bench --bin report --flow=native-vector --kernel=saxpy_fp
//! ```
//!
//! All compilation goes through one [`Engine`]: the full suite touches
//! many (kernel, flow, target) tuples more than once across figures, and
//! the cache compiles each exactly once. `--flow` (optionally narrowed
//! by `--target`/`--kernel`) reproduces a single flow's cycle column
//! without running any other experiment.

use vapor_bench::{
    ablation, cycles, fig5, fig6, format_table, geomean, realign_reuse_ablation, size_and_time,
    size_time_summary, table3, vla_gains, CompileJob, Engine,
};
use vapor_core::{CompileConfig, Flow};
use vapor_kernels::{suite, Scale};
use vapor_targets::{altivec, avx, neon64, rvv, sse, sve, TargetDesc, TargetKind};

fn parse_flow(name: &str) -> Option<Flow> {
    Flow::ALL.into_iter().find(|f| f.to_string() == name)
}

/// Short alias the CLI accepts for a built-in target.
fn alias(t: &TargetDesc) -> &'static str {
    match t.kind {
        TargetKind::Sse => "sse",
        TargetKind::Altivec => "altivec",
        TargetKind::Neon64 => "neon64",
        TargetKind::Avx => "avx",
        TargetKind::ScalarOnly => "scalar",
        TargetKind::Sve => "sve",
        TargetKind::Rvv => "rvv",
    }
}

/// Every built-in target, in `TargetKind::ALL` order — the one list the
/// parser, the error message, and the help text all derive from, so an
/// added target can never be silently unmatchable.
fn known_targets() -> Vec<TargetDesc> {
    TargetKind::ALL
        .into_iter()
        .map(vapor_targets::target)
        .collect()
}

fn known_target_names() -> String {
    known_targets()
        .iter()
        .map(alias)
        .collect::<Vec<_>>()
        .join(", ")
}

fn parse_target(name: &str) -> Option<TargetDesc> {
    // Accept the short alias the help text advertises ("sse") as well as
    // the full display name ("SSE (128-bit)").
    known_targets()
        .into_iter()
        .find(|t| alias(t).eq_ignore_ascii_case(name) || t.name.eq_ignore_ascii_case(name))
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter().find_map(|a| a.strip_prefix(key))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Test } else { Scale::Full };

    let flow_filter = flag_value(&args, "--flow=").map(|v| {
        parse_flow(v).unwrap_or_else(|| {
            let known: Vec<String> = Flow::ALL.iter().map(|f| f.to_string()).collect();
            eprintln!("unknown flow {v:?}; known flows: {}", known.join(", "));
            std::process::exit(2);
        })
    });
    let target_filter = flag_value(&args, "--target=").map(|v| {
        parse_target(v).unwrap_or_else(|| {
            eprintln!(
                "unknown target {v:?}; known targets: {}",
                known_target_names()
            );
            std::process::exit(2);
        })
    });
    let kernel_filter = flag_value(&args, "--kernel=");

    let engine = Engine::new();

    // Focused mode: one flow's cycle counts, nothing else.
    if let Some(flow) = flow_filter {
        let target = target_filter.unwrap_or_else(sse);
        print_flow(&engine, flow, &target, kernel_filter, scale);
        return;
    }
    // The figure drivers run whole-suite experiments; --kernel only
    // means something in the focused --flow mode. Reject it instead of
    // silently running the full (paper-scale) suite.
    if kernel_filter.is_some() {
        eprintln!("--kernel= requires --flow= (figures always cover the whole suite)");
        std::process::exit(2);
    }

    const EXPERIMENTS: [&str; 12] = [
        "fig5a", "fig5b", "ablation", "realign", "size", "fig6a", "fig6b", "fig6c", "table3",
        "vla", "vmperf", "service",
    ];
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    // Reject typos before any (expensive) section runs rather than
    // falling through to the nothing-printed error at the end.
    if let Some(bad) = wanted.iter().find(|w| !EXPERIMENTS.contains(w)) {
        eprintln!(
            "unknown experiment {bad:?}; known experiments: {}",
            EXPERIMENTS.join(", ")
        );
        std::process::exit(2);
    }
    let want = |name: &str| wanted.is_empty() || wanted.contains(&name);
    let want_target = |t: &TargetDesc| target_filter.as_ref().is_none_or(|f| f.name == t.name);
    // Every section that actually prints flips this; finishing a
    // filtered run without output is an error (listing what exists), not
    // a silent no-op.
    let mut printed = false;

    // Pre-compile the whole working set across threads: every figure
    // below is then pure cache hits + VM execution.
    if wanted.is_empty() && target_filter.is_none() {
        let specs = suite();
        let kernels: Vec<_> = specs.iter().map(|s| s.kernel()).collect();
        let targets = [sse(), altivec(), neon64(), avx()];
        let mut jobs = Vec::new();
        for k in &kernels {
            for t in &targets {
                for flow in Flow::ALL {
                    jobs.push(CompileJob::new(k, flow, t));
                }
            }
        }
        let failures = engine
            .compile_batch(&jobs)
            .iter()
            .filter(|r| r.is_err())
            .count();
        let s = engine.stats();
        eprintln!(
            "[engine] pre-compiled {} tuples across threads ({} cached, {} failed)",
            jobs.len(),
            s.entries,
            failures
        );
    }

    if want("fig5a") && want_target(&sse()) {
        printed = true;
        print_fig5(
            &engine,
            "Figure 5a — Mono-class JIT, normalized vectorization impact, SSE",
            &sse(),
            scale,
        );
    }
    if want("fig5b") && want_target(&altivec()) {
        printed = true;
        print_fig5(
            &engine,
            "Figure 5b — Mono-class JIT, normalized vectorization impact, AltiVec",
            &altivec(),
            scale,
        );
    }
    if want("ablation") && (want_target(&sse()) || want_target(&altivec())) {
        printed = true;
        let rows: Vec<_> = ablation(&engine, scale)
            .into_iter()
            .filter(|r| target_filter.as_ref().is_none_or(|t| t.name == r.target))
            .collect();
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.target.clone(),
                    r.with_opts.to_string(),
                    r.without_opts.to_string(),
                    format!("{:.2}x", r.degradation),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                "§V-A(b) — alignment optimizations disabled (naive JIT)",
                &["kernel", "target", "with", "without", "degradation"],
                &table
            )
        );
        println!(
            "average degradation factor: {:.2}x (paper: ~2.5x)\n",
            geomean(rows.iter().map(|r| r.degradation))
        );
    }
    if want("realign") && want_target(&altivec()) {
        printed = true;
        let rows = realign_reuse_ablation(&engine, scale);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.with_opts.to_string(),
                    r.without_opts.to_string(),
                    format!("{:.2}x", r.degradation),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                "§III-A design-choice ablation — optimized realignment disabled (AltiVec, opt online)",
                &["kernel", "with reuse", "without", "slowdown"],
                &table
            )
        );
    }
    if want("size") && want_target(&sse()) {
        printed = true;
        let rows = size_and_time(&engine, &sse());
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.scalar_bytes.to_string(),
                    r.vector_bytes.to_string(),
                    format!("{:.2}x", r.vector_bytes as f64 / r.scalar_bytes as f64),
                    format!("{:.1}", r.scalar_us),
                    format!("{:.1}", r.vector_us),
                    format!("{:.2}x", r.vector_us / r.scalar_us),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                "§V-A(c) — bytecode size and online compile time (naive JIT, SSE)",
                &[
                    "kernel",
                    "scalar B",
                    "vector B",
                    "size ratio",
                    "scalar µs",
                    "vector µs",
                    "time ratio"
                ],
                &table
            )
        );
        let (s, t) = size_time_summary(&rows);
        println!("geomean size ratio: {s:.2}x (paper: ~5x); geomean compile-time ratio: {t:.2}x (paper: 4.85x/5.37x)\n");
    }
    if want("fig6a") && want_target(&sse()) {
        printed = true;
        print_fig6(
            &engine,
            "Figure 6a — split/native normalized execution time, SSE",
            &sse(),
            scale,
        );
    }
    if want("fig6b") && want_target(&altivec()) {
        printed = true;
        print_fig6(
            &engine,
            "Figure 6b — split/native normalized execution time, AltiVec",
            &altivec(),
            scale,
        );
    }
    if want("fig6c") && want_target(&neon64()) {
        printed = true;
        print_fig6(
            &engine,
            "Figure 6c — split/native normalized execution time, NEON (64-bit)",
            &neon64(),
            scale,
        );
    }
    if want("table3") && want_target(&avx()) {
        printed = true;
        let rows = table3(&engine, scale);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.native.to_string(),
                    r.split.to_string(),
                    if r.validated {
                        "ok".into()
                    } else {
                        "FAIL".into()
                    },
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                "Table 3 — AVX cycles per vector-loop iteration (IACA-style static analysis)",
                &["kernel", "native", "split", "SDE validation"],
                &table
            )
        );
    }

    if want("vla") {
        for family in [sve(), rvv()] {
            if want_target(&family) {
                printed = true;
                print_vla(&engine, &family, scale);
            }
        }
    }

    if want("vmperf") && (target_filter.is_none() || want_target(&sse()) || want_target(&sve())) {
        printed = true;
        print_vmperf(&engine, scale);
    }

    if want("service") && target_filter.is_none() {
        // Rendered from the committed BENCH_engine.json (the storm takes
        // minutes at bench scale; `engine_bench` is its producer). A
        // *requested* section that is absent is a hard error — a report
        // that silently prints nothing would hide a stale benchmark file
        // from CI.
        printed |= print_service(wanted.contains(&"service"));
    }

    if !printed {
        eprintln!(
            "nothing to report: no experiment matches the given filters. \
             Experiments: {} — each tied to specific targets \
             (known targets: {}). Use --flow= for a per-kernel cycle \
             table on any target.",
            EXPERIMENTS.join(" "),
            known_target_names()
        );
        std::process::exit(2);
    }

    let s = engine.stats();
    eprintln!(
        "[engine] cache: {} entries ({} VL specializations), {} hits, {} misses",
        s.entries, s.vl_entries, s.hits, s.misses
    );
}

/// The VM-performance table: what one register move costs per target
/// class (the seed kept every register at MAX_VS bytes), what the
/// predicated fast-dispatch kernels buy over the generic interpreter
/// loop on a runtime-VL machine, and what the superinstruction fusion
/// pass collapses per kernel.
fn print_vmperf(engine: &Engine, scale: Scale) {
    use vapor_core::{ExecRequest, Tier};
    use vapor_targets::{VBytes, MAX_VS};

    let sized = std::mem::size_of::<VBytes>();
    let rows = vec![
        vec![
            "register move, fixed-width (SSE/NEON/AVX)".to_string(),
            format!("{MAX_VS} B"),
            format!("{sized} B (inline)"),
            format!("{:.1}x", MAX_VS as f64 / sized as f64),
        ],
        vec![
            "register move, VLA ≤ 256-bit".to_string(),
            format!("{MAX_VS} B"),
            format!("{sized} B (inline)"),
            format!("{:.1}x", MAX_VS as f64 / sized as f64),
        ],
        vec![
            "register move, VLA > 256-bit".to_string(),
            format!("{MAX_VS} B"),
            format!("{sized} B (boxed, recycled)"),
            "alloc-free".to_string(),
        ],
    ];
    println!(
        "{}",
        format_table(
            "VM register file — bytes moved per register write (seed vs target-sized)",
            &["path", "seed (MAX_VS)", "sized", "reduction"],
            &rows
        )
    );

    let family = sve();
    let vl = 512;
    let cfg = CompileConfig::default();
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for spec in suite() {
        if !(spec.name.starts_with("saxpy") || spec.name.starts_with("jacobi")) {
            continue;
        }
        let kernel = spec.kernel();
        let env = spec.env(scale);
        let fast_req = ExecRequest::new(&kernel, &family, &env).vl_bits(vl);
        if engine.execute(&fast_req).is_err() {
            continue;
        }
        let timed = |f: &mut dyn FnMut()| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = std::time::Instant::now();
                f();
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best * 1e6
        };
        let generic_req = fast_req.clone().tier(Tier::Baseline);
        let fast = timed(&mut || {
            engine.execute(&fast_req).unwrap();
        });
        let generic = timed(&mut || {
            engine.execute(&generic_req).unwrap();
        });
        ratios.push(generic / fast);
        rows.push(vec![
            spec.name.to_owned(),
            format!("{generic:.1}"),
            format!("{fast:.1}"),
            format!("{:.2}x", generic / fast),
        ]);
    }
    println!(
        "{}",
        format_table(
            &format!(
                "VLA fast dispatch — generic predicated loop vs VBinVlFast/VUnVlFast ({} @VL={vl})",
                family.name
            ),
            &["kernel", "generic µs", "fast µs", "speedup"],
            &rows
        )
    );
    println!(
        "geomean VLA fast-dispatch speedup: {:.2}x (full suite recorded in BENCH_engine.json)\n",
        geomean(ratios.into_iter())
    );

    // Execution-tier ladder: the seed interpreter, the pre-decoded
    // fused dispatch, and the closure-threaded tier (register arena +
    // address streams + per-region fuel) on representative kernels —
    // two streamed vector kernels, one vector-heavy kernel, and the
    // scalar-chain floor kernels the threaded tier exists for.
    let target = vapor_targets::sse();
    let mut rows = Vec::new();
    let mut dec_ratios = Vec::new();
    let mut thr_ratios = Vec::new();
    for spec in suite() {
        if !["saxpy_fp", "convolve_s32", "gemm_fp", "lu_fp", "seidel_fp"].contains(&spec.name) {
            continue;
        }
        let kernel = spec.kernel();
        let env = spec.env(scale);
        // The threaded program itself is still fetched for its stream
        // inventory (the "streams" column); the timings all go through
        // `Engine::execute`.
        let Ok((_, prog)) = engine.thread(
            &kernel,
            vapor_core::Flow::SplitVectorOpt,
            &target,
            &cfg,
            target.vs * 8,
        ) else {
            continue;
        };
        let timed = |f: &mut dyn FnMut()| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = std::time::Instant::now();
                f();
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best * 1e6
        };
        let dec_req = ExecRequest::new(&kernel, &target, &env);
        let seed_req = dec_req.clone().tier(Tier::Baseline);
        let thr_req = dec_req.clone().tier(Tier::Threaded);
        let seed = timed(&mut || {
            engine.execute(&seed_req).unwrap();
        });
        let dec = timed(&mut || {
            engine.execute(&dec_req).unwrap();
        });
        let thr = timed(&mut || {
            engine.execute(&thr_req).unwrap();
        });
        dec_ratios.push(seed / dec);
        thr_ratios.push(seed / thr);
        rows.push(vec![
            spec.name.to_owned(),
            format!("{seed:.1}"),
            format!("{dec:.1}"),
            format!("{thr:.1}"),
            format!("{:.2}x", seed / dec),
            format!("{:.2}x", seed / thr),
            if prog.streamed_loops() > 0 {
                format!("{}", prog.streamed_loops())
            } else {
                "-".to_string()
            },
        ]);
    }
    println!(
        "{}",
        format_table(
            "Execution tiers — seed interpreter vs decoded dispatch vs closure-threaded (SSE, opt online)",
            &[
                "kernel",
                "seed µs",
                "decoded µs",
                "threaded µs",
                "decoded",
                "threaded",
                "streams"
            ],
            &rows
        )
    );
    println!(
        "geomean over shown kernels: decoded {:.2}x, threaded {:.2}x vs seed \
         (full suite gated in BENCH_engine.json)\n",
        geomean(dec_ratios.into_iter()),
        geomean(thr_ratios.into_iter())
    );

    // Superinstruction fusion: the per-kernel inventory of fused steps
    // (deterministic — the same counts the CI bench job gates exactly).
    let mut rows = Vec::new();
    let mut kernels = 0usize;
    let mut three_op_kernels = 0usize;
    for spec in suite() {
        let kernel = spec.kernel();
        let Ok(c) = engine.compile(
            &kernel,
            vapor_core::Flow::SplitVectorOpt,
            &vapor_targets::sse(),
            &cfg,
        ) else {
            continue;
        };
        let s = c.jit.decoded.fusion_stats();
        kernels += 1;
        if s.three_op() > 0 {
            three_op_kernels += 1;
        }
        rows.push(vec![
            spec.name.to_owned(),
            format!("{}", c.jit.decoded.len),
            format!("{}", c.jit.decoded.n_steps()),
            format!("{}", s.load_bin_store),
            format!("{}", s.load_bin_bin),
            format!("{}", s.load_bin),
            format!("{}", s.bin_store),
            format!("{}", s.latch),
        ]);
    }
    println!(
        "{}",
        format_table(
            "Superinstruction fusion — decoded steps and per-pattern hits (SSE, opt online)",
            &["kernel", "insts", "steps", "ld+op+st", "ld+op+op", "ld+op", "op+st", "latch"],
            &rows
        )
    );
    println!(
        "three-op superinstructions fire on {three_op_kernels}/{kernels} suite kernels; \
         the predicated VLA form (ld.vl+op.vl+st.vl) fuses on the SVE/RVV family \
         (wall-clock fused-vs-unfused recorded in BENCH_engine.json)\n"
    );

    // Planner verdicts: why every scalar loop stayed scalar, per loop
    // and — where Allen–Kennedy distribution ran — per dependence SCC.
    // The category match below is exhaustive on purpose: adding a
    // rejection category without a human description here is a compile
    // error, and an unvectorized loop with *no* typed reason panics —
    // rejections must never regress into mystery.
    use vapor_vectorizer::RejectCategory;
    let describe = |c: RejectCategory| -> &'static str {
        match c {
            RejectCategory::NonAffine => "non-affine subscript or bound",
            RejectCategory::UnsupportedStride => "unsupported access stride",
            RejectCategory::Dependence => "unresolved memory dependence",
            RejectCategory::Recurrence => "true recurrence (dependence cycle)",
            RejectCategory::Bounds => "unanalyzable loop bounds",
            RejectCategory::UnsupportedTypes => "unsupported element types",
            RejectCategory::TargetUnsupported => "target lacks the operation",
            RejectCategory::NoVectorWork => "nothing profitable to vectorize",
            RejectCategory::EmitFailure => "vector emission failed",
        }
    };
    let mut rows = Vec::new();
    for spec in suite() {
        let kernel = spec.kernel();
        let Ok(c) = engine.compile(
            &kernel,
            vapor_core::Flow::SplitVectorOpt,
            &vapor_targets::sse(),
            &cfg,
        ) else {
            continue;
        };
        for r in &c.reports {
            if r.vectorized && r.parts.is_empty() {
                continue; // plainly-vector loops have no scalarization story
            }
            let reason = match (&r.reason, r.vectorized) {
                (Some(rej), _) => format!("{} — {}", describe(rej.category), rej.detail),
                (None, true) => "-".to_string(),
                (None, false) => panic!(
                    "{}: unvectorized loop without a typed reason: {}",
                    spec.name, r.description
                ),
            };
            let parts = if r.parts.is_empty() {
                "-".to_string()
            } else {
                r.parts
                    .iter()
                    .map(|p| {
                        format!(
                            "{:?}={}",
                            p.stmts,
                            if p.vectorized { "vec" } else { "scalar" }
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            rows.push(vec![
                spec.name.to_owned(),
                r.description.clone(),
                if r.vectorized { "vector" } else { "scalar" }.to_string(),
                reason,
                parts,
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            "Planner verdicts — scalar loops, typed reasons, and SCC partitions (SSE, opt online)",
            &["kernel", "loop", "verdict", "why scalar", "sccs"],
            &rows
        )
    );

    // The service-layer view of the same engine: how the sharded,
    // bounded compile cache and the arena pool behaved under everything
    // this report just ran.
    let s = engine.stats();
    let rows = vec![
        vec![
            "compile cache".to_string(),
            format!("{} entries / {} shards", s.entries, s.shards),
            format!("{} hits, {} misses", s.hits, s.misses),
            format!("{} evicted", s.evictions),
        ],
        vec![
            "execution caches".to_string(),
            format!("{} VL + {} threaded", s.vl_entries, s.threaded_entries),
            "-".to_string(),
            format!("{} evicted", s.exec_evictions),
        ],
        vec![
            "lock contention".to_string(),
            format!("{} contended acquisitions", s.contended_locks),
            "-".to_string(),
            "-".to_string(),
        ],
        vec![
            "arena pool".to_string(),
            format!("{} pooled reuses", s.pool_reuses),
            format!("{} fresh allocations", s.pool_allocs),
            "-".to_string(),
        ],
    ];
    println!(
        "{}",
        format_table(
            "Engine service layer — shard, eviction, and pooling counters for this run",
            &["subsystem", "size", "traffic", "evictions"],
            &rows
        )
    );
}

/// Pull a `"key": <number>` out of the committed benchmark JSON (no
/// serde in the offline container; the format is `engine_bench`'s own
/// writer's).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Render the multi-tenant service section of the committed
/// `BENCH_engine.json`. Returns whether anything was printed; when the
/// section was explicitly requested (`strict`) a missing file or a
/// baseline predating the service PR exits non-zero instead of silently
/// reporting nothing.
fn print_service(strict: bool) -> bool {
    let path = "BENCH_engine.json";
    let missing = |what: &str| {
        if strict {
            eprintln!(
                "service: {what} — regenerate with \
                 `cargo run --release -p vapor-bench --bin engine_bench`"
            );
            std::process::exit(1);
        }
        false
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return missing(&format!("{path} not found"));
    };
    let Some(at) = text.find("\"service\":") else {
        return missing(&format!("no \"service\" section in {path}"));
    };
    let sec = &text[at..];
    let num = |key: &str| {
        json_number(sec, key).unwrap_or_else(|| panic!("service section of {path} lacks \"{key}\""))
    };
    let rows = vec![
        vec![
            "mixed request storm".to_string(),
            format!("{} requests / {} threads", num("requests"), num("threads")),
            format!("{:.0} req/s", num("throughput_rps")),
        ],
        vec![
            "latency".to_string(),
            format!("p50 {:.1} µs", num("p50_us")),
            format!("p99 {:.1} µs", num("p99_us")),
        ],
        vec![
            "arena pool".to_string(),
            format!("{} reuses", num("pool_reuses")),
            format!("{} allocs", num("pool_allocs")),
        ],
        vec![
            "cache contention A/B".to_string(),
            format!("sharded: {} contended", num("sharded_contended")),
            format!("single lock: {} contended", num("single_contended")),
        ],
        vec![
            "artifact tier A/B".to_string(),
            format!(
                "cold {:.0} µs, warm {:.0} µs",
                num("artifact_cold_us"),
                num("artifact_warm_us")
            ),
            format!("{:.2}x warm-start speedup", num("artifact_speedup")),
        ],
    ];
    println!(
        "{}",
        format_table(
            &format!("Multi-tenant compile service — committed {path} stress section"),
            &["metric", "value", "value"],
            &rows
        )
    );
    true
}

fn print_vla(engine: &Engine, family: &TargetDesc, scale: Scale) {
    let rows = vla_gains(engine, family, scale);
    let vls: Vec<usize> = rows[0].per_vl.iter().map(|(vl, _, _)| *vl).collect();
    let mut headers: Vec<String> = vec!["kernel".into(), "scalar".into()];
    headers.extend(vls.iter().map(|vl| format!("VL={vl}")));
    let header_refs: Vec<&str> = headers.iter().map(|h| h.as_str()).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.name.clone(), r.scalar.to_string()];
            cells.extend(r.per_vl.iter().map(|(_, c, g)| format!("{c} ({g:.2}x)")));
            cells
        })
        .collect();
    println!(
        "{}",
        format_table(
            &format!(
                "VLA gains — one VL-agnostic artifact, specialized per runtime VL ({})",
                family.name
            ),
            &header_refs,
            &table
        )
    );
    let summary: Vec<String> = vls
        .iter()
        .enumerate()
        .map(|(i, vl)| {
            let g = geomean(rows.iter().map(|r| r.per_vl[i].2));
            format!("VL={vl}: {g:.2}x")
        })
        .collect();
    println!("geomean gains vs scalar: {}\n", summary.join("  "));
}

fn print_flow(
    engine: &Engine,
    flow: Flow,
    target: &TargetDesc,
    kernel_filter: Option<&str>,
    scale: Scale,
) {
    let cfg = CompileConfig::default();
    let mut rows = Vec::new();
    for spec in suite() {
        if kernel_filter.is_some_and(|k| k != spec.name) {
            continue;
        }
        let kernel = spec.kernel();
        let env = spec.env(scale);
        let c = cycles(engine, &kernel, flow, target, &env, &cfg);
        rows.push(vec![spec.name.to_owned(), c.to_string()]);
    }
    if rows.is_empty() {
        eprintln!("no kernel matches {:?}", kernel_filter.unwrap_or(""));
        std::process::exit(2);
    }
    println!(
        "{}",
        format_table(
            &format!("{flow} on {} — VM cycles", target.name),
            &["kernel", "cycles"],
            &rows
        )
    );
}

fn print_fig5(engine: &Engine, title: &str, target: &TargetDesc, scale: Scale) {
    let rows = fig5(engine, target, scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let f = |v: f64| {
                if v.is_nan() {
                    "-".to_string()
                } else {
                    format!("{v:.2}")
                }
            };
            vec![
                r.name.clone(),
                f(r.jit_speedup),
                f(r.native_speedup),
                format!("{:.2}x", r.impact),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            title,
            &["kernel", "JIT speedup", "native speedup", "impact"],
            &table
        )
    );
}

fn print_fig6(engine: &Engine, title: &str, target: &TargetDesc, scale: Scale) {
    let rows = fig6(engine, target, scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.split.to_string(),
                r.native.to_string(),
                format!("{:.2}x", r.ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            title,
            &["kernel", "split cycles", "native cycles", "ratio"],
            &table
        )
    );
}

//! Criterion benchmarks wrapping the paper's experiments.
//!
//! One group per table/figure of the evaluation section — `cargo bench`
//! regenerates the series (at test scale, for sane bench times) and the
//! compile-time/VM micro-benchmarks that §V-A(c) reports in µs. The
//! paper-scale numbers are produced by the `report` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vapor_bench::{ablation, fig5, fig6, size_and_time, table3};
use vapor_core::{compile, run, AllocPolicy, CompileConfig, Flow};
use vapor_kernels::{find, Scale};
use vapor_targets::{altivec, neon64, sse};

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("a_sse", |b| b.iter(|| black_box(fig5(&sse(), Scale::Test))));
    g.bench_function("b_altivec", |b| b.iter(|| black_box(fig5(&altivec(), Scale::Test))));
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("a_sse", |b| b.iter(|| black_box(fig6(&sse(), Scale::Test))));
    g.bench_function("b_altivec", |b| b.iter(|| black_box(fig6(&altivec(), Scale::Test))));
    g.bench_function("c_neon", |b| b.iter(|| black_box(fig6(&neon64(), Scale::Test))));
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("avx_static_analysis", |b| b.iter(|| black_box(table3(Scale::Test))));
    g.finish();
}

fn bench_ablation_and_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec5a");
    g.sample_size(10);
    g.bench_function("b_alignment_ablation", |b| b.iter(|| black_box(ablation(Scale::Test))));
    g.bench_function("c_size_and_time", |b| b.iter(|| black_box(size_and_time(&sse()))));
    g.finish();
}

/// The µs-range JIT compile times §V-A(c) reports, as real benchmarks.
fn bench_online_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("online_compile");
    let target = sse();
    let cfg = CompileConfig::default();
    for name in ["saxpy_fp", "sfir_s16", "mmm_fp"] {
        let kernel = find(name).unwrap().kernel();
        g.bench_function(format!("{name}/split_vector_naive"), |b| {
            b.iter(|| black_box(compile(&kernel, Flow::SplitVectorNaive, &target, &cfg).unwrap()))
        });
        g.bench_function(format!("{name}/split_scalar_naive"), |b| {
            b.iter(|| black_box(compile(&kernel, Flow::SplitScalarNaive, &target, &cfg).unwrap()))
        });
    }
    g.finish();
}

/// Virtual-machine execution throughput (the simulator substrate).
fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm_execute");
    let target = sse();
    let cfg = CompileConfig::default();
    let spec = find("saxpy_fp").unwrap();
    let kernel = spec.kernel();
    let env = spec.env(Scale::Full);
    for flow in [Flow::SplitVectorOpt, Flow::SplitScalarOpt] {
        let compiled = compile(&kernel, flow, &target, &cfg).unwrap();
        g.bench_function(format!("saxpy_1024/{flow}"), |b| {
            b.iter(|| black_box(run(&target, &compiled, &env, AllocPolicy::Aligned).unwrap()))
        });
    }
    g.finish();
}

/// Bytecode encode/decode throughput (the interop boundary).
fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("bytecode_codec");
    let kernel = find("mmm_fp").unwrap().kernel();
    let result = vapor_vectorizer::vectorize(&kernel, &Default::default());
    let module = vapor_bytecode::BcModule::single(result.func);
    let bytes = vapor_bytecode::encode_module(&module);
    g.bench_function("encode_mmm", |b| {
        b.iter(|| black_box(vapor_bytecode::encode_module(black_box(&module))))
    });
    g.bench_function("decode_mmm", |b| {
        b.iter(|| black_box(vapor_bytecode::decode_module(black_box(&bytes)).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig5,
    bench_fig6,
    bench_table3,
    bench_ablation_and_size,
    bench_online_compile,
    bench_vm,
    bench_codec
);
criterion_main!(benches);

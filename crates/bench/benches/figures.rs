//! Benchmarks wrapping the paper's experiments, self-hosted (no external
//! harness: the container builds offline, so this is a `harness = false`
//! bench with its own best-of-N timer).
//!
//! One group per table/figure of the evaluation section — `cargo bench`
//! regenerates the series (at test scale, for sane bench times) and the
//! compile-time/VM micro-benchmarks that §V-A(c) reports in µs. The
//! paper-scale numbers are produced by the `report` binary.

use std::hint::black_box;
use std::time::Instant;

use vapor_bench::{ablation, fig5, fig6, size_and_time, table3};
use vapor_core::{CompileConfig, Engine, ExecRequest, Flow};
use vapor_kernels::{find, Scale};
use vapor_targets::{altivec, neon64, sse};

/// Best-of-`reps` wall time of `f`, in microseconds.
fn best_us<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn report(group: &str, name: &str, us: f64) {
    println!("{group:<18} {name:<32} {us:>12.1} µs");
}

fn bench_figures() {
    let e = Engine::new();
    report(
        "fig5",
        "a_sse",
        best_us(3, || fig5(&e, &sse(), Scale::Test)),
    );
    report(
        "fig5",
        "b_altivec",
        best_us(3, || fig5(&e, &altivec(), Scale::Test)),
    );
    report(
        "fig6",
        "a_sse",
        best_us(3, || fig6(&e, &sse(), Scale::Test)),
    );
    report(
        "fig6",
        "b_altivec",
        best_us(3, || fig6(&e, &altivec(), Scale::Test)),
    );
    report(
        "fig6",
        "c_neon",
        best_us(3, || fig6(&e, &neon64(), Scale::Test)),
    );
    report(
        "table3",
        "avx_static_analysis",
        best_us(3, || table3(&e, Scale::Test)),
    );
    report(
        "sec5a",
        "b_alignment_ablation",
        best_us(3, || ablation(&e, Scale::Test)),
    );
    report(
        "sec5a",
        "c_size_and_time",
        best_us(3, || size_and_time(&e, &sse())),
    );
}

/// The µs-range JIT compile times §V-A(c) reports, as real benchmarks.
/// Compilation goes through the engine's uncached path: the cached path
/// is a map lookup and would only measure hashing.
fn bench_online_compile() {
    let engine = Engine::new();
    let target = sse();
    let cfg = CompileConfig::default();
    for name in ["saxpy_fp", "sfir_s16", "mmm_fp"] {
        let kernel = find(name).unwrap().kernel();
        for flow in [Flow::SplitVectorNaive, Flow::SplitScalarNaive] {
            let us = best_us(20, || {
                engine
                    .compile_uncached(&kernel, flow, &target, &cfg)
                    .unwrap()
            });
            report("online_compile", &format!("{name}/{flow}"), us);
        }
    }
}

/// Virtual-machine execution throughput (the simulator substrate).
fn bench_vm() {
    let engine = Engine::new();
    let target = sse();
    let cfg = CompileConfig::default();
    let spec = find("saxpy_fp").unwrap();
    let kernel = spec.kernel();
    let env = spec.env(Scale::Full);
    for flow in [Flow::SplitVectorOpt, Flow::SplitScalarOpt] {
        let req = ExecRequest::new(&kernel, &target, &env)
            .flow(flow)
            .config(cfg.clone());
        engine.execute(&req).unwrap(); // warm the compile cache
        let us = best_us(20, || engine.execute(&req).unwrap());
        report("vm_execute", &format!("saxpy_1024/{flow}"), us);
    }
}

/// Bytecode encode/decode throughput (the interop boundary).
fn bench_codec() {
    let kernel = find("mmm_fp").unwrap().kernel();
    let result = vapor_vectorizer::vectorize(&kernel, &Default::default());
    let module = vapor_bytecode::BcModule::single(result.func);
    let bytes = vapor_bytecode::encode_module(&module);
    report(
        "bytecode_codec",
        "encode_mmm",
        best_us(50, || vapor_bytecode::encode_module(black_box(&module))),
    );
    report(
        "bytecode_codec",
        "decode_mmm",
        best_us(50, || {
            vapor_bytecode::decode_module(black_box(&bytes)).unwrap()
        }),
    );
}

fn main() {
    // `cargo test` builds and runs bench targets with `--test`; the
    // timing loops are pointless there, so bail out early.
    if std::env::args().any(|a| a == "--test" || a == "--list") {
        return;
    }
    bench_figures();
    bench_online_compile();
    bench_vm();
    bench_codec();
}

//! Execution harness: load a compiled kernel into the virtual SIMD
//! machine, bind arguments and arrays, run, and read results back.

use vapor_ir::{interpret, ArrayData, Bindings, Kernel, Value};
use vapor_targets::{ExecStats, Machine, Memory, TargetDesc, Trap, MAX_VS};

use crate::pipeline::Compiled;

/// Array placement policy of the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Every array on a `MAX_VS` boundary (256 bytes — the widest VLA
    /// register) — what a JIT/runtime that owns allocation guarantees.
    Aligned,
    /// Deliberately misalign every base by the given byte offset
    /// (stress/ablation runs). Only meaningful for pipelines that do not
    /// own allocation (the optimizing online and native flows): the
    /// naive JIT folds `base_aligned` guards to true *because* its own
    /// allocator aligns, so feeding its code misaligned bases violates
    /// the contract and traps.
    Misaligned(usize),
}

/// Result of one execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final array contents, keyed by array name.
    pub out: Bindings,
    /// Cycle/instruction counts from the VM.
    pub stats: ExecStats,
}

/// **Deprecated** shim: execute compiled code against the given
/// bindings through the decoded tier. New code should build a
/// [`crate::ExecRequest`] and call `Engine::execute` — it adds caching,
/// arena pooling, tier/VL/fusion selection, and service stats; this
/// shim is kept so pre-service call sites keep compiling and as the
/// compat-test oracle.
///
/// # Errors
/// Returns [`Trap`] on VM contract violations (always a compiler bug in
/// this codebase) and missing bindings.
pub fn run(
    target: &TargetDesc,
    compiled: &Compiled,
    env: &Bindings,
    policy: AllocPolicy,
) -> Result<RunResult, Trap> {
    let (mut m, bases) = setup_machine(target, compiled, env, policy, false)?;
    let stats = m.run_decoded(&compiled.jit.decoded)?;
    Ok(read_back(&m, bases, stats))
}

/// **Deprecated** shim (see [`run()`]; use
/// `ExecRequest::wide_registers(true)` with `Engine::execute` instead).
///
/// Like [`run()`], but forcing the seed-style register file: every
/// vector register heap-backed at the full `MAX_VS` (2048-bit) width
/// regardless of the target. Results and cycle counts are identical to
/// [`run()`] by construction — only register-move traffic differs.
/// Used by the register-file benchmarks and the differential tests that
/// pin the target-sized representation to the max-sized one.
///
/// # Errors
/// Same contract as [`run()`].
pub fn run_wide(
    target: &TargetDesc,
    compiled: &Compiled,
    env: &Bindings,
    policy: AllocPolicy,
) -> Result<RunResult, Trap> {
    let (mut m, bases) = setup_machine(target, compiled, env, policy, true)?;
    let stats = m.run_decoded(&compiled.jit.decoded)?;
    Ok(read_back(&m, bases, stats))
}

/// **Deprecated** shim (see [`run()`]; use `ExecRequest::vl_bits` with
/// `Engine::execute` instead).
///
/// Like [`run()`], but executing a runtime-VL specialization produced by
/// `Engine::specialize`: `exec_target` must be the concrete-width
/// description (`family.at_vl(vl_bits)`) whose decode produced `prog`.
/// The compiled artifact itself stays VL-agnostic — only the machine and
/// the pre-decoded program carry the concrete width.
///
/// # Errors
/// Returns [`Trap`] on VM contract violations and missing bindings; a
/// mismatch between `exec_target` and `prog` traps up front.
pub fn run_specialized(
    exec_target: &TargetDesc,
    compiled: &Compiled,
    prog: &vapor_targets::DecodedProgram,
    env: &Bindings,
    policy: AllocPolicy,
) -> Result<RunResult, Trap> {
    let (mut m, bases) = setup_machine(exec_target, compiled, env, policy, false)?;
    let stats = m.run_decoded(prog)?;
    Ok(read_back(&m, bases, stats))
}

/// **Deprecated** shim (see [`run()`]; use `ExecRequest::vl_bits` plus
/// `ExecRequest::wide_registers(true)` with `Engine::execute` instead).
///
/// [`run_specialized`] with the seed-style max-width register file (see
/// [`run_wide`]): the differential harness for runtime-VL machines,
/// whose narrow specializations use inline registers.
///
/// # Errors
/// Same contract as [`run_specialized`].
pub fn run_specialized_wide(
    exec_target: &TargetDesc,
    compiled: &Compiled,
    prog: &vapor_targets::DecodedProgram,
    env: &Bindings,
    policy: AllocPolicy,
) -> Result<RunResult, Trap> {
    let (mut m, bases) = setup_machine(exec_target, compiled, env, policy, true)?;
    let stats = m.run_decoded(prog)?;
    Ok(read_back(&m, bases, stats))
}

/// **Deprecated** shim (see [`run()`]; use
/// `ExecRequest::tier(Tier::Threaded)` with `Engine::execute` instead).
///
/// Like [`run_specialized`], but executing through the closure-threaded
/// tier: `prog` is the threaded lowering produced by `Engine::thread`
/// (or `ThreadedProgram::thread`) for the same concrete-width
/// `exec_target`. Array state, cycle counts and instruction counts are
/// bit-identical to the decoded dispatch on every non-trapping
/// execution — the decoded tier stays the differential oracle.
///
/// # Errors
/// Returns [`Trap`] on VM contract violations and missing bindings; a
/// mismatch between `exec_target` and `prog` traps up front.
pub fn run_threaded(
    exec_target: &TargetDesc,
    compiled: &Compiled,
    prog: &vapor_targets::ThreadedProgram,
    env: &Bindings,
    policy: AllocPolicy,
) -> Result<RunResult, Trap> {
    let (mut m, bases) = setup_machine(exec_target, compiled, env, policy, false)?;
    let stats = m.run_threaded(prog)?;
    Ok(read_back(&m, bases, stats))
}

/// **Deprecated** shim (see [`run()`]; use `ExecRequest::fused(false)`
/// with `Engine::execute` instead).
///
/// Like [`run()`], but executing a freshly decoded *unfused* program —
/// no superinstructions, one step per executable instruction. The
/// baseline side of the fusion differential tests and benchmarks;
/// machine state, cycles and instruction counts must be bit-identical
/// to [`run()`] (which executes the fused decode).
///
/// # Errors
/// Same contract as [`run()`].
pub fn run_unfused(
    target: &TargetDesc,
    compiled: &Compiled,
    env: &Bindings,
    policy: AllocPolicy,
) -> Result<RunResult, Trap> {
    let prog = vapor_targets::DecodedProgram::decode_unfused(&compiled.jit.code, target)?;
    let (mut m, bases) = setup_machine(target, compiled, env, policy, false)?;
    let stats = m.run_decoded(&prog)?;
    Ok(read_back(&m, bases, stats))
}

/// **Deprecated** shim (see [`run()`]; use
/// `ExecRequest::tier(Tier::Baseline)` with `Engine::execute` instead).
///
/// Like [`run()`], but executing through the seed per-instruction
/// dispatch loop instead of the pre-decoded program. Kept as the
/// baseline the engine benchmark measures the decoded dispatch against;
/// results are identical (the dispatch loops share one instruction
/// semantics).
///
/// # Errors
/// Same contract as [`run()`].
pub fn run_baseline(
    target: &TargetDesc,
    compiled: &Compiled,
    env: &Bindings,
    policy: AllocPolicy,
) -> Result<RunResult, Trap> {
    let (mut m, bases) = setup_machine(target, compiled, env, policy, false)?;
    let stats = m.run(&compiled.jit.code)?;
    Ok(read_back(&m, bases, stats))
}

/// Array placements of one execution: (name, base, length, element type).
pub(crate) type Placements = Vec<(String, u64, usize, vapor_ir::ScalarTy)>;

/// Build a machine, bind scalars, and place arrays per `policy`.
fn setup_machine<'t>(
    target: &'t TargetDesc,
    compiled: &Compiled,
    env: &Bindings,
    policy: AllocPolicy,
    wide_regs: bool,
) -> Result<(Machine<'t>, Placements), Trap> {
    setup_machine_with(target, compiled, env, policy, wide_regs, None)
}

/// [`setup_machine`], optionally recycling a memory arena from a
/// previous execution (the engine's pooled-execution path): the buffer
/// is re-zeroed over the required capacity instead of freshly
/// allocated. Pass `None` for a cold allocation.
pub(crate) fn setup_machine_with<'t>(
    target: &'t TargetDesc,
    compiled: &Compiled,
    env: &Bindings,
    policy: AllocPolicy,
    wide_regs: bool,
    arena: Option<Vec<u8>>,
) -> Result<(Machine<'t>, Placements), Trap> {
    let f = &compiled.func;
    // Memory: all arrays + the machine's guard padding either side +
    // alignment slack. The padding is target-sized (`Memory::pad_for`),
    // so a 16-byte-register machine no longer carries 2048-bit guard
    // zones per array. Checking bindings here (not with `unwrap_or(0)`)
    // so a missing array is reported by name up front instead of
    // trapping later with a confusing out-of-bounds message from
    // undersized memory.
    let pad = Memory::pad_for(target.vs.max(1));
    let mut total = 4096usize;
    for a in &f.arrays {
        let data = env.array(&a.name).ok_or_else(|| {
            Trap(format!(
                "unbound array {} (kernel {})",
                a.name, compiled.name
            ))
        })?;
        total += data.bytes.len() + 2 * pad + 2 * MAX_VS;
    }
    let vs = target.vs.max(1);
    let mem = match arena {
        Some(buf) => Memory::recycled(buf, total, vs),
        None => Memory::for_width(total, vs),
    };
    let mut m = Machine::with_memory(target, mem);
    m.set_wide_registers(wide_regs);

    for (i, p) in f.params.iter().enumerate() {
        let v = env
            .scalar(&p.name)
            .ok_or_else(|| Trap(format!("unbound scalar parameter {}", p.name)))?;
        m.set_sreg(compiled.jit.param_regs[i], coerce(p.ty, v));
    }
    let mut bases = Vec::new();
    for (i, a) in f.arrays.iter().enumerate() {
        let data = env.array(&a.name).expect("checked during memory sizing");
        if data.elem != a.elem {
            return Err(Trap(format!(
                "array {} bound with element type {}, declared {}",
                a.name, data.elem, a.elem
            )));
        }
        let base = match policy {
            AllocPolicy::Aligned => m.mem.alloc(data.bytes.len(), MAX_VS),
            AllocPolicy::Misaligned(k) => {
                m.mem.alloc_with_misalignment(data.bytes.len(), MAX_VS, k)
            }
        };
        m.mem
            .slice_mut(base, data.bytes.len())
            .copy_from_slice(&data.bytes);
        m.set_sreg(compiled.jit.array_base_regs[i], Value::Int(base as i64));
        m.set_sreg(
            compiled.jit.array_len_regs[i],
            Value::Int(data.bytes.len() as i64),
        );
        bases.push((a.name.clone(), base, data.bytes.len(), a.elem));
    }
    Ok((m, bases))
}

/// Copy final array contents out of machine memory.
pub(crate) fn read_back(
    m: &Machine<'_>,
    bases: Placements,
    stats: vapor_targets::ExecStats,
) -> RunResult {
    let mut out = Bindings::new();
    for (name, base, len, elem) in bases {
        let bytes = m.mem.slice(base, len).to_vec();
        out.set_array(&name, ArrayData { elem, bytes });
    }
    RunResult { out, stats }
}

fn coerce(ty: vapor_ir::ScalarTy, v: Value) -> Value {
    match (ty.is_float(), v) {
        (true, Value::Int(i)) => Value::Float(i as f64),
        (false, Value::Float(f)) => Value::Int(f as i64),
        _ => v,
    }
}

/// Run the reference interpreter (the oracle) over the same bindings.
///
/// # Errors
/// Propagates interpreter errors (unbound names, out-of-bounds).
pub fn reference(kernel: &Kernel, env: &Bindings) -> Result<Bindings, vapor_ir::IrError> {
    let mut b = env.clone();
    interpret(kernel, &mut b)?;
    Ok(b)
}

/// Compare two array states bit-exactly for integers and with a small
/// relative tolerance for floats (vector reduction reassociates float
/// sums, which is the paper's semantics too).
pub fn arrays_match(expected: &ArrayData, actual: &ArrayData, tol: f64) -> Result<(), String> {
    if expected.elem != actual.elem || expected.len() != actual.len() {
        return Err(format!(
            "shape mismatch: {}×{} vs {}×{}",
            expected.elem,
            expected.len(),
            actual.elem,
            actual.len()
        ));
    }
    for i in 0..expected.len() {
        match (expected.get(i), actual.get(i)) {
            (Value::Int(a), Value::Int(b)) => {
                if a != b {
                    return Err(format!("element {i}: expected {a}, got {b}"));
                }
            }
            (Value::Float(a), Value::Float(b)) => {
                let scale = a.abs().max(b.abs()).max(1.0);
                if (a - b).abs() > tol * scale {
                    return Err(format!("element {i}: expected {a}, got {b}"));
                }
            }
            _ => return Err(format!("element {i}: domain mismatch")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, CompileConfig, Flow};
    use vapor_frontend::parse_kernel;
    use vapor_ir::ScalarTy;
    use vapor_targets::{altivec, neon64, scalar_only, sse};

    fn saxpy_env(n: usize) -> Bindings {
        let mut env = Bindings::new();
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| 100.0 - i as f64).collect();
        env.set_int("n", n as i64)
            .set_float("a", 3.0)
            .set_array("x", ArrayData::from_floats(ScalarTy::F32, &x))
            .set_array("y", ArrayData::from_floats(ScalarTy::F32, &y));
        env
    }

    #[test]
    fn saxpy_matches_oracle_on_every_flow_and_target() {
        let k = parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap();
        for n in [0usize, 1, 7, 64, 65] {
            let env = saxpy_env(n);
            let oracle = reference(&k, &env).unwrap();
            for t in [sse(), altivec(), neon64(), scalar_only()] {
                for flow in Flow::ALL {
                    let c = compile(&k, flow, &t, &CompileConfig::default()).unwrap();
                    let r = run(&t, &c, &env, AllocPolicy::Aligned)
                        .unwrap_or_else(|e| panic!("{flow} on {}: {e}", t.name));
                    arrays_match(oracle.array("y").unwrap(), r.out.array("y").unwrap(), 1e-6)
                        .unwrap_or_else(|e| panic!("{flow} on {} (n={n}): {e}", t.name));
                    assert!(r.stats.cycles > 0 || n == 0);
                }
            }
        }
    }

    #[test]
    fn baseline_and_decoded_dispatch_agree() {
        let k = parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap();
        let t = sse();
        let env = saxpy_env(129);
        let c = compile(&k, Flow::SplitVectorOpt, &t, &CompileConfig::default()).unwrap();
        let fast = run(&t, &c, &env, AllocPolicy::Aligned).unwrap();
        let slow = run_baseline(&t, &c, &env, AllocPolicy::Aligned).unwrap();
        arrays_match(
            slow.out.array("y").unwrap(),
            fast.out.array("y").unwrap(),
            0.0,
        )
        .unwrap();
        assert_eq!(fast.stats.cycles, slow.stats.cycles);
    }

    #[test]
    fn missing_array_is_reported_by_name_up_front() {
        let k = parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap();
        let t = sse();
        let c = compile(&k, Flow::SplitVectorOpt, &t, &CompileConfig::default()).unwrap();
        let mut env = Bindings::new();
        env.set_int("n", 8)
            .set_float("a", 3.0)
            .set_array("x", ArrayData::from_floats(ScalarTy::F32, &[1.0; 8]));
        // "y" is unbound: the error must name it, not trap later with an
        // out-of-bounds access into undersized memory.
        let err = run(&t, &c, &env, AllocPolicy::Aligned).unwrap_err();
        assert!(err.0.contains("unbound array y"), "{err}");
    }

    #[test]
    fn misaligned_bases_work_on_optimizing_and_native_flows() {
        // The opt-online and native pipelines do not own allocation:
        // their code carries runtime alignment guards (or unaligned
        // accesses) and must stay correct when the caller hands over
        // deliberately misaligned arrays.
        let k = parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap();
        for n in [7usize, 64, 65] {
            let env = saxpy_env(n);
            let oracle = reference(&k, &env).unwrap();
            for t in [sse(), altivec(), neon64(), scalar_only()] {
                for flow in [
                    Flow::SplitVectorOpt,
                    Flow::SplitScalarOpt,
                    Flow::NativeVector,
                    Flow::NativeScalar,
                ] {
                    for mis in [4usize, 8, 12] {
                        let c = compile(&k, flow, &t, &CompileConfig::default()).unwrap();
                        let r =
                            run(&t, &c, &env, AllocPolicy::Misaligned(mis)).unwrap_or_else(|e| {
                                panic!("{flow} on {} (n={n}, mis={mis}): {e}", t.name)
                            });
                        arrays_match(oracle.array("y").unwrap(), r.out.array("y").unwrap(), 1e-6)
                            .unwrap_or_else(|e| {
                                panic!("{flow} on {} (n={n}, mis={mis}): {e}", t.name)
                            });
                    }
                }
            }
        }
    }

    #[test]
    fn misaligned_bases_cost_more_than_aligned_on_sse() {
        // The §V-B story: denied alignment, the optimizing flow's guards
        // fail and it falls back to slower unaligned/scalar paths.
        let k = parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap();
        let t = sse();
        let env = saxpy_env(1024);
        let c = compile(&k, Flow::SplitVectorOpt, &t, &CompileConfig::default()).unwrap();
        let aligned = run(&t, &c, &env, AllocPolicy::Aligned)
            .unwrap()
            .stats
            .cycles;
        let misaligned = run(&t, &c, &env, AllocPolicy::Misaligned(4))
            .unwrap()
            .stats
            .cycles;
        assert!(
            misaligned > aligned,
            "misaligned bases should cost extra cycles: {misaligned} vs {aligned}"
        );
    }

    #[test]
    fn vectorization_speeds_up_saxpy_on_sse() {
        let k = parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap();
        let t = sse();
        let env = saxpy_env(1024);
        let cfg = CompileConfig::default();
        let vec = compile(&k, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        let sca = compile(&k, Flow::SplitScalarOpt, &t, &cfg).unwrap();
        let cv = run(&t, &vec, &env, AllocPolicy::Aligned)
            .unwrap()
            .stats
            .cycles;
        let cs = run(&t, &sca, &env, AllocPolicy::Aligned)
            .unwrap()
            .stats
            .cycles;
        let speedup = cs as f64 / cv as f64;
        assert!(
            speedup > 2.0,
            "expected >2x vector speedup on SSE (VF=4), got {speedup:.2} ({cs} vs {cv})"
        );
    }
}

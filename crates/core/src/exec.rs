//! The unified execution API of the compile service: one typed request,
//! one entry point.
//!
//! The seed grew seven `run_*` free functions — one per (tier, width,
//! fusion, VL) combination — each taking a pre-compiled artifact and
//! re-deriving its execution form by hand. [`ExecRequest`] collapses
//! that matrix into a builder over the *source-level* inputs (kernel,
//! flow, target, bindings) plus typed execution options, and
//! [`Engine::execute`] resolves it end to end through every engine
//! tier: the sharded compile cache, the per-VL specialization and
//! threaded-lowering LRUs, the persistent artifact store, and the
//! pooled execution arenas. A request storm therefore compiles each
//! distinct tuple once, decodes each execution form once, and allocates
//! machine memory only until the arena pool warms up.
//!
//! Migration from the legacy free functions:
//!
//! | legacy | request |
//! |---|---|
//! | `run(t, c, env, p)` | `ExecRequest::new(k, t, env).policy(p)` |
//! | `run_wide(..)` | `….wide_registers(true)` |
//! | `run_specialized(..)` | `….vl_bits(vl)` |
//! | `run_specialized_wide(..)` | `….vl_bits(vl).wide_registers(true)` |
//! | `run_threaded(..)` | `….tier(Tier::Threaded)` |
//! | `run_unfused(..)` | `….fused(false)` |
//! | `run_baseline(..)` | `….tier(Tier::Baseline)` |

use std::fmt;
use std::sync::Arc;

use vapor_ir::{Bindings, Kernel};
use vapor_targets::{ExecStats, TargetDesc, Trap};

use crate::engine::{exec_target, Engine};
use crate::pipeline::{CompileConfig, Compiled, Flow, PipelineError};
use crate::run::{read_back, setup_machine_with, AllocPolicy, RunResult};

/// Which execution tier services the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tier {
    /// The seed per-instruction dispatch loop over raw machine code —
    /// the tier the others are measured against.
    Baseline,
    /// Pre-decoded dispatch ([`vapor_targets::DecodedProgram`]) with
    /// superinstruction fusion — the default.
    #[default]
    Decoded,
    /// Closure-threaded execution over a flattened register arena
    /// ([`vapor_targets::ThreadedProgram`]).
    Threaded,
}

/// One execution request against an [`Engine`]: what to run (kernel,
/// flow, target, bindings) and how (tier, VL, fusion, register-file
/// width, array placement). Build with [`ExecRequest::new`] and the
/// chainable setters; the defaults reproduce the legacy `run()` —
/// decoded tier, fused, target-sized registers, aligned arrays, the
/// target's natural vector length.
#[derive(Debug, Clone)]
pub struct ExecRequest<'a> {
    pub(crate) kernel: &'a Kernel,
    pub(crate) target: &'a TargetDesc,
    pub(crate) env: &'a Bindings,
    pub(crate) flow: Flow,
    pub(crate) cfg: CompileConfig,
    pub(crate) tier: Tier,
    pub(crate) vl_bits: Option<usize>,
    pub(crate) fused: bool,
    pub(crate) wide_registers: bool,
    pub(crate) policy: AllocPolicy,
}

impl<'a> ExecRequest<'a> {
    /// A request to run `kernel` on `target` against `env` with the
    /// default options: [`Flow::SplitVectorOpt`], the decoded tier,
    /// fused dispatch, aligned arrays, the target's natural VL.
    pub fn new(kernel: &'a Kernel, target: &'a TargetDesc, env: &'a Bindings) -> ExecRequest<'a> {
        ExecRequest {
            kernel,
            target,
            env,
            flow: Flow::SplitVectorOpt,
            cfg: CompileConfig::default(),
            tier: Tier::default(),
            vl_bits: None,
            fused: true,
            wide_registers: false,
            policy: AllocPolicy::Aligned,
        }
    }

    /// Compilation flow (default [`Flow::SplitVectorOpt`]).
    pub fn flow(mut self, flow: Flow) -> ExecRequest<'a> {
        self.flow = flow;
        self
    }

    /// Compilation knobs beyond the flow (default all off).
    pub fn config(mut self, cfg: CompileConfig) -> ExecRequest<'a> {
        self.cfg = cfg;
        self
    }

    /// Execution tier (default [`Tier::Decoded`]).
    pub fn tier(mut self, tier: Tier) -> ExecRequest<'a> {
        self.tier = tier;
        self
    }

    /// Concrete runtime vector length in bits. Defaults to the target's
    /// natural width (`vs * 8`); required to differ only on VLA targets,
    /// where it selects the per-VL specialization (the legacy
    /// `run_specialized`). Fixed-width targets accept only their own
    /// width — the same contract as `Engine::specialize`.
    pub fn vl_bits(mut self, vl_bits: usize) -> ExecRequest<'a> {
        self.vl_bits = Some(vl_bits);
        self
    }

    /// Superinstruction fusion in the decoded tier (default on). Turning
    /// it off executes one step per instruction — the fusion-ablation
    /// side of the differential (legacy `run_unfused`). Ignored by the
    /// baseline tier (which never decodes) and the threaded tier (which
    /// lowers the fused decode).
    pub fn fused(mut self, fused: bool) -> ExecRequest<'a> {
        self.fused = fused;
        self
    }

    /// Force the seed-style max-width register file (default off; see
    /// `Machine::set_wide_registers`). Results are bit-identical; only
    /// register-move traffic differs.
    pub fn wide_registers(mut self, wide: bool) -> ExecRequest<'a> {
        self.wide_registers = wide;
        self
    }

    /// Array placement policy (default [`AllocPolicy::Aligned`]).
    pub fn policy(mut self, policy: AllocPolicy) -> ExecRequest<'a> {
        self.policy = policy;
        self
    }
}

/// Result of [`Engine::execute`].
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Final array contents, keyed by array name.
    pub out: Bindings,
    /// Cycle/instruction counts from the VM.
    pub stats: ExecStats,
    /// The (shared, cached) compilation that was executed.
    pub compiled: Arc<Compiled>,
}

impl ExecOutcome {
    /// This outcome as the legacy [`RunResult`] (for code still shaped
    /// around the old `run_*` returns).
    pub fn run_result(&self) -> RunResult {
        RunResult {
            out: self.out.clone(),
            stats: self.stats,
        }
    }
}

/// Error of [`Engine::execute`]: the request failed to compile, or the
/// compiled code trapped.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A pipeline stage rejected the request.
    Compile(PipelineError),
    /// The VM trapped (contract violation or missing binding).
    Trap(Trap),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Compile(e) => e.fmt(f),
            ExecError::Trap(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<PipelineError> for ExecError {
    fn from(e: PipelineError) -> ExecError {
        ExecError::Compile(e)
    }
}

impl From<Trap> for ExecError {
    fn from(e: Trap) -> ExecError {
        ExecError::Trap(e)
    }
}

impl Engine {
    /// Serve one execution request end to end: compile (through the
    /// sharded cache and, when attached, the persistent artifact tier),
    /// resolve the requested execution form (tier, VL, fusion — each
    /// through its own LRU), bind the request's arrays into a machine
    /// whose memory arena is recycled from the engine's pool when one
    /// is warm, run, and read the results back. The arena returns to
    /// the pool afterwards — including when execution traps.
    ///
    /// # Errors
    /// [`ExecError::Compile`] when any pipeline stage rejects the
    /// request (including illegal VLs and fixed-width/VL mismatches);
    /// [`ExecError::Trap`] on VM contract violations and missing
    /// bindings.
    pub fn execute(&self, req: &ExecRequest<'_>) -> Result<ExecOutcome, ExecError> {
        // Default VL: the target's own width — fixed targets (including
        // the 0-bit scalar-only one) take their baked width; the VLA
        // families take their 128-bit minimum.
        let vl = req.vl_bits.unwrap_or(req.target.vs * 8);
        match req.tier {
            Tier::Baseline => {
                // Validate the (target, VL) pair exactly like the other
                // tiers, then dispatch the raw machine code.
                let (compiled, _) =
                    self.specialize(req.kernel, req.flow, req.target, &req.cfg, vl)?;
                let exec_t = exec_target(req.target, vl);
                let code = Arc::clone(&compiled);
                self.run_request(req, &exec_t, compiled, move |m| m.run(&code.jit.code))
            }
            Tier::Decoded => {
                let (compiled, prog) = if req.fused {
                    self.specialize(req.kernel, req.flow, req.target, &req.cfg, vl)?
                } else {
                    self.decode_unfused(req.kernel, req.flow, req.target, &req.cfg, vl)?
                };
                let exec_t = exec_target(req.target, vl);
                self.run_request(req, &exec_t, compiled, move |m| m.run_decoded(&prog))
            }
            Tier::Threaded => {
                let (compiled, prog) =
                    self.thread(req.kernel, req.flow, req.target, &req.cfg, vl)?;
                let exec_t = exec_target(req.target, vl);
                self.run_request(req, &exec_t, compiled, move |m| m.run_threaded(&prog))
            }
        }
    }

    /// The shared machine lifecycle of [`Engine::execute`]: pooled
    /// arena in, bind, run one tier's dispatch, read back, arena out.
    fn run_request(
        &self,
        req: &ExecRequest<'_>,
        exec_t: &TargetDesc,
        compiled: Arc<Compiled>,
        run: impl FnOnce(&mut vapor_targets::Machine<'_>) -> Result<ExecStats, Trap>,
    ) -> Result<ExecOutcome, ExecError> {
        let (mut m, bases) = setup_machine_with(
            exec_t,
            &compiled,
            req.env,
            req.policy,
            req.wide_registers,
            self.take_arena(),
        )?;
        let outcome = run(&mut m);
        // The arena goes back to the pool even when execution traps —
        // a trapping tenant must not bleed the pool dry.
        let result = outcome.map(|stats| read_back(&m, bases, stats));
        self.put_arena(m.into_arena());
        let RunResult { out, stats } = result?;
        Ok(ExecOutcome {
            out,
            stats,
            compiled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use crate::run::{
        arrays_match, reference, run, run_baseline, run_specialized, run_threaded, run_unfused,
        run_wide,
    };
    use vapor_frontend::parse_kernel;
    use vapor_ir::{ArrayData, ScalarTy};
    use vapor_targets::sse;

    fn saxpy() -> Kernel {
        parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap()
    }

    fn saxpy_env(n: usize) -> Bindings {
        let mut env = Bindings::new();
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| 100.0 - i as f64).collect();
        env.set_int("n", n as i64)
            .set_float("a", 3.0)
            .set_array("x", ArrayData::from_floats(ScalarTy::F32, &x))
            .set_array("y", ArrayData::from_floats(ScalarTy::F32, &y));
        env
    }

    #[test]
    fn execute_defaults_match_the_legacy_run_shim() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let env = saxpy_env(129);
        let got = e.execute(&ExecRequest::new(&k, &t, &env)).unwrap();
        let c = compile(&k, Flow::SplitVectorOpt, &t, &CompileConfig::default()).unwrap();
        let want = run(&t, &c, &env, AllocPolicy::Aligned).unwrap();
        arrays_match(
            want.out.array("y").unwrap(),
            got.out.array("y").unwrap(),
            0.0,
        )
        .unwrap();
        assert_eq!(got.stats, want.stats, "bit-identical cycle accounting");
    }

    #[test]
    fn all_tiers_agree_and_match_the_oracle() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let env = saxpy_env(100);
        let oracle = reference(&k, &env).unwrap();
        let base = ExecRequest::new(&k, &t, &env);
        let decoded = e.execute(&base.clone()).unwrap();
        let baseline = e.execute(&base.clone().tier(Tier::Baseline)).unwrap();
        let threaded = e.execute(&base.clone().tier(Tier::Threaded)).unwrap();
        let unfused = e.execute(&base.clone().fused(false)).unwrap();
        let wide = e.execute(&base.clone().wide_registers(true)).unwrap();
        for (name, r) in [
            ("decoded", &decoded),
            ("baseline", &baseline),
            ("threaded", &threaded),
            ("unfused", &unfused),
            ("wide", &wide),
        ] {
            arrays_match(oracle.array("y").unwrap(), r.out.array("y").unwrap(), 1e-6)
                .unwrap_or_else(|err| panic!("{name}: {err}"));
            assert_eq!(r.stats.cycles, decoded.stats.cycles, "{name} cycles");
        }
        // One compile served every tier.
        assert_eq!(e.stats().misses, 1);
        assert!(Arc::ptr_eq(&decoded.compiled, &threaded.compiled));
    }

    #[test]
    fn vla_requests_specialize_per_vl() {
        let e = Engine::new();
        let k = saxpy();
        let t = vapor_targets::sve();
        let env = saxpy_env(100);
        let r128 = e
            .execute(&ExecRequest::new(&k, &t, &env).vl_bits(128))
            .unwrap();
        let r1024 = e
            .execute(&ExecRequest::new(&k, &t, &env).vl_bits(1024))
            .unwrap();
        assert!(
            r1024.stats.cycles < r128.stats.cycles,
            "wider VL must retire the loop in fewer cycles: {} vs {}",
            r1024.stats.cycles,
            r128.stats.cycles
        );
        assert_eq!(e.stats().misses, 1, "one artifact serves every VL");
        let oracle = reference(&k, &env).unwrap();
        for r in [&r128, &r1024] {
            arrays_match(oracle.array("y").unwrap(), r.out.array("y").unwrap(), 1e-6).unwrap();
        }
    }

    #[test]
    fn arena_pool_recycles_across_requests() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let env = saxpy_env(64);
        let req = ExecRequest::new(&k, &t, &env);
        e.execute(&req.clone()).unwrap();
        e.execute(&req.clone()).unwrap();
        e.execute(&req.clone()).unwrap();
        let s = e.stats();
        assert_eq!(s.pool_allocs, 1, "only the cold request allocates");
        assert_eq!(s.pool_reuses, 2, "warm requests recycle the arena");
    }

    #[test]
    fn pool_survives_traps() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let env = saxpy_env(64);
        // Warm the pool, then trap (misaligned bases violate the naive
        // JIT's allocation contract), then run clean again.
        e.execute(&ExecRequest::new(&k, &t, &env)).unwrap();
        let trap = e.execute(
            &ExecRequest::new(&k, &t, &env)
                .flow(Flow::SplitVectorNaive)
                .policy(AllocPolicy::Misaligned(4)),
        );
        assert!(matches!(trap, Err(ExecError::Trap(_))));
        e.execute(&ExecRequest::new(&k, &t, &env)).unwrap();
        let s = e.stats();
        assert_eq!(
            s.pool_allocs, 1,
            "the trapped request's arena must return to the pool"
        );
    }

    #[test]
    fn execute_matches_every_legacy_shim_bit_for_bit() {
        // The compat contract of the API redesign: each legacy free
        // function and its ExecRequest spelling produce bit-identical
        // machine state and cycle accounting.
        let e = Engine::new();
        let k = saxpy();
        let env = saxpy_env(129);
        let cfg = CompileConfig::default();
        let t = sse();
        let c = compile(&k, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        let req = ExecRequest::new(&k, &t, &env);

        let pairs: Vec<(&str, RunResult, ExecOutcome)> = vec![
            (
                "run",
                run(&t, &c, &env, AllocPolicy::Aligned).unwrap(),
                e.execute(&req.clone()).unwrap(),
            ),
            (
                "run_wide",
                run_wide(&t, &c, &env, AllocPolicy::Aligned).unwrap(),
                e.execute(&req.clone().wide_registers(true)).unwrap(),
            ),
            (
                "run_baseline",
                run_baseline(&t, &c, &env, AllocPolicy::Aligned).unwrap(),
                e.execute(&req.clone().tier(Tier::Baseline)).unwrap(),
            ),
            (
                "run_unfused",
                run_unfused(&t, &c, &env, AllocPolicy::Aligned).unwrap(),
                e.execute(&req.clone().fused(false)).unwrap(),
            ),
        ];
        for (name, want, got) in &pairs {
            arrays_match(
                want.out.array("y").unwrap(),
                got.out.array("y").unwrap(),
                0.0,
            )
            .unwrap_or_else(|err| panic!("{name}: {err}"));
            assert_eq!(&got.stats, &want.stats, "{name}");
        }

        // The specialized and threaded shims, on a VLA target.
        let sve = vapor_targets::sve();
        let vreq = ExecRequest::new(&k, &sve, &env);
        for vl in [256usize, 1024] {
            let (vc, prog) = e
                .specialize(&k, Flow::SplitVectorOpt, &sve, &cfg, vl)
                .unwrap();
            let exec = sve.at_vl(vl);
            let want = run_specialized(&exec, &vc, &prog, &env, AllocPolicy::Aligned).unwrap();
            let got = e.execute(&vreq.clone().vl_bits(vl)).unwrap();
            arrays_match(
                want.out.array("y").unwrap(),
                got.out.array("y").unwrap(),
                0.0,
            )
            .unwrap_or_else(|err| panic!("run_specialized vl={vl}: {err}"));
            assert_eq!(got.stats, want.stats, "run_specialized vl={vl}");

            let (tc, tprog) = e.thread(&k, Flow::SplitVectorOpt, &sve, &cfg, vl).unwrap();
            let want = run_threaded(&exec, &tc, &tprog, &env, AllocPolicy::Aligned).unwrap();
            let got = e
                .execute(&vreq.clone().vl_bits(vl).tier(Tier::Threaded))
                .unwrap();
            arrays_match(
                want.out.array("y").unwrap(),
                got.out.array("y").unwrap(),
                0.0,
            )
            .unwrap_or_else(|err| panic!("run_threaded vl={vl}: {err}"));
            assert_eq!(got.stats, want.stats, "run_threaded vl={vl}");
        }
    }

    #[test]
    fn invalid_requests_fail_as_compile_errors() {
        let e = Engine::new();
        let k = saxpy();
        let env = saxpy_env(8);
        let t = sse();
        let err = e
            .execute(&ExecRequest::new(&k, &t, &env).vl_bits(256))
            .unwrap_err();
        assert!(matches!(err, ExecError::Compile(_)), "{err}");
        assert!(err.to_string().contains("fixed at 128 bits"), "{err}");
    }
}

//! The compilation engine: a persistent, thread-safe service wrapping
//! the end-to-end pipeline behind a content-addressed cache.
//!
//! The paper's story is "vectorize once, run everywhere": the offline
//! artifact is produced once and consumed by many online consumers. The
//! seed reproduction instead recompiled every (kernel, flow, target)
//! tuple from scratch on every call — fine for generating one figure,
//! hopeless for a service. [`Engine`] gives the repo the shape the
//! related retargeting systems (Revec, SIMD-everywhere) have: a
//! translation step that is computed once per distinct input and then
//! shared.
//!
//! * **Content-addressed**: the cache key is a fingerprint of the kernel
//!   *source text* (via the round-trip-stable pretty printer) plus the
//!   [`Flow`], target name, and [`CompileConfig`] — two structurally
//!   identical kernels hit the same entry no matter how they were built.
//! * **Shared results**: values are `Arc<Compiled>`; a cache hit is a map
//!   lookup returning the same allocation (pointer-equal), and the
//!   pre-decoded VM program inside is shared with it.
//! * **Concurrent**: [`Engine::compile_batch`] fans a set of compilation
//!   jobs across `std::thread::scope` workers; the cache map is behind an
//!   `RwLock`, and racing compilations of the same key are reconciled so
//!   every caller observes one canonical `Arc` per key.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use vapor_ir::Kernel;
use vapor_targets::{DecodedProgram, TargetDesc, ThreadedProgram};

use crate::pipeline::{self, CompileConfig, Compiled, Flow, PipelineError};

/// Cache key: kernel content fingerprint + everything else that affects
/// the generated code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// 128-bit FNV-1a over the pretty-printed kernel (round-trip-stable,
    /// so this is a fingerprint of the kernel's *content*).
    kernel_fp: u128,
    flow: Flow,
    /// 128-bit FNV-1a over the target's full `Debug` form — `TargetDesc`
    /// is a plain pub-field struct, so keying on the name alone would let
    /// a caller-customized target (same name, different cost table or
    /// feature flags) silently share entries with the stock one.
    target_fp: u128,
    cfg: CompileConfig,
}

/// 128-bit FNV-1a (collision odds are negligible at suite scale, and a
/// collision would only ever return a wrong — still valid — kernel to a
/// caller that manufactured it deliberately).
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Fingerprint a kernel's content.
fn fingerprint(kernel: &Kernel) -> u128 {
    fnv1a_128(vapor_ir::print_kernel(kernel).as_bytes())
}

/// Fingerprint a target's full content (ISA facts, cost model, ports).
fn target_fingerprint(target: &TargetDesc) -> u128 {
    fnv1a_128(format!("{target:?}").as_bytes())
}

/// One compilation request for [`Engine::compile_batch`].
#[derive(Debug, Clone)]
pub struct CompileJob<'a> {
    /// Kernel to compile.
    pub kernel: &'a Kernel,
    /// Compilation flow.
    pub flow: Flow,
    /// Target machine.
    pub target: &'a TargetDesc,
    /// Compilation knobs.
    pub cfg: CompileConfig,
}

impl<'a> CompileJob<'a> {
    /// A job with default config.
    pub fn new(kernel: &'a Kernel, flow: Flow, target: &'a TargetDesc) -> CompileJob<'a> {
        CompileJob {
            kernel,
            flow,
            target,
            cfg: CompileConfig::default(),
        }
    }
}

/// Counters of the engine's cache behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Compilations answered from the cache.
    pub hits: u64,
    /// Compilations that ran the pipeline.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Runtime-VL execution specializations currently cached (the VL
    /// dimension exists only here, never in the compile cache).
    pub vl_entries: usize,
    /// Closure-threaded execution programs currently cached (the tier
    /// below the decoded programs; see [`Engine::thread`]).
    pub threaded_entries: usize,
}

/// Default bound on the per-VL decode cache. VL specializations are
/// cheap to rebuild (a re-specialization of the shared decode, not a
/// compile), so the cache is a small LRU rather than an unbounded map —
/// a service cycling through many (kernel, VL) pairs must not grow
/// without limit.
pub const VL_CACHE_CAPACITY: usize = 64;

/// A tiny LRU map over per-VL execution forms: a `HashMap` plus a
/// monotone use-stamp per entry. Lookups are O(1); the eviction scan is
/// O(n) over at most `cap` entries, which at the capacities used here
/// (tens) is cheaper than maintaining an intrusive list. Generic over
/// the cached value so the decoded and threaded tiers share one
/// implementation.
#[derive(Debug)]
struct Lru<V> {
    map: HashMap<(CacheKey, u32), (Arc<V>, u64)>,
    tick: u64,
    cap: usize,
}

impl<V> Lru<V> {
    fn new(cap: usize) -> Lru<V> {
        Lru {
            map: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
        }
    }

    fn get(&mut self, key: &(CacheKey, u32)) -> Option<Arc<V>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = tick;
            Arc::clone(v)
        })
    }

    /// Insert, evicting the least-recently-used entry when full. Like
    /// `entry().or_insert()`, a racing earlier insert wins: the caller
    /// gets the canonical `Arc`.
    fn insert(&mut self, key: (CacheKey, u32), value: Arc<V>) -> Arc<V> {
        self.tick += 1;
        if let Some((v, stamp)) = self.map.get_mut(&key) {
            *stamp = self.tick;
            return Arc::clone(v);
        }
        while self.map.len() >= self.cap {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone());
            match lru {
                Some(k) => self.map.remove(&k),
                None => break,
            };
        }
        self.map.insert(key, (Arc::clone(&value), self.tick));
        value
    }
}

/// A persistent compilation service. Cheap to share by reference across
/// threads (`&Engine` is `Send + Sync`); create one per process (or per
/// tenant) and route every compilation through it.
#[derive(Debug)]
pub struct Engine {
    cache: RwLock<HashMap<CacheKey, Arc<Compiled>>>,
    /// Execution specializations of VLA compilations: the *same*
    /// `Arc<Compiled>` artifact, re-specialized per concrete runtime
    /// vector length. Keyed by the compile key *plus* the VL — "compile
    /// once" stays intact because the VL dimension first appears here.
    /// Bounded (LRU): see [`VL_CACHE_CAPACITY`].
    vl_cache: Mutex<Lru<DecodedProgram>>,
    /// Closure-threaded lowerings of specialized programs, keyed like
    /// the VL cache. Unlike decoded specializations, fixed-width
    /// entries live here too: threading is a real lowering pass (region
    /// construction, stream analysis, arena layout), not a free
    /// `Arc` clone of a baked-in artifact.
    threaded_cache: Mutex<Lru<ThreadedProgram>>,
    /// Keys currently being compiled, so concurrent requests for the
    /// same tuple wait for the first compiler instead of duplicating
    /// the whole pipeline run.
    inflight: Mutex<HashSet<CacheKey>>,
    inflight_done: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::with_vl_cache_capacity(VL_CACHE_CAPACITY)
    }
}

/// Removes a key from the in-flight set (and wakes waiters) when the
/// compiling thread finishes — on success, error, or panic.
struct InflightGuard<'e> {
    engine: &'e Engine,
    key: CacheKey,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut inflight = self.engine.inflight.lock().expect("inflight set poisoned");
        inflight.remove(&self.key);
        self.engine.inflight_done.notify_all();
    }
}

impl Engine {
    /// An engine with an empty cache.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine whose per-VL decode cache holds at most `cap` entries
    /// (the compile cache stays unbounded — compiled artifacts are the
    /// expensive, shared resource; VL decodes are cheap to rebuild).
    pub fn with_vl_cache_capacity(cap: usize) -> Engine {
        Engine {
            cache: RwLock::new(HashMap::new()),
            vl_cache: Mutex::new(Lru::new(cap)),
            threaded_cache: Mutex::new(Lru::new(cap)),
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Compile through the cache: on a hit, returns the *same*
    /// `Arc<Compiled>` as every previous call with an identical
    /// (kernel content, flow, target, config) tuple.
    ///
    /// # Errors
    /// Propagates [`PipelineError`]s from any stage. Failures are not
    /// cached: a failing tuple re-runs the pipeline on every call (they
    /// are cheap and deterministic, and callers usually abort anyway).
    pub fn compile(
        &self,
        kernel: &Kernel,
        flow: Flow,
        target: &TargetDesc,
        cfg: &CompileConfig,
    ) -> Result<Arc<Compiled>, PipelineError> {
        let key = CacheKey {
            kernel_fp: fingerprint(kernel),
            flow,
            target_fp: target_fingerprint(target),
            cfg: cfg.clone(),
        };
        // Fast path + in-flight claim: either the key is cached, or we
        // become its compiler, or we wait for whoever already is (a
        // failed compile wakes waiters without filling the cache; the
        // first waiter then claims the key and retries).
        loop {
            if let Some(hit) = self.cache.read().expect("engine cache poisoned").get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(hit));
            }
            let mut inflight = self.inflight.lock().expect("inflight set poisoned");
            if !inflight.contains(&key) {
                inflight.insert(key.clone());
                break;
            }
            let _unused = self
                .inflight_done
                .wait(inflight)
                .expect("inflight set poisoned");
        }
        let _guard = InflightGuard {
            engine: self,
            key: key.clone(),
        };

        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(pipeline::compile(kernel, flow, target, cfg)?);
        let mut map = self.cache.write().expect("engine cache poisoned");
        Ok(Arc::clone(map.entry(key).or_insert(compiled)))
    }

    /// Compile without consulting or filling the cache. For timing
    /// experiments (§V-A(c) measures real online-compile times, which a
    /// cache hit would reduce to a map lookup) and for callers that
    /// deliberately want a private copy.
    ///
    /// # Errors
    /// Propagates [`PipelineError`]s from any stage.
    pub fn compile_uncached(
        &self,
        kernel: &Kernel,
        flow: Flow,
        target: &TargetDesc,
        cfg: &CompileConfig,
    ) -> Result<Arc<Compiled>, PipelineError> {
        Ok(Arc::new(pipeline::compile(kernel, flow, target, cfg)?))
    }

    /// Compile a batch of jobs, fanning across OS threads. Results come
    /// back in job order. Duplicate tuples in one batch are compiled once
    /// modulo racing (the cache reconciles racers), and every duplicate
    /// returns the canonical `Arc`.
    ///
    /// Worker count is `min(jobs, available_parallelism)`; a batch of one
    /// runs inline on the caller's thread.
    pub fn compile_batch(
        &self,
        jobs: &[CompileJob<'_>],
    ) -> Vec<Result<Arc<Compiled>, PipelineError>> {
        if jobs.len() <= 1 {
            return jobs
                .iter()
                .map(|j| self.compile(j.kernel, j.flow, j.target, &j.cfg))
                .collect();
        }
        let workers = std::thread::available_parallelism()
            .map_or(2, |n| n.get())
            .min(jobs.len());
        let next = AtomicUsize::new(0);
        let done: Vec<(usize, Result<Arc<Compiled>, PipelineError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(job) = jobs.get(i) else { break out };
                                out.push((
                                    i,
                                    self.compile(job.kernel, job.flow, job.target, &job.cfg),
                                ));
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("batch worker panicked"))
                    .collect()
            });
        let mut results: Vec<Option<Result<Arc<Compiled>, PipelineError>>> =
            (0..jobs.len()).map(|_| None).collect();
        for (i, r) in done {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch slot filled by a worker"))
            .collect()
    }

    /// Specialize a compilation to a concrete runtime vector length.
    ///
    /// The compile step is the ordinary cached, VL-*agnostic* pipeline
    /// run — every VL shares one `Arc<Compiled>` artifact. What is
    /// per-VL is only the execution form: the shared pre-decoded program
    /// *re-specialized* against `target.at_vl(vl_bits)`. The
    /// VL-independent decode work (label→index resolution, step and
    /// fast-kernel selection) is done once at compile time and shared;
    /// only per-instruction costs and lane counts are recomputed per VL
    /// (see `DecodedProgram::respecialize`). Those specializations are
    /// kept in a small LRU cache ([`VL_CACHE_CAPACITY`]) keyed by the
    /// compile key *plus* `vl_bits`.
    ///
    /// Fixed-width targets are accepted when `vl_bits` names their one
    /// width; the baked-in decode is returned and no entry is added.
    ///
    /// # Errors
    /// Propagates compile-stage [`PipelineError`]s; rejects illegal VLs
    /// and fixed-width/VL mismatches.
    pub fn specialize(
        &self,
        kernel: &Kernel,
        flow: Flow,
        target: &TargetDesc,
        cfg: &CompileConfig,
        vl_bits: usize,
    ) -> Result<(Arc<Compiled>, Arc<DecodedProgram>), PipelineError> {
        let compiled = self.compile(kernel, flow, target, cfg)?;
        if !target.vla {
            if target.vs * 8 == vl_bits {
                let decoded = Arc::clone(&compiled.jit.decoded);
                return Ok((compiled, decoded));
            }
            return Err(PipelineError(format!(
                "target {} is fixed at {} bits; cannot specialize to VL={vl_bits}",
                target.name,
                target.vs * 8
            )));
        }
        if !vapor_targets::valid_vl(vl_bits) {
            return Err(PipelineError(format!(
                "illegal runtime VL of {vl_bits} bits (must be a multiple of 128 in 128..=2048)"
            )));
        }
        let key = (
            CacheKey {
                kernel_fp: fingerprint(kernel),
                flow,
                target_fp: target_fingerprint(target),
                cfg: cfg.clone(),
            },
            vl_bits as u32,
        );
        if let Some(hit) = self
            .vl_cache
            .lock()
            .expect("engine vl cache poisoned")
            .get(&key)
        {
            return Ok((compiled, hit));
        }
        let exec = target.at_vl(vl_bits);
        let prog = Arc::new(
            compiled
                .jit
                .decoded
                .respecialize(&compiled.jit.code, &exec)
                .map_err(|e| PipelineError(format!("VL={vl_bits} specialization: {e}")))?,
        );
        let mut lru = self.vl_cache.lock().expect("engine vl cache poisoned");
        Ok((compiled, lru.insert(key, prog)))
    }

    /// Lower a compilation all the way to the closure-threaded
    /// execution tier at a concrete vector length: [`Engine::specialize`]
    /// resolves the (kernel, flow, target, config, VL) tuple to a
    /// decoded program — with all of its caching and VL validation —
    /// and the threading pass then flattens that decoded form into
    /// regions over a contiguous register arena with precomputed
    /// address streams (see [`ThreadedProgram`]).
    ///
    /// Threaded programs have their own bounded LRU keyed like the VL
    /// cache; fixed-width targets are cached here too (the one width
    /// they support is the key's VL).
    ///
    /// # Errors
    /// Propagates compile-stage [`PipelineError`]s; rejects illegal VLs
    /// and fixed-width/VL mismatches — the same contract as
    /// [`Engine::specialize`].
    pub fn thread(
        &self,
        kernel: &Kernel,
        flow: Flow,
        target: &TargetDesc,
        cfg: &CompileConfig,
        vl_bits: usize,
    ) -> Result<(Arc<Compiled>, Arc<ThreadedProgram>), PipelineError> {
        let (compiled, decoded) = self.specialize(kernel, flow, target, cfg, vl_bits)?;
        let key = (
            CacheKey {
                kernel_fp: fingerprint(kernel),
                flow,
                target_fp: target_fingerprint(target),
                cfg: cfg.clone(),
            },
            vl_bits as u32,
        );
        if let Some(hit) = self
            .threaded_cache
            .lock()
            .expect("engine threaded cache poisoned")
            .get(&key)
        {
            return Ok((compiled, hit));
        }
        let prog = Arc::new(ThreadedProgram::thread(&decoded, &compiled.jit.code));
        let mut lru = self
            .threaded_cache
            .lock()
            .expect("engine threaded cache poisoned");
        Ok((compiled, lru.insert(key, prog)))
    }

    /// Cache hit/miss counters and current size.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache.read().expect("engine cache poisoned").len(),
            vl_entries: self
                .vl_cache
                .lock()
                .expect("engine vl cache poisoned")
                .map
                .len(),
            threaded_entries: self
                .threaded_cache
                .lock()
                .expect("engine threaded cache poisoned")
                .map
                .len(),
        }
    }

    /// Number of cached compilations.
    pub fn len(&self) -> usize {
        self.cache.read().expect("engine cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached compilation, VL specialization, and threaded
    /// lowering (counters are kept).
    pub fn clear(&self) {
        self.cache.write().expect("engine cache poisoned").clear();
        self.vl_cache
            .lock()
            .expect("engine vl cache poisoned")
            .map
            .clear();
        self.threaded_cache
            .lock()
            .expect("engine threaded cache poisoned")
            .map
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapor_frontend::parse_kernel;
    use vapor_targets::{altivec, sse};

    fn saxpy() -> Kernel {
        parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap()
    }

    #[test]
    fn cache_hit_returns_the_same_arc() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let cfg = CompileConfig::default();
        let a = e.compile(&k, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        let b = e.compile(&k, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second compile must be a cache hit");
        let s = e.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn content_addressing_sees_through_reparsing() {
        // A structurally identical kernel parsed from differently
        // formatted source hits the same entry.
        let e = Engine::new();
        let t = sse();
        let cfg = CompileConfig::default();
        let a = e.compile(&saxpy(), Flow::SplitVectorOpt, &t, &cfg).unwrap();
        let k2 = parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) { for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; } }",
        )
        .unwrap();
        let b = e.compile(&k2, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_configs_flows_and_targets_miss() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let base = e
            .compile(&k, Flow::SplitVectorOpt, &t, &CompileConfig::default())
            .unwrap();
        let ablated = e
            .compile(
                &k,
                Flow::SplitVectorOpt,
                &t,
                &CompileConfig {
                    no_alignment_opts: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(
            !Arc::ptr_eq(&base, &ablated),
            "distinct configs must not share an entry"
        );
        let other_flow = e
            .compile(&k, Flow::SplitScalarOpt, &t, &CompileConfig::default())
            .unwrap();
        assert!(!Arc::ptr_eq(&base, &other_flow));
        let other_target = e
            .compile(
                &k,
                Flow::SplitVectorOpt,
                &altivec(),
                &CompileConfig::default(),
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&base, &other_target));
        assert_eq!(e.stats().entries, 4);
        assert_eq!(e.stats().hits, 0);
    }

    #[test]
    fn uncached_compiles_are_private_and_leave_no_entry() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let cfg = CompileConfig::default();
        let a = e
            .compile_uncached(&k, Flow::NativeVector, &t, &cfg)
            .unwrap();
        let b = e
            .compile_uncached(&k, Flow::NativeVector, &t, &cfg)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(e.is_empty());
    }

    #[test]
    fn batch_matches_serial_compilation() {
        let k1 = saxpy();
        let k2 = parse_kernel(
            "kernel dscal(long n, float a, float x[]) {
               for (long i = 0; i < n; i++) { x[i] = a * x[i]; }
             }",
        )
        .unwrap();
        let targets = [sse(), altivec()];
        let mut jobs = Vec::new();
        for k in [&k1, &k2] {
            for t in &targets {
                for flow in Flow::ALL {
                    jobs.push(CompileJob::new(k, flow, t));
                }
            }
        }

        let parallel_engine = Engine::new();
        let batch = parallel_engine.compile_batch(&jobs);
        let serial_engine = Engine::new();
        for (job, got) in jobs.iter().zip(&batch) {
            let want = serial_engine
                .compile(job.kernel, job.flow, job.target, &job.cfg)
                .unwrap();
            let got = got.as_ref().expect("batch compile failed");
            assert_eq!(
                got.jit.code, want.jit.code,
                "{} {}",
                job.kernel.name, job.flow
            );
            assert_eq!(got.bytecode_bytes, want.bytecode_bytes);
            assert_eq!(got.jit.decoded.len, want.jit.decoded.len);
            assert_eq!(got.jit.decoded.vs, want.jit.decoded.vs);
        }
        // Every distinct tuple cached exactly once.
        assert_eq!(parallel_engine.stats().entries, jobs.len());
    }

    #[test]
    fn batch_duplicates_collapse_to_one_arc() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let jobs: Vec<CompileJob<'_>> = (0..16)
            .map(|_| CompileJob::new(&k, Flow::SplitVectorOpt, &t))
            .collect();
        let results = e.compile_batch(&jobs);
        let first = results[0].as_ref().unwrap();
        for r in &results {
            assert!(Arc::ptr_eq(first, r.as_ref().unwrap()));
        }
        assert_eq!(e.stats().entries, 1);
    }

    #[test]
    fn concurrent_compiles_of_one_key_reconcile() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let cfg = CompileConfig::default();
        let arcs: Vec<Arc<Compiled>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| e.compile(&k, Flow::SplitVectorNaive, &t, &cfg).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for a in &arcs {
            assert!(
                Arc::ptr_eq(&arcs[0], a),
                "all racers must observe one canonical Arc"
            );
        }
        assert_eq!(e.stats().entries, 1);
    }

    #[test]
    fn batch_reports_per_job_errors() {
        // An unvectorizable construct fails in some flows but must not
        // poison the rest of the batch.
        let bad = parse_kernel(
            "kernel div(long n, float x[]) {
               for (long i = 0; i < n; i++) { x[i] = x[i] / x[i]; }
             }",
        );
        let k = saxpy();
        let t = sse();
        let mut jobs = vec![CompileJob::new(&k, Flow::SplitVectorOpt, &t)];
        if let Ok(bad) = &bad {
            jobs.push(CompileJob::new(bad, Flow::SplitVectorOpt, &t));
        }
        let results = Engine::new().compile_batch(&jobs);
        assert!(results[0].is_ok());
        assert_eq!(results.len(), jobs.len());
    }

    #[test]
    fn vla_specialization_shares_one_compiled_artifact() {
        let e = Engine::new();
        let k = saxpy();
        let t = vapor_targets::sve();
        let cfg = CompileConfig::default();
        let (c128, p128) = e
            .specialize(&k, Flow::SplitVectorOpt, &t, &cfg, 128)
            .unwrap();
        let (c512, p512) = e
            .specialize(&k, Flow::SplitVectorOpt, &t, &cfg, 512)
            .unwrap();
        assert!(
            Arc::ptr_eq(&c128, &c512),
            "compile once: every VL shares one artifact"
        );
        assert_eq!(e.stats().misses, 1, "the VL dimension must not recompile");
        assert_eq!(e.stats().entries, 1);
        assert_eq!(e.stats().vl_entries, 2);
        // The execution forms really are width-specialized …
        assert_eq!(p128.vs, 16);
        assert_eq!(p512.vs, 64);
        // … and cached per VL.
        let (_, p512b) = e
            .specialize(&k, Flow::SplitVectorOpt, &t, &cfg, 512)
            .unwrap();
        assert!(Arc::ptr_eq(&p512, &p512b));
        e.clear();
        assert_eq!(e.stats().vl_entries, 0);
    }

    #[test]
    fn vl_cache_is_lru_bounded() {
        // Capacity 2: the least-recently-used specialization is evicted,
        // recently-touched ones survive, and eviction only costs a
        // re-specialization (never a recompile).
        let e = Engine::with_vl_cache_capacity(2);
        let k = saxpy();
        let t = vapor_targets::sve();
        let cfg = CompileConfig::default();
        let flow = Flow::SplitVectorOpt;
        let (_, p128) = e.specialize(&k, flow, &t, &cfg, 128).unwrap();
        let (_, p256) = e.specialize(&k, flow, &t, &cfg, 256).unwrap();
        assert_eq!(e.stats().vl_entries, 2);
        // Touch 128 so 256 becomes the LRU entry, then insert a third.
        let (_, p128b) = e.specialize(&k, flow, &t, &cfg, 128).unwrap();
        assert!(Arc::ptr_eq(&p128, &p128b), "touched entry must still hit");
        let (_, _p512) = e.specialize(&k, flow, &t, &cfg, 512).unwrap();
        assert_eq!(e.stats().vl_entries, 2, "cache must stay bounded");
        // 256 was evicted: a fresh Arc comes back. 128 survived.
        let (_, p256b) = e.specialize(&k, flow, &t, &cfg, 256).unwrap();
        assert!(!Arc::ptr_eq(&p256, &p256b), "LRU entry must be evicted");
        assert_eq!(
            e.stats().misses,
            1,
            "eviction re-specializes; it never recompiles"
        );
    }

    #[test]
    fn vl_specializations_share_the_decode_skeleton() {
        // The re-specialized program must be exactly what a fresh
        // decode would produce (costs, lane clamps, control targets).
        let e = Engine::new();
        let k = saxpy();
        let t = vapor_targets::sve();
        let cfg = CompileConfig::default();
        for vl in [128usize, 512, 2048] {
            let (compiled, prog) = e
                .specialize(&k, Flow::SplitVectorOpt, &t, &cfg, vl)
                .unwrap();
            let exec = t.at_vl(vl);
            let fresh = vapor_targets::DecodedProgram::decode(&compiled.jit.code, &exec).unwrap();
            assert_eq!(prog.vs, fresh.vs);
            assert_eq!(prog.len, fresh.len);
            for (a, b) in prog.steps().iter().zip(fresh.steps()) {
                assert_eq!(a.cost, b.cost, "VL={vl}");
                assert_eq!(a.lanes, b.lanes, "VL={vl}");
            }
        }
    }

    #[test]
    fn fixed_targets_specialize_only_to_their_own_width() {
        let e = Engine::new();
        let k = saxpy();
        let cfg = CompileConfig::default();
        let (c, p) = e
            .specialize(&k, Flow::SplitVectorOpt, &sse(), &cfg, 128)
            .unwrap();
        assert!(Arc::ptr_eq(&p, &c.jit.decoded), "no re-decode, no entry");
        assert_eq!(e.stats().vl_entries, 0);
        let err = e
            .specialize(&k, Flow::SplitVectorOpt, &sse(), &cfg, 256)
            .unwrap_err();
        assert!(err.0.contains("fixed at 128 bits"), "{err}");
    }

    #[test]
    fn illegal_vl_is_rejected_not_panicked() {
        let e = Engine::new();
        let k = saxpy();
        let err = e
            .specialize(
                &k,
                Flow::SplitVectorOpt,
                &vapor_targets::sve(),
                &CompileConfig::default(),
                192,
            )
            .unwrap_err();
        assert!(err.0.contains("illegal runtime VL"), "{err}");
    }

    #[test]
    fn threaded_lowerings_are_cached_per_vl_for_every_target_kind() {
        let e = Engine::new();
        let k = saxpy();
        let cfg = CompileConfig::default();
        // Fixed-width targets cache their threaded form (threading is a
        // real lowering pass, unlike the free fixed-width decode).
        let (_, t128) = e
            .thread(&k, Flow::SplitVectorOpt, &sse(), &cfg, 128)
            .unwrap();
        let (_, t128b) = e
            .thread(&k, Flow::SplitVectorOpt, &sse(), &cfg, 128)
            .unwrap();
        assert!(Arc::ptr_eq(&t128, &t128b), "second thread must hit");
        assert_eq!(e.stats().threaded_entries, 1);
        // VLA targets get one threaded form per VL, each matching its
        // decoded specialization's width.
        let sve = vapor_targets::sve();
        let (_, s256) = e.thread(&k, Flow::SplitVectorOpt, &sve, &cfg, 256).unwrap();
        let (_, s512) = e.thread(&k, Flow::SplitVectorOpt, &sve, &cfg, 512).unwrap();
        assert_eq!(s256.vs, 32);
        assert_eq!(s512.vs, 64);
        assert_eq!(e.stats().threaded_entries, 3);
        assert_eq!(e.stats().misses, 2, "threading never recompiles");
        // Specialize's contract is inherited: mismatched fixed widths
        // and illegal VLs are rejected, not threaded.
        let err = e
            .thread(&k, Flow::SplitVectorOpt, &sse(), &cfg, 256)
            .unwrap_err();
        assert!(err.0.contains("fixed at 128 bits"), "{err}");
        e.clear();
        assert_eq!(e.stats().threaded_entries, 0);
    }

    #[test]
    fn clear_forgets_compilations() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let cfg = CompileConfig::default();
        let a = e.compile(&k, Flow::NativeScalar, &t, &cfg).unwrap();
        e.clear();
        assert!(e.is_empty());
        let b = e.compile(&k, Flow::NativeScalar, &t, &cfg).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "cleared cache must recompile");
    }
}

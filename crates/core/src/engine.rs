//! The compilation engine: a persistent, thread-safe service wrapping
//! the end-to-end pipeline behind a sharded, content-addressed cache.
//!
//! The paper's story is "vectorize once, run everywhere": the offline
//! artifact is produced once and consumed by many online consumers. The
//! seed reproduction instead recompiled every (kernel, flow, target)
//! tuple from scratch on every call — fine for generating one figure,
//! hopeless for a service. [`Engine`] gives the repo the shape the
//! related retargeting systems (Revec, SIMD-everywhere) have: a
//! translation step that is computed once per distinct input and then
//! shared — and, since the multi-tenant rework, served concurrently:
//!
//! * **Content-addressed**: the cache key is a fingerprint of the kernel
//!   *source text* (via the round-trip-stable pretty printer) plus the
//!   [`Flow`], target fingerprint, and [`CompileConfig`] — two
//!   structurally identical kernels hit the same entry no matter how
//!   they were built.
//! * **Sharded**: the compile cache is split N ways by key hash
//!   ([`EngineBuilder::shards`]); concurrent compiles and cache hits on
//!   different shards never touch the same lock. Contended lock
//!   acquisitions are counted ([`EngineStats::contended_locks`]) so the
//!   sharding win is *measurable*, not folklore.
//! * **Bounded**: every tier (compile, per-VL decode, threaded,
//!   unfused) evicts least-recently-used entries at its configured
//!   capacity, with evictions counted per tier.
//! * **Pooled execution**: [`Engine::execute`] recycles machine memory
//!   arenas through a bounded pool, so steady-state concurrent
//!   executions stop allocating megabytes per request.
//! * **Persistent**: with an artifact store attached
//!   ([`EngineBuilder::artifact_dir`]), compile misses first consult an
//!   on-disk store of encoded offline artifacts keyed by the content
//!   hash; a warm process (or a fleet member sharing the directory)
//!   skips the offline stage and pays only the online compile. Corrupt
//!   or truncated artifacts are rejected by checksum and recompiled.
//! * **Deduplicated**: racing compilations of the same key wait on the
//!   first compiler (per-shard in-flight sets) so a thundering herd
//!   runs the pipeline once, and every caller observes one canonical
//!   `Arc` per key.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, TryLockError};
use std::time::Instant;

use vapor_ir::Kernel;
use vapor_targets::{DecodedProgram, TargetDesc, ThreadedProgram};

use crate::artifact::{fnv1a_128, ArtifactStore};
use crate::pipeline::{self, CompileConfig, Compiled, Flow, PipelineError};

/// Cache key: kernel content fingerprint + everything else that affects
/// the generated code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// 128-bit FNV-1a over the pretty-printed kernel (round-trip-stable,
    /// so this is a fingerprint of the kernel's *content*).
    kernel_fp: u128,
    flow: Flow,
    /// 128-bit FNV-1a over the target's full `Debug` form — `TargetDesc`
    /// is a plain pub-field struct, so keying on the name alone would let
    /// a caller-customized target (same name, different cost table or
    /// feature flags) silently share entries with the stock one.
    target_fp: u128,
    cfg: CompileConfig,
}

impl CacheKey {
    /// The stable 128-bit identity of this key for the on-disk artifact
    /// store (filenames must not depend on in-process hasher state).
    fn artifact_id(&self) -> u128 {
        fnv1a_128(
            format!(
                "{:032x}|{:?}|{:032x}|{:?}",
                self.kernel_fp, self.flow, self.target_fp, self.cfg
            )
            .as_bytes(),
        )
    }

    /// Which of `n` shards this key lives in.
    fn shard(&self, n: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() % n as u64) as usize
    }
}

/// Fingerprint a kernel's content.
fn fingerprint(kernel: &Kernel) -> u128 {
    fnv1a_128(vapor_ir::print_kernel(kernel).as_bytes())
}

/// Fingerprint a target's full content (ISA facts, cost model, ports).
fn target_fingerprint(target: &TargetDesc) -> u128 {
    fnv1a_128(format!("{target:?}").as_bytes())
}

/// One compilation request for [`Engine::compile_batch`].
#[derive(Debug, Clone)]
pub struct CompileJob<'a> {
    /// Kernel to compile.
    pub kernel: &'a Kernel,
    /// Compilation flow.
    pub flow: Flow,
    /// Target machine.
    pub target: &'a TargetDesc,
    /// Compilation knobs.
    pub cfg: CompileConfig,
}

impl<'a> CompileJob<'a> {
    /// A job with default config.
    pub fn new(kernel: &'a Kernel, flow: Flow, target: &'a TargetDesc) -> CompileJob<'a> {
        CompileJob {
            kernel,
            flow,
            target,
            cfg: CompileConfig::default(),
        }
    }
}

/// Counters of the engine's cache, artifact-tier, and pool behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Compilations answered from the in-memory cache.
    pub hits: u64,
    /// Compilations that missed the in-memory cache (they ran the
    /// online stage at least; with an artifact hit they skipped the
    /// offline stage).
    pub misses: u64,
    /// Entries currently cached across all shards.
    pub entries: usize,
    /// Compile-cache shard count.
    pub shards: usize,
    /// Compiled entries evicted (LRU) across all shards.
    pub evictions: u64,
    /// Execution-form entries evicted (LRU) across the per-VL decode,
    /// threaded, and unfused caches.
    pub exec_evictions: u64,
    /// Shard-map lock acquisitions that found the lock held (the
    /// contention the sharding exists to kill; compare shards=1 vs
    /// shards=N under identical load).
    pub contended_locks: u64,
    /// Total nanoseconds spent compiling on the miss path (divide by
    /// `misses` for the mean compile latency).
    pub compile_ns: u64,
    /// Misses served from the on-disk artifact store (offline stage
    /// skipped).
    pub artifact_hits: u64,
    /// Misses that found no artifact on disk.
    pub artifact_misses: u64,
    /// Artifacts present but rejected (bad magic/truncation/checksum or
    /// undecodable payload) and recompiled from source.
    pub artifact_rejects: u64,
    /// Artifacts written to the store.
    pub artifact_writes: u64,
    /// Runtime-VL execution specializations currently cached (the VL
    /// dimension exists only here, never in the compile cache).
    pub vl_entries: usize,
    /// Closure-threaded execution programs currently cached (the tier
    /// below the decoded programs; see [`Engine::thread`]).
    pub threaded_entries: usize,
    /// Executions that reused a pooled memory arena.
    pub pool_reuses: u64,
    /// Executions that allocated a fresh arena (pool empty).
    pub pool_allocs: u64,
}

/// Default bound on the per-VL decode cache. VL specializations are
/// cheap to rebuild (a re-specialization of the shared decode, not a
/// compile), so the cache is a small LRU rather than an unbounded map —
/// a service cycling through many (kernel, VL) pairs must not grow
/// without limit.
pub const VL_CACHE_CAPACITY: usize = 64;

/// Default compile-cache shard count.
pub const DEFAULT_SHARDS: usize = 8;

/// Default bound on cached compilations (total, across shards).
pub const COMPILE_CACHE_CAPACITY: usize = 4096;

/// Default bound on pooled execution arenas.
pub const ARENA_POOL_CAPACITY: usize = 8;

/// A tiny LRU map: a `HashMap` plus a monotone use-stamp per entry.
/// Lookups are O(1); the eviction scan is O(n) over at most `cap`
/// entries, which at the capacities used here (tens to a few thousand)
/// is cheaper than maintaining an intrusive list. Generic over key and
/// value so the compile shards and the decoded/threaded/unfused
/// execution tiers share one implementation.
#[derive(Debug)]
struct Lru<K, V> {
    map: HashMap<K, (Arc<V>, u64)>,
    tick: u64,
    cap: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    fn new(cap: usize) -> Lru<K, V> {
        Lru {
            map: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
            evictions: 0,
        }
    }

    fn get(&mut self, key: &K) -> Option<Arc<V>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = tick;
            Arc::clone(v)
        })
    }

    /// Insert, evicting the least-recently-used entry when full. Like
    /// `entry().or_insert()`, a racing earlier insert wins: the caller
    /// gets the canonical `Arc`.
    fn insert(&mut self, key: K, value: Arc<V>) -> Arc<V> {
        self.tick += 1;
        if let Some((v, stamp)) = self.map.get_mut(&key) {
            *stamp = self.tick;
            return Arc::clone(v);
        }
        while self.map.len() >= self.cap {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone());
            match lru {
                Some(k) => {
                    self.map.remove(&k);
                    self.evictions += 1;
                }
                None => break,
            };
        }
        self.map.insert(key, (Arc::clone(&value), self.tick));
        value
    }
}

/// One compile-cache shard: a bounded LRU of compiled artifacts plus
/// the in-flight set that deduplicates racing compilations of one key.
#[derive(Debug)]
struct Shard {
    map: Mutex<Lru<CacheKey, Compiled>>,
    /// Keys currently being compiled in this shard, so concurrent
    /// requests for the same tuple wait for the first compiler instead
    /// of duplicating the whole pipeline run.
    inflight: Mutex<HashSet<CacheKey>>,
    inflight_done: Condvar,
}

/// Configuration of an [`Engine`], built by [`Engine::builder`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    shards: usize,
    compile_capacity: usize,
    vl_capacity: usize,
    threaded_capacity: usize,
    pool_capacity: usize,
    artifact_dir: Option<PathBuf>,
}

impl Default for EngineBuilder {
    fn default() -> EngineBuilder {
        EngineBuilder {
            shards: DEFAULT_SHARDS,
            compile_capacity: COMPILE_CACHE_CAPACITY,
            vl_capacity: VL_CACHE_CAPACITY,
            threaded_capacity: VL_CACHE_CAPACITY,
            pool_capacity: ARENA_POOL_CAPACITY,
            artifact_dir: None,
        }
    }
}

impl EngineBuilder {
    /// Compile-cache shard count (default [`DEFAULT_SHARDS`]). One
    /// shard reproduces the old single-lock cache — the A/B baseline
    /// the service benchmark measures contention against.
    pub fn shards(mut self, n: usize) -> EngineBuilder {
        self.shards = n.max(1);
        self
    }

    /// Total bound on cached compilations across all shards (default
    /// [`COMPILE_CACHE_CAPACITY`]). Each shard holds its proportional
    /// slice; LRU entries are evicted past it.
    pub fn compile_cache_capacity(mut self, cap: usize) -> EngineBuilder {
        self.compile_capacity = cap.max(1);
        self
    }

    /// Bound on the per-VL decode LRU (default [`VL_CACHE_CAPACITY`]).
    pub fn vl_cache_capacity(mut self, cap: usize) -> EngineBuilder {
        self.vl_capacity = cap.max(1);
        self
    }

    /// Bound on the closure-threaded program LRU (default
    /// [`VL_CACHE_CAPACITY`]).
    pub fn threaded_cache_capacity(mut self, cap: usize) -> EngineBuilder {
        self.threaded_capacity = cap.max(1);
        self
    }

    /// Bound on the pooled execution arenas kept for reuse (default
    /// [`ARENA_POOL_CAPACITY`]). Zero disables pooling.
    pub fn arena_pool_capacity(mut self, cap: usize) -> EngineBuilder {
        self.pool_capacity = cap;
        self
    }

    /// Attach the persistent artifact tier rooted at `dir`: compile
    /// misses consult the on-disk store before running the offline
    /// stage, and fresh offline artifacts are written back. Several
    /// engines (processes) may share one directory — that is the
    /// "simulated fleet" sharing compiles across restarts.
    pub fn artifact_dir(mut self, dir: impl Into<PathBuf>) -> EngineBuilder {
        self.artifact_dir = Some(dir.into());
        self
    }

    /// Build the engine.
    ///
    /// # Errors
    /// Fails only when an artifact directory was requested but cannot
    /// be created/opened.
    pub fn build(self) -> Result<Engine, PipelineError> {
        let artifacts = match &self.artifact_dir {
            Some(dir) => Some(
                ArtifactStore::open(dir)
                    .map_err(|e| PipelineError(format!("artifact store {}: {e}", dir.display())))?,
            ),
            None => None,
        };
        let per_shard = self.compile_capacity.div_ceil(self.shards).max(1);
        let shards = (0..self.shards)
            .map(|_| Shard {
                map: Mutex::new(Lru::new(per_shard)),
                inflight: Mutex::new(HashSet::new()),
                inflight_done: Condvar::new(),
            })
            .collect();
        Ok(Engine {
            shards,
            vl_cache: Mutex::new(Lru::new(self.vl_capacity)),
            threaded_cache: Mutex::new(Lru::new(self.threaded_capacity)),
            unfused_cache: Mutex::new(Lru::new(self.vl_capacity)),
            artifacts,
            arena_pool: Mutex::new(Vec::new()),
            pool_capacity: self.pool_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            compile_ns: AtomicU64::new(0),
            artifact_hits: AtomicU64::new(0),
            artifact_misses: AtomicU64::new(0),
            artifact_rejects: AtomicU64::new(0),
            artifact_writes: AtomicU64::new(0),
            pool_reuses: AtomicU64::new(0),
            pool_allocs: AtomicU64::new(0),
        })
    }
}

/// A persistent compilation service. Cheap to share by reference across
/// threads (`&Engine` is `Send + Sync`); create one per process (or per
/// tenant) and route every compilation through it.
#[derive(Debug)]
pub struct Engine {
    /// The sharded compile cache (see [`EngineBuilder::shards`]).
    shards: Box<[Shard]>,
    /// Execution specializations of VLA compilations: the *same*
    /// `Arc<Compiled>` artifact, re-specialized per concrete runtime
    /// vector length. Keyed by the compile key *plus* the VL — "compile
    /// once" stays intact because the VL dimension first appears here.
    /// Bounded (LRU): see [`VL_CACHE_CAPACITY`].
    vl_cache: Mutex<Lru<(CacheKey, u32), DecodedProgram>>,
    /// Closure-threaded lowerings of specialized programs, keyed like
    /// the VL cache. Unlike decoded specializations, fixed-width
    /// entries live here too: threading is a real lowering pass (region
    /// construction, stream analysis, arena layout), not a free
    /// `Arc` clone of a baked-in artifact.
    threaded_cache: Mutex<Lru<(CacheKey, u32), ThreadedProgram>>,
    /// Unfused decodes (one step per instruction), keyed like the VL
    /// cache — the `fused(false)` execution option of
    /// [`crate::ExecRequest`], cached so fusion-ablation request storms
    /// do not re-decode per request.
    unfused_cache: Mutex<Lru<(CacheKey, u32), DecodedProgram>>,
    /// The persistent artifact tier, when attached.
    artifacts: Option<ArtifactStore>,
    /// Recycled machine memory arenas for [`Engine::execute`].
    arena_pool: Mutex<Vec<Vec<u8>>>,
    pool_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    contended: AtomicU64,
    compile_ns: AtomicU64,
    artifact_hits: AtomicU64,
    artifact_misses: AtomicU64,
    artifact_rejects: AtomicU64,
    artifact_writes: AtomicU64,
    pool_reuses: AtomicU64,
    pool_allocs: AtomicU64,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::builder()
            .build()
            .expect("default engine has no artifact dir to fail on")
    }
}

/// Removes a key from a shard's in-flight set (and wakes waiters) when
/// the compiling thread finishes — on success, error, or panic.
struct InflightGuard<'e> {
    shard: &'e Shard,
    key: CacheKey,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut inflight = self.shard.inflight.lock().expect("inflight set poisoned");
        inflight.remove(&self.key);
        self.shard.inflight_done.notify_all();
    }
}

impl Engine {
    /// An engine with the default configuration (see [`EngineBuilder`]).
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Start configuring an engine: shard count, per-tier capacities,
    /// artifact-store path, arena pool.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// **Deprecated** legacy constructor: an engine whose per-VL decode
    /// cache holds at most `cap` entries. Use
    /// `Engine::builder().vl_cache_capacity(cap).build()` — the builder
    /// also exposes shard count, compile-cache bound, and the artifact
    /// tier, none of which this constructor can reach.
    pub fn with_vl_cache_capacity(cap: usize) -> Engine {
        Engine::builder()
            .vl_cache_capacity(cap)
            .threaded_cache_capacity(cap)
            .build()
            .expect("no artifact dir to fail on")
    }

    /// Lock a shard map, counting contention: a lock found held is
    /// exactly what the sharding exists to make rare, so every blocked
    /// acquisition increments [`EngineStats::contended_locks`].
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, Lru<CacheKey, Compiled>> {
        match shard.map.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                shard.map.lock().expect("engine cache poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("engine cache poisoned"),
        }
    }

    pub(crate) fn key(
        &self,
        kernel: &Kernel,
        flow: Flow,
        target: &TargetDesc,
        cfg: &CompileConfig,
    ) -> CacheKey {
        CacheKey {
            kernel_fp: fingerprint(kernel),
            flow,
            target_fp: target_fingerprint(target),
            cfg: cfg.clone(),
        }
    }

    /// Compile through the cache: on a hit, returns the *same*
    /// `Arc<Compiled>` as every previous call with an identical
    /// (kernel content, flow, target, config) tuple.
    ///
    /// On a miss, the persistent artifact tier (when attached) is
    /// consulted first: a valid on-disk artifact skips the offline
    /// stage; an absent one triggers the full pipeline and a
    /// write-back; a corrupt one is rejected and recompiled.
    ///
    /// # Errors
    /// Propagates [`PipelineError`]s from any stage. Failures are not
    /// cached: a failing tuple re-runs the pipeline on every call (they
    /// are cheap and deterministic, and callers usually abort anyway).
    pub fn compile(
        &self,
        kernel: &Kernel,
        flow: Flow,
        target: &TargetDesc,
        cfg: &CompileConfig,
    ) -> Result<Arc<Compiled>, PipelineError> {
        let key = self.key(kernel, flow, target, cfg);
        let shard = &self.shards[key.shard(self.shards.len())];
        // Fast path + in-flight claim: either the key is cached, or we
        // become its compiler, or we wait for whoever already is (a
        // failed compile wakes waiters without filling the cache; the
        // first waiter then claims the key and retries).
        loop {
            if let Some(hit) = self.lock_shard(shard).get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
            let mut inflight = shard.inflight.lock().expect("inflight set poisoned");
            if !inflight.contains(&key) {
                inflight.insert(key.clone());
                break;
            }
            let _unused = shard
                .inflight_done
                .wait(inflight)
                .expect("inflight set poisoned");
        }
        let _guard = InflightGuard {
            shard,
            key: key.clone(),
        };

        self.misses.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let compiled = Arc::new(self.compile_miss(kernel, flow, target, cfg, &key)?);
        self.compile_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(self.lock_shard(shard).insert(key, compiled))
    }

    /// The miss path: artifact tier first (when attached), full
    /// pipeline otherwise, with write-back of fresh offline artifacts.
    fn compile_miss(
        &self,
        kernel: &Kernel,
        flow: Flow,
        target: &TargetDesc,
        cfg: &CompileConfig,
        key: &CacheKey,
    ) -> Result<Compiled, PipelineError> {
        let Some(store) = &self.artifacts else {
            return pipeline::compile(kernel, flow, target, cfg);
        };
        let id = key.artifact_id();
        match store.load(id) {
            Ok(Some(bytes)) => {
                match pipeline::online_compile(&kernel.name, &bytes, flow, target) {
                    Ok(c) => {
                        self.artifact_hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(c);
                    }
                    // Framed and checksummed but undecodable (e.g. a
                    // stale format written by a different bytecode
                    // version): reject and recompile.
                    Err(_) => {
                        self.artifact_rejects.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Ok(None) => {
                self.artifact_misses.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.artifact_rejects.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (compiled, bytes) = pipeline::compile_encoded(kernel, flow, target, cfg)?;
        // Best effort: a failed write only costs a future recompile.
        if store.save(id, &bytes).is_ok() {
            self.artifact_writes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(compiled)
    }

    /// Compile without consulting or filling the cache. For timing
    /// experiments (§V-A(c) measures real online-compile times, which a
    /// cache hit would reduce to a map lookup) and for callers that
    /// deliberately want a private copy.
    ///
    /// # Errors
    /// Propagates [`PipelineError`]s from any stage.
    pub fn compile_uncached(
        &self,
        kernel: &Kernel,
        flow: Flow,
        target: &TargetDesc,
        cfg: &CompileConfig,
    ) -> Result<Arc<Compiled>, PipelineError> {
        Ok(Arc::new(pipeline::compile(kernel, flow, target, cfg)?))
    }

    /// Compile a batch of jobs, fanning across OS threads. Results come
    /// back in job order. Duplicate tuples in one batch are compiled once
    /// modulo racing (the cache reconciles racers), and every duplicate
    /// returns the canonical `Arc`.
    ///
    /// Worker count is `min(jobs, available_parallelism)`; a batch of one
    /// runs inline on the caller's thread.
    pub fn compile_batch(
        &self,
        jobs: &[CompileJob<'_>],
    ) -> Vec<Result<Arc<Compiled>, PipelineError>> {
        if jobs.len() <= 1 {
            return jobs
                .iter()
                .map(|j| self.compile(j.kernel, j.flow, j.target, &j.cfg))
                .collect();
        }
        let workers = std::thread::available_parallelism()
            .map_or(2, |n| n.get())
            .min(jobs.len());
        let next = AtomicUsize::new(0);
        let done: Vec<(usize, Result<Arc<Compiled>, PipelineError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(job) = jobs.get(i) else { break out };
                                out.push((
                                    i,
                                    self.compile(job.kernel, job.flow, job.target, &job.cfg),
                                ));
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("batch worker panicked"))
                    .collect()
            });
        let mut results: Vec<Option<Result<Arc<Compiled>, PipelineError>>> =
            (0..jobs.len()).map(|_| None).collect();
        for (i, r) in done {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch slot filled by a worker"))
            .collect()
    }

    /// Specialize a compilation to a concrete runtime vector length.
    ///
    /// The compile step is the ordinary cached, VL-*agnostic* pipeline
    /// run — every VL shares one `Arc<Compiled>` artifact. What is
    /// per-VL is only the execution form: the shared pre-decoded program
    /// *re-specialized* against `target.at_vl(vl_bits)`. The
    /// VL-independent decode work (label→index resolution, step and
    /// fast-kernel selection) is done once at compile time and shared;
    /// only per-instruction costs and lane counts are recomputed per VL
    /// (see `DecodedProgram::respecialize`). Those specializations are
    /// kept in a small LRU cache ([`VL_CACHE_CAPACITY`]) keyed by the
    /// compile key *plus* `vl_bits`.
    ///
    /// Fixed-width targets are accepted when `vl_bits` names their one
    /// width; the baked-in decode is returned and no entry is added.
    ///
    /// # Errors
    /// Propagates compile-stage [`PipelineError`]s; rejects illegal VLs
    /// and fixed-width/VL mismatches.
    pub fn specialize(
        &self,
        kernel: &Kernel,
        flow: Flow,
        target: &TargetDesc,
        cfg: &CompileConfig,
        vl_bits: usize,
    ) -> Result<(Arc<Compiled>, Arc<DecodedProgram>), PipelineError> {
        let compiled = self.compile(kernel, flow, target, cfg)?;
        if !target.vla {
            if target.vs * 8 == vl_bits {
                let decoded = Arc::clone(&compiled.jit.decoded);
                return Ok((compiled, decoded));
            }
            return Err(PipelineError(format!(
                "target {} is fixed at {} bits; cannot specialize to VL={vl_bits}",
                target.name,
                target.vs * 8
            )));
        }
        if !vapor_targets::valid_vl(vl_bits) {
            return Err(PipelineError(format!(
                "illegal runtime VL of {vl_bits} bits (must be a multiple of 128 in 128..=2048)"
            )));
        }
        let key = (self.key(kernel, flow, target, cfg), vl_bits as u32);
        if let Some(hit) = self
            .vl_cache
            .lock()
            .expect("engine vl cache poisoned")
            .get(&key)
        {
            return Ok((compiled, hit));
        }
        let exec = target.at_vl(vl_bits);
        let prog = Arc::new(
            compiled
                .jit
                .decoded
                .respecialize(&compiled.jit.code, &exec)
                .map_err(|e| PipelineError(format!("VL={vl_bits} specialization: {e}")))?,
        );
        let mut lru = self.vl_cache.lock().expect("engine vl cache poisoned");
        Ok((compiled, lru.insert(key, prog)))
    }

    /// An *unfused* decode (one step per executable instruction) of the
    /// cached compilation at a concrete VL — the `fused(false)` option
    /// of [`crate::ExecRequest`], kept in its own bounded LRU so fusion
    /// A/B storms do not re-decode per request. The same VL contract as
    /// [`Engine::specialize`] applies.
    ///
    /// # Errors
    /// Propagates compile-stage [`PipelineError`]s; rejects illegal VLs
    /// and fixed-width/VL mismatches.
    pub fn decode_unfused(
        &self,
        kernel: &Kernel,
        flow: Flow,
        target: &TargetDesc,
        cfg: &CompileConfig,
        vl_bits: usize,
    ) -> Result<(Arc<Compiled>, Arc<DecodedProgram>), PipelineError> {
        // Validate the (target, VL) pair exactly like specialize does.
        let (compiled, _) = self.specialize(kernel, flow, target, cfg, vl_bits)?;
        let key = (self.key(kernel, flow, target, cfg), vl_bits as u32);
        if let Some(hit) = self
            .unfused_cache
            .lock()
            .expect("engine unfused cache poisoned")
            .get(&key)
        {
            return Ok((compiled, hit));
        }
        let exec = exec_target(target, vl_bits);
        let prog = Arc::new(
            DecodedProgram::decode_unfused(&compiled.jit.code, &exec)
                .map_err(|e| PipelineError(format!("unfused decode: {e}")))?,
        );
        let mut lru = self
            .unfused_cache
            .lock()
            .expect("engine unfused cache poisoned");
        Ok((compiled, lru.insert(key, prog)))
    }

    /// Lower a compilation all the way to the closure-threaded
    /// execution tier at a concrete vector length: [`Engine::specialize`]
    /// resolves the (kernel, flow, target, config, VL) tuple to a
    /// decoded program — with all of its caching and VL validation —
    /// and the threading pass then flattens that decoded form into
    /// regions over a contiguous register arena with precomputed
    /// address streams (see [`ThreadedProgram`]).
    ///
    /// Threaded programs have their own bounded LRU keyed like the VL
    /// cache; fixed-width targets are cached here too (the one width
    /// they support is the key's VL).
    ///
    /// # Errors
    /// Propagates compile-stage [`PipelineError`]s; rejects illegal VLs
    /// and fixed-width/VL mismatches — the same contract as
    /// [`Engine::specialize`].
    pub fn thread(
        &self,
        kernel: &Kernel,
        flow: Flow,
        target: &TargetDesc,
        cfg: &CompileConfig,
        vl_bits: usize,
    ) -> Result<(Arc<Compiled>, Arc<ThreadedProgram>), PipelineError> {
        let (compiled, decoded) = self.specialize(kernel, flow, target, cfg, vl_bits)?;
        let key = (self.key(kernel, flow, target, cfg), vl_bits as u32);
        if let Some(hit) = self
            .threaded_cache
            .lock()
            .expect("engine threaded cache poisoned")
            .get(&key)
        {
            return Ok((compiled, hit));
        }
        let prog = Arc::new(ThreadedProgram::thread(&decoded, &compiled.jit.code));
        let mut lru = self
            .threaded_cache
            .lock()
            .expect("engine threaded cache poisoned");
        Ok((compiled, lru.insert(key, prog)))
    }

    /// Take a recycled execution arena from the pool (or report the
    /// need for a fresh allocation), counting reuse.
    pub(crate) fn take_arena(&self) -> Option<Vec<u8>> {
        let buf = self.arena_pool.lock().expect("arena pool poisoned").pop();
        match &buf {
            Some(_) => self.pool_reuses.fetch_add(1, Ordering::Relaxed),
            None => self.pool_allocs.fetch_add(1, Ordering::Relaxed),
        };
        buf
    }

    /// Return an execution arena to the pool (dropped when full).
    pub(crate) fn put_arena(&self, buf: Vec<u8>) {
        let mut pool = self.arena_pool.lock().expect("arena pool poisoned");
        if pool.len() < self.pool_capacity {
            pool.push(buf);
        }
    }

    /// The attached artifact store, if any.
    pub fn artifact_store(&self) -> Option<&ArtifactStore> {
        self.artifacts.as_ref()
    }

    /// Cache hit/miss/eviction/latency counters, artifact-tier and
    /// arena-pool activity, and current sizes.
    pub fn stats(&self) -> EngineStats {
        let mut entries = 0usize;
        let mut evictions = 0u64;
        for s in self.shards.iter() {
            let m = s.map.lock().expect("engine cache poisoned");
            entries += m.map.len();
            evictions += m.evictions;
        }
        let (vl_entries, vl_ev) = {
            let m = self.vl_cache.lock().expect("engine vl cache poisoned");
            (m.map.len(), m.evictions)
        };
        let (threaded_entries, thr_ev) = {
            let m = self
                .threaded_cache
                .lock()
                .expect("engine threaded cache poisoned");
            (m.map.len(), m.evictions)
        };
        let unfused_ev = self
            .unfused_cache
            .lock()
            .expect("engine unfused cache poisoned")
            .evictions;
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            shards: self.shards.len(),
            evictions,
            exec_evictions: vl_ev + thr_ev + unfused_ev,
            contended_locks: self.contended.load(Ordering::Relaxed),
            compile_ns: self.compile_ns.load(Ordering::Relaxed),
            artifact_hits: self.artifact_hits.load(Ordering::Relaxed),
            artifact_misses: self.artifact_misses.load(Ordering::Relaxed),
            artifact_rejects: self.artifact_rejects.load(Ordering::Relaxed),
            artifact_writes: self.artifact_writes.load(Ordering::Relaxed),
            vl_entries,
            threaded_entries,
            pool_reuses: self.pool_reuses.load(Ordering::Relaxed),
            pool_allocs: self.pool_allocs.load(Ordering::Relaxed),
        }
    }

    /// Number of cached compilations (across shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().expect("engine cache poisoned").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached compilation, VL specialization, threaded
    /// lowering, unfused decode, and pooled arena (counters and the
    /// on-disk artifact store are kept).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.map.lock().expect("engine cache poisoned").map.clear();
        }
        self.vl_cache
            .lock()
            .expect("engine vl cache poisoned")
            .map
            .clear();
        self.threaded_cache
            .lock()
            .expect("engine threaded cache poisoned")
            .map
            .clear();
        self.unfused_cache
            .lock()
            .expect("engine unfused cache poisoned")
            .map
            .clear();
        self.arena_pool.lock().expect("arena pool poisoned").clear();
    }
}

/// The concrete-width execution target of a (family, VL) pair: the
/// family itself when fixed-width, `family.at_vl(vl)` when VLA.
pub(crate) fn exec_target(target: &TargetDesc, vl_bits: usize) -> TargetDesc {
    if target.vla {
        target.at_vl(vl_bits)
    } else {
        target.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapor_frontend::parse_kernel;
    use vapor_targets::{altivec, sse};

    fn saxpy() -> Kernel {
        parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap()
    }

    #[test]
    fn cache_hit_returns_the_same_arc() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let cfg = CompileConfig::default();
        let a = e.compile(&k, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        let b = e.compile(&k, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second compile must be a cache hit");
        let s = e.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.compile_ns > 0, "miss latency must be recorded");
    }

    #[test]
    fn content_addressing_sees_through_reparsing() {
        // A structurally identical kernel parsed from differently
        // formatted source hits the same entry.
        let e = Engine::new();
        let t = sse();
        let cfg = CompileConfig::default();
        let a = e.compile(&saxpy(), Flow::SplitVectorOpt, &t, &cfg).unwrap();
        let k2 = parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) { for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; } }",
        )
        .unwrap();
        let b = e.compile(&k2, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_configs_flows_and_targets_miss() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let base = e
            .compile(&k, Flow::SplitVectorOpt, &t, &CompileConfig::default())
            .unwrap();
        let ablated = e
            .compile(
                &k,
                Flow::SplitVectorOpt,
                &t,
                &CompileConfig {
                    no_alignment_opts: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(
            !Arc::ptr_eq(&base, &ablated),
            "distinct configs must not share an entry"
        );
        let other_flow = e
            .compile(&k, Flow::SplitScalarOpt, &t, &CompileConfig::default())
            .unwrap();
        assert!(!Arc::ptr_eq(&base, &other_flow));
        let other_target = e
            .compile(
                &k,
                Flow::SplitVectorOpt,
                &altivec(),
                &CompileConfig::default(),
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&base, &other_target));
        assert_eq!(e.stats().entries, 4);
        assert_eq!(e.stats().hits, 0);
    }

    #[test]
    fn uncached_compiles_are_private_and_leave_no_entry() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let cfg = CompileConfig::default();
        let a = e
            .compile_uncached(&k, Flow::NativeVector, &t, &cfg)
            .unwrap();
        let b = e
            .compile_uncached(&k, Flow::NativeVector, &t, &cfg)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(e.is_empty());
    }

    #[test]
    fn batch_matches_serial_compilation() {
        let k1 = saxpy();
        let k2 = parse_kernel(
            "kernel dscal(long n, float a, float x[]) {
               for (long i = 0; i < n; i++) { x[i] = a * x[i]; }
             }",
        )
        .unwrap();
        let targets = [sse(), altivec()];
        let mut jobs = Vec::new();
        for k in [&k1, &k2] {
            for t in &targets {
                for flow in Flow::ALL {
                    jobs.push(CompileJob::new(k, flow, t));
                }
            }
        }

        let parallel_engine = Engine::new();
        let batch = parallel_engine.compile_batch(&jobs);
        let serial_engine = Engine::new();
        for (job, got) in jobs.iter().zip(&batch) {
            let want = serial_engine
                .compile(job.kernel, job.flow, job.target, &job.cfg)
                .unwrap();
            let got = got.as_ref().expect("batch compile failed");
            assert_eq!(
                got.jit.code, want.jit.code,
                "{} {}",
                job.kernel.name, job.flow
            );
            assert_eq!(got.bytecode_bytes, want.bytecode_bytes);
            assert_eq!(got.jit.decoded.len, want.jit.decoded.len);
            assert_eq!(got.jit.decoded.vs, want.jit.decoded.vs);
        }
        // Every distinct tuple cached exactly once.
        assert_eq!(parallel_engine.stats().entries, jobs.len());
    }

    #[test]
    fn batch_duplicates_collapse_to_one_arc() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let jobs: Vec<CompileJob<'_>> = (0..16)
            .map(|_| CompileJob::new(&k, Flow::SplitVectorOpt, &t))
            .collect();
        let results = e.compile_batch(&jobs);
        let first = results[0].as_ref().unwrap();
        for r in &results {
            assert!(Arc::ptr_eq(first, r.as_ref().unwrap()));
        }
        assert_eq!(e.stats().entries, 1);
    }

    #[test]
    fn concurrent_compiles_of_one_key_reconcile() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let cfg = CompileConfig::default();
        let arcs: Vec<Arc<Compiled>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| e.compile(&k, Flow::SplitVectorNaive, &t, &cfg).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for a in &arcs {
            assert!(
                Arc::ptr_eq(&arcs[0], a),
                "all racers must observe one canonical Arc"
            );
        }
        assert_eq!(e.stats().entries, 1);
    }

    #[test]
    fn batch_reports_per_job_errors() {
        // An unvectorizable construct fails in some flows but must not
        // poison the rest of the batch.
        let bad = parse_kernel(
            "kernel div(long n, float x[]) {
               for (long i = 0; i < n; i++) { x[i] = x[i] / x[i]; }
             }",
        );
        let k = saxpy();
        let t = sse();
        let mut jobs = vec![CompileJob::new(&k, Flow::SplitVectorOpt, &t)];
        if let Ok(bad) = &bad {
            jobs.push(CompileJob::new(bad, Flow::SplitVectorOpt, &t));
        }
        let results = Engine::new().compile_batch(&jobs);
        assert!(results[0].is_ok());
        assert_eq!(results.len(), jobs.len());
    }

    #[test]
    fn vla_specialization_shares_one_compiled_artifact() {
        let e = Engine::new();
        let k = saxpy();
        let t = vapor_targets::sve();
        let cfg = CompileConfig::default();
        let (c128, p128) = e
            .specialize(&k, Flow::SplitVectorOpt, &t, &cfg, 128)
            .unwrap();
        let (c512, p512) = e
            .specialize(&k, Flow::SplitVectorOpt, &t, &cfg, 512)
            .unwrap();
        assert!(
            Arc::ptr_eq(&c128, &c512),
            "compile once: every VL shares one artifact"
        );
        assert_eq!(e.stats().misses, 1, "the VL dimension must not recompile");
        assert_eq!(e.stats().entries, 1);
        assert_eq!(e.stats().vl_entries, 2);
        // The execution forms really are width-specialized …
        assert_eq!(p128.vs, 16);
        assert_eq!(p512.vs, 64);
        // … and cached per VL.
        let (_, p512b) = e
            .specialize(&k, Flow::SplitVectorOpt, &t, &cfg, 512)
            .unwrap();
        assert!(Arc::ptr_eq(&p512, &p512b));
        e.clear();
        assert_eq!(e.stats().vl_entries, 0);
    }

    #[test]
    fn vl_cache_is_lru_bounded() {
        // Capacity 2: the least-recently-used specialization is evicted,
        // recently-touched ones survive, and eviction only costs a
        // re-specialization (never a recompile).
        let e = Engine::with_vl_cache_capacity(2);
        let k = saxpy();
        let t = vapor_targets::sve();
        let cfg = CompileConfig::default();
        let flow = Flow::SplitVectorOpt;
        let (_, p128) = e.specialize(&k, flow, &t, &cfg, 128).unwrap();
        let (_, p256) = e.specialize(&k, flow, &t, &cfg, 256).unwrap();
        assert_eq!(e.stats().vl_entries, 2);
        // Touch 128 so 256 becomes the LRU entry, then insert a third.
        let (_, p128b) = e.specialize(&k, flow, &t, &cfg, 128).unwrap();
        assert!(Arc::ptr_eq(&p128, &p128b), "touched entry must still hit");
        let (_, _p512) = e.specialize(&k, flow, &t, &cfg, 512).unwrap();
        assert_eq!(e.stats().vl_entries, 2, "cache must stay bounded");
        assert_eq!(e.stats().exec_evictions, 1, "eviction must be counted");
        // 256 was evicted: a fresh Arc comes back. 128 survived.
        let (_, p256b) = e.specialize(&k, flow, &t, &cfg, 256).unwrap();
        assert!(!Arc::ptr_eq(&p256, &p256b), "LRU entry must be evicted");
        assert_eq!(
            e.stats().misses,
            1,
            "eviction re-specializes; it never recompiles"
        );
    }

    #[test]
    fn vl_specializations_share_the_decode_skeleton() {
        // The re-specialized program must be exactly what a fresh
        // decode would produce (costs, lane clamps, control targets).
        let e = Engine::new();
        let k = saxpy();
        let t = vapor_targets::sve();
        let cfg = CompileConfig::default();
        for vl in [128usize, 512, 2048] {
            let (compiled, prog) = e
                .specialize(&k, Flow::SplitVectorOpt, &t, &cfg, vl)
                .unwrap();
            let exec = t.at_vl(vl);
            let fresh = vapor_targets::DecodedProgram::decode(&compiled.jit.code, &exec).unwrap();
            assert_eq!(prog.vs, fresh.vs);
            assert_eq!(prog.len, fresh.len);
            for (a, b) in prog.steps().iter().zip(fresh.steps()) {
                assert_eq!(a.cost, b.cost, "VL={vl}");
                assert_eq!(a.lanes, b.lanes, "VL={vl}");
            }
        }
    }

    #[test]
    fn fixed_targets_specialize_only_to_their_own_width() {
        let e = Engine::new();
        let k = saxpy();
        let cfg = CompileConfig::default();
        let (c, p) = e
            .specialize(&k, Flow::SplitVectorOpt, &sse(), &cfg, 128)
            .unwrap();
        assert!(Arc::ptr_eq(&p, &c.jit.decoded), "no re-decode, no entry");
        assert_eq!(e.stats().vl_entries, 0);
        let err = e
            .specialize(&k, Flow::SplitVectorOpt, &sse(), &cfg, 256)
            .unwrap_err();
        assert!(err.0.contains("fixed at 128 bits"), "{err}");
    }

    #[test]
    fn illegal_vl_is_rejected_not_panicked() {
        let e = Engine::new();
        let k = saxpy();
        let err = e
            .specialize(
                &k,
                Flow::SplitVectorOpt,
                &vapor_targets::sve(),
                &CompileConfig::default(),
                192,
            )
            .unwrap_err();
        assert!(err.0.contains("illegal runtime VL"), "{err}");
    }

    #[test]
    fn threaded_lowerings_are_cached_per_vl_for_every_target_kind() {
        let e = Engine::new();
        let k = saxpy();
        let cfg = CompileConfig::default();
        // Fixed-width targets cache their threaded form (threading is a
        // real lowering pass, unlike the free fixed-width decode).
        let (_, t128) = e
            .thread(&k, Flow::SplitVectorOpt, &sse(), &cfg, 128)
            .unwrap();
        let (_, t128b) = e
            .thread(&k, Flow::SplitVectorOpt, &sse(), &cfg, 128)
            .unwrap();
        assert!(Arc::ptr_eq(&t128, &t128b), "second thread must hit");
        assert_eq!(e.stats().threaded_entries, 1);
        // VLA targets get one threaded form per VL, each matching its
        // decoded specialization's width.
        let sve = vapor_targets::sve();
        let (_, s256) = e.thread(&k, Flow::SplitVectorOpt, &sve, &cfg, 256).unwrap();
        let (_, s512) = e.thread(&k, Flow::SplitVectorOpt, &sve, &cfg, 512).unwrap();
        assert_eq!(s256.vs, 32);
        assert_eq!(s512.vs, 64);
        assert_eq!(e.stats().threaded_entries, 3);
        assert_eq!(e.stats().misses, 2, "threading never recompiles");
        // Specialize's contract is inherited: mismatched fixed widths
        // and illegal VLs are rejected, not threaded.
        let err = e
            .thread(&k, Flow::SplitVectorOpt, &sse(), &cfg, 256)
            .unwrap_err();
        assert!(err.0.contains("fixed at 128 bits"), "{err}");
        e.clear();
        assert_eq!(e.stats().threaded_entries, 0);
    }

    #[test]
    fn clear_forgets_compilations() {
        let e = Engine::new();
        let k = saxpy();
        let t = sse();
        let cfg = CompileConfig::default();
        let a = e.compile(&k, Flow::NativeScalar, &t, &cfg).unwrap();
        e.clear();
        assert!(e.is_empty());
        let b = e.compile(&k, Flow::NativeScalar, &t, &cfg).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "cleared cache must recompile");
    }

    #[test]
    fn builder_configures_shards_and_reports_them() {
        let e = Engine::builder().shards(3).build().unwrap();
        assert_eq!(e.stats().shards, 3);
        let single = Engine::builder().shards(1).build().unwrap();
        assert_eq!(single.stats().shards, 1);
        // shards(0) is clamped, never a divide-by-zero.
        let clamped = Engine::builder().shards(0).build().unwrap();
        assert_eq!(clamped.stats().shards, 1);
        assert_eq!(Engine::new().stats().shards, DEFAULT_SHARDS);
    }

    #[test]
    fn compile_cache_is_bounded_and_counts_evictions() {
        // One shard of capacity 2: the third distinct tuple evicts the
        // least-recently-used compilation.
        let e = Engine::builder()
            .shards(1)
            .compile_cache_capacity(2)
            .build()
            .unwrap();
        let k = saxpy();
        let t = sse();
        let cfg = CompileConfig::default();
        let a = e.compile(&k, Flow::NativeScalar, &t, &cfg).unwrap();
        e.compile(&k, Flow::SplitScalarNaive, &t, &cfg).unwrap();
        // Touch the first so the second becomes LRU.
        e.compile(&k, Flow::NativeScalar, &t, &cfg).unwrap();
        e.compile(&k, Flow::SplitScalarOpt, &t, &cfg).unwrap();
        let s = e.stats();
        assert_eq!(s.entries, 2, "cache must stay at capacity");
        assert_eq!(s.evictions, 1, "the eviction must be counted");
        // The touched entry survived; the LRU one recompiles.
        let a2 = e.compile(&k, Flow::NativeScalar, &t, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &a2), "recently-used entry must survive");
        e.compile(&k, Flow::SplitScalarNaive, &t, &cfg).unwrap();
        assert_eq!(e.stats().misses, 4, "evicted tuple pays a recompile");
    }

    #[test]
    fn shards_spread_keys() {
        // With the default shard count, a handful of distinct tuples
        // must not all land in one shard (the hash actually spreads).
        let e = Engine::new();
        let k = saxpy();
        let cfg = CompileConfig::default();
        for t in [sse(), altivec(), vapor_targets::sve()] {
            for flow in Flow::ALL {
                e.compile(&k, flow, &t, &cfg).unwrap();
            }
        }
        let populated = e
            .shards
            .iter()
            .filter(|s| !s.map.lock().unwrap().map.is_empty())
            .count();
        assert!(
            populated > 1,
            "18 tuples across {DEFAULT_SHARDS} shards must touch more than one"
        );
        assert_eq!(e.len(), 18);
    }

    fn scratch_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vapor-engine-artifact-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn artifact_tier_serves_warm_engines() {
        let dir = scratch_store("warm");
        let k = saxpy();
        let t = sse();
        let cfg = CompileConfig::default();

        // Cold engine: artifact miss, full compile, write-back.
        let cold = Engine::builder().artifact_dir(&dir).build().unwrap();
        let a = cold.compile(&k, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        let s = cold.stats();
        assert_eq!((s.artifact_misses, s.artifact_writes), (1, 1));
        assert_eq!(s.artifact_hits, 0);
        assert_eq!(cold.artifact_store().unwrap().len(), 1);

        // Warm engine (fresh process simulation): in-memory miss, but
        // the on-disk artifact skips the offline stage — and produces
        // the same machine code.
        let warm = Engine::builder().artifact_dir(&dir).build().unwrap();
        let b = warm.compile(&k, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        let s = warm.stats();
        assert_eq!((s.artifact_hits, s.artifact_misses), (1, 0));
        assert_eq!(s.artifact_writes, 0, "a hit must not rewrite");
        assert_eq!(s.misses, 1, "still an in-memory miss");
        assert_eq!(a.jit.code, b.jit.code, "artifact path must be equivalent");
        assert_eq!(a.bytecode_bytes, b.bytecode_bytes);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_artifacts_are_rejected_and_recompiled() {
        let dir = scratch_store("reject");
        let k = saxpy();
        let t = sse();
        let cfg = CompileConfig::default();
        let cold = Engine::builder().artifact_dir(&dir).build().unwrap();
        let a = cold.compile(&k, Flow::SplitVectorOpt, &t, &cfg).unwrap();

        // Flip a payload bit in the one stored artifact.
        let store = cold.artifact_store().unwrap();
        let entry = std::fs::read_dir(store.dir())
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.path().extension().is_some_and(|x| x == "vsart"))
            .expect("one artifact on disk");
        let mut bytes = std::fs::read(entry.path()).unwrap();
        let mid = bytes.len() - 20;
        bytes[mid] ^= 0x01;
        std::fs::write(entry.path(), &bytes).unwrap();

        // A warm engine rejects it, recompiles from source, and heals
        // the store with a fresh write.
        let warm = Engine::builder().artifact_dir(&dir).build().unwrap();
        let b = warm.compile(&k, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        let s = warm.stats();
        assert_eq!(s.artifact_rejects, 1, "corruption must be rejected");
        assert_eq!(s.artifact_hits, 0);
        assert_eq!(s.artifact_writes, 1, "the store must be healed");
        assert_eq!(a.jit.code, b.jit.code);
        // And the healed artifact now hits.
        let third = Engine::builder().artifact_dir(&dir).build().unwrap();
        third.compile(&k, Flow::SplitVectorOpt, &t, &cfg).unwrap();
        assert_eq!(third.stats().artifact_hits, 1);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

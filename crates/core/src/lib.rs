//! # vapor-core — the split-vectorization pipeline
//!
//! The public face of the Vapor SIMD reproduction: the compilation flows
//! of the paper's Figure 4 ([`Flow`]), end-to-end compilation
//! ([`compile`]) from mini-C kernels through the offline vectorizer, the
//! portable encoded bytecode, and the online compilers, down to virtual
//! SIMD machine code; plus the execution harness ([`run()`]) and the
//! reference oracle ([`reference()`]).
//!
//! ```
//! use vapor_core::{compile, run, reference, arrays_match, Flow, CompileConfig, AllocPolicy};
//! use vapor_ir::{ArrayData, Bindings, ScalarTy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = vapor_frontend::parse_kernel(
//!     "kernel dscal(long n, float a, float x[]) {
//!        for (long i = 0; i < n; i++) { x[i] = a * x[i]; }
//!      }")?;
//! let target = vapor_targets::sse();
//!
//! let mut env = Bindings::new();
//! env.set_int("n", 16)
//!    .set_float("a", 2.0)
//!    .set_array("x", ArrayData::from_floats(ScalarTy::F32, &[1.0; 16]));
//!
//! let compiled = compile(&kernel, Flow::SplitVectorOpt, &target, &CompileConfig::default())?;
//! let result = run(&target, &compiled, &env, AllocPolicy::Aligned)?;
//! let oracle = reference(&kernel, &env)?;
//! arrays_match(oracle.array("x").unwrap(), result.out.array("x").unwrap(), 1e-6)
//!     .map_err(vapor_core::PipelineError)?;
//! # Ok(())
//! # }
//! ```

pub mod pipeline;
pub mod run;

pub use pipeline::{compile, offline_compile, Compiled, CompileConfig, Flow, PipelineError};
pub use run::{arrays_match, reference, run, AllocPolicy, RunResult};

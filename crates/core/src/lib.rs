//! # vapor-core — the split-vectorization pipeline
//!
//! The public face of the Vapor SIMD reproduction: the compilation flows
//! of the paper's Figure 4 ([`Flow`]), the persistent compilation service
//! ([`Engine`]) that caches end-to-end compilations from mini-C kernels
//! through the offline vectorizer, the portable encoded bytecode, and the
//! online compilers, down to pre-decoded virtual SIMD machine code; plus
//! the unified execution API ([`ExecRequest`] / [`Engine::execute`]) and
//! the reference oracle ([`reference()`]).
//!
//! The engine is server-shaped: its compile cache is sharded and bounded,
//! execution-memory arenas are pooled across requests, and an optional
//! persistent artifact tier ([`ArtifactStore`]) shares offline compiles
//! across processes. The one-shot [`compile`] function remains for the
//! pipeline's own tests; everything else — examples, experiment drivers,
//! services — routes through an [`Engine`] so repeated (kernel, flow,
//! target, config) tuples are compiled once and shared.
//!
//! ```
//! use vapor_core::{arrays_match, reference, Engine, ExecRequest};
//! use vapor_ir::{ArrayData, Bindings, ScalarTy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = vapor_frontend::parse_kernel(
//!     "kernel dscal(long n, float a, float x[]) {
//!        for (long i = 0; i < n; i++) { x[i] = a * x[i]; }
//!      }")?;
//! let target = vapor_targets::sse();
//!
//! let mut env = Bindings::new();
//! env.set_int("n", 16)
//!    .set_float("a", 2.0)
//!    .set_array("x", ArrayData::from_floats(ScalarTy::F32, &[1.0; 16]));
//!
//! let engine = Engine::new();
//! let result = engine.execute(&ExecRequest::new(&kernel, &target, &env))?;
//! let oracle = reference(&kernel, &env)?;
//! arrays_match(oracle.array("x").unwrap(), result.out.array("x").unwrap(), 1e-6)
//!     .map_err(vapor_core::PipelineError)?;
//! assert_eq!(engine.stats().misses, 1);
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod engine;
pub mod exec;
pub mod pipeline;
pub mod run;

pub use artifact::{ArtifactError, ArtifactStore};
pub use engine::{
    CompileJob, Engine, EngineBuilder, EngineStats, ARENA_POOL_CAPACITY, COMPILE_CACHE_CAPACITY,
    DEFAULT_SHARDS, VL_CACHE_CAPACITY,
};
pub use exec::{ExecError, ExecOutcome, ExecRequest, Tier};
pub use pipeline::{
    compile, offline_compile, online_compile, CompileConfig, Compiled, Flow, PipelineError,
};
pub use run::{
    arrays_match, reference, run, run_baseline, run_specialized, run_specialized_wide,
    run_threaded, run_unfused, run_wide, AllocPolicy, RunResult,
};

//! # vapor-core — the split-vectorization pipeline
//!
//! The public face of the Vapor SIMD reproduction: the compilation flows
//! of the paper's Figure 4 ([`Flow`]), the persistent compilation service
//! ([`Engine`]) that caches end-to-end compilations from mini-C kernels
//! through the offline vectorizer, the portable encoded bytecode, and the
//! online compilers, down to pre-decoded virtual SIMD machine code; plus
//! the execution harness ([`run()`]) and the reference oracle
//! ([`reference()`]).
//!
//! The one-shot [`compile`] function remains for the pipeline's own
//! tests; everything else — examples, experiment drivers, services —
//! routes compilations through an [`Engine`] so repeated (kernel, flow,
//! target, config) tuples are compiled once and shared.
//!
//! ```
//! use vapor_core::{run, reference, arrays_match, Engine, Flow, CompileConfig, AllocPolicy};
//! use vapor_ir::{ArrayData, Bindings, ScalarTy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = vapor_frontend::parse_kernel(
//!     "kernel dscal(long n, float a, float x[]) {
//!        for (long i = 0; i < n; i++) { x[i] = a * x[i]; }
//!      }")?;
//! let target = vapor_targets::sse();
//!
//! let mut env = Bindings::new();
//! env.set_int("n", 16)
//!    .set_float("a", 2.0)
//!    .set_array("x", ArrayData::from_floats(ScalarTy::F32, &[1.0; 16]));
//!
//! let engine = Engine::new();
//! let compiled = engine.compile(&kernel, Flow::SplitVectorOpt, &target, &CompileConfig::default())?;
//! let result = run(&target, &compiled, &env, AllocPolicy::Aligned)?;
//! let oracle = reference(&kernel, &env)?;
//! arrays_match(oracle.array("x").unwrap(), result.out.array("x").unwrap(), 1e-6)
//!     .map_err(vapor_core::PipelineError)?;
//! assert_eq!(engine.stats().misses, 1);
//! # Ok(())
//! # }
//! ```

pub mod engine;
pub mod pipeline;
pub mod run;

pub use engine::{CompileJob, Engine, EngineStats, VL_CACHE_CAPACITY};
pub use pipeline::{compile, offline_compile, CompileConfig, Compiled, Flow, PipelineError};
pub use run::{
    arrays_match, reference, run, run_baseline, run_specialized, run_specialized_wide,
    run_threaded, run_unfused, run_wide, AllocPolicy, RunResult,
};

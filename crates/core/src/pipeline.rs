//! The compilation flows of the paper's Figure 4, end to end.
//!
//! * **Split flows** (the contribution): offline split-vectorization →
//!   *encoded* portable bytecode → decode (the interoperability boundary)
//!   → online compilation by the naive (Mono-class) or optimizing
//!   (gcc4cli-class) pipeline.
//! * **Native flows** (the baseline): target-aware vectorization →
//!   native code generator, and the plain scalar variant.

use std::fmt;
use std::time::{Duration, Instant};

use vapor_bytecode::{decode_module, encode_module, BcFunction, BcModule};
use vapor_ir::Kernel;
use vapor_jit::{CompiledKernel, JitOptions, Pipeline};
use vapor_targets::TargetDesc;
use vapor_vectorizer::{emit_scalar_function, vectorize, LoopReport, VectorizeOptions};

/// A compilation flow selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flow {
    /// Split vectorized bytecode → naive JIT (paper label A).
    SplitVectorNaive,
    /// Split scalar bytecode → naive JIT (paper label C).
    SplitScalarNaive,
    /// Split vectorized bytecode → optimizing online compiler (label D).
    SplitVectorOpt,
    /// Split scalar bytecode → optimizing online compiler.
    SplitScalarOpt,
    /// Target-aware vectorization → native code generator (label E).
    NativeVector,
    /// Plain scalar compilation by the native code generator (label F).
    NativeScalar,
}

impl Flow {
    /// All flows.
    pub const ALL: [Flow; 6] = [
        Flow::SplitVectorNaive,
        Flow::SplitScalarNaive,
        Flow::SplitVectorOpt,
        Flow::SplitScalarOpt,
        Flow::NativeVector,
        Flow::NativeScalar,
    ];

    /// Whether this flow runs the offline vectorizer.
    pub fn vectorized(self) -> bool {
        matches!(
            self,
            Flow::SplitVectorNaive | Flow::SplitVectorOpt | Flow::NativeVector
        )
    }

    /// The online pipeline used.
    pub fn pipeline(self) -> Pipeline {
        match self {
            Flow::SplitVectorNaive | Flow::SplitScalarNaive => Pipeline::NaiveJit,
            Flow::SplitVectorOpt | Flow::SplitScalarOpt => Pipeline::OptJit,
            Flow::NativeVector | Flow::NativeScalar => Pipeline::Native,
        }
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Flow::SplitVectorNaive => "split-vector/naive-jit",
            Flow::SplitScalarNaive => "split-scalar/naive-jit",
            Flow::SplitVectorOpt => "split-vector/opt-online",
            Flow::SplitScalarOpt => "split-scalar/opt-online",
            Flow::NativeVector => "native-vector",
            Flow::NativeScalar => "native-scalar",
        };
        f.write_str(s)
    }
}

/// Error of any pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineError(pub String);

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline error: {}", self.0)
    }
}

impl std::error::Error for PipelineError {}

/// Compilation knobs beyond the flow itself.
///
/// `Eq + Hash` because the engine's compilation cache keys on it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct CompileConfig {
    /// Disable the offline alignment optimizations/hints (§V-A(b)
    /// ablation).
    pub no_alignment_opts: bool,
    /// Disable the offline optimized-realignment scheme (§III-A design
    /// choice ablation).
    pub no_realign_reuse: bool,
    /// Disable Allen–Kennedy loop distribution (recurrence loops are
    /// rejected whole instead of split per dependence SCC).
    pub no_distribution: bool,
}

/// A fully compiled kernel plus the artifacts the experiments measure.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Kernel name.
    pub name: String,
    /// The bytecode consumed by the online stage (post interop boundary
    /// for split flows).
    pub func: BcFunction,
    /// Machine code + binding contract.
    pub jit: CompiledKernel,
    /// Encoded bytecode size in bytes (split flows measure this).
    pub bytecode_bytes: usize,
    /// Wall-clock time of the online stage only (the "JIT compile time"
    /// of §V-A(c)).
    pub online_time: Duration,
    /// Offline vectorization reports (empty for scalar flows).
    pub reports: Vec<LoopReport>,
}

/// Produce the offline artifact of a flow: the bytecode module.
///
/// # Errors
/// Propagates verifier failures (offline-stage bugs).
pub fn offline_compile(
    kernel: &Kernel,
    flow: Flow,
    target: &TargetDesc,
    cfg: &CompileConfig,
) -> Result<(BcModule, Vec<LoopReport>), PipelineError> {
    let (func, reports) = if flow.vectorized() {
        let opts = VectorizeOptions {
            native: matches!(flow, Flow::NativeVector).then(|| target.clone()),
            no_alignment_opts: cfg.no_alignment_opts,
            no_realign_reuse: cfg.no_realign_reuse,
            no_distribution: cfg.no_distribution,
        };
        let r = vectorize(kernel, &opts);
        (r.func, r.reports)
    } else {
        (emit_scalar_function(kernel), Vec::new())
    };
    vapor_bytecode::verify_function(&func)
        .map_err(|e| PipelineError(format!("{}: {e}", kernel.name)))?;
    Ok((BcModule::single(func), reports))
}

/// Compile a kernel end to end for one flow on one target.
///
/// Split flows round-trip through the binary encoding — the actual
/// interoperability boundary between the offline and online toolchains.
///
/// # Errors
/// Returns a [`PipelineError`] if any stage rejects the kernel.
pub fn compile(
    kernel: &Kernel,
    flow: Flow,
    target: &TargetDesc,
    cfg: &CompileConfig,
) -> Result<Compiled, PipelineError> {
    compile_encoded(kernel, flow, target, cfg).map(|(c, _)| c)
}

/// [`compile`], additionally returning the encoded offline artifact —
/// the exact bytes the engine's persistent artifact tier stores on disk
/// so a later process can skip the offline stage entirely (see
/// [`online_compile`]).
///
/// # Errors
/// Returns a [`PipelineError`] if any stage rejects the kernel.
pub fn compile_encoded(
    kernel: &Kernel,
    flow: Flow,
    target: &TargetDesc,
    cfg: &CompileConfig,
) -> Result<(Compiled, Vec<u8>), PipelineError> {
    let (module, reports) = offline_compile(kernel, flow, target, cfg)?;
    let bytes = encode_module(&module);
    let bytecode_bytes = bytes.len();
    let module = if flow.pipeline() == Pipeline::Native {
        module // native flows keep the in-memory form
    } else {
        decode_module(&bytes).map_err(|e| PipelineError(e.to_string()))?
    };
    let compiled = online_stage(kernel.name.clone(), module, bytecode_bytes, flow, target)?;
    Ok((
        Compiled {
            reports,
            ..compiled
        },
        bytes,
    ))
}

/// Run *only* the online stage over an already-encoded offline artifact
/// — the warm-process path of the persistent artifact tier: the
/// expensive offline vectorization was paid by an earlier process, this
/// one just decodes the portable bytecode and JIT-compiles it. The
/// result is execution-equivalent to a fresh [`compile`] of the same
/// tuple (bit-identical machine state and `vm_cycles`); only the
/// offline [`Compiled::reports`] are absent.
///
/// # Errors
/// Returns a [`PipelineError`] when the bytes do not decode (a corrupt
/// or truncated artifact) or the online stage rejects the function.
pub fn online_compile(
    name: &str,
    bytes: &[u8],
    flow: Flow,
    target: &TargetDesc,
) -> Result<Compiled, PipelineError> {
    let module = decode_module(bytes).map_err(|e| PipelineError(e.to_string()))?;
    online_stage(name.to_owned(), module, bytes.len(), flow, target)
}

/// The shared online stage: JIT-compile a decoded module's single
/// function for `target` under `flow`'s pipeline.
fn online_stage(
    name: String,
    module: BcModule,
    bytecode_bytes: usize,
    flow: Flow,
    target: &TargetDesc,
) -> Result<Compiled, PipelineError> {
    let func = module
        .funcs
        .into_iter()
        .next()
        .ok_or_else(|| PipelineError(format!("{name}: empty bytecode module")))?;

    let opts = JitOptions::new(flow.pipeline());
    let start = Instant::now();
    let jit = vapor_jit::compile(&func, target, &opts)
        .map_err(|e| PipelineError(format!("{flow}: {e}")))?;
    let online_time = start.elapsed();

    Ok(Compiled {
        name,
        func,
        jit,
        bytecode_bytes,
        online_time,
        reports: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapor_frontend::parse_kernel;
    use vapor_targets::sse;

    fn saxpy() -> Kernel {
        parse_kernel(
            "kernel saxpy(long n, float a, float x[], float y[]) {
               for (long i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
             }",
        )
        .unwrap()
    }

    #[test]
    fn all_flows_compile_saxpy_on_sse() {
        let k = saxpy();
        let t = sse();
        for flow in Flow::ALL {
            let c = compile(&k, flow, &t, &CompileConfig::default()).unwrap_or_else(|e| {
                panic!("{flow}: {e}");
            });
            assert!(!c.jit.code.is_empty(), "{flow} produced empty code");
            if flow.vectorized() {
                assert!(
                    c.reports.iter().any(|r| r.vectorized),
                    "{flow}: saxpy should vectorize; reports: {:?}",
                    c.reports
                );
            }
        }
    }

    #[test]
    fn split_bytecode_is_larger_than_scalar() {
        let k = saxpy();
        let t = sse();
        let vec = compile(&k, Flow::SplitVectorOpt, &t, &CompileConfig::default()).unwrap();
        let sca = compile(&k, Flow::SplitScalarOpt, &t, &CompileConfig::default()).unwrap();
        assert!(
            vec.bytecode_bytes > 2 * sca.bytecode_bytes,
            "vectorized bytecode should be much larger: {} vs {}",
            vec.bytecode_bytes,
            sca.bytecode_bytes
        );
    }
}

//! The persistent artifact tier: an on-disk, content-addressed store of
//! encoded offline artifacts.
//!
//! The paper's split model compiles *once* offline and serves many
//! online consumers; the in-memory engine cache realizes that within one
//! process. This tier extends it across processes and restarts: the
//! encoded bytecode (the exact [`vapor_bytecode::encode_module`] bytes —
//! the interoperability boundary artifact) is written under a filename
//! derived from the compile key's content hash, and a warm process that
//! misses its in-memory cache loads the artifact and runs only the
//! online stage ([`crate::pipeline::online_compile`]) instead of the
//! whole pipeline. A simulated fleet pointing many engines at one store
//! directory shares offline compiles the same way.
//!
//! Every artifact is framed (magic, version, length) and checksummed
//! (128-bit FNV-1a over the payload), so a truncated or bit-flipped
//! file is *rejected* — the engine falls back to a full compile and
//! rewrites the entry — rather than decoded into a wrong program.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic bytes at the start of every stored artifact (`"VART"`).
pub const ARTIFACT_MAGIC: [u8; 4] = *b"VART";
/// Artifact container format version.
pub const ARTIFACT_VERSION: u8 = 1;
/// Filename extension of stored artifacts.
pub const ARTIFACT_EXT: &str = "vsart";

/// 128-bit FNV-1a (collision odds are negligible at fleet scale; shared
/// by the engine's cache keys and the artifact checksums).
pub(crate) fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Why a present artifact was rejected (an absent artifact is not an
/// error — it is a plain miss).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactError(pub String);

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact rejected: {}", self.0)
    }
}

impl std::error::Error for ArtifactError {}

/// An on-disk store of encoded offline artifacts, keyed by the engine's
/// 128-bit compile-key hash. Cheap to share (`&ArtifactStore` is `Send +
/// Sync`); concurrent writers of the same key are safe (writes go
/// through a per-process temp file + atomic rename, and every writer
/// writes identical bytes for a given key by construction).
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Open (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    /// Propagates the I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ArtifactStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of an artifact id (present or not).
    pub fn path_for(&self, id: u128) -> PathBuf {
        self.dir.join(format!("{id:032x}.{ARTIFACT_EXT}"))
    }

    /// Persist `payload` (encoded bytecode) under `id`. Best-effort
    /// atomic: the bytes are written to a per-process temp file and
    /// renamed into place, so a reader never observes a half-written
    /// artifact under the final name.
    ///
    /// # Errors
    /// Propagates I/O errors (callers usually treat them as non-fatal:
    /// losing an artifact only costs a future recompile).
    pub fn save(&self, id: u128, payload: &[u8]) -> io::Result<()> {
        let tmp = self
            .dir
            .join(format!("{id:032x}.tmp.{}", std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&ARTIFACT_MAGIC)?;
            f.write_all(&[ARTIFACT_VERSION])?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(payload)?;
            f.write_all(&fnv1a_128(payload).to_le_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path_for(id))
    }

    /// Load the payload stored under `id`.
    ///
    /// Returns `Ok(None)` when no artifact exists — an ordinary miss.
    ///
    /// # Errors
    /// Returns [`ArtifactError`] when a file *is* present but fails
    /// validation (bad magic/version, truncation, checksum mismatch):
    /// the caller must treat the artifact as unusable, not as data.
    pub fn load(&self, id: u128) -> Result<Option<Vec<u8>>, ArtifactError> {
        let path = self.path_for(id);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ArtifactError(format!("{}: {e}", path.display()))),
        };
        let fail = |msg: &str| Err(ArtifactError(format!("{}: {msg}", path.display())));
        let header = 4 + 1 + 8;
        if bytes.len() < header + 16 {
            return fail("truncated header");
        }
        if bytes[..4] != ARTIFACT_MAGIC {
            return fail("bad magic");
        }
        if bytes[4] != ARTIFACT_VERSION {
            return fail("unsupported version");
        }
        let len = u64::from_le_bytes(bytes[5..13].try_into().expect("8 bytes")) as usize;
        if bytes.len() != header + len + 16 {
            return fail("length mismatch (truncated or padded)");
        }
        let payload = &bytes[header..header + len];
        let want = u128::from_le_bytes(bytes[header + len..].try_into().expect("16 bytes"));
        if fnv1a_128(payload) != want {
            return fail("checksum mismatch");
        }
        Ok(Some(payload.to_vec()))
    }

    /// Number of artifacts currently stored.
    ///
    /// # Panics
    /// Panics if the store directory cannot be read.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .expect("artifact store directory readable")
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == ARTIFACT_EXT))
            .count()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vapor-artifact-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips() {
        let dir = scratch("roundtrip");
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let payload = b"portable bytecode bytes".to_vec();
        store.save(7, &payload).unwrap();
        assert_eq!(store.load(7).unwrap(), Some(payload));
        assert_eq!(store.load(8).unwrap(), None, "absent id is a plain miss");
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_rejected_not_returned() {
        let dir = scratch("corrupt");
        let store = ArtifactStore::open(&dir).unwrap();
        store.save(1, b"payload one").unwrap();
        let path = store.path_for(1);

        // Bit flip inside the payload: checksum must catch it.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() - 20; // inside payload, before the checksum
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = store.load(1).unwrap_err();
        assert!(err.0.contains("checksum"), "{err}");

        // Truncation: framing must catch it.
        store.save(1, b"payload one").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = store.load(1).unwrap_err();
        assert!(err.0.contains("length mismatch"), "{err}");

        // Wrong magic: rejected before anything else is trusted.
        fs::write(&path, b"NOPE").unwrap();
        let err = store.load(1).unwrap_err();
        assert!(err.0.contains("truncated header"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Iterative global dead-code elimination.
//!
//! Removes pure definitions whose results are never read anywhere in the
//! function — in particular the address arithmetic feeding `get_rt` /
//! `align_load` when the target resolves realignment implicitly (the
//! paper's "no code is generated for idioms get_rt and align_load").
//!
//! Liveness is *global* (a register used anywhere keeps every definition
//! of it), which is trivially sound in the presence of loops; the
//! precision is enough to clean up the straight-line idiom chains the
//! lowering produces.

use std::collections::HashSet;

use vapor_targets::{AddrMode, MCode, MInst, SReg, ShiftSrc, VReg};

fn note_addr(a: &AddrMode, s: &mut HashSet<SReg>) {
    s.insert(a.base);
    if let Some(i) = a.idx {
        s.insert(i);
    }
}

fn uses(inst: &MInst, s: &mut HashSet<SReg>, v: &mut HashSet<VReg>) {
    match inst {
        MInst::Label(_) | MInst::Jump(_) | MInst::MovImmI { .. } | MInst::MovImmF { .. } => {}
        MInst::Branch { a, b, .. } => {
            s.insert(*a);
            s.insert(*b);
        }
        MInst::BranchImm { a, .. } => {
            s.insert(*a);
        }
        MInst::MovS { src, .. } => {
            s.insert(*src);
        }
        MInst::SBin { a, b, .. } | MInst::FpuBin { a, b, .. } => {
            s.insert(*a);
            s.insert(*b);
        }
        MInst::SBinImm { a, .. } | MInst::SUn { a, .. } | MInst::SCvt { a, .. } => {
            s.insert(*a);
        }
        MInst::LoadS { addr, .. } => note_addr(addr, s),
        MInst::StoreS { src, addr, .. } => {
            s.insert(*src);
            note_addr(addr, s);
        }
        MInst::LoadV { addr, .. } | MInst::LoadVFloor { addr, .. } => note_addr(addr, s),
        MInst::StoreV { src, addr, .. } => {
            v.insert(*src);
            note_addr(addr, s);
        }
        MInst::Splat { src, .. } => {
            s.insert(*src);
        }
        MInst::Iota { start, inc, .. } => {
            s.insert(*start);
            s.insert(*inc);
        }
        MInst::SetLane { dst, src, .. } => {
            // Lane insertion reads the rest of the destination.
            v.insert(*dst);
            s.insert(*src);
        }
        MInst::GetLane { src, .. } => {
            v.insert(*src);
        }
        MInst::VBin { a, b, .. } => {
            v.insert(*a);
            v.insert(*b);
        }
        MInst::VUn { a, .. } => {
            v.insert(*a);
        }
        MInst::VShift { a, amt, .. } => {
            v.insert(*a);
            match amt {
                ShiftSrc::Reg(r) => {
                    s.insert(*r);
                }
                ShiftSrc::PerLane(r) => {
                    v.insert(*r);
                }
                ShiftSrc::Imm(_) => {}
            }
        }
        MInst::VWidenMul { a, b, .. } => {
            v.insert(*a);
            v.insert(*b);
        }
        MInst::VDotAcc { a, b, acc, .. } => {
            v.insert(*a);
            v.insert(*b);
            v.insert(*acc);
        }
        MInst::VPack { a, b, .. } => {
            v.insert(*a);
            v.insert(*b);
        }
        MInst::VUnpack { a, .. } | MInst::VCvt { a, .. } => {
            v.insert(*a);
        }
        MInst::VInterleave { a, b, .. } => {
            v.insert(*a);
            v.insert(*b);
        }
        MInst::VExtractStride { srcs, .. } => {
            v.extend(srcs.iter().copied());
        }
        MInst::VPermCtrl { addr, .. } => note_addr(addr, s),
        MInst::VPerm { a, b, ctrl, .. } => {
            v.insert(*a);
            v.insert(*b);
            v.insert(*ctrl);
        }
        MInst::VReduce { src, .. } => {
            v.insert(*src);
        }
        MInst::MovV { src, .. } => {
            v.insert(*src);
        }
        MInst::SpillLd { .. } => {}
        MInst::SpillSt { src, .. } => {
            s.insert(*src);
        }
        MInst::VHelper { a, b, .. } => {
            v.insert(*a);
            if let Some(b) = b {
                v.insert(*b);
            }
        }
        MInst::SetVl { avl, .. } => {
            s.insert(*avl);
        }
        MInst::LoadVl { addr, .. } => note_addr(addr, s),
        MInst::StoreVl { src, addr, .. } => {
            v.insert(*src);
            note_addr(addr, s);
        }
        // Merging predication reads the destination's inactive lanes.
        MInst::VBinVl { dst, a, b, .. } => {
            v.insert(*dst);
            v.insert(*a);
            v.insert(*b);
        }
        MInst::VUnVl { dst, a, .. } => {
            v.insert(*dst);
            v.insert(*a);
        }
    }
}

/// Pure scalar/vector definition removable when its destination is dead.
fn removable_def(inst: &MInst) -> Option<(Option<SReg>, Option<VReg>)> {
    match inst {
        MInst::MovImmI { dst, .. }
        | MInst::MovImmF { dst, .. }
        | MInst::MovS { dst, .. }
        | MInst::SBin { dst, .. }
        | MInst::SBinImm { dst, .. }
        | MInst::SUn { dst, .. }
        | MInst::SCvt { dst, .. }
        | MInst::LoadS { dst, .. } => Some((Some(*dst), None)),
        MInst::LoadV { dst, .. }
        | MInst::LoadVl { dst, .. }
        | MInst::LoadVFloor { dst, .. }
        | MInst::Splat { dst, .. }
        | MInst::Iota { dst, .. }
        | MInst::VPermCtrl { dst, .. }
        | MInst::MovV { dst, .. } => Some((None, Some(*dst))),
        _ => None,
    }
}

/// Remove dead pure definitions until a fixed point.
pub fn run(code: &mut MCode) {
    loop {
        let mut used_s = HashSet::new();
        let mut used_v = HashSet::new();
        for inst in &code.insts {
            uses(inst, &mut used_s, &mut used_v);
        }
        let before = code.insts.len();
        code.insts.retain(|inst| match removable_def(inst) {
            Some((Some(s), _)) => used_s.contains(&s),
            Some((_, Some(v))) => used_v.contains(&v),
            _ => true,
        });
        if code.insts.len() == before {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapor_ir::{BinOp, ScalarTy};
    use vapor_targets::MemAlign;

    #[test]
    fn removes_dead_chains() {
        let mut code = MCode {
            insts: vec![
                // dead chain: r1 = r0*4; v0 = floor-load [r1]  (nothing uses v0)
                MInst::SBinImm {
                    op: BinOp::Mul,
                    ty: ScalarTy::I64,
                    dst: SReg(1),
                    a: SReg(0),
                    imm: 4,
                },
                MInst::LoadVFloor {
                    dst: VReg(0),
                    addr: AddrMode::base_disp(SReg(1), 0),
                },
                // live: store of v1 loaded from [r0]
                MInst::LoadV {
                    dst: VReg(1),
                    addr: AddrMode::base_disp(SReg(0), 0),
                    align: MemAlign::Unaligned,
                },
                MInst::StoreV {
                    src: VReg(1),
                    addr: AddrMode::base_disp(SReg(0), 0),
                    align: MemAlign::Unaligned,
                },
            ],
            n_sregs: 2,
            n_vregs: 2,
            note: "t".into(),
        };
        run(&mut code);
        assert_eq!(code.insts.len(), 2);
    }

    #[test]
    fn keeps_loop_carried_copies() {
        // v0 used by store; MovV writing v0 must stay.
        let mut code = MCode {
            insts: vec![
                MInst::MovV {
                    dst: VReg(0),
                    src: VReg(1),
                },
                MInst::StoreV {
                    src: VReg(0),
                    addr: AddrMode::base_disp(SReg(0), 0),
                    align: MemAlign::Unaligned,
                },
            ],
            n_sregs: 1,
            n_vregs: 2,
            note: "t".into(),
        };
        run(&mut code);
        assert_eq!(code.insts.len(), 2);
    }
}

//! Bytecode → machine-code lowering: the heart of the online stage.
//!
//! One linear pass over the structured bytecode (plus a cheap planning
//! pre-pass), exactly the complexity budget §III-A demands of the JIT:
//! no loop-level or data-access analysis happens here — every decision
//! is driven by the idioms and hints the offline stage encoded.

use std::collections::HashMap;
use std::sync::Arc;

use vapor_bytecode::{
    Addr, BcFunction, BcStmt, GuardCond, LoopKind, Op, Operand, Reg, ShiftAmt, Step,
};
use vapor_ir::{eval_bin, eval_cast, BinOp, ScalarTy, Value};
use vapor_targets::{
    AddrMode, Cond, CvtDir, DecodedProgram, Half, HelperOp, Label, MCode, MInst, MemAlign,
    ReduceOp, SReg, ShiftSrc, TargetDesc, VReg,
};

use crate::options::JitOptions;
use crate::plan::{fold_guard, groups_of, known_misalignment, plan_group, Fold, GroupMode};

/// Compilation error of the online stage.
#[derive(Debug, Clone, PartialEq)]
pub struct JitError(pub String);

impl std::fmt::Display for JitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jit error: {}", self.0)
    }
}

impl std::error::Error for JitError {}

/// Statistics of one compilation (reported by experiments and tests).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompileStats {
    /// Executable instructions emitted.
    pub insts: usize,
    /// Guards folded at compile time.
    pub guards_folded: usize,
    /// Guards lowered to runtime tests.
    pub guards_runtime: usize,
    /// Loop groups lowered to vector code.
    pub groups_vector: usize,
    /// Loop groups direct-scalarized (Figure 3b).
    pub groups_direct_scalar: usize,
    /// Loop groups scalarized through the tail loop.
    pub groups_tail_scalar: usize,
    /// Library-helper calls emitted (the NEON fallback path).
    pub helper_calls: usize,
}

/// A compiled kernel: machine code plus the register binding contract.
///
/// The caller (runtime harness) must place scalar arguments in
/// `param_regs`, array base addresses in `array_base_regs`, and array
/// lengths **in bytes** in `array_len_regs` before running the code.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Machine code (symbolic, printable form).
    pub code: MCode,
    /// The pre-decoded executable form of `code` for the compile target:
    /// labels resolved to indices, per-instruction costs pre-computed.
    /// Shared (`Arc`) so cloning a compiled kernel — e.g. handing cached
    /// compilations to many executors — does not re-decode.
    pub decoded: Arc<DecodedProgram>,
    /// Register holding each scalar parameter.
    pub param_regs: Vec<SReg>,
    /// Register holding each array's base address.
    pub array_base_regs: Vec<SReg>,
    /// Register holding each array's length in bytes.
    pub array_len_regs: Vec<SReg>,
    /// Compilation statistics.
    pub stats: CompileStats,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Bind {
    S(SReg),
    V(VReg),
    ImmI(i64),
    ImmF(f64),
    Dead,
}

struct Lower<'a> {
    f: &'a BcFunction,
    t: &'a TargetDesc,
    opts: &'a JitOptions,
    insts: Vec<MInst>,
    next_s: u32,
    next_v: u32,
    next_l: u32,
    bind: HashMap<Reg, Bind>,
    def_count: HashMap<Reg, u32>,
    array_base: Vec<SReg>,
    array_len: Vec<SReg>,
    group_mode: HashMap<u32, GroupMode>,
    /// Realign helper registers (lo/hi/rt of explicit realignment) that
    /// must actually be materialized on this target.
    realign_needed: std::collections::HashSet<Reg>,
    /// Precomputed runtime-guard flags (Opt pipelines), consumed in
    /// traversal order.
    guard_flags: Vec<SReg>,
    guard_cursor: usize,
    /// Pointer-bump bindings: (induction bytecode reg, array) → pointer.
    bump: HashMap<(Reg, u32), SReg>,
    stats: CompileStats,
}

impl<'a> Lower<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, JitError> {
        Err(JitError(format!("{}: {}", self.f.name, msg.into())))
    }

    fn fresh_s(&mut self) -> SReg {
        let r = SReg(self.next_s);
        self.next_s += 1;
        r
    }

    fn fresh_v(&mut self) -> VReg {
        let r = VReg(self.next_v);
        self.next_v += 1;
        r
    }

    fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_l);
        self.next_l += 1;
        l
    }

    fn emit(&mut self, i: MInst) {
        self.insts.push(i);
    }

    fn bind_of(&self, r: Reg) -> Bind {
        self.bind.get(&r).copied().unwrap_or(Bind::Dead)
    }

    fn multi_def(&self, r: Reg) -> bool {
        self.def_count.get(&r).copied().unwrap_or(0) > 1
    }

    /// Binding of an operand (registers resolve through the bind map).
    fn operand_bind(&mut self, o: &Operand) -> Result<Bind, JitError> {
        Ok(match o {
            Operand::Reg(r) => match self.bind_of(*r) {
                Bind::Dead => return self.err(format!("use of dead register {r}")),
                b => b,
            },
            Operand::ConstI(v) => Bind::ImmI(*v),
            Operand::ConstF(v) => Bind::ImmF(*v),
        })
    }

    /// Materialize a binding into a scalar register.
    fn as_sreg(&mut self, b: Bind) -> Result<SReg, JitError> {
        match b {
            Bind::S(r) => Ok(r),
            Bind::ImmI(v) => {
                let r = self.fresh_s();
                self.emit(MInst::MovImmI { dst: r, imm: v });
                Ok(r)
            }
            Bind::ImmF(v) => {
                let r = self.fresh_s();
                self.emit(MInst::MovImmF { dst: r, imm: v });
                Ok(r)
            }
            Bind::V(_) => self.err("vector register used as scalar"),
            Bind::Dead => self.err("dead register used as scalar"),
        }
    }

    fn operand_sreg(&mut self, o: &Operand) -> Result<SReg, JitError> {
        let b = self.operand_bind(o)?;
        self.as_sreg(b)
    }

    fn as_vreg(&self, r: Reg) -> Result<VReg, JitError> {
        match self.bind_of(r) {
            Bind::V(v) => Ok(v),
            other => self.err(format!("register {r} expected vector, bound {other:?}")),
        }
    }

    /// Scalar register holding the value of a Vec-typed bytecode register
    /// in a direct-scalarized group.
    fn as_scalar_lane(&mut self, r: Reg) -> Result<SReg, JitError> {
        match self.bind_of(r) {
            Bind::S(s) => Ok(s),
            Bind::ImmI(v) => self.as_sreg(Bind::ImmI(v)),
            Bind::ImmF(v) => self.as_sreg(Bind::ImmF(v)),
            other => self.err(format!(
                "register {r} expected scalar lane, bound {other:?}"
            )),
        }
    }

    /// Destination register for a definition. Multi-def registers are
    /// pinned to one machine register on first definition.
    fn def_s(&mut self, dst: Reg) -> SReg {
        match self.bind_of(dst) {
            Bind::S(r) => r,
            _ => {
                let r = self.fresh_s();
                self.bind.insert(dst, Bind::S(r));
                r
            }
        }
    }

    fn def_v(&mut self, dst: Reg) -> VReg {
        match self.bind_of(dst) {
            Bind::V(r) => r,
            _ => {
                let r = self.fresh_v();
                self.bind.insert(dst, Bind::V(r));
                r
            }
        }
    }

    /// Bind `dst` to a value binding; multi-def registers are always
    /// materialized so later redefinitions hit the same machine register.
    fn bind_scalar_value(&mut self, dst: Reg, b: Bind) -> Result<(), JitError> {
        if self.multi_def(dst) || matches!(self.bind_of(dst), Bind::S(_)) {
            let d = self.def_s(dst);
            match b {
                Bind::S(r) => self.emit(MInst::MovS { dst: d, src: r }),
                Bind::ImmI(v) => self.emit(MInst::MovImmI { dst: d, imm: v }),
                Bind::ImmF(v) => self.emit(MInst::MovImmF { dst: d, imm: v }),
                _ => return self.err("non-scalar value bound to scalar register"),
            }
        } else if self.opts.folds_constants() || matches!(b, Bind::S(_)) {
            self.bind.insert(dst, b);
        } else {
            let d = self.def_s(dst);
            match b {
                Bind::ImmI(v) => self.emit(MInst::MovImmI { dst: d, imm: v }),
                Bind::ImmF(v) => self.emit(MInst::MovImmF { dst: d, imm: v }),
                Bind::S(r) => self.emit(MInst::MovS { dst: d, src: r }),
                _ => return self.err("non-scalar value bound to scalar register"),
            }
        }
        Ok(())
    }

    fn vf_of(&self, group: u32, ty: ScalarTy) -> i64 {
        match self
            .group_mode
            .get(&group)
            .copied()
            .unwrap_or(GroupMode::Vector)
        {
            // VLA vector groups: `get_VF` resolves to 1, which makes the
            // offline bound arithmetic `lo + ((hi-lo)/VF)*VF` collapse to
            // `hi` — the stripmined, predicated main loop covers the
            // whole range and the scalar tail zero-trips. The real (run-
            // time) vector length enters only through `setvl`.
            GroupMode::Vector if self.t.vla => 1,
            GroupMode::Vector => self.t.lanes(ty) as i64,
            _ => 1,
        }
    }

    /// Byte address mode for `addr` with element size `esize`.
    fn mem_addr(&mut self, addr: &Addr, esize: usize) -> Result<AddrMode, JitError> {
        let base = self.array_base[addr.base.0 as usize];
        let disp = addr.offset * esize as i64;
        match self.operand_bind(&addr.index)? {
            Bind::ImmI(v) => Ok(AddrMode::base_disp(base, v * esize as i64 + disp)),
            Bind::S(idx) => {
                // Pointer-bumped access (native codegen).
                if let Operand::Reg(bc_idx) = addr.index {
                    if let Some(&p) = self.bump.get(&(bc_idx, addr.base.0)) {
                        return Ok(AddrMode::base_disp(p, disp));
                    }
                }
                if self.opts.folds_constants() {
                    Ok(AddrMode::fused(base, idx, esize as u8, disp))
                } else {
                    // Weak codegen: materialize the address arithmetic.
                    let t1 = self.fresh_s();
                    self.emit(MInst::SBinImm {
                        op: BinOp::Mul,
                        ty: ScalarTy::I64,
                        dst: t1,
                        a: idx,
                        imm: esize as i64,
                    });
                    let t2 = self.fresh_s();
                    self.emit(MInst::SBin {
                        op: BinOp::Add,
                        ty: ScalarTy::I64,
                        dst: t2,
                        a: base,
                        b: t1,
                    });
                    Ok(AddrMode::base_disp(t2, disp))
                }
            }
            other => self.err(format!("address index bound to {other:?}")),
        }
    }

    // ------------------------------------------------------------------
    // Guards
    // ------------------------------------------------------------------

    fn vs_mask(&self) -> i64 {
        (self.t.vs.max(1) as i64) - 1
    }

    /// Emit code computing a 0/1 flag for a conjunction of guards.
    fn emit_guard_value(&mut self, conds: &[GuardCond]) -> Result<SReg, JitError> {
        let mut acc: Option<SReg> = None;
        for c in conds {
            let v = self.emit_one_guard(c)?;
            acc = Some(match acc {
                None => v,
                Some(a) => {
                    let r = self.fresh_s();
                    self.emit(MInst::SBin {
                        op: BinOp::And,
                        ty: ScalarTy::I32,
                        dst: r,
                        a,
                        b: v,
                    });
                    r
                }
            });
        }
        match acc {
            Some(r) => Ok(r),
            None => self.as_sreg(Bind::ImmI(1)),
        }
    }

    fn emit_aligned_test(&mut self, reg: SReg) -> SReg {
        let t = self.fresh_s();
        self.emit(MInst::SBinImm {
            op: BinOp::And,
            ty: ScalarTy::I64,
            dst: t,
            a: reg,
            imm: self.vs_mask(),
        });
        let r = self.fresh_s();
        self.emit(MInst::SBinImm {
            op: BinOp::CmpEq,
            ty: ScalarTy::I64,
            dst: r,
            a: t,
            imm: 0,
        });
        r
    }

    fn emit_one_guard(&mut self, c: &GuardCond) -> Result<SReg, JitError> {
        match c {
            GuardCond::BaseAligned(a) => {
                let base = self.array_base[a.0 as usize];
                Ok(self.emit_aligned_test(base))
            }
            GuardCond::StrideAligned { array, stride, ty } => {
                let base = self.array_base[array.0 as usize];
                let b1 = self.emit_aligned_test(base);
                let s = self.operand_sreg(stride)?;
                let bytes = self.fresh_s();
                self.emit(MInst::SBinImm {
                    op: BinOp::Mul,
                    ty: ScalarTy::I64,
                    dst: bytes,
                    a: s,
                    imm: ty.size() as i64,
                });
                let b2 = self.emit_aligned_test(bytes);
                let r = self.fresh_s();
                self.emit(MInst::SBin {
                    op: BinOp::And,
                    ty: ScalarTy::I32,
                    dst: r,
                    a: b1,
                    b: b2,
                });
                Ok(r)
            }
            GuardCond::NoAlias(a, b) => {
                let (ab, al) = (self.array_base[a.0 as usize], self.array_len[a.0 as usize]);
                let (bb, bl) = (self.array_base[b.0 as usize], self.array_len[b.0 as usize]);
                let a_end = self.fresh_s();
                self.emit(MInst::SBin {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: a_end,
                    a: ab,
                    b: al,
                });
                let c1 = self.fresh_s();
                // a_end <= b_base  ⇔  !(b_base < a_end)
                self.emit(MInst::SBin {
                    op: BinOp::CmpLt,
                    ty: ScalarTy::I64,
                    dst: c1,
                    a: bb,
                    b: a_end,
                });
                let c1n = self.fresh_s();
                self.emit(MInst::SBinImm {
                    op: BinOp::Xor,
                    ty: ScalarTy::I32,
                    dst: c1n,
                    a: c1,
                    imm: 1,
                });
                let b_end = self.fresh_s();
                self.emit(MInst::SBin {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: b_end,
                    a: bb,
                    b: bl,
                });
                let c2 = self.fresh_s();
                self.emit(MInst::SBin {
                    op: BinOp::CmpLt,
                    ty: ScalarTy::I64,
                    dst: c2,
                    a: ab,
                    b: b_end,
                });
                let c2n = self.fresh_s();
                self.emit(MInst::SBinImm {
                    op: BinOp::Xor,
                    ty: ScalarTy::I32,
                    dst: c2n,
                    a: c2,
                    imm: 1,
                });
                let r = self.fresh_s();
                self.emit(MInst::SBin {
                    op: BinOp::Or,
                    ty: ScalarTy::I32,
                    dst: r,
                    a: c1n,
                    b: c2n,
                });
                Ok(r)
            }
            other => self.err(format!("guard {other:?} should have been folded")),
        }
    }

    /// Collect residual runtime guards in traversal order (for entry
    /// precomputation by optimizing pipelines).
    fn collect_runtime_guards(&self, stmts: &[BcStmt], out: &mut Vec<Vec<GuardCond>>) {
        for s in stmts {
            match s {
                BcStmt::Version {
                    cond,
                    then_body,
                    else_body,
                } => match fold_guard(cond, self.t, self.opts) {
                    Fold::True => self.collect_runtime_guards(then_body, out),
                    Fold::False => self.collect_runtime_guards(else_body, out),
                    Fold::Runtime(res) => {
                        out.push(res);
                        self.collect_runtime_guards(then_body, out);
                        self.collect_runtime_guards(else_body, out);
                    }
                },
                BcStmt::Loop { body, .. } => self.collect_runtime_guards(body, out),
                _ => {}
            }
        }
    }

    /// Mark lo/hi/rt registers needed for explicit realignment.
    fn collect_realign_needed(&mut self, stmts: &[BcStmt]) {
        if !self.t.explicit_realign {
            return;
        }
        for s in stmts {
            match s {
                BcStmt::Loop {
                    kind, group, body, ..
                } => {
                    let vector = *kind != LoopKind::VectorMain
                        || self.group_mode.get(group).copied() == Some(GroupMode::Vector);
                    if vector {
                        self.collect_realign_needed(body);
                    }
                }
                BcStmt::Version {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.collect_realign_needed(then_body);
                    self.collect_realign_needed(else_body);
                }
                BcStmt::Def {
                    op:
                        Op::RealignLoad {
                            lo,
                            hi,
                            rt,
                            mis,
                            modulo,
                            ..
                        },
                    ..
                } if known_misalignment(*mis, *modulo, self.t.vs) != Some(0) => {
                    for r in [lo, hi, rt].into_iter().flatten() {
                        self.realign_needed.insert(*r);
                    }
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Statement lowering
    // ------------------------------------------------------------------

    /// Ambient group of the statement at `idx` in `stmts`: the group of
    /// the nearest group-tagged statement at or after it (vectorizer
    /// layout contract; see DESIGN.md).
    fn ambient_group(&self, stmts: &[BcStmt], idx: usize) -> Option<u32> {
        for s in &stmts[idx..] {
            match s {
                BcStmt::Loop {
                    kind: LoopKind::VectorMain | LoopKind::ScalarTail,
                    group,
                    ..
                } => return Some(*group),
                BcStmt::Def {
                    op: Op::GetVf { group, .. },
                    ..
                }
                | BcStmt::Def {
                    op: Op::LoopBound { group, .. },
                    ..
                } => return Some(*group),
                _ => {}
            }
        }
        None
    }

    fn mode_of_group(&self, g: Option<u32>) -> GroupMode {
        g.and_then(|g| self.group_mode.get(&g).copied())
            .unwrap_or(GroupMode::Vector)
    }

    fn lower_stmts(&mut self, stmts: &[BcStmt], inherited: Option<u32>) -> Result<(), JitError> {
        for (i, s) in stmts.iter().enumerate() {
            let ambient = self.ambient_group(stmts, i).or(inherited);
            self.lower_stmt(s, ambient)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &BcStmt, ambient: Option<u32>) -> Result<(), JitError> {
        match s {
            BcStmt::Def { dst, op } => self.lower_def(*dst, op, ambient),
            BcStmt::VStore {
                ty,
                addr,
                src,
                mis,
                modulo,
            } => {
                let mode = self.mode_of_group(ambient);
                if mode.is_scalar() {
                    let sv = self.as_scalar_lane(*src)?;
                    let am = self.mem_addr(addr, ty.size())?;
                    self.emit(MInst::StoreS {
                        ty: *ty,
                        src: sv,
                        addr: am,
                    });
                    return Ok(());
                }
                let v = self.as_vreg(*src)?;
                let am = self.mem_addr(addr, ty.size())?;
                if self.t.vla {
                    // Predicated store: only the `vl` active lanes are
                    // written, so the stripmined loop needs no scalar
                    // tail and no whole-register alignment contract.
                    self.emit(MInst::StoreVl {
                        ty: *ty,
                        src: v,
                        addr: am,
                    });
                    return Ok(());
                }
                let align = match known_misalignment(*mis, *modulo, self.t.vs) {
                    Some(0) => MemAlign::Aligned,
                    _ if self.t.misaligned_stores => MemAlign::Unaligned,
                    _ => {
                        return self.err(
                            "misaligned vector store on an aligned-only target (planning bug)",
                        )
                    }
                };
                self.emit(MInst::StoreV {
                    src: v,
                    addr: am,
                    align,
                });
                Ok(())
            }
            BcStmt::SStore { ty, addr, src } => {
                let b = self.operand_bind(src)?;
                let sv = self.as_sreg(b)?;
                let am = self.mem_addr(addr, ty.size())?;
                self.emit(MInst::StoreS {
                    ty: *ty,
                    src: sv,
                    addr: am,
                });
                Ok(())
            }
            BcStmt::Loop {
                var,
                lo,
                limit,
                step,
                kind,
                group,
                body,
            } => self.lower_loop(*var, lo, limit, *step, *kind, *group, body, ambient),
            BcStmt::Version {
                cond,
                then_body,
                else_body,
            } => match fold_guard(cond, self.t, self.opts) {
                Fold::True => {
                    self.stats.guards_folded += 1;
                    self.lower_stmts(then_body, ambient)
                }
                Fold::False => {
                    self.stats.guards_folded += 1;
                    self.lower_stmts(else_body, ambient)
                }
                Fold::Runtime(res) => {
                    self.stats.guards_runtime += 1;
                    let flag = if self.opts.hoists_guards() {
                        let f = self.guard_flags[self.guard_cursor];
                        self.guard_cursor += 1;
                        f
                    } else {
                        self.emit_guard_value(&res)?
                    };
                    let l_else = self.fresh_label();
                    let l_end = self.fresh_label();
                    self.emit(MInst::BranchImm {
                        cond: Cond::Eq,
                        a: flag,
                        imm: 0,
                        target: l_else,
                    });
                    self.lower_stmts(then_body, ambient)?;
                    self.emit(MInst::Jump(l_end));
                    self.emit(MInst::Label(l_else));
                    self.lower_stmts(else_body, ambient)?;
                    self.emit(MInst::Label(l_end));
                    Ok(())
                }
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_loop(
        &mut self,
        var: Reg,
        lo: &Operand,
        limit: &Operand,
        step: Step,
        kind: LoopKind,
        group: u32,
        body: &[BcStmt],
        ambient: Option<u32>,
    ) -> Result<(), JitError> {
        // Inside a VectorMain loop, nested serial loops and their bodies
        // inherit the group of the vectorized loop.
        let body_ambient = if kind == LoopKind::VectorMain {
            Some(group)
        } else {
            ambient
        };
        if kind == LoopKind::VectorMain
            && self.group_mode.get(&group).copied() == Some(GroupMode::TailScalar)
        {
            // The scalar tail loop executes the whole range instead.
            return Ok(());
        }
        let step_val = match step {
            Step::Const(k) => k,
            Step::Vf(t, k) => k * self.vf_of(group, t),
        };
        // A VLA vector main loop is stripmined: each iteration sets the
        // active vector length to `min(remaining, VLMAX)` via `setvl`
        // and advances the induction variable by that runtime amount.
        let vla_main = kind == LoopKind::VectorMain
            && self.t.vla
            && self
                .group_mode
                .get(&group)
                .copied()
                .unwrap_or(GroupMode::Vector)
                == GroupMode::Vector;
        let vla_ty = match step {
            Step::Vf(t, _) => t,
            Step::Const(_) => ScalarTy::I64,
        };
        let i = self.def_s(var);
        match self.operand_bind(lo)? {
            Bind::ImmI(v) => self.emit(MInst::MovImmI { dst: i, imm: v }),
            Bind::S(r) => self.emit(MInst::MovS { dst: i, src: r }),
            other => return self.err(format!("loop lower bound bound to {other:?}")),
        }
        let limit_b = self.operand_bind(limit)?;
        // The stripmine form needs the limit in a register to compute
        // the remaining trip count each iteration.
        let vla_limit = if vla_main {
            Some(self.as_sreg(limit_b)?)
        } else {
            None
        };
        // Pointer-bump setup (native pipeline): one pointer per array
        // accessed directly through this induction variable. Skipped for
        // stripmined loops, whose per-iteration advance is not a
        // compile-time constant.
        let mut bumped: Vec<(Reg, u32, SReg, i64)> = Vec::new();
        if self.opts.pointer_bump() && !vla_main {
            let mut arrays: Vec<(u32, usize)> = Vec::new();
            collect_induction_arrays(body, var, &mut arrays);
            for (sym, esize) in arrays {
                let p = self.fresh_s();
                let base = self.array_base[sym as usize];
                let scaled = self.fresh_s();
                self.emit(MInst::SBinImm {
                    op: BinOp::Mul,
                    ty: ScalarTy::I64,
                    dst: scaled,
                    a: i,
                    imm: esize as i64,
                });
                self.emit(MInst::SBin {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: p,
                    a: base,
                    b: scaled,
                });
                self.bump.insert((var, sym), p);
                bumped.push((var, sym, p, (esize as i64) * step_val));
            }
        }

        let l_exit = self.fresh_label();
        let emit_exit_test = |this: &mut Self, cond: Cond, target: Label| -> Result<(), JitError> {
            match limit_b {
                Bind::ImmI(v) => this.emit(MInst::BranchImm {
                    cond,
                    a: i,
                    imm: v,
                    target,
                }),
                Bind::S(r) => this.emit(MInst::Branch {
                    cond,
                    a: i,
                    b: r,
                    target,
                }),
                other => return this.err(format!("loop limit bound to {other:?}")),
            }
            Ok(())
        };

        // Stripmine prologue of one iteration: vl = setvl(limit - i).
        let emit_stripmine = |this: &mut Self| -> Option<SReg> {
            let limit_reg = vla_limit?;
            let rem = this.fresh_s();
            this.emit(MInst::SBin {
                op: BinOp::Sub,
                ty: ScalarTy::I64,
                dst: rem,
                a: limit_reg,
                b: i,
            });
            let vl = this.fresh_s();
            this.emit(MInst::SetVl {
                ty: vla_ty,
                dst: vl,
                avl: rem,
            });
            Some(vl)
        };
        let emit_advance = |this: &mut Self, vl: Option<SReg>| match vl {
            // Stripmined loops advance by the runtime vector length.
            Some(v) => this.emit(MInst::SBin {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: i,
                a: i,
                b: v,
            }),
            None => this.emit(MInst::SBinImm {
                op: BinOp::Add,
                ty: ScalarTy::I64,
                dst: i,
                a: i,
                imm: step_val,
            }),
        };

        if self.opts.bottom_test_loops() {
            emit_exit_test(self, Cond::Ge, l_exit)?;
            let l_body = self.fresh_label();
            self.emit(MInst::Label(l_body));
            let vl = emit_stripmine(self);
            self.lower_stmts(body, body_ambient)?;
            emit_advance(self, vl);
            for (_, _, p, bump) in &bumped {
                self.emit(MInst::SBinImm {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: *p,
                    a: *p,
                    imm: *bump,
                });
            }
            emit_exit_test(self, Cond::Lt, l_body)?;
            self.emit(MInst::Label(l_exit));
        } else {
            let l_head = self.fresh_label();
            self.emit(MInst::Label(l_head));
            emit_exit_test(self, Cond::Ge, l_exit)?;
            let vl = emit_stripmine(self);
            self.lower_stmts(body, body_ambient)?;
            emit_advance(self, vl);
            for (_, _, p, bump) in &bumped {
                self.emit(MInst::SBinImm {
                    op: BinOp::Add,
                    ty: ScalarTy::I64,
                    dst: *p,
                    a: *p,
                    imm: *bump,
                });
            }
            self.emit(MInst::Jump(l_head));
            self.emit(MInst::Label(l_exit));
        }
        for (v, sym, _, _) in bumped {
            self.bump.remove(&(v, sym));
        }
        Ok(())
    }

    fn lower_def(&mut self, dst: Reg, op: &Op, ambient: Option<u32>) -> Result<(), JitError> {
        let mode = self.mode_of_group(ambient);
        match op {
            // ----- machine parameters -----
            Op::GetVf { ty, group } => {
                let vf = self.vf_of(*group, *ty);
                self.bind_scalar_value(dst, Bind::ImmI(vf))
            }
            Op::GetAlignLimit(ty) => {
                let lim = (self.t.align_limit_bytes() / ty.size()).max(1) as i64;
                self.bind_scalar_value(dst, Bind::ImmI(lim))
            }
            Op::LoopBound {
                vect,
                scalar,
                group,
            } => {
                let m = self
                    .group_mode
                    .get(group)
                    .copied()
                    .unwrap_or(GroupMode::Vector);
                let chosen = if m == GroupMode::TailScalar {
                    scalar
                } else {
                    vect
                };
                let b = self.operand_bind(chosen)?;
                self.bind_scalar_value(dst, b)
            }

            // ----- scalar ops -----
            Op::SBin(bop, ty, a, b) => self.lower_sbin(dst, *bop, *ty, a, b),
            Op::SUn(uop, ty, a) => {
                let av = self.operand_sreg_coerced(a, *ty)?;
                let d = self.def_s(dst);
                self.emit(MInst::SUn {
                    op: *uop,
                    ty: *ty,
                    dst: d,
                    a: av,
                });
                Ok(())
            }
            Op::SCast { from, to, arg } => {
                let b = self.operand_bind(arg)?;
                if self.opts.folds_constants() {
                    if let Some(v) = const_value(b) {
                        let r = eval_cast(*from, *to, coerce(*from, v));
                        return self.bind_scalar_value(dst, value_bind(r));
                    }
                }
                let av = self.as_sreg(b)?;
                let d = self.def_s(dst);
                self.emit(MInst::SCvt {
                    from: *from,
                    to: *to,
                    dst: d,
                    a: av,
                });
                Ok(())
            }
            Op::SLoad(ty, addr) => {
                let am = self.mem_addr(addr, ty.size())?;
                let d = self.def_s(dst);
                self.emit(MInst::LoadS {
                    ty: *ty,
                    dst: d,
                    addr: am,
                });
                Ok(())
            }
            Op::Copy(o) => {
                // Copies of dropped realignment values (the `va = vb`
                // recycling) die with their source.
                if let Operand::Reg(r) = o {
                    if matches!(self.bind_of(*r), Bind::Dead) {
                        self.bind.insert(dst, Bind::Dead);
                        return Ok(());
                    }
                }
                let b = self.operand_bind(o)?;
                match b {
                    Bind::V(v) => {
                        let d = self.def_v(dst);
                        self.emit(MInst::MovV { dst: d, src: v });
                        Ok(())
                    }
                    Bind::Dead => {
                        self.bind.insert(dst, Bind::Dead);
                        Ok(())
                    }
                    other => self.bind_scalar_value(dst, other),
                }
            }

            // ----- vector initialization -----
            Op::InitUniform(ty, v) | Op::InitAffine(ty, v, _) | Op::InitReduc(ty, v, _)
                if mode.is_scalar() =>
            {
                // VF = 1: the vector is its single lane.
                let _ = ty;
                let b = self.operand_bind(v)?;
                self.bind_scalar_value(dst, b)
            }
            Op::InitUniform(ty, v) => {
                let s = self.operand_sreg_coerced(v, *ty)?;
                let d = self.def_v(dst);
                self.emit(MInst::Splat {
                    ty: *ty,
                    dst: d,
                    src: s,
                });
                Ok(())
            }
            Op::InitAffine(ty, v, inc) => {
                let s = self.operand_sreg_coerced(v, *ty)?;
                let i = self.operand_sreg_coerced(inc, *ty)?;
                let d = self.def_v(dst);
                self.emit(MInst::Iota {
                    ty: *ty,
                    dst: d,
                    start: s,
                    inc: i,
                });
                Ok(())
            }
            Op::InitReduc(ty, val, default) => {
                let dv = self.operand_sreg_coerced(default, *ty)?;
                let d = self.def_v(dst);
                self.emit(MInst::Splat {
                    ty: *ty,
                    dst: d,
                    src: dv,
                });
                let sv = self.operand_sreg_coerced(val, *ty)?;
                self.emit(MInst::SetLane {
                    ty: *ty,
                    dst: d,
                    lane: 0,
                    src: sv,
                });
                Ok(())
            }

            // ----- reductions -----
            Op::ReducPlus(ty, r) | Op::ReducMax(ty, r) | Op::ReducMin(ty, r) => {
                let rop = match op {
                    Op::ReducPlus(..) => ReduceOp::Plus,
                    Op::ReducMax(..) => ReduceOp::Max,
                    _ => ReduceOp::Min,
                };
                match self.bind_of(*r) {
                    // Scalarized group: the "vector" is one lane (or the
                    // untouched initial value when the main loop was
                    // skipped entirely).
                    Bind::S(s) => self.bind_scalar_value(dst, Bind::S(s)),
                    Bind::ImmI(v) => self.bind_scalar_value(dst, Bind::ImmI(v)),
                    Bind::ImmF(v) => self.bind_scalar_value(dst, Bind::ImmF(v)),
                    Bind::V(v) => {
                        let d = self.def_s(dst);
                        self.emit(MInst::VReduce {
                            op: rop,
                            ty: *ty,
                            dst: d,
                            src: v,
                        });
                        Ok(())
                    }
                    Bind::Dead => self.err("reduction of dead vector"),
                }
            }

            // ----- memory -----
            Op::ALoad(ty, addr) => {
                if mode.is_scalar() {
                    let am = self.mem_addr(addr, ty.size())?;
                    let d = self.def_s(dst);
                    self.emit(MInst::LoadS {
                        ty: *ty,
                        dst: d,
                        addr: am,
                    });
                    return Ok(());
                }
                let am = self.mem_addr(addr, ty.size())?;
                let d = self.def_v(dst);
                if self.t.vla {
                    self.emit(MInst::LoadVl {
                        ty: *ty,
                        dst: d,
                        addr: am,
                    });
                } else {
                    self.emit(MInst::LoadV {
                        dst: d,
                        addr: am,
                        align: MemAlign::Aligned,
                    });
                }
                Ok(())
            }
            Op::AlignLoad(ty, addr) => {
                if mode.is_scalar() || !self.realign_needed.contains(&dst) {
                    self.bind.insert(dst, Bind::Dead);
                    return Ok(());
                }
                let am = self.mem_addr(addr, ty.size())?;
                let d = self.def_v(dst);
                self.emit(MInst::LoadVFloor { dst: d, addr: am });
                Ok(())
            }
            Op::GetRt { ty, addr, .. } => {
                if mode.is_scalar() || !self.realign_needed.contains(&dst) {
                    self.bind.insert(dst, Bind::Dead);
                    return Ok(());
                }
                let am = self.mem_addr(addr, ty.size())?;
                let d = self.def_v(dst);
                self.emit(MInst::VPermCtrl { dst: d, addr: am });
                Ok(())
            }
            Op::RealignLoad {
                ty,
                lo,
                hi,
                rt,
                addr,
                mis,
                modulo,
            } => {
                if mode.is_scalar() {
                    let am = self.mem_addr(addr, ty.size())?;
                    let d = self.def_s(dst);
                    self.emit(MInst::LoadS {
                        ty: *ty,
                        dst: d,
                        addr: am,
                    });
                    return Ok(());
                }
                if self.t.vla {
                    // VLA memory ops are element-aligned by contract:
                    // every (re)aligned load becomes the same predicated
                    // load, and the lo/hi/rt realignment scaffolding is
                    // dead (collect_realign_needed never marks it on a
                    // target without explicit realignment).
                    let am = self.mem_addr(addr, ty.size())?;
                    let d = self.def_v(dst);
                    self.emit(MInst::LoadVl {
                        ty: *ty,
                        dst: d,
                        addr: am,
                    });
                    return Ok(());
                }
                let k = known_misalignment(*mis, *modulo, self.t.vs);
                if k == Some(0) {
                    let am = self.mem_addr(addr, ty.size())?;
                    let d = self.def_v(dst);
                    self.emit(MInst::LoadV {
                        dst: d,
                        addr: am,
                        align: MemAlign::Aligned,
                    });
                    return Ok(());
                }
                if self.t.explicit_realign {
                    match (lo, hi, rt) {
                        (Some(l), Some(h), Some(r)) => {
                            let (lv, hv, rv) =
                                (self.as_vreg(*l)?, self.as_vreg(*h)?, self.as_vreg(*r)?);
                            let d = self.def_v(dst);
                            self.emit(MInst::VPerm {
                                dst: d,
                                a: lv,
                                b: hv,
                                ctrl: rv,
                            });
                            Ok(())
                        }
                        _ => self.err("explicit realignment needs v1/v2/rt operands"),
                    }
                } else if self.t.misaligned_loads {
                    let am = self.mem_addr(addr, ty.size())?;
                    let d = self.def_v(dst);
                    self.emit(MInst::LoadV {
                        dst: d,
                        addr: am,
                        align: MemAlign::Unaligned,
                    });
                    Ok(())
                } else {
                    self.err("no realignment strategy available (planning bug)")
                }
            }

            // ----- elementwise -----
            Op::VBin(bop, ty, a, b) => {
                if mode.is_scalar() {
                    let (av, bv) = (self.as_scalar_lane(*a)?, self.as_scalar_lane(*b)?);
                    let d = self.def_s(dst);
                    self.emit(MInst::SBin {
                        op: *bop,
                        ty: *ty,
                        dst: d,
                        a: av,
                        b: bv,
                    });
                    return Ok(());
                }
                let (av, bv) = (self.as_vreg(*a)?, self.as_vreg(*b)?);
                let d = self.def_v(dst);
                if self.t.vla {
                    // Merging predication: inactive lanes of the
                    // destination survive, which keeps loop-carried
                    // accumulators exact through the partial final
                    // stripmine iteration.
                    self.emit(MInst::VBinVl {
                        op: *bop,
                        ty: *ty,
                        dst: d,
                        a: av,
                        b: bv,
                    });
                } else if *bop == BinOp::Div && !self.t.has_fdiv {
                    self.stats.helper_calls += 1;
                    self.emit(MInst::VHelper {
                        op: HelperOp::FDiv,
                        ty: *ty,
                        dst: d,
                        a: av,
                        b: Some(bv),
                    });
                } else {
                    self.emit(MInst::VBin {
                        op: *bop,
                        ty: *ty,
                        dst: d,
                        a: av,
                        b: bv,
                    });
                }
                Ok(())
            }
            Op::VUn(uop, ty, a) => {
                if mode.is_scalar() {
                    let av = self.as_scalar_lane(*a)?;
                    let d = self.def_s(dst);
                    self.emit(MInst::SUn {
                        op: *uop,
                        ty: *ty,
                        dst: d,
                        a: av,
                    });
                    return Ok(());
                }
                let av = self.as_vreg(*a)?;
                let d = self.def_v(dst);
                if self.t.vla {
                    self.emit(MInst::VUnVl {
                        op: *uop,
                        ty: *ty,
                        dst: d,
                        a: av,
                    });
                } else if *uop == vapor_ir::UnOp::Sqrt && !self.t.has_fsqrt {
                    self.stats.helper_calls += 1;
                    self.emit(MInst::VHelper {
                        op: HelperOp::FSqrt,
                        ty: *ty,
                        dst: d,
                        a: av,
                        b: None,
                    });
                } else {
                    self.emit(MInst::VUn {
                        op: *uop,
                        ty: *ty,
                        dst: d,
                        a: av,
                    });
                }
                Ok(())
            }
            Op::VShl(ty, v, amt) | Op::VShr(ty, v, amt) => {
                let left = matches!(op, Op::VShl(..));
                if mode.is_scalar() {
                    let av = self.as_scalar_lane(*v)?;
                    let amt_s = match amt {
                        ShiftAmt::Scalar(o) => self.operand_sreg(o)?,
                        ShiftAmt::PerLane(r) => self.as_scalar_lane(*r)?,
                    };
                    let d = self.def_s(dst);
                    self.emit(MInst::SBin {
                        op: if left { BinOp::Shl } else { BinOp::Shr },
                        ty: *ty,
                        dst: d,
                        a: av,
                        b: amt_s,
                    });
                    return Ok(());
                }
                let av = self.as_vreg(*v)?;
                let amt_m = match amt {
                    ShiftAmt::Scalar(o) => match self.operand_bind(o)? {
                        Bind::ImmI(k) => ShiftSrc::Imm(k as u8),
                        b => ShiftSrc::Reg(self.as_sreg(b)?),
                    },
                    ShiftAmt::PerLane(r) => ShiftSrc::PerLane(self.as_vreg(*r)?),
                };
                let d = self.def_v(dst);
                self.emit(MInst::VShift {
                    left,
                    ty: *ty,
                    dst: d,
                    a: av,
                    amt: amt_m,
                });
                Ok(())
            }

            // ----- conversions -----
            Op::CvtInt2Fp(ty, a) | Op::CvtFp2Int(ty, a) => {
                let dir = if matches!(op, Op::CvtInt2Fp(..)) {
                    CvtDir::IntToFloat
                } else {
                    CvtDir::FloatToInt
                };
                if mode.is_scalar() {
                    let to = match dir {
                        CvtDir::IntToFloat => vapor_targets::float_of_width(*ty),
                        CvtDir::FloatToInt => vapor_targets::int_of_width(*ty),
                    }
                    .ok_or_else(|| JitError(format!("no conversion counterpart for {ty}")))?;
                    let av = self.as_scalar_lane(*a)?;
                    let d = self.def_s(dst);
                    self.emit(MInst::SCvt {
                        from: *ty,
                        to,
                        dst: d,
                        a: av,
                    });
                    return Ok(());
                }
                let av = self.as_vreg(*a)?;
                let d = self.def_v(dst);
                if self.t.cvt_via_helper {
                    self.stats.helper_calls += 1;
                    self.emit(MInst::VHelper {
                        op: HelperOp::Cvt(dir),
                        ty: *ty,
                        dst: d,
                        a: av,
                        b: None,
                    });
                } else {
                    self.emit(MInst::VCvt {
                        dir,
                        ty: *ty,
                        dst: d,
                        a: av,
                    });
                }
                Ok(())
            }

            // ----- sub-vector idioms (never reached in scalar modes) -----
            Op::DotProduct(ty, a, b, acc) => {
                let (av, bv, cv) = (self.as_vreg(*a)?, self.as_vreg(*b)?, self.as_vreg(*acc)?);
                let d = self.def_v(dst);
                self.emit(MInst::VDotAcc {
                    ty: *ty,
                    dst: d,
                    a: av,
                    b: bv,
                    acc: cv,
                });
                Ok(())
            }
            Op::WidenMultHi(ty, a, b) | Op::WidenMultLo(ty, a, b) => {
                let half = if matches!(op, Op::WidenMultHi(..)) {
                    Half::Hi
                } else {
                    Half::Lo
                };
                let (av, bv) = (self.as_vreg(*a)?, self.as_vreg(*b)?);
                let d = self.def_v(dst);
                if self.t.widen_mult_via_helper {
                    self.stats.helper_calls += 1;
                    self.emit(MInst::VHelper {
                        op: HelperOp::WidenMult(half),
                        ty: *ty,
                        dst: d,
                        a: av,
                        b: Some(bv),
                    });
                } else {
                    self.emit(MInst::VWidenMul {
                        half,
                        ty: *ty,
                        dst: d,
                        a: av,
                        b: bv,
                    });
                }
                Ok(())
            }
            Op::Pack(ty, a, b) => {
                let (av, bv) = (self.as_vreg(*a)?, self.as_vreg(*b)?);
                let d = self.def_v(dst);
                self.emit(MInst::VPack {
                    ty: *ty,
                    dst: d,
                    a: av,
                    b: bv,
                });
                Ok(())
            }
            Op::UnpackHi(ty, a) | Op::UnpackLo(ty, a) => {
                let half = if matches!(op, Op::UnpackHi(..)) {
                    Half::Hi
                } else {
                    Half::Lo
                };
                let av = self.as_vreg(*a)?;
                let d = self.def_v(dst);
                self.emit(MInst::VUnpack {
                    half,
                    ty: *ty,
                    dst: d,
                    a: av,
                });
                Ok(())
            }
            Op::Extract {
                ty,
                stride,
                offset,
                srcs,
            } => {
                let mut vs = Vec::with_capacity(srcs.len());
                for r in srcs {
                    vs.push(self.as_vreg(*r)?);
                }
                let d = self.def_v(dst);
                self.emit(MInst::VExtractStride {
                    ty: *ty,
                    stride: *stride,
                    offset: *offset,
                    dst: d,
                    srcs: vs,
                });
                Ok(())
            }
            Op::InterleaveHi(ty, a, b) | Op::InterleaveLo(ty, a, b) => {
                let half = if matches!(op, Op::InterleaveHi(..)) {
                    Half::Hi
                } else {
                    Half::Lo
                };
                let (av, bv) = (self.as_vreg(*a)?, self.as_vreg(*b)?);
                let d = self.def_v(dst);
                self.emit(MInst::VInterleave {
                    half,
                    ty: *ty,
                    dst: d,
                    a: av,
                    b: bv,
                });
                Ok(())
            }
        }
    }

    fn operand_sreg_coerced(&mut self, o: &Operand, ty: ScalarTy) -> Result<SReg, JitError> {
        let b = self.operand_bind(o)?;
        let b = match (b, ty.is_float()) {
            (Bind::ImmI(v), true) => Bind::ImmF(v as f64),
            other => other.0,
        };
        self.as_sreg(b)
    }

    fn lower_sbin(
        &mut self,
        dst: Reg,
        op: BinOp,
        ty: ScalarTy,
        a: &Operand,
        b: &Operand,
    ) -> Result<(), JitError> {
        let ab = self.operand_bind(a)?;
        let bb = self.operand_bind(b)?;
        if self.opts.folds_constants() {
            if let (Some(x), Some(y)) = (const_value(ab), const_value(bb)) {
                let r = eval_bin(op, ty, coerce(ty, x), coerce(ty, y));
                return self.bind_scalar_value(dst, value_bind(r));
            }
        }
        let av = self.as_sreg(coerce_bind(ab, ty))?;
        match coerce_bind(bb, ty) {
            Bind::ImmI(v) if !ty.is_float() => {
                let d = self.def_s(dst);
                self.emit(MInst::SBinImm {
                    op,
                    ty,
                    dst: d,
                    a: av,
                    imm: v,
                });
            }
            other => {
                let bv = self.as_sreg(other)?;
                let d = self.def_s(dst);
                self.emit(MInst::SBin {
                    op,
                    ty,
                    dst: d,
                    a: av,
                    b: bv,
                });
            }
        }
        Ok(())
    }
}

fn const_value(b: Bind) -> Option<Value> {
    match b {
        Bind::ImmI(v) => Some(Value::Int(v)),
        Bind::ImmF(v) => Some(Value::Float(v)),
        _ => None,
    }
}

fn coerce(ty: ScalarTy, v: Value) -> Value {
    match (ty.is_float(), v) {
        (true, Value::Int(i)) => Value::Float(i as f64),
        (false, Value::Float(f)) => Value::Int(f as i64),
        _ => v,
    }
}

fn coerce_bind(b: Bind, ty: ScalarTy) -> Bind {
    match (b, ty.is_float()) {
        (Bind::ImmI(v), true) => Bind::ImmF(v as f64),
        _ => b,
    }
}

fn value_bind(v: Value) -> Bind {
    match v {
        Value::Int(i) => Bind::ImmI(i),
        Value::Float(f) => Bind::ImmF(f),
    }
}

fn collect_induction_arrays(body: &[BcStmt], var: Reg, out: &mut Vec<(u32, usize)>) {
    fn consider(out: &mut Vec<(u32, usize)>, var: Reg, addr: &Addr, esize: usize) {
        if addr.index == Operand::Reg(var) && !out.iter().any(|(s, _)| *s == addr.base.0) {
            out.push((addr.base.0, esize));
        }
    }
    for s in body {
        match s {
            BcStmt::Def { op, .. } => match op {
                Op::ALoad(t, a) | Op::AlignLoad(t, a) | Op::SLoad(t, a) => {
                    consider(out, var, a, t.size())
                }
                Op::RealignLoad { ty, addr, .. } => consider(out, var, addr, ty.size()),
                Op::GetRt { ty, addr, .. } => consider(out, var, addr, ty.size()),
                _ => {}
            },
            BcStmt::VStore { ty, addr, .. } | BcStmt::SStore { ty, addr, .. } => {
                consider(out, var, addr, ty.size())
            }
            BcStmt::Loop { body, .. } => collect_induction_arrays(body, var, out),
            BcStmt::Version {
                then_body,
                else_body,
                ..
            } => {
                collect_induction_arrays(then_body, var, out);
                collect_induction_arrays(else_body, var, out);
            }
        }
    }
}

fn count_defs(stmts: &[BcStmt], counts: &mut HashMap<Reg, u32>) {
    for s in stmts {
        match s {
            BcStmt::Def { dst, .. } => *counts.entry(*dst).or_insert(0) += 1,
            BcStmt::Loop { var, body, .. } => {
                *counts.entry(*var).or_insert(0) += 2; // loop vars mutate
                count_defs(body, counts);
            }
            BcStmt::Version {
                then_body,
                else_body,
                ..
            } => {
                count_defs(then_body, counts);
                count_defs(else_body, counts);
            }
            _ => {}
        }
    }
}

/// Compile one bytecode function for a target with the given options.
///
/// # Errors
/// Returns a [`JitError`] for malformed bytecode or idiom/target
/// combinations the planner failed to reject (both indicate bugs in the
/// offline stage).
pub fn compile(
    f: &BcFunction,
    target: &TargetDesc,
    opts: &JitOptions,
) -> Result<CompiledKernel, JitError> {
    let nparams = f.params.len() as u32;
    let narrays = f.arrays.len() as u32;
    let array_base: Vec<SReg> = (0..narrays).map(|i| SReg(nparams + 2 * i)).collect();
    let array_len: Vec<SReg> = (0..narrays).map(|i| SReg(nparams + 2 * i + 1)).collect();

    let mut group_mode = HashMap::new();
    for g in groups_of(f) {
        group_mode.insert(g, plan_group(f, g, target));
    }

    let mut lw = Lower {
        f,
        t: target,
        opts,
        insts: Vec::new(),
        next_s: nparams + 2 * narrays,
        next_v: 0,
        next_l: 0,
        bind: HashMap::new(),
        def_count: HashMap::new(),
        array_base,
        array_len,
        group_mode,
        realign_needed: Default::default(),
        guard_flags: Vec::new(),
        guard_cursor: 0,
        bump: HashMap::new(),
        stats: CompileStats::default(),
    };
    for (i, _) in f.params.iter().enumerate() {
        lw.bind.insert(Reg(i as u32), Bind::S(SReg(i as u32)));
    }
    count_defs(&f.body, &mut lw.def_count);
    lw.collect_realign_needed(&f.body);

    // Optimizing pipelines precompute runtime guard conditions once at
    // function entry (the LICM the naive JIT lacks).
    if opts.hoists_guards() {
        let mut residuals = Vec::new();
        lw.collect_runtime_guards(&f.body, &mut residuals);
        for res in residuals {
            let flag = lw.emit_guard_value(&res)?;
            lw.guard_flags.push(flag);
        }
    }

    lw.lower_stmts(&f.body, None)?;

    for (g, m) in &lw.group_mode {
        let _ = g;
        match m {
            GroupMode::Vector => lw.stats.groups_vector += 1,
            GroupMode::DirectScalar => lw.stats.groups_direct_scalar += 1,
            GroupMode::TailScalar => lw.stats.groups_tail_scalar += 1,
        }
    }

    let mut code = MCode {
        insts: lw.insts,
        n_sregs: lw.next_s,
        n_vregs: lw.next_v,
        note: format!("{} [{:?} on {}]", f.name, opts.pipeline, target.name),
    };
    if opts.folds_constants() {
        crate::dce::run(&mut code);
    }
    let param_regs: Vec<SReg> = (0..nparams).map(SReg).collect();
    let (array_base_regs, array_len_regs) = (lw.array_base.clone(), lw.array_len.clone());
    let mut stats = lw.stats;

    if opts.spills_everything() {
        code = crate::spill::rewrite(&code, nparams + 2 * narrays, opts.use_x87(target));
    }
    stats.insts = code.len();

    let decoded = Arc::new(
        DecodedProgram::decode(&code, target)
            .map_err(|e| JitError(format!("decode of generated code failed: {e}")))?,
    );
    Ok(CompiledKernel {
        code,
        decoded,
        param_regs,
        array_base_regs,
        array_len_regs,
        stats,
    })
}
